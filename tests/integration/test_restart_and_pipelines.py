"""Integration tests: snapshot restarts and long multi-layer pipelines."""

import numpy as np
import pytest

from repro import (
    ReferenceBackend,
    Simulation,
    TTForceBackend,
    energy_report,
    plummer,
)
from repro.core import BlockHermiteIntegrator, load_npz, save_npz
from repro.metalium import CreateDevice


class TestSnapshotRestart:
    def test_restart_is_bitwise_identical(self, tmp_path):
        """Stopping, snapshotting, reloading, and continuing reproduces the
        uninterrupted run exactly — acc and jerk are part of the state, so
        the Hermite integrator resumes without re-priming."""
        dt = 1e-3

        # uninterrupted: 6 cycles
        s_full = plummer(256, seed=20)
        sim_full = Simulation(s_full, ReferenceBackend(), dt=dt)
        sim_full.run(6)

        # interrupted: 3 cycles, snapshot, reload, 3 more
        s_part = plummer(256, seed=20)
        sim_part = Simulation(s_part, ReferenceBackend(), dt=dt)
        sim_part.run(3)
        path = tmp_path / "restart.npz"
        save_npz(path, s_part)
        s_resumed = load_npz(path)
        sim_resumed = Simulation(s_resumed, ReferenceBackend(), dt=dt)
        # the snapshot carries acc/jerk: skip the initial force evaluation
        sim_resumed._initialised = True
        sim_resumed.run(3)

        assert s_resumed.time == pytest.approx(s_full.time)
        assert np.array_equal(s_resumed.pos, s_full.pos)
        assert np.array_equal(s_resumed.vel, s_full.vel)

    def test_restart_on_device_backend(self, tmp_path):
        """The same restart flow with forces on the simulated Wormhole."""
        dt = 1e-3
        device = CreateDevice(0)
        backend = TTForceBackend(device, n_cores=2)

        s_full = plummer(1024, seed=21)
        Simulation(s_full, backend, dt=dt).run(4)

        s_part = plummer(1024, seed=21)
        sim = Simulation(s_part, backend, dt=dt)
        sim.run(2)
        path = tmp_path / "dev_restart.npz"
        save_npz(path, s_part)
        s_resumed = load_npz(path)
        sim2 = Simulation(s_resumed, backend, dt=dt)
        sim2._initialised = True
        sim2.run(2)

        assert np.array_equal(s_resumed.pos, s_full.pos)


class TestLongPipelines:
    def test_fp32_noise_contaminates_aarseth_criterion(self):
        """A mixed-precision interaction the reproduction surfaces: the
        Aarseth criterion reconstructs snap and crackle by dividing force
        differences by dt^2 and dt^3, so the FP32 device kernel's ~1e-5
        force noise inflates them and drags the adaptive step well below
        the reference sequence.  The noise-robust 'simple' criterion
        (eta |a|/|j|) restores agreement — the standard mitigation for
        single-precision force kernels."""
        from repro.core import SharedTimestep

        device = CreateDevice(0)

        def dt_sequence(backend, criterion):
            s = plummer(1024, seed=22)
            sim = Simulation(
                s, backend,
                timestep=SharedTimestep(
                    eta=0.01, eta_start=0.005, criterion=criterion
                ),
            )
            return np.array([c.dt for c in sim.run(5).cycles])

        dev_backend = TTForceBackend(device, n_cores=4)
        aarseth_dev = dt_sequence(dev_backend, "aarseth")
        aarseth_ref = dt_sequence(ReferenceBackend(), "aarseth")
        simple_dev = dt_sequence(dev_backend, "simple")
        simple_ref = dt_sequence(ReferenceBackend(), "simple")

        # the contamination: device steps collapse vs the reference
        assert aarseth_dev[1:].mean() < 0.6 * aarseth_ref[1:].mean()
        # the mitigation: noise-robust criterion agrees across backends
        assert np.allclose(simple_dev, simple_ref, rtol=1e-3)

    def test_simple_criterion_validation(self):
        from repro.core import SharedTimestep
        from repro.errors import IntegratorError

        with pytest.raises(IntegratorError, match="criterion"):
            SharedTimestep(criterion="magic")

    def test_block_integrator_with_mixed_precision_force(self):
        """Block timesteps driven by a mixed-precision partial force (the
        cpuref SIMD kernel restricted to the active set)."""
        from repro.cpuref.simd import simd_accel_jerk

        def mixed_partial(pos, vel, mass, targets):
            # evaluate contiguous runs of targets through the SIMD kernel
            acc = np.empty((targets.size, 3))
            jerk = np.empty((targets.size, 3))
            for k, t in enumerate(targets):
                a, j = simd_accel_jerk(
                    pos, vel, mass, i_slice=slice(int(t), int(t) + 1)
                )
                acc[k] = a[0]
                jerk[k] = j[0]
            return acc, jerk

        s = plummer(128, seed=23)
        e0 = energy_report(s)
        integ = BlockHermiteIntegrator(
            s, eta=0.01, eta_start=0.005, partial_force=mixed_partial
        )
        integ.run_until(0.05)
        integ.synchronise()
        assert energy_report(s).drift_from(e0) < 1e-5

"""Cross-layer integration tests: the paper's full pipelines."""

import numpy as np
import pytest

from repro import (
    CPUForceBackend,
    Campaign,
    CampaignSummary,
    DataFormat,
    HostCostModel,
    JobSpec,
    ReferenceBackend,
    Simulation,
    TTForceBackend,
    energy_report,
    plummer,
    validate_forces,
)
from repro.metalium import CreateDevice


class TestDeviceVsCpuVsReference:
    """The paper's three-way comparison on one workload."""

    @pytest.fixture(scope="class")
    def workload(self):
        return plummer(2048, seed=11)

    @pytest.fixture(scope="class")
    def evaluations(self, workload):
        s = workload
        device = CreateDevice(0)
        tt = TTForceBackend(device, n_cores=4).compute(s.pos, s.vel, s.mass)
        cpu = CPUForceBackend(8, noisy=False).compute(s.pos, s.vel, s.mass)
        ref = ReferenceBackend().compute(s.pos, s.vel, s.mass)
        return tt, cpu, ref

    def test_both_ports_pass_paper_gates(self, workload, evaluations):
        s = workload
        tt, cpu, _ = evaluations
        assert validate_forces(s.pos, s.vel, s.mass, tt.acc, tt.jerk).passed
        assert validate_forces(s.pos, s.vel, s.mass, cpu.acc, cpu.jerk).passed

    def test_device_and_cpu_agree_with_each_other(self, evaluations):
        """Two independent mixed-precision implementations of the same
        math: they must agree to FP32 levels, not merely to the gate."""
        tt, cpu, ref = evaluations
        scale = np.abs(ref.acc).max()
        assert np.abs(tt.acc - cpu.acc).max() / scale < 1e-4

    def test_neither_port_is_bitwise_identical_to_reference(self, evaluations):
        """Mixed precision really happened (no silent fp64 path)."""
        tt, cpu, ref = evaluations
        assert not np.array_equal(tt.acc, ref.acc)
        assert not np.array_equal(cpu.acc, ref.acc)


class TestOffloadedSimulationPhysics:
    def test_cluster_evolution_on_device_matches_reference(self):
        """Integrate the same cluster with both backends; trajectories stay
        close over several dynamical steps and energy is conserved."""
        dt = 1e-3
        n_cycles = 8

        s_ref = plummer(1024, seed=12)
        s_dev = s_ref.copy()
        e0 = energy_report(s_ref)

        Simulation(s_ref, ReferenceBackend(), dt=dt).run(n_cycles)
        device = CreateDevice(0)
        Simulation(
            s_dev, TTForceBackend(device, n_cores=4), dt=dt
        ).run(n_cycles)

        assert energy_report(s_dev).drift_from(e0) < 1e-4
        # FP32 force noise grows slowly; positions stay close at this depth
        assert np.abs(s_dev.pos - s_ref.pos).max() < 1e-3

    def test_mixed_precision_host_state_stays_float64(self):
        s = plummer(1024, seed=13)
        device = CreateDevice(0)
        sim = Simulation(s, TTForceBackend(device, n_cores=2), dt=1e-3)
        sim.run(2)
        assert s.pos.dtype == np.float64
        assert s.acc.dtype == np.float64


class TestTimelineToTelemetry:
    def test_functional_timeline_feeds_power_sampling(self):
        """A functional (not analytic) run's timeline drives the sampler."""
        from repro.telemetry import (
            HostPowerModel,
            Ipmi,
            JobKind,
            JobTimeline,
            PowerSampler,
            Rapl,
            TTSMI,
        )

        s = plummer(1024, seed=14)
        device = CreateDevice(0)
        host_cost = HostCostModel(seconds_per_particle_cycle=1e-4,
                                  init_seconds=1.0)
        sim = Simulation(
            s, TTForceBackend(device, n_cores=2), dt=1e-3,
            host_cost=host_cost,
        )
        result = sim.run(3)
        timeline = JobTimeline(10.0, result.timeline)
        rng = np.random.default_rng(0)
        sampler = PowerSampler(
            TTSMI(4, rng), HostPowerModel(rng), Rapl(), Ipmi(rng)
        )
        rows = sampler.sample_job(
            0.0, timeline.end_time + 5.0,
            JobKind(True, 1, active_device=1), timeline,
        )
        active = [r.card_w[1] for r in rows
                  if timeline.kernel_invoked_by(r.timestamp)
                  and r.timestamp < timeline.end_time]
        assert active and max(active) > 25.0

    def test_campaign_speedup_shape_above_crossover(self):
        """Shape check: above the crossover size the device wins on both
        time and energy (below it, the fixed init and single-threaded host
        phases make the CPU faster — see the crossover ablation bench)."""
        c = Campaign(seed=15, sleep_s=10.0)
        accel = CampaignSummary.from_results(
            c.run_many(JobSpec.paper_accelerated(n_particles=61_440,
                                                 n_cycles=3), 3)
        )
        ref = CampaignSummary.from_results(
            c.run_many(JobSpec.paper_reference(n_particles=61_440,
                                               n_cycles=3), 3)
        )
        assert ref.time_stats.mean > accel.time_stats.mean
        assert ref.energy_stats.mean > accel.energy_stats.mean


class TestPrecisionAblationPath:
    def test_bf16_backend_fails_acc_gate_where_fp32_passes(self):
        """E6: the paper's FP32 choice is load-bearing — bf16 compute is
        outside the acceptance envelope."""
        s = plummer(1024, seed=16)
        dev32 = CreateDevice(0)
        dev16 = CreateDevice(1)
        r32 = TTForceBackend(dev32, n_cores=2).compute(s.pos, s.vel, s.mass)
        r16 = TTForceBackend(
            dev16, n_cores=2, fmt=DataFormat.BFLOAT16
        ).compute(s.pos, s.vel, s.mass)
        rep32 = validate_forces(s.pos, s.vel, s.mass, r32.acc, r32.jerk)
        rep16 = validate_forces(s.pos, s.vel, s.mass, r16.acc, r16.jerk)
        assert rep32.passed
        assert rep16.max_acc_error > rep32.max_acc_error * 10
        assert not rep16.acc_passed

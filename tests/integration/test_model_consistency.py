"""Consistency between the functional pipeline and the analytic models.

The campaign (E1-E3) runs on the analytic cost models; the accuracy
experiments run the functional kernels.  These tests pin the two against
each other so the campaign's numbers are guaranteed to describe the same
machine the functional pipeline simulates.
"""

import pytest

from repro.core import HostCostModel, Simulation, plummer
from repro.metalium import CreateDevice
from repro.nbody_tt import DeviceTimeModel, TTForceBackend
from repro.wormhole.params import DEFAULT_COSTS


class TestFunctionalVsAnalytic:
    @pytest.mark.parametrize("n,cores", [(1024, 1), (2048, 2), (4096, 4)])
    def test_device_eval_time(self, n, cores):
        s = plummer(n, seed=40)
        device = CreateDevice(0)
        backend = TTForceBackend(device, n_cores=cores)
        ev = backend.compute(s.pos, s.vel, s.mass)
        functional = sum(seg.seconds for seg in ev.segments
                         if seg.tag == "device")
        analytic = DeviceTimeModel(n_cores=cores).eval_seconds(n)
        assert functional == pytest.approx(analytic, rel=0.03)

    def test_full_job_time(self):
        """An end-to-end functional job (init + cycles, with the host cost
        model wired to the same calibrated constant) matches the analytic
        job projection that the campaign uses."""
        n, cycles, cores = 2048, 3, 2
        model = DeviceTimeModel(n_cores=cores)
        s = plummer(n, seed=41)
        device = CreateDevice(0)
        backend = TTForceBackend(device, n_cores=cores)
        host_cost = HostCostModel(
            seconds_per_particle_cycle=DEFAULT_COSTS.host_per_particle_s,
            init_seconds=2.0,
        )
        sim = Simulation(s, backend, dt=1e-3, host_cost=host_cost)
        result = sim.run(cycles)
        functional_total = result.model_seconds
        analytic_total = model.job_seconds(n, cycles)
        assert functional_total == pytest.approx(analytic_total, rel=0.05)

    def test_phase_split_matches(self):
        """Host/device split of the functional timeline mirrors the
        analytic model's split (what the power trace generator consumes)."""
        n, cycles, cores = 2048, 2, 2
        model = DeviceTimeModel(n_cores=cores)
        s = plummer(n, seed=42)
        device = CreateDevice(0)
        backend = TTForceBackend(device, n_cores=cores)
        host_cost = HostCostModel(
            seconds_per_particle_cycle=DEFAULT_COSTS.host_per_particle_s,
            init_seconds=2.0,
        )
        result = Simulation(s, backend, dt=1e-3, host_cost=host_cost).run(cycles)
        by_tag = result.seconds_by_tag()
        assert by_tag["device"] == pytest.approx(
            (cycles + 1) * model.eval_seconds(n), rel=0.03
        )
        assert by_tag["host"] == pytest.approx(
            2.0 + cycles * model.host_cycle_seconds(n), rel=1e-6
        )

    def test_cpu_backend_vs_openmp_model(self):
        """The CPU backend's reported eval time equals the OpenMP model."""
        from repro.cpuref import CPUForceBackend, OpenMPModel

        n = 1536
        s = plummer(n, seed=43)
        backend = CPUForceBackend(4, noisy=False)
        ev = backend.compute(s.pos, s.vel, s.mass)
        assert ev.model_seconds == pytest.approx(
            OpenMPModel(4).force_eval_seconds(n)
        )

"""Opt-in paper-scale soak tests (set REPRO_PAPER_SCALE=1 to run).

These exercise the functional pipeline at sizes close to the paper's
representative simulation.  They are skipped by default because a full
functional force evaluation at large N takes minutes of wall time; the
analytic models cover those scales in the default suite.
"""

import pytest

from repro import paper_scale_enabled

pytestmark = pytest.mark.skipif(
    not paper_scale_enabled(),
    reason="paper-scale soak tests run only with REPRO_PAPER_SCALE=1",
)


def test_functional_validation_at_16k():
    """E4 at N=16384: the accuracy gates hold with the full 64-core
    functional pipeline."""
    from repro.core import plummer, validate_forces
    from repro.metalium import CreateDevice
    from repro.nbody_tt import TTForceBackend

    s = plummer(16_384, seed=99)
    device = CreateDevice(0)
    backend = TTForceBackend(device, n_cores=64)
    ev = backend.compute(s.pos, s.vel, s.mass)
    report = validate_forces(s.pos, s.vel, s.mass, ev.acc, ev.jerk)
    assert report.passed, report.summary()


def test_functional_vs_analytic_at_16k():
    from repro.core import plummer
    from repro.metalium import CreateDevice
    from repro.nbody_tt import DeviceTimeModel, TTForceBackend

    s = plummer(16_384, seed=98)
    device = CreateDevice(0)
    backend = TTForceBackend(device, n_cores=64)
    ev = backend.compute(s.pos, s.vel, s.mass)
    functional = sum(seg.seconds for seg in ev.segments
                     if seg.tag == "device")
    analytic = DeviceTimeModel(n_cores=64).eval_seconds(16_384)
    assert functional == pytest.approx(analytic, rel=0.03)


def test_long_hermite_run_energy():
    """A longer offloaded integration (N=4096, 50 cycles) conserves
    energy at mixed precision."""
    from repro.core import Simulation, energy_report, plummer
    from repro.metalium import CreateDevice
    from repro.nbody_tt import TTForceBackend

    s = plummer(4096, seed=97)
    e0 = energy_report(s)
    device = CreateDevice(0)
    sim = Simulation(s, TTForceBackend(device, n_cores=16), dt=1e-3)
    sim.run(50)
    assert energy_report(s).drift_from(e0) < 1e-4

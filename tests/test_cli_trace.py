"""Tests for the `repro trace` subcommand and the REPRO_TRACE env flow."""

import json

import pytest

from repro.cli import main
from repro.observability import validate_chrome_trace


def load_valid_trace(path):
    payload = json.loads(path.read_text())
    assert validate_chrome_trace(payload) == []
    return payload


class TestTraceCommand:
    def test_writes_trace_metrics_and_flamegraph(self, tmp_path, capsys):
        out = tmp_path / "trace.json"
        rc = main(["trace", "--n", "512", "--cycles", "2", "--cores", "4",
                   "--out", str(out)])
        assert rc == 0

        payload = load_valid_trace(out)
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        # Host phases, a launch with per-core children, and sim structure.
        assert {"simulation.run", "initialise", "cycle", "predict",
                "correct", "EnqueueProgram", "device"} <= names
        cores = [e for e in spans if e["cat"] == "core"]
        assert len(cores) == 12  # 4 cores x (initialise + 2 cycles)

        metrics = json.loads((tmp_path / "trace.json.metrics.json")
                             .read_text())
        assert metrics["device0.programs"]["value"] == 3
        csv_text = (tmp_path / "trace.json.metrics.csv").read_text()
        assert csv_text.startswith("name,kind,value,count,sum")

        text = capsys.readouterr().out
        assert "modelled seconds by category" in text
        assert "simulation.run" in text       # the flamegraph
        assert "(total)" in text

    def test_host_phases_have_nonzero_time(self, tmp_path, capsys):
        """The trace command charges a host cost model, so the paper's
        full phase structure (host init + per-cycle host slices) shows."""
        out = tmp_path / "t.json"
        assert main(["trace", "--n", "256", "--cycles", "1",
                     "--out", str(out)]) == 0
        payload = load_valid_trace(out)
        host = [e for e in payload["traceEvents"]
                if e["ph"] == "X" and e["cat"] == "host"]
        assert sum(e["dur"] for e in host) > 0
        init = next(e for e in payload["traceEvents"]
                    if e.get("name") == "initialise")
        assert init["dur"] >= 2.0e6  # the 2 s init charge, in us

    def test_min_share_prunes_flamegraph(self, tmp_path, capsys):
        out = tmp_path / "t.json"
        assert main(["trace", "--n", "256", "--cycles", "1",
                     "--out", str(out), "--min-share", "0.99"]) == 0
        text = capsys.readouterr().out
        flame = text[text.index("seconds"):]
        assert "predict" not in flame


class TestReproTraceEnv:
    def test_simulate_honours_repro_trace(self, tmp_path, monkeypatch,
                                          capsys):
        out = tmp_path / "sim.json"
        monkeypatch.setenv("REPRO_TRACE", str(out))
        rc = main(["simulate", "--n", "512", "--cycles", "2",
                   "--backend", "device", "--cores", "2"])
        assert rc == 0
        payload = load_valid_trace(out)
        names = {e["name"] for e in payload["traceEvents"]}
        assert "EnqueueProgram" in names
        assert (tmp_path / "sim.json.metrics.json").is_file()
        assert "trace written to" in capsys.readouterr().out

    def test_simulate_untraced_without_env(self, tmp_path, monkeypatch,
                                           capsys):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        monkeypatch.chdir(tmp_path)
        assert main(["simulate", "--n", "256", "--cycles", "1",
                     "--backend", "device", "--cores", "2"]) == 0
        assert not list(tmp_path.glob("*.json"))
        assert "trace written" not in capsys.readouterr().out

    def test_campaign_honours_repro_trace(self, tmp_path, monkeypatch,
                                          capsys):
        out = tmp_path / "campaign.json"
        monkeypatch.setenv("REPRO_TRACE", str(out))
        rc = main(["campaign", "--accel-jobs", "2", "--ref-jobs", "1",
                   "--reset-failure-rate", "0.0"])
        assert rc == 0
        payload = load_valid_trace(out)
        jobs = [e for e in payload["traceEvents"]
                if e["ph"] == "X" and e["name"] == "job"]
        assert len(jobs) == 3
        metrics = json.loads(
            (tmp_path / "campaign.json.metrics.json").read_text()
        )
        assert metrics["campaign.jobs"]["value"] == 3


class TestProfileFallback:
    """`repro simulate --profile` must not crash on the batched engine."""

    def test_batched_engine_profile_exits_zero(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_TT_ENGINE", "batched")
        rc = main(["simulate", "--n", "512", "--cycles", "1",
                   "--backend", "device", "--cores", "2", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Device occupancy" in out

    def test_empty_counters_fall_back_to_aggregate_report(self):
        """A device whose counters were cleared after the last evaluation
        produces the aggregate fallback line, not a crash."""
        from repro.cli import _device_profile_text
        from repro.metalium import CreateDevice, GetCommandQueue
        from repro.nbody_tt import TTForceBackend
        from repro.core import plummer

        device = CreateDevice(0)
        s = plummer(512, seed=2)
        TTForceBackend(device, n_cores=2).compute(s.pos, s.vel, s.mass)
        device.clear_counters()   # no per-block records remain

        text = _device_profile_text(
            device, GetCommandQueue(device), "batched"
        )
        assert "no per-core profiler records" in text
        assert "aggregated by batch" in text
        assert "batched engine: charge-only replay" in text

    def test_per_block_engine_still_shows_core_table(self, monkeypatch,
                                                     capsys):
        monkeypatch.setenv("REPRO_TT_ENGINE", "per-block")
        rc = main(["simulate", "--n", "512", "--cycles", "1",
                   "--backend", "device", "--cores", "2", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "critical path" in out

"""Tests for the campaign markdown report."""

import pytest

from repro.errors import CampaignError
from repro.telemetry import Campaign, JobSpec
from repro.telemetry.report import campaign_markdown, write_campaign_report


@pytest.fixture(scope="module")
def small_campaign():
    c = Campaign(seed=70, sleep_s=5.0, reset_failure_rate=0.3)
    accel = c.run_many(
        JobSpec.paper_accelerated(n_particles=10_240, n_cycles=2), 6
    )
    ref = c.run_many(
        JobSpec.paper_reference(n_particles=10_240, n_cycles=2), 3
    )
    return accel, ref


class TestMarkdown:
    def test_contains_sections(self, small_campaign):
        accel, ref = small_campaign
        text = campaign_markdown(accel, ref)
        assert "# Measurement campaign" in text
        assert "## Summary" in text
        assert "## Accelerated jobs" in text
        assert "## Reference jobs" in text
        assert "## Energy decomposition" in text

    def test_paper_reference_column(self, small_campaign):
        accel, ref = small_campaign
        text = campaign_markdown(accel, ref)
        assert "301.40 +/- 0.24 s" in text
        assert "| speedup | 2.23x |" in text

    def test_failed_jobs_listed(self, small_campaign):
        accel, ref = small_campaign
        failed = sum(1 for r in accel if not r.completed)
        text = campaign_markdown(accel, ref)
        assert text.count("reset failed") == failed

    def test_energy_decomposition_sums(self, small_campaign):
        accel, ref = small_campaign
        sample = next(r for r in accel if r.completed)
        text = campaign_markdown(accel, ref)
        assert f"**{sample.energy.total_kj:.2f}**" in text
        assert text.count("| card ") == 4

    def test_empty_campaign_rejected(self):
        with pytest.raises(CampaignError):
            campaign_markdown([], [])

    def test_write_report(self, small_campaign, tmp_path):
        accel, ref = small_campaign
        path = write_campaign_report(
            tmp_path / "report.md", accel, ref, title="My campaign"
        )
        assert path.exists()
        assert path.read_text().startswith("# My campaign")

    def test_accel_only(self, small_campaign):
        accel, _ = small_campaign
        text = campaign_markdown(accel, [])
        assert "## Accelerated jobs" in text
        assert "## Reference jobs" not in text
        assert "| speedup | 2.23x | - |" in text

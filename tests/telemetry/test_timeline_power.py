"""Tests for job timelines and the power-state resolution."""

import numpy as np
import pytest

from repro.core.simulation import TimelineSegment
from repro.errors import TelemetryError
from repro.telemetry.power_models import HostPowerModel, JobKind, card_state_at
from repro.telemetry.timeline import JobTimeline
from repro.wormhole.power import CardState


def segs(*pairs):
    return [TimelineSegment(tag, dur) for tag, dur in pairs]


class TestJobTimeline:
    def test_phase_lookup(self):
        tl = JobTimeline(100.0, segs(("host", 5.0), ("device", 10.0),
                                     ("host", 5.0)))
        assert tl.duration == 20.0
        assert tl.phase_at(99.9) is None
        assert tl.phase_at(100.0) == "host"
        assert tl.phase_at(104.999) == "host"
        assert tl.phase_at(105.0) == "device"
        assert tl.phase_at(114.999) == "device"
        assert tl.phase_at(115.0) == "host"
        assert tl.phase_at(120.0) is None

    def test_zero_length_segments_skipped(self):
        tl = JobTimeline(0.0, segs(("host", 0.0), ("device", 1.0)))
        assert tl.phase_at(0.0) == "device"

    def test_kernel_invoked_by(self):
        tl = JobTimeline(0.0, segs(("host", 4.0), ("device", 2.0),
                                   ("host", 4.0)))
        assert not tl.kernel_invoked_by(3.9)
        assert tl.kernel_invoked_by(4.0)
        assert tl.kernel_invoked_by(9.0)  # stays true after

    def test_no_device_phase(self):
        tl = JobTimeline(0.0, segs(("host", 10.0)))
        assert not tl.kernel_invoked_by(5.0)

    def test_seconds_by_tag(self):
        tl = JobTimeline(0.0, segs(("host", 1.0), ("device", 2.0),
                                   ("host", 3.0)))
        assert tl.seconds_by_tag() == {"host": 4.0, "device": 2.0}

    def test_validation(self):
        with pytest.raises(TelemetryError):
            JobTimeline(-1.0, [])
        with pytest.raises(TelemetryError):
            JobTimeline(0.0, segs(("host", -1.0)))


class TestCardStateResolution:
    def setup_method(self):
        self.tl = JobTimeline(
            200.0,
            segs(("host", 10.0), ("device", 20.0), ("host", 10.0),
                 ("device", 20.0), ("host", 10.0)),
        )
        self.accel = JobKind(accelerated=True, n_threads=1, active_device=3)
        self.ref = JobKind(accelerated=False, n_threads=32)

    def test_reference_job_cards_idle(self):
        for t in (100.0, 220.0, 400.0):
            for card in range(4):
                assert card_state_at(card, t, self.ref, self.tl) is CardState.IDLE

    def test_idle_before_kernel(self):
        # during the pre-sim sleep and the host init phase
        for t in (150.0, 205.0):
            assert card_state_at(3, t, self.accel, self.tl) is CardState.IDLE
            assert card_state_at(0, t, self.accel, self.tl) is CardState.IDLE

    def test_active_card_tracks_phases(self):
        assert card_state_at(3, 215.0, self.accel, self.tl) is CardState.ACTIVE_COMPUTE
        assert card_state_at(3, 235.0, self.accel, self.tl) is CardState.ACTIVE_HOST_PHASE
        assert card_state_at(3, 245.0, self.accel, self.tl) is CardState.ACTIVE_COMPUTE

    def test_unused_cards_elevated_after_kernel(self):
        for card in (0, 1, 2):
            assert (
                card_state_at(card, 230.0, self.accel, self.tl)
                is CardState.POWERED_UNUSED
            )

    def test_post_run_state(self):
        for card in range(4):
            assert card_state_at(card, 300.0, self.accel, self.tl) is CardState.POST_RUN


class TestMultiCardStates:
    def test_active_set_resolution(self):
        assert JobKind(False, 32).active_set() == ()
        assert JobKind(True, 1, active_device=3).active_set() == (3,)
        assert JobKind(
            True, 1, active_device=0, active_devices=(0, 1)
        ).active_set() == (0, 1)

    def test_two_active_cards(self):
        tl = JobTimeline(0.0, segs(("device", 50.0)))
        kind = JobKind(True, 1, active_device=0, active_devices=(0, 1))
        assert card_state_at(0, 25.0, kind, tl) is CardState.ACTIVE_COMPUTE
        assert card_state_at(1, 25.0, kind, tl) is CardState.ACTIVE_COMPUTE
        assert card_state_at(2, 25.0, kind, tl) is CardState.POWERED_UNUSED
        assert card_state_at(3, 25.0, kind, tl) is CardState.POWERED_UNUSED

    def test_jobspec_multi_device_kind(self):
        from repro.telemetry.campaign import JobSpec

        # multi-card jobs start from the requested slot, wrapping mod n_cards
        spec = JobSpec.paper_accelerated(n_devices=3)
        assert spec.kind(n_cards=4).active_set() == (3, 0, 1)
        assert spec.kind().active_set() == (3, 4, 5)  # no host: no wrap
        first = JobSpec.paper_accelerated(n_devices=3, active_device=0)
        assert first.kind(n_cards=4).active_set() == (0, 1, 2)
        single = JobSpec.paper_accelerated()
        assert single.kind().active_set() == (3,)  # the Fig. 4 device
        assert single.kind(n_cards=2).active_set() == (1,)  # wraps in range


class TestHostPowerModel:
    def test_reference_power_scales_with_threads(self):
        model = HostPowerModel(np.random.default_rng(0))
        ref32 = model.mean_power(JobKind(False, 32), "host")
        ref1 = model.mean_power(JobKind(False, 1), "host")
        assert ref32 > ref1
        assert ref32 == pytest.approx(88.0 + 1.92 * 32)

    def test_smt_threads_cost_fraction_of_core_power(self):
        model = HostPowerModel(np.random.default_rng(0))
        p64 = model.mean_power(JobKind(False, 64), "host")
        p32 = model.mean_power(JobKind(False, 32), "host")
        # 32 SMT siblings at 25% of a core's increment
        assert p64 - p32 == pytest.approx(1.92 * 0.25 * 32)

    def test_offload_extra_power(self):
        model = HostPowerModel(np.random.default_rng(0))
        accel = model.mean_power(JobKind(True, 1, 3), "device")
        assert accel == pytest.approx(88.0 + 1.92 + 65.6)

    def test_sleep_phase_is_idle(self):
        model = HostPowerModel(np.random.default_rng(0))
        assert model.mean_power(JobKind(True, 1, 3), None) == pytest.approx(88.0)

    def test_noise_clipped(self):
        model = HostPowerModel(np.random.default_rng(1))
        kind = JobKind(False, 32)
        mean = model.mean_power(kind, "host")
        samples = [model.sample_power(kind, "host") for _ in range(500)]
        assert all(abs(s - mean) <= 15.0 + 1e-9 for s in samples)
        assert np.std(samples) > 1.0

"""Tests for campaign orchestration: the paper's measurement workflow."""

import numpy as np
import pytest

from repro.errors import CampaignError
from repro.telemetry.campaign import (
    Campaign,
    CampaignSummary,
    JobResult,
    JobSpec,
)
from repro.telemetry.energy import read_power_csv


# Scaled-down specs keep these tests fast; paper-scale assertions live in
# the benchmark suite.
ACCEL = JobSpec.paper_accelerated(n_particles=10_240, n_cycles=3)
REF = JobSpec.paper_reference(n_particles=10_240, n_cycles=3)


class TestJobWorkflow:
    def test_accelerated_job_completes(self):
        c = Campaign(seed=0, sleep_s=20.0)
        result = c.run_job(ACCEL)
        assert result.completed
        assert result.time_to_solution > 0
        assert result.energy.total_kj > 0
        assert result.sim_start < result.sim_end

    def test_sleep_phases_surround_simulation(self):
        c = Campaign(seed=1, sleep_s=30.0)
        result = c.run_job(ACCEL)
        rows = result.rows
        # samples exist before sim_start and after sim_end
        assert any(r.timestamp < result.sim_start for r in rows)
        assert any(r.timestamp >= result.sim_end for r in rows)
        # time-to-solution excludes the sleeps
        total_span = rows[-1].timestamp - rows[0].timestamp
        assert result.time_to_solution < total_span - 50.0

    def test_time_to_solution_equals_timeline_duration(self):
        c = Campaign(seed=2, sleep_s=10.0)
        result = c.run_job(ACCEL)
        assert result.time_to_solution == pytest.approx(
            result.sim_end - result.sim_start
        )

    def test_cards_idle_during_sleep_active_during_sim(self):
        c = Campaign(seed=3, sleep_s=60.0)
        result = c.run_job(ACCEL)
        pre = [r for r in result.rows if r.timestamp < result.sim_start - 1]
        during_device = [
            r for r in result.rows
            if result.sim_start + 3 <= r.timestamp < result.sim_end
        ]
        active = ACCEL.active_device
        assert np.mean([r.card_w[active] for r in pre]) < 12.0
        assert max(r.card_w[active] for r in during_device) > 25.0

    def test_reference_job_cards_stay_idle(self):
        c = Campaign(seed=4, sleep_s=10.0)
        result = c.run_job(REF)
        assert all(w < 13.0 for r in result.rows for w in r.card_w)

    def test_csv_persistence(self, tmp_path):
        c = Campaign(seed=5, sleep_s=10.0, csv_dir=tmp_path)
        result = c.run_job(ACCEL)
        assert result.csv_path is not None and result.csv_path.exists()
        rows = read_power_csv(result.csv_path)
        assert len(rows) == len(result.rows)

    def test_no_csv_by_default(self):
        c = Campaign(seed=6, sleep_s=5.0)
        assert c.run_job(ACCEL).csv_path is None


class TestResetFaults:
    def test_failed_resets_recorded_not_raised(self):
        c = Campaign(seed=7, sleep_s=5.0, reset_failure_rate=24 / 50)
        results = c.run_many(ACCEL, 50)
        failed = [r for r in results if not r.completed]
        completed = [r for r in results if r.completed]
        assert 15 <= len(failed) <= 35  # ~24 expected
        assert all(r.failure is not None for r in failed)
        assert all(r.time_to_solution is None for r in failed)
        assert all(r.energy is not None for r in completed)

    def test_reference_jobs_never_hit_reset_faults(self):
        c = Campaign(seed=8, sleep_s=5.0, reset_failure_rate=1.0)
        results = c.run_many(REF, 5)
        assert all(r.completed for r in results)


class TestSummary:
    def test_from_results(self):
        c = Campaign(seed=9, sleep_s=5.0)
        results = c.run_many(ACCEL, 4)
        summary = CampaignSummary.from_results(results)
        assert summary.submitted == 4 and summary.completed == 4
        assert summary.time_stats.n == 4
        assert summary.energy_stats.mean > 0
        assert summary.peak_power_stats.max > summary.energy_stats.mean / 1000

    def test_all_failed_summary(self):
        results = [JobResult(spec=ACCEL, completed=False, failure="x")]
        summary = CampaignSummary.from_results(results)
        assert summary.completed == 0
        assert summary.time_stats is None

    def test_run_many_validation(self):
        with pytest.raises(CampaignError):
            Campaign(seed=0).run_many(ACCEL, 0)
        with pytest.raises(CampaignError):
            Campaign(sleep_s=-1.0)


class TestTinyWindows:
    def test_sim_window_shorter_than_sampling_interval(self):
        """Regression: max() over an empty in-window sample set crashed.

        With tiny N the simulation window is shorter than the sampling
        interval and can fall between two grid points; the job must still
        complete with a nearest-sample power/energy estimate.
        """
        c = Campaign(seed=20, sleep_s=0.3, sample_interval_s=30.0)
        result = c.run_job(
            JobSpec.paper_accelerated(n_particles=64, n_cycles=1)
        )
        assert result.completed
        # the premise: no sample landed inside the simulation window
        in_sim = [r for r in result.rows
                  if result.sim_start <= r.timestamp < result.sim_end]
        assert in_sim == []
        assert result.peak_total_w is not None and result.peak_total_w > 0
        assert result.energy is not None
        # nearest-sample estimate: idle-ish power over a sub-second window
        window = result.sim_end - result.sim_start
        assert result.energy.total_kj == pytest.approx(
            result.peak_total_w * window / 1e3
        )

    def test_tiny_jobs_summarise(self):
        c = Campaign(seed=21, sleep_s=0.3, sample_interval_s=30.0)
        results = c.run_many(
            JobSpec.paper_accelerated(n_particles=64, n_cycles=1), 3
        )
        summary = CampaignSummary.from_results(results)
        assert summary.completed == 3
        assert summary.energy_stats.mean >= 0


class TestFailedJobSampling:
    def test_failed_reset_jobs_have_power_rows(self):
        """The paper samples power for the whole job, started or not."""
        c = Campaign(seed=22, sleep_s=5.0, reset_failure_rate=1.0)
        result = c.run_job(ACCEL)
        assert not result.completed
        assert result.rows, "failed jobs must still carry power samples"
        # the reset-attempt window at 1 Hz: reset_duration_s worth of rows
        assert len(result.rows) == int(c.device_costs.reset_duration_s)
        # every card sits in the idle band (paper: 10-11 W) — the job
        # never started, so nothing ever left idle draw
        card_samples = [w for r in result.rows for w in r.card_w]
        assert all(9.5 <= w <= 12.0 for w in card_samples)
        assert 10.0 <= np.mean(card_samples) <= 11.0
        host_idle = [r.host_w for r in result.rows]
        assert np.mean(host_idle) < 100.0  # host idle, not under load

    def test_failed_job_csv_written(self, tmp_path):
        c = Campaign(seed=23, sleep_s=5.0, reset_failure_rate=1.0,
                     csv_dir=tmp_path)
        result = c.run_job(ACCEL)
        assert not result.completed
        assert result.csv_path is not None and result.csv_path.exists()
        rows = read_power_csv(result.csv_path)
        assert len(rows) == len(result.rows)


class TestMultiDevicePlacement:
    def test_requested_slot_honoured(self):
        """Regression: multi-card jobs ignored active_device."""
        c = Campaign(seed=24, sleep_s=20.0)
        spec = JobSpec.paper_accelerated(n_devices=2, active_device=3)
        result = c.run_job(spec)
        per_card_max = [
            max(r.card_w[i] for r in result.rows
                if result.sim_start + 3 <= r.timestamp < result.sim_end)
            for i in range(4)
        ]
        # wraps mod n_cards: slots 3 and 0 are active, 1 and 2 are not
        assert per_card_max[3] > 25.0 and per_card_max[0] > 25.0
        assert per_card_max[1] < 20.0 and per_card_max[2] < 20.0


class TestVariability:
    def test_cpu_runs_noisier_than_device_runs(self):
        """Paper: the CPU histogram has a visibly larger std dev."""
        c = Campaign(seed=10, sleep_s=5.0)
        accel = CampaignSummary.from_results(c.run_many(ACCEL, 12))
        ref = CampaignSummary.from_results(c.run_many(REF, 12))
        rel_accel = accel.time_stats.std / accel.time_stats.mean
        rel_ref = ref.time_stats.std / ref.time_stats.mean
        assert rel_ref > 3.0 * rel_accel

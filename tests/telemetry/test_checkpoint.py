"""Tests for campaign checkpointing and resume.

The acceptance bar: a campaign interrupted after job k and resumed from
its checkpoint yields a summary identical to the uninterrupted run.
"""

import json

import pytest

from repro.errors import CheckpointError
from repro.telemetry import Campaign, CampaignSummary, JobSpec, RetryPolicy
from repro.telemetry.checkpoint import CampaignCheckpoint
from repro.telemetry.report import campaign_markdown

ACCEL = JobSpec.paper_accelerated(n_particles=10_240, n_cycles=2)
REF = JobSpec.paper_reference(n_particles=10_240, n_cycles=2)

CONFIG = dict(seed=21, sleep_s=5.0, reset_failure_rate=0.48,
              retry=RetryPolicy(max_attempts=4, base_backoff_s=1.0),
              failover="cpu")
SCHEDULE = [ACCEL] * 6 + [REF] * 3


def run_straight_through():
    return Campaign(**CONFIG).run_schedule(SCHEDULE)


class TestCheckpointFile:
    def test_records_written_per_job(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE)
        records = [json.loads(line) for line in
                   path.read_text().splitlines()]
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "campaign"
        assert kinds[1] == "schedule"
        assert kinds.count("job") == len(SCHEDULE)
        assert records[0]["config"]["seed"] == 21
        assert len(records[1]["specs"]) == len(SCHEDULE)
        # each job record snapshots the post-job campaign state
        for job in records[2:]:
            assert {"clock", "rng", "fault", "job_counter"} <= set(
                job["state"]
            )

    def test_refuses_to_clobber_existing(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE[:2])
        with pytest.raises(CheckpointError):
            Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(CheckpointError):
            Campaign.resume(tmp_path / "nope.jsonl")

    def test_corrupt_record_rejected(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE[:3])
        lines = path.read_text().splitlines()
        lines[1] = "{not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError):
            Campaign.resume(path)

    def test_torn_final_write_tolerated(self, tmp_path):
        """A crash mid-append loses only the job in flight."""
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE)
        text = path.read_text()
        torn = text[: text.rfind("clock")]  # cut inside the last record
        path.write_text(torn)
        campaign = Campaign.resume(path)
        assert len(campaign.resumed_results) == len(SCHEDULE) - 1
        assert len(campaign.remaining_schedule) == 1

    def test_header_without_jobs_resumes_from_scratch(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        ckpt = CampaignCheckpoint(path)
        ckpt.write_header(Campaign(**CONFIG)._config_dict())
        ckpt.append_schedule(SCHEDULE)
        campaign = Campaign.resume(path)
        assert campaign.resumed_results == []
        assert campaign.remaining_schedule == SCHEDULE


class TestDurability:
    """Crash-safety of the append path: fsync per record, torn-tail repair."""

    def test_append_fsyncs_every_record(self, tmp_path, monkeypatch):
        """Every record write reaches the disk, not just the page cache."""
        import repro.telemetry.checkpoint as ckpt_mod

        synced = []
        real_fsync = ckpt_mod.os.fsync
        monkeypatch.setattr(
            ckpt_mod.os, "fsync",
            lambda fd: (synced.append(fd), real_fsync(fd)) and None,
        )
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE[:3])
        # header + schedule + one record per job, each individually synced
        assert len(synced) >= 2 + 3

    def test_load_reports_torn_tail(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE[:3])
        text = path.read_text()
        path.write_text(text[: text.rfind("clock")])
        loaded = CampaignCheckpoint.load(path)
        assert loaded.torn_tail is not None
        assert loaded.torn_tail.startswith("{")
        assert len(loaded.results) == 2
        clean = CampaignCheckpoint.load(
            self._clean_copy(tmp_path, SCHEDULE[:3])
        )
        assert clean.torn_tail is None

    @staticmethod
    def _clean_copy(tmp_path, schedule):
        path = tmp_path / "clean.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(schedule)
        return path

    def test_resume_after_torn_tail_appends_cleanly(self, tmp_path):
        """Appending after a torn tail must not corrupt a middle record.

        Without the repair step, the first record appended on resume is
        glued onto the torn partial line, so the *next* load fails with a
        corrupt-record error in the middle of the file — a recoverable
        crash turned into an unreadable checkpoint.
        """
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE)
        text = path.read_text()
        path.write_text(text[: text.rfind("clock")])  # tear the last record

        campaign = Campaign.resume(path)
        assert campaign.repaired_tail is not None
        combined = campaign.run_remaining()
        assert len(combined) == len(SCHEDULE)

        # the file must be fully parseable again, with every job present
        reloaded = CampaignCheckpoint.load(path)
        assert reloaded.torn_tail is None
        assert len(reloaded.results) == len(SCHEDULE)
        # ... and the rerun of the lost job is bit-identical to the
        # uninterrupted campaign
        assert (CampaignSummary.from_results(combined)
                == CampaignSummary.from_results(run_straight_through()))

    def test_repair_restores_missing_newline(self, tmp_path):
        """A complete last record that lost only its ``\\n`` is kept."""
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE[:2])
        raw = path.read_bytes()
        path.write_bytes(raw.rstrip(b"\n"))
        assert CampaignCheckpoint(path).repair() is None
        assert path.read_bytes().endswith(b"\n")
        assert len(CampaignCheckpoint.load(path).results) == 2

    def test_repair_drops_torn_tail(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE[:2])
        text = path.read_text()
        path.write_text(text[: text.rfind("clock")])
        dropped = CampaignCheckpoint(path).repair()
        assert dropped is not None and "clock" not in dropped
        assert CampaignCheckpoint.load(path).torn_tail is None

    def test_repair_noop_on_clean_file(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(SCHEDULE[:2])
        before = path.read_bytes()
        assert CampaignCheckpoint(path).repair() is None
        assert path.read_bytes() == before

    def test_repair_noop_on_missing_or_empty(self, tmp_path):
        assert CampaignCheckpoint(tmp_path / "nope.jsonl").repair() is None
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert CampaignCheckpoint(empty).repair() is None


class TestResume:
    @pytest.mark.parametrize("k", [1, 4, 8])
    def test_interrupted_run_matches_straight_run(self, tmp_path, k):
        """Acceptance: kill after job k, resume, get the identical summary."""
        straight = run_straight_through()

        path = tmp_path / "campaign.jsonl"
        partial = Campaign(**CONFIG, checkpoint=path)
        ran = partial.run_schedule(SCHEDULE, stop_after=k)
        assert len(ran) == k

        resumed = Campaign.resume(path)
        assert len(resumed.resumed_results) == k
        assert resumed.remaining_schedule == SCHEDULE[k:]
        combined = resumed.run_remaining()
        assert len(combined) == len(SCHEDULE)

        s1 = CampaignSummary.from_results(straight)
        s2 = CampaignSummary.from_results(combined)
        assert s1 == s2
        # ... and the rendered reports are byte-identical
        split = len([s for s in SCHEDULE if s.accelerated])
        assert campaign_markdown(
            straight[:split], straight[split:]
        ) == campaign_markdown(combined[:split], combined[split:])

    def test_fault_counters_restored(self, tmp_path):
        straight = Campaign(**CONFIG)
        straight.run_schedule(SCHEDULE)

        path = tmp_path / "campaign.jsonl"
        partial = Campaign(**CONFIG, checkpoint=path)
        partial.run_schedule(SCHEDULE, stop_after=3)
        resumed = Campaign.resume(path)
        assert resumed.fault_model.attempts == partial.fault_model.attempts
        resumed.run_remaining()
        assert resumed.fault_model.attempts == straight.fault_model.attempts
        assert resumed.fault_model.failures == straight.fault_model.failures

    def test_resume_of_complete_campaign_is_a_noop(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        c = Campaign(**CONFIG, checkpoint=path)
        results = c.run_schedule(SCHEDULE)
        resumed = Campaign.resume(path)
        assert resumed.remaining_schedule == []
        combined = resumed.run_remaining()
        assert len(combined) == len(results)
        assert (CampaignSummary.from_results(combined)
                == CampaignSummary.from_results(results))

    def test_restored_results_round_trip_fields(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        csv_dir = tmp_path / "csv"
        c = Campaign(**CONFIG, checkpoint=path, csv_dir=csv_dir)
        results = c.run_schedule(SCHEDULE[:3])
        restored = Campaign.resume(path).resumed_results
        for orig, back in zip(results, restored):
            assert back.spec == orig.spec
            assert back.completed == orig.completed
            assert back.attempts == orig.attempts
            assert back.failure_kind == orig.failure_kind
            assert back.failover == orig.failover
            assert back.time_to_solution == orig.time_to_solution
            assert back.peak_total_w == orig.peak_total_w
            if orig.energy is not None:
                assert back.energy.cards_kj == orig.energy.cards_kj
                assert back.energy.host_kj == orig.energy.host_kj
            assert back.csv_path == orig.csv_path
            assert back.csv_path.exists()
            # rows live in the csv, not the checkpoint
            assert back.rows == []

    def test_staged_execution_in_batches(self, tmp_path):
        """stop_after + repeated resume = staged campaign execution."""
        path = tmp_path / "campaign.jsonl"
        Campaign(**CONFIG, checkpoint=path).run_schedule(
            SCHEDULE, stop_after=2
        )
        Campaign.resume(path).run_remaining(stop_after=3)
        combined = Campaign.resume(path).run_remaining()
        straight = run_straight_through()
        assert (CampaignSummary.from_results(combined)
                == CampaignSummary.from_results(straight))

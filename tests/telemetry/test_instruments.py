"""Tests for the simulated instruments: tt-smi, RAPL, IPMI, sampler."""

import numpy as np
import pytest

from repro.core.simulation import TimelineSegment
from repro.errors import SamplerError
from repro.telemetry.ipmi import CHASSIS_BASELINE_W, Ipmi
from repro.telemetry.power_models import HostPowerModel, JobKind
from repro.telemetry.rapl import (
    ENERGY_UNIT_J,
    REGISTER_WRAP,
    Rapl,
    unwrap_register_series,
)
from repro.telemetry.sampler import PowerSampler
from repro.telemetry.timeline import JobTimeline
from repro.telemetry.tt_smi import TTSMI


class TestTTSMI:
    def test_four_cards_by_default(self):
        smi = TTSMI(rng=np.random.default_rng(0))
        assert len(smi.read_idle()) == 4

    def test_idle_read_in_band(self):
        smi = TTSMI(rng=np.random.default_rng(1))
        for w in smi.read_idle():
            assert 9.5 <= w <= 12.0

    def test_read_resolves_states(self):
        smi = TTSMI(rng=np.random.default_rng(2))
        tl = JobTimeline(0.0, [TimelineSegment("device", 100.0)])
        kind = JobKind(True, 1, active_device=2)
        watts = smi.read(50.0, kind, tl)
        assert watts[2] > 25.0           # active, computing
        assert all(w < 20.0 for i, w in enumerate(watts) if i != 2)
        assert all(w > 14.0 for i, w in enumerate(watts) if i != 2)

    def test_active_device_range_checked(self):
        smi = TTSMI(2, rng=np.random.default_rng(3))
        tl = JobTimeline(0.0, [TimelineSegment("device", 1.0)])
        with pytest.raises(SamplerError):
            smi.read(0.5, JobKind(True, 1, active_device=5), tl)

    def test_validation(self):
        with pytest.raises(SamplerError):
            TTSMI(0)


class TestRapl:
    def test_accumulation_splits_packages(self):
        rapl = Rapl()
        rapl.accumulate(150.0, 10.0)  # 1500 J
        assert rapl.read_perf("package-0") == pytest.approx(750.0)
        assert rapl.read_perf("package-1") == pytest.approx(750.0)
        assert rapl.packages_perf_joules() == pytest.approx(1500.0)

    def test_core_fraction(self):
        rapl = Rapl()
        rapl.accumulate(100.0, 1.0)
        assert rapl.read_perf("core-0") == pytest.approx(0.70 * 50.0)

    def test_register_units(self):
        rapl = Rapl()
        rapl.accumulate(2.0, 1.0)  # 1 J per package
        assert rapl.read_register("package-0") == int(1.0 / ENERGY_UNIT_J)

    def test_register_wraps_but_perf_does_not(self):
        """The overflow the paper avoided by using perf."""
        rapl = Rapl()
        wrap_joules = REGISTER_WRAP * ENERGY_UNIT_J  # 65536 J per domain
        # run one package past the wrap: 150 W for 1000 s = 150 kJ total,
        # 75 kJ per package > 65.5 kJ wrap
        rapl.accumulate(150.0, 1000.0)
        perf = rapl.read_perf("package-0")
        reg = rapl.read_register("package-0")
        assert perf == pytest.approx(75_000.0)
        assert reg == int(perf / ENERGY_UNIT_J) % REGISTER_WRAP
        assert reg * ENERGY_UNIT_J < wrap_joules < perf

    def test_unwrap_register_series(self):
        """Sampled register reads, overflow-corrected, match perf."""
        rapl = Rapl()
        readings = [rapl.read_register("package-0")]
        for _ in range(900):
            rapl.accumulate(160.0, 1.0)  # 80 J/s per package; wraps ~820 s
            readings.append(rapl.read_register("package-0"))
        unwrapped = unwrap_register_series(readings)
        assert unwrapped == pytest.approx(
            rapl.read_perf("package-0"), abs=ENERGY_UNIT_J * 2
        )
        # the raw final reading alone is useless (wrapped)
        assert readings[-1] * ENERGY_UNIT_J < rapl.read_perf("package-0")

    def test_validation(self):
        rapl = Rapl()
        with pytest.raises(SamplerError):
            rapl.accumulate(-1.0, 1.0)
        with pytest.raises(SamplerError):
            rapl.accumulate(1.0, -1.0)
        with pytest.raises(SamplerError):
            rapl.read_perf("package-7")
        with pytest.raises(SamplerError):
            unwrap_register_series([])


class TestIpmi:
    def test_reading_includes_baseline(self):
        ipmi = Ipmi(np.random.default_rng(0), noise_w=0.0)
        assert ipmi.dcmi_power_reading(150.0, 80.0) == pytest.approx(
            CHASSIS_BASELINE_W + 230.0
        )

    def test_baseline_dominates_idle(self):
        """Why the paper excluded IPMI: the 4U chassis baseline dwarfs the
        component draws under study."""
        ipmi = Ipmi(np.random.default_rng(1), noise_w=0.0)
        idle_reading = ipmi.dcmi_power_reading(88.0, 42.0)
        assert CHASSIS_BASELINE_W / idle_reading > 0.7

    def test_validation(self):
        ipmi = Ipmi(np.random.default_rng(2))
        with pytest.raises(SamplerError):
            ipmi.dcmi_power_reading(-1.0, 0.0)
        with pytest.raises(SamplerError):
            Ipmi(baseline_w=-5.0)


class TestPowerSampler:
    def make_sampler(self, seed=0):
        rng = np.random.default_rng(seed)
        return PowerSampler(
            TTSMI(4, rng), HostPowerModel(rng), Rapl(), Ipmi(rng)
        )

    def test_one_hz_cadence(self):
        sampler = self.make_sampler()
        tl = JobTimeline(10.0, [TimelineSegment("host", 30.0)])
        rows = sampler.sample_job(0.0, 50.0, JobKind(False, 32), tl)
        assert len(rows) == 50
        times = [r.timestamp for r in rows]
        assert times == pytest.approx(list(np.arange(0.0, 50.0, 1.0)))

    def test_rapl_accumulates_during_sampling(self):
        sampler = self.make_sampler(1)
        tl = JobTimeline(0.0, [TimelineSegment("host", 100.0)])
        rows = sampler.sample_job(0.0, 100.0, JobKind(False, 32), tl)
        host_joules = sum(r.host_w for r in rows)  # 1 Hz rectangle rule
        assert sampler.rapl.packages_perf_joules() == pytest.approx(host_joules)

    def test_timestamps_stay_on_grid_over_hours(self):
        """Regression: repeated `t += interval` accumulated float error.

        Over a multi-hour window at a non-dyadic interval the timestamps
        must still land exactly on the job_start + i * interval grid —
        the error previously skewed csv timestamps and the discrete
        energy integral.
        """
        sampler = self.make_sampler(4)
        sampler.interval_s = 0.1
        job_start, job_end = 3.0, 3.0 + 4 * 3600.0  # a four-hour job
        tl = JobTimeline(job_start, [TimelineSegment("host", 4 * 3600.0)])
        rows = sampler.sample_job(job_start, job_end, JobKind(False, 32), tl)
        assert len(rows) == 144_000
        last = rows[-1].timestamp
        expected = job_start + (len(rows) - 1) * sampler.interval_s
        assert abs(last - expected) < 1e-9
        # and the worst-case drift across the whole series stays on-grid
        worst = max(
            abs(rows[i].timestamp - (job_start + i * sampler.interval_s))
            for i in range(0, len(rows), 1000)
        )
        assert worst < 1e-9

    def test_window_validation(self):
        sampler = self.make_sampler(2)
        tl = JobTimeline(0.0, [TimelineSegment("host", 1.0)])
        with pytest.raises(SamplerError):
            sampler.sample_job(5.0, 5.0, JobKind(False, 1), tl)

    def test_interval_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(SamplerError):
            PowerSampler(TTSMI(1, rng), HostPowerModel(rng), Rapl(),
                         Ipmi(rng), interval_s=0.0)

"""Tests for the retry policy, failure taxonomy, and campaign resilience."""

import numpy as np
import pytest

from repro.errors import (
    AllocationError,
    CampaignError,
    CheckpointError,
    DeviceResetError,
    failure_kind,
    is_transient,
)
from repro.telemetry import Campaign, CampaignSummary, JobSpec
from repro.telemetry.retry import NO_RETRY, RetryPolicy

ACCEL = JobSpec.paper_accelerated(n_particles=10_240, n_cycles=3)
REF = JobSpec.paper_reference(n_particles=10_240, n_cycles=3)


class TestFailureTaxonomy:
    def test_reset_errors_are_transient(self):
        assert is_transient(DeviceResetError("x"))

    def test_usage_errors_are_not(self):
        assert not is_transient(CampaignError("x"))
        assert not is_transient(AllocationError("x"))
        assert not is_transient(ValueError("x"))

    def test_kinds_most_specific_first(self):
        assert failure_kind(DeviceResetError("x")) == "device-reset"
        assert failure_kind(AllocationError("x")) == "allocation"
        assert failure_kind(CheckpointError("x")) == "checkpoint"
        assert failure_kind(CampaignError("x")) == "campaign"

    def test_unknown_exception_kind(self):
        assert failure_kind(RuntimeError("x")) == "unexpected"


class TestRetryPolicy:
    def test_defaults_validate(self):
        p = RetryPolicy(max_attempts=4)
        assert p.retryable(DeviceResetError("x"))
        assert not p.retryable(CampaignError("x"))

    def test_validation(self):
        with pytest.raises(CampaignError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(CampaignError):
            RetryPolicy(base_backoff_s=-1.0)
        with pytest.raises(CampaignError):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(CampaignError):
            RetryPolicy(jitter_fraction=1.0)

    def test_exponential_growth_and_cap(self):
        p = RetryPolicy(max_attempts=8, base_backoff_s=2.0,
                        backoff_factor=2.0, max_backoff_s=10.0,
                        jitter_fraction=0.0)
        assert p.backoff_s(1) == 2.0
        assert p.backoff_s(2) == 4.0
        assert p.backoff_s(3) == 8.0
        assert p.backoff_s(4) == 10.0  # capped
        assert p.backoff_s(7) == 10.0

    def test_jitter_bounded_and_deterministic(self):
        p = RetryPolicy(max_attempts=4, base_backoff_s=10.0,
                        jitter_fraction=0.25)
        delays = [p.backoff_s(1, np.random.default_rng(7))
                  for _ in range(5)]
        assert all(d == delays[0] for d in delays)  # same rng state, same d
        rng = np.random.default_rng(8)
        for _ in range(50):
            assert 7.5 <= p.backoff_s(1, rng) <= 12.5

    def test_zero_jitter_does_not_consume_rng(self):
        p = RetryPolicy(max_attempts=4, base_backoff_s=1.0,
                        jitter_fraction=0.0)
        rng = np.random.default_rng(9)
        before = rng.bit_generator.state
        p.backoff_s(1, rng)
        assert rng.bit_generator.state == before

    def test_failed_attempts_validated(self):
        with pytest.raises(CampaignError):
            NO_RETRY.backoff_s(0)


class TestCampaignRetries:
    def test_50_of_50_with_retry(self):
        """Acceptance: retries turn the paper's 26-of-50 into 50-of-50."""
        c = Campaign(seed=11, sleep_s=5.0, reset_failure_rate=0.48,
                     retry=RetryPolicy(max_attempts=4, base_backoff_s=1.0))
        results = c.run_many(ACCEL, 50)
        assert all(r.completed for r in results)
        # per-job attempt counts sum to the fault model's total attempts
        assert sum(r.attempts for r in results) == c.fault_model.attempts
        assert any(r.attempts > 1 for r in results)
        assert all(1 <= r.attempts <= 4 for r in results)

    def test_attempts_accounted_without_retry(self):
        c = Campaign(seed=7, sleep_s=5.0, reset_failure_rate=24 / 50)
        results = c.run_many(ACCEL, 20)
        assert sum(r.attempts for r in results) == c.fault_model.attempts
        assert all(r.attempts == 1 for r in results)
        failed = [r for r in results if not r.completed]
        assert failed and all(
            r.failure_kind == "device-reset" for r in failed
        )

    def test_reference_jobs_have_zero_attempts(self):
        c = Campaign(seed=12, sleep_s=5.0)
        result = c.run_job(REF)
        assert result.attempts == 0

    def test_backoff_advances_virtual_clock(self):
        """Retried jobs pay reset + backoff time on the virtual clock."""
        base = Campaign(seed=0, sleep_s=5.0)
        t_clean = base.run_job(ACCEL).rows[-1].timestamp
        retried = Campaign(
            seed=13, sleep_s=5.0, reset_failure_rate=0.8,
            retry=RetryPolicy(max_attempts=10, base_backoff_s=30.0,
                              jitter_fraction=0.0),
        )
        result = retried.run_job(ACCEL)
        assert result.completed and result.attempts > 1
        span = result.rows[-1].timestamp - result.rows[0].timestamp
        reset_s = retried.device_costs.reset_duration_s
        extra = (result.attempts - 1) * (reset_s + 30.0)
        assert span >= t_clean + extra - 31.0  # last backoff may exceed need

    def test_summary_retry_breakdown(self):
        c = Campaign(seed=11, sleep_s=5.0, reset_failure_rate=0.48,
                     retry=RetryPolicy(max_attempts=4, base_backoff_s=1.0))
        summary = CampaignSummary.from_results(c.run_many(ACCEL, 20))
        assert summary.total_attempts > summary.submitted
        assert summary.retried > 0
        assert summary.failure_kinds == ()  # everything recovered


class TestFailover:
    def test_cpu_downgrade_completes_every_job(self):
        c = Campaign(seed=14, sleep_s=5.0, reset_failure_rate=1.0,
                     failover="cpu")
        results = c.run_many(ACCEL, 4)
        assert all(r.completed for r in results)
        assert all(r.failover == "cpu" for r in results)
        assert all(r.failure_kind == "device-reset" for r in results)
        # the degraded job ran on the CPU: all cards stay in the idle band
        for r in results:
            assert all(w < 13.0 for row in r.rows for w in row.card_w)
        summary = CampaignSummary.from_results(results)
        assert summary.failovers == (("cpu", 4),)

    def test_card_rotation_records_new_device(self):
        c = Campaign(seed=15, sleep_s=5.0, reset_failure_rate=0.9,
                     retry=RetryPolicy(max_attempts=2, base_backoff_s=1.0),
                     failover="card")
        results = c.run_many(ACCEL, 12)
        rotated = [r for r in results if r.failover is not None]
        assert rotated, "expected at least one card failover at rate 0.9"
        for r in rotated:
            assert r.failover.startswith("card:")
            target = int(r.failover.split(":")[1])
            assert 0 <= target < c.n_cards
            assert target != ACCEL.active_device
            # the rotated card, not the requested one, is the active one
            active = [
                max(row.card_w[i] for row in r.rows) for i in range(4)
            ]
            assert active[target] > 25.0

    def test_failover_none_still_fails(self):
        c = Campaign(seed=16, sleep_s=5.0, reset_failure_rate=1.0,
                     retry=RetryPolicy(max_attempts=3, base_backoff_s=1.0))
        result = c.run_job(ACCEL)
        assert not result.completed
        assert result.attempts == 3
        assert result.failover is None

    def test_invalid_failover_mode_rejected(self):
        with pytest.raises(CampaignError):
            Campaign(failover="wings")

"""Pinning tests for JobTimeline's merge/lookup semantics.

Scope (repro.observability) replays the same TimelineSegment lists as
leaf spans inside campaign `simulate` spans, so the exact boundary,
zero-duration and aggregation behaviour of JobTimeline is load-bearing
beyond the power samplers.  These tests freeze it.
"""

import pytest

from repro.core.simulation import TimelineSegment
from repro.errors import TelemetryError
from repro.telemetry import JobTimeline


def seg(tag, seconds, detail=""):
    return TimelineSegment(tag=tag, seconds=seconds, detail=detail)


class TestBoundaries:
    def test_segments_abut_exactly_start_inclusive_end_exclusive(self):
        tl = JobTimeline(100.0, [seg("host", 2.0), seg("device", 3.0)])
        # The boundary instant belongs to the *later* phase.
        assert tl.phase_at(100.0) == "host"
        assert tl.phase_at(102.0 - 1e-9) == "host"
        assert tl.phase_at(102.0) == "device"
        assert tl.phase_at(105.0 - 1e-9) == "device"
        # The job's end is exclusive.
        assert tl.phase_at(105.0) is None
        assert tl.end_time == 105.0

    def test_outside_the_window(self):
        tl = JobTimeline(10.0, [seg("host", 1.0)])
        assert tl.phase_at(9.999) is None
        assert tl.phase_at(11.0) is None
        assert tl.phase_at(0.0) is None

    def test_zero_duration_segments_never_shadow_neighbours(self):
        # A zero-length phase between two real ones is dropped entirely:
        # it can never be "the phase running at t".
        tl = JobTimeline(0.0, [
            seg("host", 1.0), seg("launch", 0.0), seg("device", 1.0),
        ])
        assert tl.phase_at(1.0) == "device"
        assert "launch" not in tl.seconds_by_tag()
        assert tl.duration == 2.0

    def test_empty_segment_list(self):
        tl = JobTimeline(50.0, [])
        assert tl.duration == 0.0
        assert tl.phase_at(50.0) is None
        assert tl.seconds_by_tag() == {}
        assert not tl.kernel_invoked_by(1e9)


class TestAggregation:
    def test_seconds_by_tag_merges_repeated_tags(self):
        # A 3-cycle run interleaves host/device repeatedly; the per-tag
        # sums merge across all occurrences, order-independently.
        segments = [
            seg("host", 0.5, "predict"), seg("device", 2.0, "force"),
            seg("host", 0.5, "correct"),
        ] * 3
        tl = JobTimeline(0.0, segments)
        assert tl.seconds_by_tag() == pytest.approx(
            {"host": 3.0, "device": 6.0}
        )
        assert tl.duration == pytest.approx(9.0)

    def test_details_do_not_split_tags(self):
        tl = JobTimeline(0.0, [
            seg("pcie", 1.0, "write_buffer"), seg("pcie", 2.0, "read_buffer"),
        ])
        assert tl.seconds_by_tag() == {"pcie": 3.0}


class TestDevicePredicates:
    def test_device_active_only_during_device_phases(self):
        tl = JobTimeline(0.0, [
            seg("host", 1.0), seg("device", 1.0), seg("host", 1.0),
            seg("device", 1.0),
        ])
        assert not tl.device_active_at(0.5)
        assert tl.device_active_at(1.5)
        assert not tl.device_active_at(2.5)
        assert tl.device_active_at(3.5)

    def test_kernel_invoked_by_latches_at_first_device_phase(self):
        tl = JobTimeline(10.0, [
            seg("host", 2.0), seg("device", 1.0), seg("host", 5.0),
        ])
        assert not tl.kernel_invoked_by(11.999)
        assert tl.kernel_invoked_by(12.0)     # the first device start
        assert tl.kernel_invoked_by(17.9)     # stays latched after it ends
        assert tl.kernel_invoked_by(1e9)      # ... forever

    def test_reference_job_never_invokes_the_kernel(self):
        tl = JobTimeline(0.0, [seg("host", 10.0)])
        assert not tl.kernel_invoked_by(1e9)


class TestValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(TelemetryError, match="negative start"):
            JobTimeline(-1.0, [])

    def test_negative_segment_rejected(self):
        with pytest.raises(TelemetryError, match="negative segment"):
            JobTimeline(0.0, [seg("host", -0.1)])

"""Tests for energy integration, csv round trips, and statistics."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry.energy import (
    SampleRow,
    energy_to_solution,
    integrate_power,
    read_power_csv,
    write_power_csv,
)
from repro.telemetry.stats import RunStats, histogram


def make_rows(n=100, n_cards=4, card_w=10.0, host_w=100.0):
    return [
        SampleRow(
            timestamp=float(t),
            card_w=tuple([card_w] * n_cards),
            host_w=host_w,
            ipmi_w=400.0,
        )
        for t in range(n)
    ]


class TestIntegratePower:
    def test_constant_power(self):
        t = np.arange(0.0, 100.0)
        w = np.full(100, 50.0)
        assert integrate_power(t, w, 0.0, 100.0) == pytest.approx(5000.0)

    def test_window_excludes_outside_samples(self):
        t = np.arange(0.0, 100.0)
        w = np.full(100, 50.0)
        assert integrate_power(t, w, 20.0, 30.0) == pytest.approx(500.0)

    def test_step_change(self):
        t = np.arange(0.0, 10.0)
        w = np.array([10.0] * 5 + [20.0] * 5)
        assert integrate_power(t, w, 0.0, 10.0) == pytest.approx(150.0)

    def test_last_sample_extends_to_window_end(self):
        t = np.array([0.0, 1.0])
        w = np.array([10.0, 30.0])
        assert integrate_power(t, w, 0.0, 3.0) == pytest.approx(10 + 2 * 30)

    def test_validation(self):
        t = np.arange(5.0)
        w = np.ones(5)
        with pytest.raises(TelemetryError):
            integrate_power(t, w, 3.0, 3.0)
        with pytest.raises(TelemetryError):
            integrate_power(t, np.ones(4), 0.0, 5.0)
        with pytest.raises(TelemetryError):
            integrate_power(t, w, 100.0, 200.0)  # no samples inside
        with pytest.raises(TelemetryError):
            integrate_power(np.array([1.0, 1.0]), np.ones(2), 0.0, 2.0)


class TestEnergyToSolution:
    def test_decomposition(self):
        rows = make_rows(300, card_w=10.0, host_w=150.0)
        e = energy_to_solution(rows, 0.0, 300.0)
        assert e.cards_kj == pytest.approx((3.0, 3.0, 3.0, 3.0))
        assert e.cards_total_kj == pytest.approx(12.0)
        assert e.host_kj == pytest.approx(45.0)
        assert e.total_kj == pytest.approx(57.0)

    def test_empty_rows(self):
        with pytest.raises(TelemetryError):
            energy_to_solution([], 0.0, 1.0)


class TestCsvRoundtrip:
    def test_roundtrip_exact(self, tmp_path):
        rows = make_rows(50)
        path = tmp_path / "power.csv"
        write_power_csv(path, rows)
        back = read_power_csv(path)
        assert back == rows

    def test_energy_identical_through_csv(self, tmp_path):
        """The paper's pipeline: sample -> csv -> integrate."""
        rows = make_rows(200, card_w=17.5, host_w=155.0)
        path = tmp_path / "job.csv"
        write_power_csv(path, rows)
        direct = energy_to_solution(rows, 10.0, 150.0)
        via_csv = energy_to_solution(read_power_csv(path), 10.0, 150.0)
        assert via_csv.total_kj == pytest.approx(direct.total_kj, rel=1e-14)

    def test_bad_files(self, tmp_path):
        with pytest.raises(TelemetryError):
            read_power_csv(tmp_path / "missing.csv")
        bad = tmp_path / "bad.csv"
        bad.write_text("a,b\n1,2\n")
        with pytest.raises(TelemetryError):
            read_power_csv(bad)
        empty = tmp_path / "empty.csv"
        empty.write_text("timestamp,card0_w,host_w,ipmi_w\n")
        with pytest.raises(TelemetryError):
            read_power_csv(empty)
        with pytest.raises(TelemetryError):
            write_power_csv(tmp_path / "x.csv", [])


class TestRunStats:
    def test_summary(self):
        s = RunStats.from_values([1.0, 2.0, 3.0])
        assert s.mean == 2.0
        assert s.std == pytest.approx(1.0)
        assert s.min == 1.0 and s.max == 3.0 and s.n == 3

    def test_single_value_std_zero(self):
        assert RunStats.from_values([5.0]).std == 0.0

    def test_format(self):
        text = RunStats.from_values([301.4, 301.5]).format("s")
        assert "301.45" in text and "s" in text and "n=2" in text

    def test_empty_rejected(self):
        with pytest.raises(TelemetryError):
            RunStats.from_values([])


class TestHistogram:
    def test_counts_sum(self):
        counts, edges = histogram([1, 2, 2, 3, 3, 3], n_bins=3)
        assert counts.sum() == 6
        assert len(edges) == 4

    def test_validation(self):
        with pytest.raises(TelemetryError):
            histogram([])
        with pytest.raises(TelemetryError):
            histogram([1.0], n_bins=0)

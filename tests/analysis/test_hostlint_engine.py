"""Watcher-Host engine behaviour: suppressions, baseline, self-application.

The rule-by-rule detection behaviour lives in
``test_hostlint_rules.py``; this module covers the machinery around the
rules — inline suppression placement, the accepted-debt baseline
round-trip, input validation, and the gate the CI job runs: the full
pass over ``src/repro`` must be clean against the committed baseline.
"""

from pathlib import Path

import pytest

from repro.analysis.hostlint import Baseline, BaselineEntry, HostLinter
from repro.errors import AnalysisError, ConfigurationError

REPO = Path(__file__).resolve().parent.parent.parent
SRC = REPO / "src" / "repro"

BAD = (
    "import random\n"
    "\n"
    "def jitter():\n"
    "    return random.random()\n"
)


class TestSuppressions:
    def test_trailing_comment_suppresses_its_line(self):
        source = (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()  # repro-lint: disable=RH003\n"
        )
        linter = HostLinter()
        report = linter.lint_source(source)
        assert not report.diagnostics
        assert linter.suppressed_count == 1

    def test_comment_line_above_suppresses_next_code_line(self):
        source = (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    # repro-lint: disable=RH003 - fixture noise\n"
            "    return random.random()\n"
        )
        report = HostLinter().lint_source(source)
        assert not report.diagnostics

    def test_justification_may_span_several_comment_lines(self):
        source = (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    # repro-lint: disable=RH003 - a justification that\n"
            "    # needs a second line to explain itself properly\n"
            "    return random.random()\n"
        )
        report = HostLinter().lint_source(source)
        assert not report.diagnostics

    def test_suppression_is_rule_specific(self):
        source = (
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()  # repro-lint: disable=RH004\n"
        )
        report = HostLinter().lint_source(source)
        assert report.rules_fired() == {"RH003"}

    def test_disable_file_covers_the_whole_module(self):
        source = (
            "# repro-lint: disable-file=RH003\n"
            "import random\n"
            "\n"
            "def jitter():\n"
            "    return random.random()\n"
            "\n"
            "def shuffle(xs):\n"
            "    random.shuffle(xs)\n"
        )
        linter = HostLinter()
        report = linter.lint_source(source)
        assert not report.diagnostics
        assert linter.suppressed_count == 2

    def test_comma_separated_rule_list(self):
        source = (
            "import random\n"
            "\n"
            "def jitter(items):\n"
            "    # repro-lint: disable=RH003,RH004\n"
            "    return [random.random() for _ in set(items)]\n"
        )
        report = HostLinter().lint_source(source)
        assert not report.diagnostics


class TestRuleSelection:
    def test_unknown_rule_id_is_rejected(self):
        with pytest.raises(ConfigurationError, match="RH999"):
            HostLinter(rules=["RH999"])

    def test_restricting_rules_runs_only_those(self):
        source = (
            "import random\n"
            "\n"
            "def jitter(items):\n"
            "    return [random.random() for _ in set(items)]\n"
        )
        report = HostLinter(rules=["RH004"]).lint_source(source)
        assert report.rules_fired() == {"RH004"}

    def test_syntax_error_is_an_analysis_error(self):
        with pytest.raises(AnalysisError, match="does not parse"):
            HostLinter().lint_source("def broken(:\n")

    def test_non_python_path_is_rejected(self, tmp_path):
        target = tmp_path / "notes.txt"
        target.write_text("hello")
        with pytest.raises(ConfigurationError, match="not a .py file"):
            HostLinter().lint_paths([target])


class TestBaseline:
    def _write_fixture(self, tmp_path):
        pkg = tmp_path / "repro" / "cpuref"
        pkg.mkdir(parents=True)
        module = pkg / "noise.py"
        module.write_text(BAD)
        return module

    def test_round_trip_absorbs_known_findings(self, tmp_path):
        module = self._write_fixture(tmp_path)
        baseline_file = tmp_path / "baseline.json"

        # First pass: record the finding into a baseline.
        first = HostLinter()
        report = first.lint_paths([module])
        assert len(report) == 1
        recorded = Baseline.from_findings(
            [d for d, _, _ in first.fingerprints],
            scopes=[s for _, s, _ in first.fingerprints],
            line_texts=[t for _, _, t in first.fingerprints],
            justification="legacy noise source, tracked",
        )
        recorded.save(baseline_file)

        # Second pass: the loaded baseline absorbs it; the gate is clean.
        loaded = Baseline.load(baseline_file)
        assert loaded.entries[0].justification == \
            "legacy noise source, tracked"
        second = HostLinter(baseline=loaded)
        report = second.lint_paths([module])
        assert not report.diagnostics
        assert len(second.baselined) == 1
        assert not loaded.stale_entries()

    def test_fixed_finding_turns_the_entry_stale(self, tmp_path):
        module = self._write_fixture(tmp_path)
        baseline = Baseline(entries=[BaselineEntry(
            rule="RH003", path="repro/cpuref/noise.py", scope="jitter",
            line_text="return random.random()",
        )])
        linter = HostLinter(baseline=baseline)
        assert not linter.lint_paths([module]).diagnostics

        module.write_text(
            "import random\n"
            "\n"
            "def jitter(seed):\n"
            "    return random.Random(seed).random()\n"
        )
        report = linter.lint_paths([module])
        assert not report.diagnostics
        assert baseline.stale_entries() == list(baseline.entries)

    def test_baseline_does_not_match_other_locations(self, tmp_path):
        """Fingerprints pin rule+path+scope+text: a second identical
        defect elsewhere still fails the gate."""
        module = self._write_fixture(tmp_path)
        other = module.parent / "more_noise.py"
        other.write_text(BAD)
        baseline = Baseline(entries=[BaselineEntry(
            rule="RH003", path="repro/cpuref/noise.py", scope="jitter",
            line_text="return random.random()",
        )])
        report = HostLinter(baseline=baseline).lint_paths(
            [module, other]
        )
        assert len(report) == 1
        assert report.diagnostics[0].path == "repro/cpuref/more_noise.py"

    def test_missing_baseline_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            Baseline.load(tmp_path / "nope.json")

    def test_malformed_baseline_file(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            Baseline.load(bad)
        bad.write_text('{"version": 99, "entries": []}')
        with pytest.raises(ConfigurationError, match="unsupported format"):
            Baseline.load(bad)


class TestSelfApplication:
    """The gate CI runs: src/repro is clean under the committed baseline."""

    def test_repo_sources_are_clean(self):
        baseline = Baseline.load(REPO / "hostlint-baseline.json")
        linter = HostLinter(baseline=baseline)
        report = linter.lint_paths([SRC])
        assert not report.diagnostics, report.format()

    def test_committed_baseline_carries_no_unjustified_debt(self):
        baseline = Baseline.load(REPO / "hostlint-baseline.json")
        unjustified = [
            entry for entry in baseline.entries if not entry.justification
        ]
        assert not unjustified, (
            "every committed baseline entry needs a justification: "
            f"{unjustified}"
        )

    def test_diagnostics_carry_paths_and_lines(self):
        report = HostLinter().lint_source(BAD)
        diag = report.diagnostics[0]
        assert diag.path == "repro/<string>.py"
        assert diag.line == 4
        assert "repro/<string>.py:4" in diag.format()

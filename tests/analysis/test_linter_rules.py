"""One seeded-defect program per lint rule, asserted by exact rule id."""

import pytest

from repro.analysis import Diagnostic, ProgramLinter, RULES, Severity
from repro.errors import LintError
from repro.metalium import CBConfig, CoreRange, KernelSpec, Program
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.riscv import RiscvRole
from repro.wormhole.tile import Tile


def _noop(core, args):
    return
    yield


def _producer(cb_id, n_pages, fmt=DataFormat.FLOAT32):
    def body(core, args):
        cb = core.get_cb(cb_id)
        for _ in range(n_pages):
            yield from cb.reserve_back(1)
            cb.write_page(Tile.zeros(fmt))
            cb.push_back(1)

    return body


def _consumer(cb_id, n_pages):
    def body(core, args):
        cb = core.get_cb(cb_id)
        for _ in range(n_pages):
            yield from cb.wait_front(1)
            cb.pop_front(1)

    return body


def _lint(program):
    return ProgramLinter().lint(program)


class TestSeededDefects:
    def test_wh001_l1_overflow(self):
        # float32 page = 4 KiB; 400 pages = 1.6 MB > the 1.5 MB L1
        program = Program(core_range=CoreRange(0, 1))
        program.add_cb(CBConfig(0, 400))
        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute", _noop))
        report = _lint(program)
        assert "WH001" in report.rules_fired()
        assert not report.ok

    def test_wh002_consumer_pops_more_than_pushed(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_cb(CBConfig(0, 4))
        program.add_kernel(
            KernelSpec("prod", RiscvRole.NC, "data_movement", _producer(0, 1))
        )
        program.add_kernel(
            KernelSpec("cons", RiscvRole.T1, "compute", _consumer(0, 3))
        )
        report = _lint(program)
        assert "WH002" in report.rules_fired()
        assert not report.ok

    def test_wh002_producer_pushes_more_than_popped_warns(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_cb(CBConfig(0, 4))
        program.add_kernel(
            KernelSpec("prod", RiscvRole.NC, "data_movement", _producer(0, 3))
        )
        program.add_kernel(
            KernelSpec("cons", RiscvRole.T1, "compute", _consumer(0, 1))
        )
        report = _lint(program)
        assert "WH002" in report.rules_fired()
        assert report.ok  # unconsumed pages warn but do not gate

    def test_wh003_request_exceeds_capacity(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_cb(CBConfig(0, 2))

        def greedy(core, args):
            cb = core.get_cb(0)
            yield from cb.reserve_back(8)

        program.add_kernel(KernelSpec("greedy", RiscvRole.NC,
                                      "data_movement", greedy))
        report = _lint(program)
        assert "WH003" in report.rules_fired()
        assert not report.ok

    def test_wh004_duplicate_cb_id(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_cb(CBConfig(0, 2))
        # bypass add_cb's guard, as a hand-built Program could
        program.cbs.append(CBConfig(0, 4))
        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute", _noop))
        report = _lint(program)
        assert "WH004" in report.rules_fired()
        assert not report.ok

    def test_wh005_format_mismatch(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_cb(CBConfig(0, 4, DataFormat.FLOAT32))
        program.add_kernel(KernelSpec(
            "prod", RiscvRole.NC, "data_movement",
            _producer(0, 2, fmt=DataFormat.BFLOAT16),
        ))
        program.add_kernel(
            KernelSpec("cons", RiscvRole.T1, "compute", _consumer(0, 2))
        )
        report = _lint(program)
        assert "WH005" in report.rules_fired()

    def test_wh006_compute_kernel_on_data_movement_slot(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_kernel(KernelSpec("k", RiscvRole.NC, "compute", _noop))
        report = _lint(program)
        assert "WH006" in report.rules_fired()
        assert not report.ok

    def test_wh007_missing_runtime_arg(self):
        program = Program(core_range=CoreRange(0, 1))

        def needs_arg(core, args):
            _ = args["n_tiles"]
            return
            yield

        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute",
                                      needs_arg))
        report = _lint(program)
        assert "WH007" in report.rules_fired()
        assert not report.ok

    def test_wh007_unused_runtime_arg_warns(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute", _noop))
        program.set_runtime_args(0, {"dead": 1})
        report = _lint(program)
        assert "WH007" in report.rules_fired()
        assert report.ok

    def test_wh008_unknown_cb(self):
        program = Program(core_range=CoreRange(0, 1))

        def uses_ghost(core, args):
            core.get_cb(42).try_wait_front(1)
            return
            yield

        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute",
                                      uses_ghost))
        report = _lint(program)
        assert "WH008" in report.rules_fired()
        assert not report.ok

    def test_wh009_unused_cb(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_cb(CBConfig(7, 4))
        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute", _noop))
        report = _lint(program)
        assert "WH009" in report.rules_fired()
        assert report.ok

    def test_wh010_core_range_off_grid(self):
        program = Program(core_range=CoreRange(60, 70))
        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute", _noop))
        report = _lint(program)
        assert "WH010" in report.rules_fired()
        assert not report.ok

    def test_wh011_kernel_error_warns(self):
        program = Program(core_range=CoreRange(0, 1))

        def broken(core, args):
            raise ValueError("boom")
            yield

        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute", broken))
        report = _lint(program)
        assert "WH011" in report.rules_fired()


class TestReportMechanics:
    def test_raise_on_error_carries_report(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_cb(CBConfig(0, 400))
        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute", _noop))
        report = _lint(program)
        with pytest.raises(LintError) as excinfo:
            report.raise_on_error()
        assert excinfo.value.report is report

    def test_diagnostic_rejects_unknown_rule(self):
        with pytest.raises(ValueError, match="unknown lint rule"):
            Diagnostic("WH999", Severity.ERROR, "nope")

    def test_rule_catalogue_is_complete(self):
        device = {r for r in RULES if r.startswith("WH")}
        host = {r for r in RULES if r.startswith("RH")}
        assert device == {f"WH{i:03d}" for i in range(1, 12)}
        assert host == {f"RH{i:03d}" for i in range(1, 13)}
        assert device | host == set(RULES)

    def test_core_aggregation(self):
        # the same missing arg on 4 cores folds into one diagnostic
        program = Program(core_range=CoreRange(0, 4))

        def needs_arg(core, args):
            _ = args["n"]
            return
            yield

        program.add_kernel(KernelSpec("k", RiscvRole.T1, "compute",
                                      needs_arg))
        report = _lint(program)
        wh007 = [d for d in report if d.rule == "WH007"]
        assert len(wh007) == 1
        assert "3 more core(s)" in wh007[0].message

    def test_format_mentions_rule_and_location(self):
        program = Program(core_range=CoreRange(0, 1))
        program.add_cb(CBConfig(0, 2))

        def greedy(core, args):
            yield from core.get_cb(0).reserve_back(8)

        program.add_kernel(KernelSpec("greedy", RiscvRole.NC,
                                      "data_movement", greedy))
        text = _lint(program).format()
        assert "WH003" in text and "cb 0" in text


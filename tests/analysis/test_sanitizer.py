"""One seeded hazard per sanitizer hazard class, plus mode mechanics."""

import pytest

from repro.analysis import HAZARD_KINDS, Hazard, SanitizerContext, hooks
from repro.errors import SanitizerError
from repro.metalium import (
    CBConfig,
    CoreRange,
    CreateBuffer,
    CreateDevice,
    CloseDevice,
    EnqueueProgram,
    EnqueueWriteBuffer,
    GetCommandQueue,
    KernelSpec,
    Program,
)
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.riscv import RiscvRole
from repro.wormhole.tile import Tile


@pytest.fixture(autouse=True)
def _no_ambient_context():
    """Suspend any REPRO_SANITIZE ambient context: these tests manage
    their own contexts and assert on the uninstalled state."""
    prev = hooks.active()
    if prev is not None:
        hooks.uninstall(prev)
    yield
    if prev is not None:
        hooks.install(prev)


@pytest.fixture
def device():
    dev = CreateDevice(0)
    yield dev
    if dev.is_open:
        CloseDevice(dev)


def _program(*specs, cbs=((0, 4),), cores=(0, 1)):
    program = Program(core_range=CoreRange(*cores))
    for cb_id, capacity in cbs:
        program.add_cb(CBConfig(cb_id, capacity))
    for spec in specs:
        program.add_kernel(spec)
    return program


def _consume(cb_id, n):
    def body(core, args):
        cb = core.get_cb(cb_id)
        for _ in range(n):
            yield from cb.wait_front(1)
            cb.pop_front(1)

    return body


class TestHazardClasses:
    def test_push_without_reserve(self, device):
        def bad(core, args):
            cb = core.get_cb(0)
            cb.write_page(Tile.zeros(DataFormat.FLOAT32))
            cb.push_back(1)
            yield

        program = _program(
            KernelSpec("bad", RiscvRole.NC, "data_movement", bad),
            KernelSpec("cons", RiscvRole.T1, "compute", _consume(0, 1)),
        )
        with pytest.raises(SanitizerError) as excinfo:
            EnqueueProgram(GetCommandQueue(device), program, sanitize=True)
        assert excinfo.value.hazard.kind == "push-without-reserve"
        assert excinfo.value.hazard.kernel == "bad"

    def test_pop_beyond_available(self, device):
        def bad(core, args):
            core.get_cb(0).pop_front(1)  # no wait_front, nothing pushed
            yield

        program = _program(KernelSpec("bad", RiscvRole.T1, "compute", bad))
        with pytest.raises(SanitizerError) as excinfo:
            EnqueueProgram(GetCommandQueue(device), program, sanitize=True)
        assert excinfo.value.hazard.kind == "pop-beyond-available"

    def test_cross_core_cb_access(self, device):
        stash = {}

        def leaky(core, args):
            if core.core_id == 0:
                stash["cb"] = core.get_cb(0)
            else:
                stash["cb"].try_wait_front(1)  # core 1 touches core 0's CB
            return
            yield

        program = _program(
            KernelSpec("leaky", RiscvRole.T1, "compute", leaky),
            cores=(0, 2),
        )
        with pytest.raises(SanitizerError) as excinfo:
            EnqueueProgram(GetCommandQueue(device), program, sanitize=True)
        hazard = excinfo.value.hazard
        assert hazard.kind == "cross-core-cb-access"
        assert hazard.core == 1 and hazard.cb_id == 0

    def test_dram_read_before_write(self, device):
        with SanitizerContext() as ctx:
            buffer = CreateBuffer(device, n_tiles=2)

            def reader(core, args):
                cb = core.get_cb(0)
                yield from cb.reserve_back(1)
                cb.write_page(buffer.noc_read_tile(core.core_id, 0))
                cb.push_back(1)

            program = _program(
                KernelSpec("read", RiscvRole.NC, "data_movement", reader),
                KernelSpec("cons", RiscvRole.T1, "compute", _consume(0, 1)),
            )
            with pytest.raises(SanitizerError) as excinfo:
                EnqueueProgram(GetCommandQueue(device), program)
        assert excinfo.value.hazard.kind == "dram-read-before-write"
        assert ctx.report.kinds() == {"dram-read-before-write"}

    def test_dram_read_after_host_write_is_clean(self, device):
        with SanitizerContext():
            buffer = CreateBuffer(device, n_tiles=2)
            queue = GetCommandQueue(device)
            EnqueueWriteBuffer(
                queue, buffer, [Tile.zeros(DataFormat.FLOAT32)] * 2
            )

            def reader(core, args):
                cb = core.get_cb(0)
                yield from cb.reserve_back(1)
                cb.write_page(buffer.noc_read_tile(core.core_id, 0))
                cb.push_back(1)

            program = _program(
                KernelSpec("read", RiscvRole.NC, "data_movement", reader),
                KernelSpec("cons", RiscvRole.T1, "compute", _consume(0, 1)),
            )
            EnqueueProgram(queue, program)
            assert queue.last_sanitizer_report.ok

    def test_l1_double_free(self, device):
        def bad(core, args):
            alloc = core.l1.allocate(4096)
            core.l1.free(alloc)
            core.l1.free(alloc)
            return
            yield

        program = _program(KernelSpec("bad", RiscvRole.T1, "compute", bad))
        with pytest.raises(SanitizerError) as excinfo:
            EnqueueProgram(GetCommandQueue(device), program, sanitize=True)
        assert excinfo.value.hazard.kind == "l1-double-free"

    def test_l1_leak(self, device):
        def bad(core, args):
            core.l1.allocate(4096)  # never freed
            return
            yield

        program = _program(KernelSpec("bad", RiscvRole.T1, "compute", bad))
        with pytest.raises(SanitizerError) as excinfo:
            EnqueueProgram(GetCommandQueue(device), program, sanitize=True)
        assert excinfo.value.hazard.kind == "l1-leak"


class TestModes:
    def test_non_halting_context_accumulates(self, device):
        def bad(core, args):
            cb = core.get_cb(0)
            cb.write_page(Tile.zeros(DataFormat.FLOAT32))
            cb.push_back(1)
            yield

        program = _program(
            KernelSpec("bad", RiscvRole.NC, "data_movement", bad),
            KernelSpec("cons", RiscvRole.T1, "compute", _consume(0, 1)),
        )
        with SanitizerContext(halt=False) as ctx:
            EnqueueProgram(GetCommandQueue(device), program)
        assert not ctx.report.ok
        assert "push-without-reserve" in ctx.report.kinds()

    def test_sanitize_false_overrides_installed_context(self, device):
        def bad(core, args):
            alloc = core.l1.allocate(4096)
            core.l1.free(alloc)
            core.l1.free(alloc)
            return
            yield

        program = _program(KernelSpec("bad", RiscvRole.T1, "compute", bad))
        with SanitizerContext() as ctx:
            # opt-out run: the hazard path isn't even instrumented, so
            # the underlying AllocationError surfaces instead
            with pytest.raises(Exception) as excinfo:
                EnqueueProgram(
                    GetCommandQueue(device), program, sanitize=False
                )
        assert not isinstance(excinfo.value, SanitizerError)
        assert ctx.report.ok

    def test_unsanitized_queue_has_no_report(self, device):
        def ok(core, args):
            return
            yield

        program = _program(KernelSpec("ok", RiscvRole.T1, "compute", ok))
        queue = GetCommandQueue(device)
        EnqueueProgram(queue, program)
        assert queue.last_sanitizer_report is None
        assert hooks.active() is None

    def test_context_uninstalls_on_exit(self):
        with SanitizerContext() as ctx:
            assert hooks.active() is ctx
        assert hooks.active() is None

    def test_nested_context_restores_previous(self):
        with SanitizerContext() as outer:
            with SanitizerContext() as inner:
                assert hooks.active() is inner
            assert hooks.active() is outer
        assert hooks.active() is None

    def test_hazard_kind_validated(self):
        with pytest.raises(ValueError, match="unknown hazard kind"):
            Hazard("made-up", "nope")

    def test_hazard_taxonomy_is_stable(self):
        assert set(HAZARD_KINDS) == {
            "push-without-reserve",
            "pop-beyond-available",
            "cross-core-cb-access",
            "dram-read-before-write",
            "l1-double-free",
            "l1-leak",
        }

"""Seeded-defect fixtures for every Watcher-Host rule.

Each RH rule gets one minimal bad module that makes it fire *exactly
once* under the full rule registry (so no fixture trips a neighbouring
rule by accident), paired with the corrected version that stays clean.
The fixtures are linted in-memory via :meth:`HostLinter.lint_source`
with a virtual ``relpath`` that places them in whatever layer the rule
cares about.
"""

import pytest

from repro.analysis.hostlint import HostLinter, host_rules
from repro.analysis.diagnostics import HOST_RULES, Severity


def fire(source: str, relpath: str):
    """Lint one fixture under the full registry; return the report."""
    return HostLinter().lint_source(source, relpath=relpath)


def assert_fires_once(rule: str, source: str, relpath: str):
    report = fire(source, relpath)
    hits = [d for d in report if d.rule == rule]
    assert len(hits) == 1, (
        f"expected exactly one {rule} finding, got:\n{report.format()}"
    )
    assert report.rules_fired() == {rule}, (
        f"fixture for {rule} trips other rules:\n{report.format()}"
    )
    return hits[0]


def assert_clean(source: str, relpath: str):
    report = fire(source, relpath)
    assert not report.diagnostics, report.format()


class TestRegistry:
    def test_every_catalogue_rule_is_implemented(self):
        assert set(host_rules()) == set(HOST_RULES)

    def test_rules_carry_hints_and_descriptions(self):
        for rule in host_rules().values():
            assert rule.hint
            assert rule.description


class TestRH001BlockingInAsync:
    BAD = (
        "import time\n"
        "\n"
        "async def handler(job):\n"
        "    time.sleep(0.1)\n"
        "    return job\n"
    )
    GOOD = (
        "import asyncio\n"
        "import time\n"
        "\n"
        "async def handler(job):\n"
        "    await asyncio.sleep(0.1)\n"
        "    return job\n"
        "\n"
        "def sync_worker():\n"
        "    time.sleep(0.1)\n"
    )

    def test_fires_once(self):
        diag = assert_fires_once(
            "RH001", self.BAD, "repro/service/handlers.py"
        )
        assert diag.line == 4
        assert "time.sleep" in diag.message

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/service/handlers.py")

    def test_nested_sync_def_inside_async_is_not_flagged(self):
        source = (
            "import time\n"
            "\n"
            "async def handler():\n"
            "    def helper():\n"
            "        time.sleep(0.1)\n"
            "    return helper\n"
        )
        assert_clean(source, "repro/service/handlers.py")


class TestRH002WallClock:
    BAD = (
        "import time\n"
        "\n"
        "def sample():\n"
        "    return time.monotonic()\n"
    )
    GOOD = (
        "def sample(clock):\n"
        "    return clock.now()\n"
    )

    def test_fires_once_in_modelled_layer(self):
        diag = assert_fires_once(
            "RH002", self.BAD, "repro/telemetry/sampler.py"
        )
        assert "time.monotonic" in diag.message

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/telemetry/sampler.py")

    def test_service_layer_may_read_wall_clock(self):
        """The job server measures real request latency: not modelled."""
        assert_clean(self.BAD, "repro/service/latency.py")

    def test_from_import_alias_is_resolved(self):
        source = (
            "from time import perf_counter\n"
            "\n"
            "def sample():\n"
            "    return perf_counter()\n"
        )
        assert_fires_once("RH002", source, "repro/core/timing.py")


class TestRH003UnseededRng:
    BAD = (
        "import random\n"
        "\n"
        "def jitter():\n"
        "    return random.random()\n"
    )
    GOOD = (
        "import random\n"
        "\n"
        "import numpy as np\n"
        "\n"
        "def jitter(seed):\n"
        "    return random.Random(seed).random()\n"
        "\n"
        "def noise(seed):\n"
        "    return np.random.default_rng(seed).normal()\n"
    )

    def test_fires_once(self):
        assert_fires_once("RH003", self.BAD, "repro/cpuref/noise.py")

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/cpuref/noise.py")

    def test_seedless_numpy_default_rng(self):
        source = (
            "import numpy as np\n"
            "\n"
            "def noise():\n"
            "    return np.random.default_rng().normal()\n"
        )
        assert_fires_once("RH003", source, "repro/cpuref/noise.py")

    def test_legacy_numpy_global_state(self):
        source = (
            "import numpy as np\n"
            "\n"
            "def noise():\n"
            "    return np.random.rand(3)\n"
        )
        assert_fires_once("RH003", source, "repro/cpuref/noise.py")


class TestRH004SetIteration:
    BAD = (
        "def collect(items):\n"
        "    out = []\n"
        "    for item in set(items):\n"
        "        out.append(item)\n"
        "    return out\n"
    )
    GOOD = (
        "def collect(items):\n"
        "    out = []\n"
        "    for item in sorted(set(items)):\n"
        "        out.append(item)\n"
        "    return out\n"
    )

    def test_fires_once(self):
        diag = assert_fires_once("RH004", self.BAD, "repro/core/order.py")
        assert diag.severity is Severity.WARNING

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/core/order.py")

    def test_comprehension_over_set_literal(self):
        source = "SQUARES = [x * x for x in {3, 1, 2}]\n"
        assert_fires_once("RH004", source, "repro/core/order.py")


class TestRH005ResourceLifecycle:
    BAD = (
        "import subprocess\n"
        "\n"
        "def run(cmd):\n"
        "    proc = subprocess.Popen(cmd)\n"
        "    proc.wait()\n"
    )
    GOOD = (
        "import subprocess\n"
        "\n"
        "def run(cmd):\n"
        "    with subprocess.Popen(cmd) as proc:\n"
        "        proc.wait()\n"
    )

    def test_fires_once(self):
        diag = assert_fires_once("RH005", self.BAD, "repro/service/spawn.py")
        assert "never closed" in diag.message

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/service/spawn.py")

    def test_close_outside_finally_is_still_flagged(self):
        source = (
            "def read(path):\n"
            "    fh = open(path)\n"
            "    data = fh.read()\n"
            "    fh.close()\n"
            "    return data\n"
        )
        diag = assert_fires_once("RH005", source, "repro/service/io.py")
        assert "not on exception paths" in diag.message

    def test_close_in_finally_is_clean(self):
        source = (
            "def read(path):\n"
            "    fh = open(path)\n"
            "    try:\n"
            "        return fh.read()\n"
            "    finally:\n"
            "        fh.close()\n"
        )
        assert_clean(source, "repro/service/io.py")

    def test_returned_resource_is_callers_problem(self):
        source = (
            "def acquire(path):\n"
            "    return open(path)\n"
        )
        assert_clean(source, "repro/service/io.py")

    def test_attribute_resource_with_close_method_is_clean(self):
        source = (
            "import subprocess\n"
            "\n"
            "class Worker:\n"
            "    def __init__(self, cmd):\n"
            "        self.proc = subprocess.Popen(cmd)\n"
            "\n"
            "    def close(self):\n"
            "        self.proc.terminate()\n"
        )
        assert_clean(source, "repro/service/spawn.py")

    def test_attribute_resource_never_closed_fires(self):
        source = (
            "import subprocess\n"
            "\n"
            "class Worker:\n"
            "    def __init__(self, cmd):\n"
            "        self.proc = subprocess.Popen(cmd)\n"
        )
        assert_fires_once("RH005", source, "repro/service/spawn.py")


class TestRH006RawEnvBool:
    BAD = (
        "import os\n"
        "\n"
        "def debug_enabled():\n"
        "    if os.environ.get(\"REPRO_DEBUG\"):\n"
        "        return True\n"
        "    return False\n"
    )
    GOOD = (
        "import os\n"
        "\n"
        "from ..config import env_flag\n"
        "\n"
        "def debug_enabled():\n"
        "    return env_flag(os.environ.get(\"REPRO_DEBUG\"),\n"
        "                    name=\"REPRO_DEBUG\")\n"
    )

    def test_fires_once(self):
        assert_fires_once("RH006", self.BAD, "repro/wormhole/flags.py")

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/wormhole/flags.py")

    def test_comparison_against_boolean_spellings(self):
        source = (
            "import os\n"
            "\n"
            "def native_on():\n"
            "    return os.environ.get(\"REPRO_NATIVE\", \"1\") != \"0\"\n"
        )
        diag = assert_fires_once(
            "RH006", source, "repro/wormhole/flags.py"
        )
        assert "spelling-sensitive" in diag.message

    def test_config_layer_is_exempt(self):
        """config *implements* env_flag: it must touch the raw value."""
        assert_clean(self.BAD, "repro/config.py")

    def test_non_boolean_env_string_read_is_fine(self):
        source = (
            "import os\n"
            "\n"
            "def trace_path():\n"
            "    return os.environ.get(\"REPRO_TRACE\", \"\").strip()\n"
        )
        assert_clean(source, "repro/wormhole/flags.py")


class TestRH007DurableWrite:
    BAD = (
        "def append(path, line):\n"
        "    with open(path, \"a\") as fh:\n"
        "        fh.write(line)\n"
    )
    GOOD = (
        "import os\n"
        "\n"
        "def append(path, line):\n"
        "    with open(path, \"a\") as fh:\n"
        "        fh.write(line)\n"
        "        fh.flush()\n"
        "        os.fsync(fh.fileno())\n"
    )

    def test_fires_once(self):
        diag = assert_fires_once(
            "RH007", self.BAD, "repro/telemetry/journal.py"
        )
        assert "flush" in diag.message and "fsync" in diag.message

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/telemetry/journal.py")

    def test_read_mode_is_not_durability_critical(self):
        source = (
            "def read(path):\n"
            "    with open(path) as fh:\n"
            "        return fh.read()\n"
        )
        assert_clean(source, "repro/telemetry/journal.py")


class TestRH008SilentExcept:
    BAD = (
        "def tolerant(fn):\n"
        "    try:\n"
        "        fn()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    GOOD = (
        "def tolerant(fn, log):\n"
        "    try:\n"
        "        fn()\n"
        "    except ValueError:\n"
        "        pass\n"
        "    except Exception as exc:\n"
        "        log.warning(\"fn failed: %s\", exc)\n"
    )

    def test_fires_once(self):
        diag = assert_fires_once("RH008", self.BAD, "repro/core/guard.py")
        assert diag.severity is Severity.WARNING

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/core/guard.py")

    def test_bare_except_without_reraise(self):
        source = (
            "def tolerant(fn):\n"
            "    try:\n"
            "        fn()\n"
            "    except:\n"
            "        print(\"oops\")\n"
        )
        assert_fires_once("RH008", source, "repro/core/guard.py")

    def test_bare_except_that_reraises_is_clean(self):
        source = (
            "def cleanup_then_raise(fn, undo):\n"
            "    try:\n"
            "        fn()\n"
            "    except:\n"
            "        undo()\n"
            "        raise\n"
        )
        assert_clean(source, "repro/core/guard.py")


class TestRH009Layering:
    BAD = (
        "from ..service import JobServer\n"
        "\n"
        "def dispatch(spec):\n"
        "    return JobServer(spec)\n"
    )
    GOOD = (
        "from ..errors import ReproError\n"
        "\n"
        "def dispatch(spec):\n"
        "    raise ReproError(str(spec))\n"
    )

    def test_fires_once(self):
        diag = assert_fires_once(
            "RH009", self.BAD, "repro/wormhole/bad_import.py"
        )
        assert "'wormhole' imports 'service'" in diag.message

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/wormhole/bad_import.py")

    def test_cli_is_exempt(self):
        source = "from .service import JobServer\n"
        assert_clean(source, "repro/cli.py")


class TestRH010WorkerGlobalMutation:
    BAD = (
        "_CACHE = {}\n"
        "\n"
        "def remember(key, value):\n"
        "    _CACHE[key] = value\n"
    )
    GOOD = (
        "class Cache:\n"
        "    def __init__(self):\n"
        "        self._data = {}\n"
        "\n"
        "    def remember(self, key, value):\n"
        "        self._data[key] = value\n"
    )

    def test_fires_once_in_worker_layer(self):
        diag = assert_fires_once(
            "RH010", self.BAD, "repro/backends/cache.py"
        )
        assert diag.severity is Severity.WARNING
        assert "_CACHE" in diag.message

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/backends/cache.py")

    def test_non_worker_layer_is_not_flagged(self):
        assert_clean(self.BAD, "repro/observability/cache.py")

    def test_mutating_method_call_is_flagged(self):
        source = (
            "_SEEN = set()\n"
            "\n"
            "def mark(item):\n"
            "    _SEEN.add(item)\n"
        )
        assert_fires_once("RH010", source, "repro/backends/cache.py")


class TestRH011DanglingTask:
    BAD = (
        "import asyncio\n"
        "\n"
        "async def kick(coro):\n"
        "    asyncio.create_task(coro)\n"
    )
    GOOD = (
        "import asyncio\n"
        "\n"
        "async def kick(coro):\n"
        "    task = asyncio.create_task(coro)\n"
        "    await task\n"
    )

    def test_fires_once(self):
        diag = assert_fires_once(
            "RH011", self.BAD, "repro/service/tasks.py"
        )
        assert "garbage-collected" in diag.message

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/service/tasks.py")


class TestRH012LockLifecycle:
    BAD = (
        "def locked_update(lock, fn):\n"
        "    lock.acquire()\n"
        "    fn()\n"
        "    lock.release()\n"
    )
    GOOD = (
        "def locked_update(lock, fn):\n"
        "    lock.acquire()\n"
        "    try:\n"
        "        fn()\n"
        "    finally:\n"
        "        lock.release()\n"
        "\n"
        "def with_statement(lock, fn):\n"
        "    with lock:\n"
        "        fn()\n"
    )

    def test_fires_once(self):
        diag = assert_fires_once(
            "RH012", self.BAD, "repro/core/locks.py"
        )
        assert "finally" in diag.message

    def test_clean_after_fix(self):
        assert_clean(self.GOOD, "repro/core/locks.py")


class TestSeverities:
    @pytest.mark.parametrize("rule,severity", [
        ("RH001", Severity.ERROR),
        ("RH002", Severity.ERROR),
        ("RH003", Severity.ERROR),
        ("RH004", Severity.WARNING),
        ("RH005", Severity.ERROR),
        ("RH006", Severity.ERROR),
        ("RH007", Severity.ERROR),
        ("RH008", Severity.WARNING),
        ("RH009", Severity.ERROR),
        ("RH010", Severity.WARNING),
        ("RH011", Severity.ERROR),
        ("RH012", Severity.ERROR),
    ])
    def test_per_rule_severity(self, rule, severity):
        assert host_rules()[rule].severity is severity

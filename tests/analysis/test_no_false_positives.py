"""The shipped N-body programs must lint clean and run sanitized-clean."""

import pytest

from repro.analysis import ProgramLinter, SanitizerContext
from repro.core import plummer
from repro.metalium import CloseDevice, CreateDevice
from repro.nbody_tt import TTForceBackend
from repro.nbody_tt.tiling import assign_tiles_to_cores
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.tile import tiles_needed


@pytest.fixture
def device():
    dev = CreateDevice(0)
    yield dev
    if dev.is_open:
        CloseDevice(dev)


@pytest.mark.parametrize("charge_only", [False, True],
                         ids=["per-block", "batched"])
@pytest.mark.parametrize("fmt", [DataFormat.FLOAT32, DataFormat.BFLOAT16])
def test_nbody_programs_lint_clean(device, charge_only, fmt):
    backend = TTForceBackend(device, n_cores=4, fmt=fmt)
    n_tiles = tiles_needed(256)
    backend._ensure_buffers(n_tiles)
    device_tiles = assign_tiles_to_cores(n_tiles, 1)[0]
    program = backend._program_for(
        0, device_tiles, n_tiles, charge_only=charge_only
    )
    report = ProgramLinter().lint(program, device=device)
    assert len(report) == 0, report.format()


def test_lint_leaves_device_accounting_untouched(device):
    backend = TTForceBackend(device, n_cores=4)
    n_tiles = tiles_needed(256)
    backend._ensure_buffers(n_tiles)
    device_tiles = assign_tiles_to_cores(n_tiles, 1)[0]
    program = backend._program_for(0, device_tiles, n_tiles)

    before = (
        device.dram.bytes_read,
        device.dram.bytes_written,
        [c.counter.busy_cycles() for c in device.cores],
    )
    ProgramLinter().lint(program, device=device)
    after = (
        device.dram.bytes_read,
        device.dram.bytes_written,
        [c.counter.busy_cycles() for c in device.cores],
    )
    assert before == after


@pytest.mark.parametrize("engine", ["per-block", "batched"])
def test_nbody_force_runs_sanitized_clean(device, engine):
    with SanitizerContext(halt=False) as ctx:
        backend = TTForceBackend(device, n_cores=4, engine=engine)
        system = plummer(128, seed=3)
        backend.compute(system.pos, system.vel, system.mass)
    assert ctx.report.ok, ctx.report.format()


def test_sanitized_run_matches_unsanitized_values(device):
    system = plummer(128, seed=5)
    backend = TTForceBackend(device, n_cores=4, engine="per-block")
    plain = backend.compute(system.pos, system.vel, system.mass)
    with SanitizerContext():
        checked = backend.compute(system.pos, system.vel, system.mass)
    assert (plain.acc == checked.acc).all()
    assert (plain.jerk == checked.jerk).all()

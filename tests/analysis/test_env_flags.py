"""The two raw-environ truthiness bugs Watcher-Host flagged (RH006).

Both gates read ``os.environ`` and compared against hand-picked
spellings: ``REPRO_SANITIZE not in ("", "0")`` made ``false``/``off``
*enable* the sanitizer, and ``REPRO_NATIVE != "0"`` made ``false`` keep
native kernels *on*.  Written to fail against those raw reads; the fix
routes both through :func:`repro.config.env_flag`.
"""

import pytest

from repro.analysis.hooks import env_sanitize_enabled
from repro.errors import ConfigurationError
from repro.wormhole._native_pack import native_enabled


class TestSanitizeFlag:
    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_truthy_spellings_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert env_sanitize_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "False", "no", "off"])
    def test_falsy_spellings_disable(self, monkeypatch, value):
        """``REPRO_SANITIZE=false`` is an opt-out, not an opt-in."""
        monkeypatch.setenv("REPRO_SANITIZE", value)
        assert env_sanitize_enabled() is False

    def test_unset_and_empty_disable(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert env_sanitize_enabled() is False
        monkeypatch.setenv("REPRO_SANITIZE", "")
        assert env_sanitize_enabled() is False

    def test_garbage_is_rejected_not_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "maybe")
        with pytest.raises(ConfigurationError, match="REPRO_SANITIZE"):
            env_sanitize_enabled()


class TestNativeFlag:
    def test_default_is_enabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE", raising=False)
        assert native_enabled() is True

    @pytest.mark.parametrize("value", ["1", "true", "yes", "on"])
    def test_truthy_spellings_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_NATIVE", value)
        assert native_enabled() is True

    @pytest.mark.parametrize("value", ["0", "false", "FALSE", "no", "off"])
    def test_falsy_spellings_disable(self, monkeypatch, value):
        """``REPRO_NATIVE=false`` must actually turn native kernels off."""
        monkeypatch.setenv("REPRO_NATIVE", value)
        assert native_enabled() is False

    def test_empty_means_default_on(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "")
        assert native_enabled() is True

    def test_garbage_is_rejected_not_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "fast")
        with pytest.raises(ConfigurationError, match="REPRO_NATIVE"):
            native_enabled()

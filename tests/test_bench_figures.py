"""Tests for figure-data generation and the bench report formatter."""

import csv

import pytest

from repro.bench.figures import generate_figure_data
from repro.bench.report import ExperimentReport, PaperValue
from repro.cli import main


class TestFigureData:
    @pytest.fixture(scope="class")
    def generated(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("figs")
        paths = generate_figure_data(
            out, seed=1, accel_jobs=6, ref_jobs=6, reset_failure_rate=0.0
        )
        return out, paths

    def test_all_figures_written(self, generated):
        _, paths = generated
        assert set(paths) == {"fig3a", "fig3b", "fig4", "fig5a", "fig5b",
                              "summary"}
        for path in paths.values():
            assert path.exists() and path.stat().st_size > 0

    def test_histogram_counts_match_jobs(self, generated):
        _, paths = generated
        with paths["fig3a"].open() as fh:
            rows = list(csv.DictReader(fh))
        assert sum(int(r["count"]) for r in rows) == 6
        lows = [float(r["bin_low_s"]) for r in rows]
        assert lows == sorted(lows)

    def test_trace_has_sim_window_marks(self, generated):
        _, paths = generated
        with paths["fig4"].open() as fh:
            rows = list(csv.DictReader(fh))
        flags = [int(r["in_simulation_window"]) for r in rows]
        assert 0 in flags and 1 in flags
        # the window is one contiguous run of 1s
        first, last = flags.index(1), len(flags) - 1 - flags[::-1].index(1)
        assert all(flags[first : last + 1])

    def test_summary_contains_paper_columns(self, generated):
        _, paths = generated
        with paths["summary"].open() as fh:
            rows = {r["metric"]: r for r in csv.DictReader(fh)}
        assert float(rows["speedup"]["paper"]) == 2.23
        assert float(rows["speedup"]["measured"]) > 1.5

    def test_cli_figures_command(self, tmp_path, capsys):
        rc = main(["figures", str(tmp_path / "out"),
                   "--accel-jobs", "3", "--ref-jobs", "3", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig4" in out and "summary" in out


class TestExperimentReport:
    def test_render_table(self):
        report = ExperimentReport("EX", "demo")
        report.add("metric", PaperValue(10.0, 0.5, "s"), 9.8, "s")
        report.add("free text", "whatever", "measured text")
        report.note("a note")
        text = report.render()
        assert "EX: demo" in text
        assert "10 +/- 0.5 s" in text
        assert "2.0% off" in text
        assert "note: a note" in text

    def test_zero_paper_value_no_delta(self):
        report = ExperimentReport("EX", "demo")
        report.add("z", PaperValue(0.0), 1.0)
        assert "% off" not in report.render()

"""Unit and property tests for the L1 SRAM allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.wormhole.l1 import L1_ALIGN, L1Allocation, L1Allocator
from repro.wormhole.params import WORMHOLE_N300


class TestAllocator:
    def test_capacity_matches_chip(self):
        alloc = L1Allocator(WORMHOLE_N300.l1_bytes)
        assert alloc.capacity == 1_536 * 1024

    def test_simple_allocate_free(self):
        l1 = L1Allocator(1024)
        a = l1.allocate(100)
        assert a.size == 128  # aligned up to 32
        assert l1.allocated_bytes == 128
        l1.free(a)
        assert l1.allocated_bytes == 0

    def test_alignment(self):
        l1 = L1Allocator(4096)
        for size in (1, 31, 32, 33, 100):
            a = l1.allocate(size)
            assert a.offset % L1_ALIGN == 0
            assert a.size % L1_ALIGN == 0
            assert a.size >= size

    def test_exhaustion_raises(self):
        l1 = L1Allocator(256)
        l1.allocate(256)
        with pytest.raises(AllocationError, match="exhausted"):
            l1.allocate(32)

    def test_invalid_sizes(self):
        l1 = L1Allocator(256)
        with pytest.raises(AllocationError):
            l1.allocate(0)
        with pytest.raises(AllocationError):
            l1.allocate(-5)

    def test_double_free_rejected(self):
        l1 = L1Allocator(256)
        a = l1.allocate(64)
        l1.free(a)
        with pytest.raises(AllocationError):
            l1.free(a)

    def test_free_unknown_rejected(self):
        l1 = L1Allocator(256)
        with pytest.raises(AllocationError):
            l1.free(L1Allocation(0, 64))

    def test_coalescing_allows_reuse(self):
        l1 = L1Allocator(96)
        a = l1.allocate(32)
        b = l1.allocate(32)
        c = l1.allocate(32)
        l1.free(a)
        l1.free(c)
        l1.free(b)  # middle free must merge all three
        big = l1.allocate(96)
        assert big.size == 96

    def test_first_fit_reuses_hole(self):
        l1 = L1Allocator(1024)
        a = l1.allocate(64)
        l1.allocate(64)
        l1.free(a)
        c = l1.allocate(64)
        assert c.offset == a.offset

    def test_reset(self):
        l1 = L1Allocator(256)
        l1.allocate(128)
        l1.reset()
        assert l1.free_bytes == 256
        assert l1.allocate(256).size == 256


@given(st.lists(st.integers(min_value=1, max_value=2000), min_size=1, max_size=40),
       st.randoms(use_true_random=False))
@settings(max_examples=50)
def test_allocator_invariants_under_random_workload(sizes, rnd):
    """Allocations never overlap, stay in bounds, and free restores space."""
    l1 = L1Allocator(64 * 1024)
    live: list[L1Allocation] = []
    for size in sizes:
        # Randomly free about a third of the time.
        if live and rnd.random() < 0.35:
            victim = live.pop(rnd.randrange(len(live)))
            l1.free(victim)
        try:
            a = l1.allocate(size)
        except AllocationError:
            continue
        assert 0 <= a.offset and a.end <= l1.capacity
        for other in live:
            assert a.end <= other.offset or other.end <= a.offset, "overlap"
        live.append(a)
    total = sum(a.size for a in live)
    assert l1.allocated_bytes == total
    for a in live:
        l1.free(a)
    assert l1.allocated_bytes == 0
    assert l1.allocate(l1.capacity).size == l1.capacity

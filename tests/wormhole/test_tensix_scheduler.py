"""Tests for the Tensix core and its cooperative kernel scheduler.

These exercise the paper's execution model end to end on one core: a read
kernel (data movement) producing tiles into a CB, a compute kernel consuming
them through wait_front/pop_front, and a write kernel draining results —
including deadlock detection when the CB protocol is violated.
"""

import numpy as np
import pytest

from repro.errors import CircularBufferError, KernelError, RegisterFileError
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.noc import NocCoordinate
from repro.wormhole.riscv import RiscvRole
from repro.wormhole.tensix import TensixCore
from repro.wormhole.tile import Tile


@pytest.fixture
def core():
    return TensixCore(0, NocCoordinate(0, 0))


class TestCoreResources:
    def test_riscv_complement(self, core):
        assert len(core.riscv) == 5
        movers = [r for r in core.riscv.values() if r.role.is_data_movement]
        compute = [r for r in core.riscv.values() if r.role.is_compute]
        assert len(movers) == 2 and len(compute) == 3

    def test_pipeline_stage_names(self, core):
        assert core.riscv[RiscvRole.T0].role.pipeline_stage == "UNPACK"
        assert core.riscv[RiscvRole.T1].role.pipeline_stage == "MATH"
        assert core.riscv[RiscvRole.T2].role.pipeline_stage == "PACK"
        assert core.riscv[RiscvRole.NC].role.pipeline_stage is None

    def test_cb_ids_unique(self, core):
        core.create_cb(0, 2)
        with pytest.raises(CircularBufferError, match="already exists"):
            core.create_cb(0, 2)

    def test_get_missing_cb(self, core):
        with pytest.raises(CircularBufferError, match="no cb"):
            core.get_cb(7)

    def test_unpack_pack_path(self, core):
        t = Tile.full(3.0)
        core.unpack_to_srcA(t)
        core.unpack_to_srcB(t)
        assert core.regs.srcA.read() == t
        out = core.sfpu.mul(core.regs.srcA.read(), core.regs.srcB.read())
        core.regs.dst.write(0, out)
        packed = core.pack_from_dst(0)
        assert np.all(packed.data == 9.0)
        assert core.counter.ops["unpack"] == 2
        assert core.counter.ops["pack"] == 1

    def test_dst_capacity_enforced_through_core(self, core):
        for i in range(8):
            core.regs.dst.write(i, Tile.zeros())
        with pytest.raises(RegisterFileError):
            core.regs.dst.write(8, Tile.zeros())


class TestKernelBinding:
    def test_compute_kernel_must_use_trisc(self, core):
        def body(c):
            yield

        with pytest.raises(KernelError, match="T0/T1/T2"):
            core.bind_kernel("k", RiscvRole.NC, body, kind="compute")

    def test_data_movement_kernel_must_use_nc_or_b(self, core):
        def body(c):
            yield

        with pytest.raises(KernelError, match="NC/B"):
            core.bind_kernel("k", RiscvRole.T1, body, kind="data_movement")

    def test_double_bind_rejected(self, core):
        def body(c):
            return
            yield

        core.bind_kernel("a", RiscvRole.T1, body)
        with pytest.raises(KernelError, match="already runs"):
            core.bind_kernel("b", RiscvRole.T1, body)


class TestPipelineExecution:
    def test_read_compute_write_pipeline(self, core):
        """The paper's three-kernel structure on one core."""
        cb_in = core.create_cb(0, capacity_pages=2)
        cb_out = core.create_cb(16, capacity_pages=2)
        n_tiles = 8
        source = [Tile.full(float(i)) for i in range(n_tiles)]
        sink: list[Tile] = []

        def read_kernel(c):
            for t in source:
                yield from cb_in.reserve_back(1)
                cb_in.write_page(t)
                cb_in.push_back(1)

        def compute_kernel(c):
            for _ in range(n_tiles):
                yield from cb_in.wait_front(1)
                (t,) = cb_in.pop_front(1)
                result = c.sfpu.mul_scalar(t, 2.0)
                yield from cb_out.reserve_back(1)
                cb_out.write_page(result)
                cb_out.push_back(1)

        def write_kernel(c):
            for _ in range(n_tiles):
                yield from cb_out.wait_front(1)
                sink.extend(cb_out.pop_front(1))

        core.bind_kernel("reader", RiscvRole.NC, read_kernel, kind="data_movement")
        core.bind_kernel("compute", RiscvRole.T1, compute_kernel, kind="compute")
        core.bind_kernel("writer", RiscvRole.B, write_kernel, kind="data_movement")
        core.run_kernels()

        assert [t.data[0] for t in sink] == [2.0 * i for i in range(n_tiles)]
        # CB capacity (2) < tiles (8): back-pressure was genuinely exercised.
        assert core.counter.ops["sfpu.scalar"] == n_tiles

    def test_deadlock_detected(self, core):
        cb = core.create_cb(0, capacity_pages=1)

        def consumer_only(c):
            yield from cb.wait_front(1)  # nobody ever produces

        core.bind_kernel("consumer", RiscvRole.T1, consumer_only)
        with pytest.raises(CircularBufferError, match="deadlock"):
            core.run_kernels()

    def test_mutual_deadlock_detected(self, core):
        a = core.create_cb(0, capacity_pages=1)
        b = core.create_cb(1, capacity_pages=1)

        def k1(c):
            yield from a.wait_front(1)
            b.try_reserve_back(1)
            b.write_page(Tile.zeros())
            b.push_back(1)

        def k2(c):
            yield from b.wait_front(1)
            a.try_reserve_back(1)
            a.write_page(Tile.zeros())
            a.push_back(1)

        core.bind_kernel("k1", RiscvRole.T1, k1)
        core.bind_kernel("k2", RiscvRole.T2, k2)
        with pytest.raises(CircularBufferError, match="deadlock"):
            core.run_kernels()

    def test_roles_freed_after_run(self, core):
        def body(c):
            return
            yield

        core.bind_kernel("once", RiscvRole.T0, body)
        core.run_kernels()
        core.bind_kernel("again", RiscvRole.T0, body)  # no "already runs"
        core.run_kernels()


class TestSteadyStateFastPath:
    """The single-pending-kernel fast path must count rounds exactly like
    the general round-robin loop (the double-buffering ablation reads
    scheduler rounds as its stall proxy)."""

    def test_single_kernel_rounds_counted_per_step(self, core):
        cb = core.create_cb(0, capacity_pages=4)

        def producer(c):
            for _ in range(5):
                yield from cb.reserve_back(1)
                cb.write_page(Tile.zeros())
                cb.push_back(1)
                cb.pop_front(1)  # self-drain: keeps space available

        core.bind_kernel("producer", RiscvRole.NC, producer,
                         kind="data_movement")
        # 5 yields from reserve_back (never blocked -> one yield each? no:
        # reserve_back yields zero times when space exists) — the kernel
        # body runs to completion on its first step, so exactly 1 round.
        assert core.run_kernels() == 1

    def test_single_kernel_multi_round(self, core):
        cb = core.create_cb(0, capacity_pages=8)
        steps = 4

        def stepper(c):
            for _ in range(steps):
                cb.try_reserve_back(1)  # CB event: not a deadlock
                cb.write_page(Tile.zeros())
                cb.push_back(1)
                yield

        core.bind_kernel("stepper", RiscvRole.T1, stepper)
        # one round per yield plus the finishing advance
        assert core.run_kernels() == steps + 1

    def test_tail_kernel_continues_round_count(self, core):
        """When the other kernels finish first, the surviving kernel's
        rounds keep accumulating on the same counter."""
        cb = core.create_cb(0, capacity_pages=16)
        n_tiles = 6

        def quick_producer(c):
            for _ in range(n_tiles):
                yield from cb.reserve_back(1)
                cb.write_page(Tile.zeros())
                cb.push_back(1)

        def slow_consumer(c):
            for _ in range(n_tiles):
                yield from cb.wait_front(1)
                cb.pop_front(1)
                yield  # extra step: outlives the producer

        core.bind_kernel("producer", RiscvRole.NC, quick_producer,
                         kind="data_movement")
        core.bind_kernel("consumer", RiscvRole.B, slow_consumer,
                         kind="data_movement")
        rounds = core.run_kernels()
        assert rounds > n_tiles  # tail rounds were counted

    def test_single_kernel_deadlock_still_detected(self, core):
        cb = core.create_cb(0, capacity_pages=1)

        def stuck(c):
            cb.try_reserve_back(1)
            cb.write_page(Tile.zeros())
            cb.push_back(1)
            yield from cb.reserve_back(1)  # full, nobody drains

        core.bind_kernel("stuck", RiscvRole.T1, stuck)
        with pytest.raises(CircularBufferError, match="deadlock"):
            core.run_kernels()


class TestReset:
    def test_reset_clears_state(self, core):
        core.create_cb(0, 4)
        core.sfpu.add(Tile.zeros(), Tile.zeros())
        core.reset()
        assert core.counter.compute_cycles == 0
        assert core.cbs == {}
        assert core.l1.allocated_bytes == 0
        assert core.busy_seconds() == 0.0

    def test_busy_seconds_positive_after_work(self, core):
        core.sfpu.add(Tile.zeros(), Tile.zeros())
        assert core.busy_seconds() > 0.0


class TestFormats:
    def test_bf16_core(self):
        core = TensixCore(1, NocCoordinate(1, 0), fmt=DataFormat.BFLOAT16)
        assert core.regs.dst.capacity == 16
        cb = core.create_cb(0, 2)
        assert cb.page_bytes == 2048

"""Direct tests for cycle/op accounting primitives."""

import pytest

from repro.wormhole.counters import CycleCounter, OpStats


class TestOpStats:
    def test_record_and_total(self):
        stats = OpStats()
        stats.record("sfpu.add", 3)
        stats.record("sfpu.add")
        stats.record("noc.read", 2)
        assert stats["sfpu.add"] == 4
        assert stats["noc.read"] == 2
        assert stats["missing"] == 0
        assert stats.total() == 6

    def test_merge(self):
        a = OpStats()
        a.record("x", 1)
        b = OpStats()
        b.record("x", 2)
        b.record("y", 5)
        a.merge(b)
        assert a["x"] == 3 and a["y"] == 5

    def test_reset(self):
        stats = OpStats()
        stats.record("x")
        stats.reset()
        assert stats.total() == 0


class TestCycleCounter:
    def test_compute_and_datamove_are_separate_timelines(self):
        c = CycleCounter()
        c.add_compute(100.0, op="sfpu.add")
        c.add_datamove(300.0, op="dram.read")
        assert c.compute_cycles == 100.0
        assert c.datamove_cycles == 300.0
        # overlapped pipeline: busy time is the max, not the sum
        assert c.busy_cycles() == 300.0

    def test_seconds_at_clock(self):
        c = CycleCounter()
        c.add_compute(2.0e9)
        assert c.seconds(1.0e9) == pytest.approx(2.0)

    def test_ops_optional(self):
        c = CycleCounter()
        c.add_compute(10.0)  # no op label
        assert c.ops.total() == 0
        c.add_compute(10.0, op="x", n_ops=7)
        assert c.ops["x"] == 7

    def test_reset(self):
        c = CycleCounter()
        c.add_compute(5.0, op="x")
        c.add_datamove(5.0)
        c.reset()
        assert c.busy_cycles() == 0.0
        assert c.ops.total() == 0

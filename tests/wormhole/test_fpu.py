"""Tests for the tensor-FPU matmul path."""

import numpy as np
import pytest

from repro.wormhole.counters import CycleCounter
from repro.wormhole.fpu import Fpu
from repro.wormhole.params import CostParams
from repro.wormhole.tile import Tile, tilize_2d, untilize_2d


def rand_matrix_tile(seed):
    rng = np.random.default_rng(seed)
    return Tile(rng.uniform(-1.0, 1.0, 1024))


class TestMatmul:
    def test_identity(self):
        fpu = Fpu()
        a = rand_matrix_tile(0)
        out = fpu.matmul(a, Fpu.identity_tile())
        assert np.allclose(out.as_matrix(), a.as_matrix(), rtol=1e-6)

    def test_matches_numpy_fp32(self):
        fpu = Fpu()
        a, b = rand_matrix_tile(1), rand_matrix_tile(2)
        expect = a.as_matrix().astype(np.float32) @ b.as_matrix().astype(np.float32)
        assert np.allclose(fpu.matmul(a, b).as_matrix(), expect, rtol=1e-6)

    def test_accumulate(self):
        fpu = Fpu()
        acc = Tile.full(1.0)
        a, b = rand_matrix_tile(3), rand_matrix_tile(4)
        out = fpu.matmul_accumulate(acc, a, b)
        expect = 1.0 + (
            a.as_matrix().astype(np.float32) @ b.as_matrix().astype(np.float32)
        )
        assert np.allclose(out.as_matrix(), expect, rtol=1e-5)

    def test_transpose(self):
        fpu = Fpu()
        a = rand_matrix_tile(5)
        assert np.array_equal(fpu.transpose(a).as_matrix(), a.as_matrix().T)

    def test_cycle_accounting(self):
        costs = CostParams()
        counter = CycleCounter()
        fpu = Fpu(counter, costs)
        fpu.matmul(rand_matrix_tile(6), rand_matrix_tile(7))
        assert counter.compute_cycles == pytest.approx(costs.fpu_cycles_per_tile_matmul)
        assert counter.ops["fpu.matmul"] == 1


class TestTiledMatmul:
    def test_blocked_matmul_via_tiles(self):
        """Full matrix product assembled from tile ops matches NumPy."""
        rng = np.random.default_rng(8)
        A = rng.uniform(-1, 1, (64, 96))
        B = rng.uniform(-1, 1, (96, 64))
        ga, gb = tilize_2d(A), tilize_2d(B)
        fpu = Fpu()
        out_grid = []
        for r in range(len(ga)):
            row = []
            for c in range(len(gb[0])):
                acc = Tile.zeros()
                for k in range(len(gb)):
                    acc = fpu.matmul_accumulate(acc, ga[r][k], gb[k][c])
                row.append(acc)
            out_grid.append(row)
        got = untilize_2d(out_grid, (64, 64))
        assert np.allclose(got, A @ B, rtol=1e-4, atol=1e-4)

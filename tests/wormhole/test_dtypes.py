"""Unit and property tests for device data formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataFormatError
from repro.wormhole.dtypes import (
    BFP8_BLOCK,
    DataFormat,
    dst_tile_capacity,
    quantize,
    storage_bytes_per_element,
)


class TestStorage:
    def test_bytes_per_element(self):
        assert storage_bytes_per_element(DataFormat.FLOAT32) == 4
        assert storage_bytes_per_element(DataFormat.BFLOAT16) == 2
        assert storage_bytes_per_element(DataFormat.FLOAT16) == 2
        assert storage_bytes_per_element(DataFormat.BFP8) == 1

    def test_dst_capacity_matches_paper(self):
        # Paper Section 3: dst holds 16 tiles in BFP16, halved in FP32.
        assert dst_tile_capacity(DataFormat.BFLOAT16) == 16
        assert dst_tile_capacity(DataFormat.FLOAT32) == 8

    def test_dst_capacity_bfp8(self):
        assert dst_tile_capacity(DataFormat.BFP8) == 32


class TestFloat32:
    def test_exact_for_representable(self):
        vals = np.array([0.0, 1.0, -2.5, 1024.0, 2.0**-20])
        assert np.array_equal(quantize(vals, DataFormat.FLOAT32), vals)

    def test_rounds_double_tail(self):
        x = np.array([1.0 + 2.0**-40])
        q = quantize(x, DataFormat.FLOAT32)
        assert q[0] == 1.0

    def test_relative_error_bound(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(-1e6, 1e6, 1000)
        q = quantize(x, DataFormat.FLOAT32)
        rel = np.abs(q - x) / np.abs(x)
        assert rel.max() < 2.0**-23


class TestBfloat16:
    def test_preserves_powers_of_two(self):
        vals = np.array([1.0, 2.0, 0.5, -8.0, 2.0**100, 2.0**-100])
        assert np.array_equal(quantize(vals, DataFormat.BFLOAT16), vals)

    def test_relative_error_bound(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(-1e4, 1e4, 1000)
        q = quantize(x, DataFormat.BFLOAT16)
        rel = np.abs(q - x) / np.maximum(np.abs(x), 1e-30)
        # bf16 has a 7-bit mantissa: half-ULP is 2^-8.
        assert rel.max() <= 2.0**-8

    def test_round_to_nearest_even(self):
        # 1 + 2^-8 sits exactly between 1.0 and the next bf16 (1 + 2^-7);
        # ties go to the even mantissa, i.e. down to 1.0.
        x = np.array([1.0 + 2.0**-8], dtype=np.float64)
        assert quantize(x, DataFormat.BFLOAT16)[0] == 1.0
        # Just above the tie rounds up.
        x = np.array([1.0 + 2.0**-8 + 2.0**-12])
        assert quantize(x, DataFormat.BFLOAT16)[0] == 1.0 + 2.0**-7

    def test_idempotent(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=256)
        once = quantize(x, DataFormat.BFLOAT16)
        twice = quantize(once, DataFormat.BFLOAT16)
        assert np.array_equal(once, twice)


class TestFloat16:
    def test_matches_numpy_half(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=128)
        assert np.array_equal(
            quantize(x, DataFormat.FLOAT16),
            x.astype(np.float16).astype(np.float64),
        )


class TestBfp8:
    def test_block_max_kept_to_mantissa_precision(self):
        x = np.zeros(BFP8_BLOCK)
        x[0] = 3.0
        q = quantize(x, DataFormat.BFP8)
        assert abs(q[0] - 3.0) <= 4.0 / 2**7

    def test_small_values_crushed_by_large_blockmate(self):
        x = np.zeros(BFP8_BLOCK)
        x[0] = 1000.0
        x[1] = 1e-3  # far below one mantissa ULP of the shared exponent
        q = quantize(x, DataFormat.BFP8)
        assert q[1] == 0.0

    def test_all_zero_block(self):
        q = quantize(np.zeros(2 * BFP8_BLOCK), DataFormat.BFP8)
        assert np.array_equal(q, np.zeros(2 * BFP8_BLOCK))

    def test_relative_error_within_block_scale(self):
        rng = np.random.default_rng(4)
        # one block of same-magnitude values: rel error bounded by ~2^-7
        x = rng.uniform(1.0, 2.0, BFP8_BLOCK)
        q = quantize(x, DataFormat.BFP8)
        assert np.abs(q - x).max() <= 2.0 / 2**7 + 1e-12

    def test_shape_preserved_and_padding_invisible(self):
        x = np.arange(1, 6, dtype=float).reshape(5)  # not a multiple of 16
        q = quantize(x, DataFormat.BFP8)
        assert q.shape == x.shape

    def test_2d_shape(self):
        x = np.ones((3, 7))
        q = quantize(x, DataFormat.BFP8)
        assert q.shape == (3, 7)
        assert np.allclose(q, 1.0)

    def test_nonfinite_passthrough(self):
        x = np.array([np.inf, -np.inf, np.nan, 1.0])
        q = quantize(x, DataFormat.BFP8)
        assert np.isinf(q[0]) and q[0] > 0
        assert np.isinf(q[1]) and q[1] < 0
        assert np.isnan(q[2])


class TestErrors:
    def test_quantize_rejects_bad_format(self):
        with pytest.raises(DataFormatError):
            quantize(np.zeros(4), "float32")  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

finite_arrays = st.lists(
    st.floats(
        min_value=-1e30, max_value=1e30, allow_nan=False, allow_infinity=False
    ),
    min_size=1,
    max_size=64,
).map(np.asarray)


@given(finite_arrays)
@settings(max_examples=60)
def test_quantize_idempotent_all_formats(x):
    for fmt in DataFormat:
        once = quantize(x, fmt)
        assert np.array_equal(quantize(once, fmt), once), fmt


@given(finite_arrays)
@settings(max_examples=60)
def test_quantize_preserves_sign_and_zero(x):
    for fmt in DataFormat:
        q = quantize(x, fmt)
        nonzero = q != 0.0
        assert np.all(np.sign(q[nonzero]) == np.sign(x[nonzero])), fmt
        assert np.all(q[x == 0.0] == 0.0), fmt


@given(finite_arrays)
@settings(max_examples=60)
def test_wider_formats_are_more_accurate(x):
    """FP32 error <= BF16 error element-wise (same exponent range)."""
    e32 = np.abs(quantize(x, DataFormat.FLOAT32) - x)
    e16 = np.abs(quantize(x, DataFormat.BFLOAT16) - x)
    assert np.all(e32 <= e16 + 1e-30)

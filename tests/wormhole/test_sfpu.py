"""Tests for the SFPU tile ALU: math correctness, precision, accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.wormhole.counters import CycleCounter
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.params import CostParams
from repro.wormhole.sfpu import Sfpu
from repro.wormhole.tile import TILE_ELEMENTS, Tile


@pytest.fixture
def sfpu():
    return Sfpu(CycleCounter())


def rand_tile(seed, lo=-10.0, hi=10.0):
    rng = np.random.default_rng(seed)
    return Tile(rng.uniform(lo, hi, TILE_ELEMENTS))


class TestBinaryOps:
    def test_add_sub_mul_match_fp32(self, sfpu):
        a, b = rand_tile(0), rand_tile(1)
        a32 = a.data.astype(np.float32)
        b32 = b.data.astype(np.float32)
        assert np.array_equal(sfpu.add(a, b).data, (a32 + b32).astype(np.float64))
        assert np.array_equal(sfpu.sub(a, b).data, (a32 - b32).astype(np.float64))
        assert np.array_equal(sfpu.mul(a, b).data, (a32 * b32).astype(np.float64))

    def test_mac_rounds_twice(self, sfpu):
        acc, a, b = rand_tile(2), rand_tile(3), rand_tile(4)
        expect = (
            acc.data.astype(np.float32)
            + (a.data.astype(np.float32) * b.data.astype(np.float32))
        ).astype(np.float64)
        assert np.allclose(sfpu.mac(acc, a, b).data, expect, rtol=1e-7)

    def test_min_max(self, sfpu):
        a, b = rand_tile(5), rand_tile(6)
        assert np.array_equal(sfpu.maximum(a, b).data, np.maximum(a.data, b.data))
        assert np.array_equal(sfpu.minimum(a, b).data, np.minimum(a.data, b.data))


class TestUnaryOps:
    def test_square(self, sfpu):
        a = rand_tile(7)
        a32 = a.data.astype(np.float32)
        assert np.array_equal(sfpu.square(a).data, (a32 * a32).astype(np.float64))

    def test_rsqrt_accurate(self, sfpu):
        a = rand_tile(8, lo=0.01, hi=100.0)
        got = sfpu.rsqrt(a).data
        rel = np.abs(got - 1.0 / np.sqrt(a.data)) * np.sqrt(a.data)
        assert rel.max() < 1e-6  # correctly rounded FP32

    def test_rsqrt_fast_is_less_accurate_but_close(self, sfpu):
        a = rand_tile(9, lo=0.01, hi=100.0)
        got = sfpu.rsqrt(a, fast=True).data
        exact = 1.0 / np.sqrt(a.data)
        rel = np.abs(got - exact) / exact
        assert 1e-7 < rel.max() < 1e-2

    def test_rsqrt_of_zero_is_inf(self, sfpu):
        t = sfpu.rsqrt(Tile.zeros())
        assert np.all(np.isinf(t.data))

    def test_recip(self, sfpu):
        a = rand_tile(10, lo=0.5, hi=10.0)
        got = sfpu.recip(a).data
        assert np.allclose(got, 1.0 / a.data, rtol=1e-6)

    def test_sqrt_abs_neg_copy(self, sfpu):
        a = rand_tile(11, lo=0.0, hi=50.0)
        assert np.allclose(sfpu.sqrt(a).data, np.sqrt(a.data), rtol=1e-6)
        assert np.array_equal(sfpu.abs(sfpu.neg(a)).data, a.data)
        assert sfpu.copy(a) == a

    def test_exp_log_roundtrip(self, sfpu):
        a = rand_tile(12, lo=0.1, hi=5.0)
        back = sfpu.exp(sfpu.log(a))
        assert np.allclose(back.data, a.data, rtol=1e-5)


class TestScalarAndSelect:
    def test_add_mul_scalar(self, sfpu):
        a = rand_tile(13)
        assert np.allclose(sfpu.add_scalar(a, 2.5).data,
                           (a.data.astype(np.float32) + np.float32(2.5)),
                           rtol=1e-7)
        assert np.allclose(sfpu.mul_scalar(a, -3.0).data,
                           a.data.astype(np.float32) * np.float32(-3.0),
                           rtol=1e-7)

    def test_scalar_is_quantized(self, sfpu):
        # An immediate that FP32 cannot represent is rounded before use.
        a = Tile.zeros()
        got = sfpu.add_scalar(a, 1.0 + 2.0**-40)
        assert np.all(got.data == 1.0)

    def test_where(self, sfpu):
        mask = Tile.from_vector(np.array([1.0, 0.0, 2.0] + [0.0] * 1021))
        a, b = Tile.full(10.0), Tile.full(20.0)
        got = sfpu.where(mask, a, b).data
        assert got[0] == 10.0 and got[1] == 20.0 and got[2] == 10.0


class TestReduce:
    def test_reduce_sum_exact_small_ints(self, sfpu):
        t = Tile.from_vector(np.arange(100, dtype=float))
        assert sfpu.reduce_sum(t) == pytest.approx(4950.0)

    def test_reduce_sum_pairwise_beats_naive_fp32(self, sfpu):
        rng = np.random.default_rng(14)
        vals = rng.uniform(0.0, 1.0, TILE_ELEMENTS)
        got = sfpu.reduce_sum(Tile(vals))
        assert got == pytest.approx(vals.sum(), rel=1e-5)


class TestAccounting:
    def test_cycles_accumulate_with_weights(self):
        costs = CostParams()
        counter = CycleCounter()
        sfpu = Sfpu(counter, costs)
        a, b = Tile.full(1.0), Tile.full(2.0)
        sfpu.add(a, b)
        sfpu.rsqrt(a)
        expected = costs.sfpu_cycles_per_tile_op * (
            costs.sfpu_weight("add") + costs.sfpu_weight("rsqrt")
        )
        assert counter.compute_cycles == pytest.approx(expected)
        assert counter.ops["sfpu.add"] == 1
        assert counter.ops["sfpu.rsqrt"] == 1

    def test_rsqrt_costs_more_than_add(self):
        costs = CostParams()
        assert costs.sfpu_weight("rsqrt") > costs.sfpu_weight("add")

    def test_fast_rsqrt_charges_one_op(self):
        counter = CycleCounter()
        sfpu = Sfpu(counter)
        sfpu.rsqrt(Tile.full(2.0), fast=True)
        assert counter.ops["sfpu.rsqrt"] == 1


class TestFormats:
    def test_bfloat16_pipeline(self):
        sfpu = Sfpu(fmt=DataFormat.BFLOAT16)
        a = Tile.full(1.0, DataFormat.BFLOAT16)
        b = Tile.full(2.0**-9, DataFormat.BFLOAT16)
        # 1 + 2^-9 is below bf16 resolution at 1.0: absorbed.
        assert np.all(sfpu.add(a, b).data == 1.0)

    def test_reconfigure(self):
        sfpu = Sfpu()
        sfpu.reconfigure(DataFormat.BFLOAT16)
        assert sfpu.fmt is DataFormat.BFLOAT16
        with pytest.raises(Exception):
            sfpu.reconfigure("fp8")  # type: ignore[arg-type]


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------

vals = st.floats(min_value=-1e6, max_value=1e6,
                 allow_nan=False, allow_infinity=False)


@given(vals, vals)
@settings(max_examples=60)
def test_sub_antisymmetric(x, y):
    sfpu = Sfpu()
    a, b = Tile.full(x), Tile.full(y)
    assert np.array_equal(sfpu.sub(a, b).data, -sfpu.sub(b, a).data)


@given(vals, vals)
@settings(max_examples=60)
def test_add_commutative(x, y):
    sfpu = Sfpu()
    a, b = Tile.full(x), Tile.full(y)
    assert sfpu.add(a, b) == sfpu.add(b, a)


@given(st.floats(min_value=1e-6, max_value=1e6, allow_nan=False))
@settings(max_examples=60)
def test_rsqrt_matches_recip_sqrt_within_fp32(x):
    sfpu = Sfpu()
    t = Tile.full(x)
    a = sfpu.rsqrt(t).data[0]
    b = sfpu.recip(sfpu.sqrt(t)).data[0]
    assert a == pytest.approx(b, rel=4e-7)

"""Tests for circular-buffer semantics: the paper's cb_* primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CircularBufferError
from repro.wormhole.circular_buffer import CBEventCounter, CircularBuffer
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.l1 import L1Allocator
from repro.wormhole.tile import Tile


def drain(gen):
    """Run a blocking primitive that must complete without yielding."""
    for _ in gen:
        raise AssertionError("primitive blocked unexpectedly")


class TestProducerConsumer:
    def test_reserve_write_push_wait_pop(self):
        cb = CircularBuffer(0, capacity_pages=4)
        drain(cb.reserve_back(2))
        cb.write_page(Tile.full(1.0))
        cb.write_page(Tile.full(2.0))
        cb.push_back(2)
        drain(cb.wait_front(2))
        got = cb.pop_front(2)
        assert got[0].data[0] == 1.0 and got[1].data[0] == 2.0

    def test_fifo_order(self):
        cb = CircularBuffer(0, capacity_pages=8)
        for i in range(5):
            assert cb.try_reserve_back(1)
            cb.write_page(Tile.full(float(i)))
            cb.push_back(1)
        out = cb.pop_front(5)
        assert [t.data[0] for t in out] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_peek_without_consume(self):
        cb = CircularBuffer(0, capacity_pages=2)
        cb.try_reserve_back(1)
        cb.write_page(Tile.full(9.0))
        cb.push_back(1)
        assert cb.get_page(0).data[0] == 9.0
        assert cb.pages_available() == 1  # still there

    def test_format_coercion_on_write(self):
        cb = CircularBuffer(0, capacity_pages=1, fmt=DataFormat.BFLOAT16)
        cb.try_reserve_back(1)
        cb.write_page(Tile.full(1.0 + 2.0**-10))  # fp32-only value
        cb.push_back(1)
        assert np.all(cb.pop_front(1)[0].data == 1.0)


class TestBackPressure:
    def test_reserve_blocks_when_full(self):
        cb = CircularBuffer(0, capacity_pages=2)
        assert cb.try_reserve_back(2)
        cb.write_page(Tile.zeros())
        cb.write_page(Tile.zeros())
        cb.push_back(2)
        assert not cb.try_reserve_back(1)  # full: back-pressure
        gen = cb.reserve_back(1)
        next(gen)  # blocked — yields
        cb.pop_front(1)  # consumer frees a page
        with pytest.raises(StopIteration):
            gen.send(None)  # now unblocked

    def test_wait_front_blocks_until_push(self):
        cb = CircularBuffer(0, capacity_pages=2)
        gen = cb.wait_front(1)
        next(gen)  # no data yet — blocked
        cb.try_reserve_back(1)
        cb.write_page(Tile.zeros())
        cb.push_back(1)
        with pytest.raises(StopIteration):
            gen.send(None)

    def test_reserved_pages_count_against_capacity(self):
        cb = CircularBuffer(0, capacity_pages=4)
        assert cb.try_reserve_back(3)
        assert cb.pages_free() == 1
        assert not cb.try_reserve_back(2)


class TestProtocolErrors:
    def test_write_without_reserve(self):
        cb = CircularBuffer(0, capacity_pages=2)
        with pytest.raises(CircularBufferError, match="reserve_back"):
            cb.write_page(Tile.zeros())

    def test_push_more_than_staged(self):
        cb = CircularBuffer(0, capacity_pages=2)
        cb.try_reserve_back(2)
        cb.write_page(Tile.zeros())
        with pytest.raises(CircularBufferError, match="staged"):
            cb.push_back(2)

    def test_pop_without_data(self):
        cb = CircularBuffer(0, capacity_pages=2)
        with pytest.raises(CircularBufferError, match="wait_front"):
            cb.pop_front(1)

    def test_request_exceeding_capacity_is_rejected_eagerly(self):
        cb = CircularBuffer(0, capacity_pages=2)
        with pytest.raises(CircularBufferError, match="never"):
            drain(cb.wait_front(3))
        with pytest.raises(CircularBufferError, match="never"):
            drain(cb.reserve_back(3))

    def test_nonpositive_counts(self):
        cb = CircularBuffer(0, capacity_pages=2)
        with pytest.raises(CircularBufferError):
            cb.pop_front(0)
        with pytest.raises(CircularBufferError):
            cb.try_reserve_back(-1)

    def test_zero_capacity_rejected(self):
        with pytest.raises(CircularBufferError):
            CircularBuffer(0, capacity_pages=0)

    def test_peek_beyond_visible(self):
        cb = CircularBuffer(0, capacity_pages=2)
        with pytest.raises(CircularBufferError, match="wait_front"):
            cb.get_page(0)


class TestL1Backing:
    def test_cb_consumes_l1(self):
        l1 = L1Allocator(16 * 4096)
        CircularBuffer(0, capacity_pages=8, l1=l1)
        assert l1.allocated_bytes == 8 * 4096

    def test_cb_respects_l1_budget(self):
        l1 = L1Allocator(4 * 4096)
        from repro.errors import AllocationError

        with pytest.raises(AllocationError):
            CircularBuffer(0, capacity_pages=8, l1=l1)

    def test_bf16_pages_are_half_size(self):
        l1 = L1Allocator(16 * 4096)
        CircularBuffer(0, capacity_pages=8, fmt=DataFormat.BFLOAT16, l1=l1)
        assert l1.allocated_bytes == 8 * 2048


class TestEvents:
    def test_state_changes_bump_events(self):
        events = CBEventCounter()
        cb = CircularBuffer(0, capacity_pages=2, events=events)
        before = events.events
        cb.try_reserve_back(1)
        cb.write_page(Tile.zeros())
        cb.push_back(1)
        cb.pop_front(1)
        assert events.events == before + 3  # reserve, push, pop


@given(st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=50),
       st.integers(min_value=1, max_value=8))
@settings(max_examples=40)
def test_cb_preserves_order_and_conservation(values, capacity):
    """Everything pushed comes out exactly once, in order."""
    cb = CircularBuffer(0, capacity_pages=capacity)
    pushed, popped = [], []
    pending = list(values)
    while pending or cb.pages_available():
        if pending and cb.try_reserve_back(1):
            v = pending.pop(0)
            cb.write_page(Tile.full(float(v)))
            cb.push_back(1)
            pushed.append(v)
        if cb.pages_available():
            popped.append(int(cb.pop_front(1)[0].data[0]))
    assert popped == pushed == list(values)

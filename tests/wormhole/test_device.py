"""Tests for the assembled WormholeDevice and reset fault injection."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DeviceNotOpenError, DeviceResetError
from repro.wormhole.device import GRID_H, GRID_W, ResetFaultModel, WormholeDevice
from repro.wormhole.tile import Tile


class TestDeviceAssembly:
    def test_64_cores_on_8x8_grid(self):
        dev = WormholeDevice()
        assert len(dev.cores) == 64
        coords = {(c.coord.x, c.coord.y) for c in dev.cores}
        assert len(coords) == 64
        assert all(0 <= x < GRID_W and 0 <= y < GRID_H for x, y in coords)

    def test_two_nocs(self):
        assert len(WormholeDevice().nocs) == 2

    def test_dram_is_12gb(self):
        assert WormholeDevice().dram.capacity == 12 * 1024**3


class TestLifecycle:
    def test_open_requires_reset(self):
        dev = WormholeDevice()
        with pytest.raises(DeviceNotOpenError, match="reset"):
            dev.open()

    def test_reset_open_close(self):
        dev = WormholeDevice()
        dev.reset()
        dev.open()
        assert dev.is_open
        dev.require_open()
        dev.close()
        assert not dev.is_open
        with pytest.raises(DeviceNotOpenError):
            dev.require_open()

    def test_reset_clears_core_and_dram_state(self):
        dev = WormholeDevice()
        dev.reset()
        dev.open()
        dev.cores[0].sfpu.add(Tile.zeros(), Tile.zeros())
        dev.dram.allocate(1024)
        dev.reset()
        assert dev.busy_seconds() == 0.0
        assert dev.dram.allocated_bytes == 0

    def test_busy_seconds_is_max_over_cores(self):
        dev = WormholeDevice()
        dev.reset()
        dev.cores[3].sfpu.add(Tile.zeros(), Tile.zeros())
        dev.cores[3].sfpu.add(Tile.zeros(), Tile.zeros())
        dev.cores[5].sfpu.add(Tile.zeros(), Tile.zeros())
        assert dev.busy_seconds() == pytest.approx(dev.cores[3].busy_seconds())

    def test_total_op_stats_merges(self):
        dev = WormholeDevice()
        dev.reset()
        dev.cores[0].sfpu.add(Tile.zeros(), Tile.zeros())
        dev.cores[1].sfpu.rsqrt(Tile.full(1.0))
        stats = dev.total_op_stats()
        assert stats["sfpu.add"] == 1
        assert stats["sfpu.rsqrt"] == 1

    def test_clear_counters(self):
        dev = WormholeDevice()
        dev.reset()
        dev.cores[0].sfpu.add(Tile.zeros(), Tile.zeros())
        dev.clear_counters()
        assert dev.busy_seconds() == 0.0


class TestResetFaults:
    def test_default_never_fails(self):
        model = ResetFaultModel()
        for _ in range(100):
            model.check()
        assert model.failures == 0

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            ResetFaultModel(1.5)
        with pytest.raises(ConfigurationError):
            ResetFaultModel(-0.1)

    def test_injected_failures_reproduce_campaign_rate(self):
        """Paper: 24 of 50 jobs failed during device reset (48%)."""
        rng = np.random.default_rng(2025)
        model = ResetFaultModel(failure_rate=24 / 50, rng=rng)
        dev = WormholeDevice(fault_model=model)
        outcomes = []
        for _ in range(500):
            try:
                dev.reset()
                outcomes.append(True)
            except DeviceResetError:
                outcomes.append(False)
        failure_fraction = outcomes.count(False) / len(outcomes)
        assert 0.40 <= failure_fraction <= 0.56
        assert model.attempts == 500

    def test_state_snapshot_round_trip(self):
        """Counter snapshots feed campaign checkpoints."""
        rng = np.random.default_rng(3)
        model = ResetFaultModel(failure_rate=0.5, rng=rng)
        for _ in range(20):
            try:
                model.check()
            except DeviceResetError:
                pass
        snap = model.state()
        assert snap == {"attempts": model.attempts,
                        "failures": model.failures}
        fresh = ResetFaultModel(failure_rate=0.5)
        fresh.restore(snap)
        assert fresh.attempts == model.attempts
        assert fresh.failures == model.failures

    def test_restore_rejects_inconsistent_state(self):
        model = ResetFaultModel()
        with pytest.raises(ConfigurationError):
            model.restore({"attempts": 1, "failures": 2})
        with pytest.raises(ConfigurationError):
            model.restore({"attempts": -1, "failures": 0})

    def test_failed_reset_leaves_device_unopenable(self):
        rng = np.random.default_rng(0)
        dev = WormholeDevice(fault_model=ResetFaultModel(1.0, rng))
        with pytest.raises(DeviceResetError):
            dev.reset()
        with pytest.raises(DeviceNotOpenError):
            dev.open()

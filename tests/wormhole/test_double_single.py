"""Tests for double-single arithmetic: error-free transforms and accuracy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DataFormatError
from repro.wormhole.double_single import DS, two_prod_fma, two_sum

finite32 = st.floats(
    min_value=-(2.0**100), max_value=2.0**100,
    allow_nan=False, allow_infinity=False, width=32,
)


class TestErrorFreeTransforms:
    @given(finite32, finite32)
    @settings(max_examples=100)
    def test_two_sum_is_exact(self, a, b):
        s, e = two_sum(np.float32(a), np.float32(b))
        # s + e == a + b exactly, in float64 (sum of two f32 fits f64
        # whenever it is representable at all; avoid overflow cases)
        if np.isfinite(s):
            exact = np.float64(a) + np.float64(b)
            assert np.float64(s) + np.float64(e) == exact

    @given(finite32, finite32)
    @settings(max_examples=100)
    def test_two_prod_is_exact(self, a, b):
        # error-free multiplication holds in the *normal* range only —
        # the correction term underflows for subnormal products, on real
        # FMA hardware as much as here
        from hypothesis import assume

        assume(a == 0.0 or 2.0**-40 < abs(a))
        assume(b == 0.0 or 2.0**-40 < abs(b))
        assume(abs(a * b) == 0.0 or abs(a * b) > 2.0**-100)
        p, e = two_prod_fma(np.float32(a), np.float32(b))
        if np.isfinite(p):
            exact = np.float64(a) * np.float64(b)
            assert np.float64(p) + np.float64(e) == exact


class TestDSArithmetic:
    def test_roundtrip_precision(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=1000)
        ds = DS.from_float64(x)
        assert ds.is_normalised()
        back = ds.to_float64()
        rel = np.abs(back - x) / np.abs(x)
        # ~48-bit mantissa: far beyond fp32's 2^-24
        assert rel.max() < 2.0**-45

    def test_add_beats_fp32(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=500)
        b = rng.normal(size=500)
        ds = DS.from_float64(a).add(DS.from_float64(b))
        err_ds = np.abs(ds.to_float64() - (a + b))
        err_32 = np.abs(
            (a.astype(np.float32) + b.astype(np.float32)).astype(np.float64)
            - (a + b)
        )
        assert err_ds.max() < 1e-4 * max(err_32.max(), 1e-30) + 1e-13

    def test_cancellation_preserved(self):
        """The defining DS win: subtracting nearly equal values keeps the
        low-order bits fp32 would destroy."""
        a = 1.0 + 1e-9
        b = 1.0
        ds = DS.from_float64(np.array([a])).sub(DS.from_float64(np.array([b])))
        assert ds.to_float64()[0] == pytest.approx(1e-9, rel=1e-6)
        f32 = np.float32(a) - np.float32(b)
        assert abs(float(f32) - 1e-9) > 1e-10  # fp32 loses it

    def test_mul_precision(self):
        rng = np.random.default_rng(2)
        a = rng.uniform(0.5, 2.0, 500)
        b = rng.uniform(0.5, 2.0, 500)
        ds = DS.from_float64(a).mul(DS.from_float64(b))
        rel = np.abs(ds.to_float64() - a * b) / (a * b)
        assert rel.max() < 2.0**-40

    def test_square(self):
        x = np.array([1.000000123456789])
        ds = DS.from_float64(x).square()
        assert ds.to_float64()[0] == pytest.approx(x[0] ** 2, rel=1e-13)

    def test_rsqrt_near_double_accuracy(self):
        rng = np.random.default_rng(3)
        x = rng.uniform(0.01, 100.0, 500)
        ds = DS.from_float64(x).rsqrt()
        rel = np.abs(ds.to_float64() - 1.0 / np.sqrt(x)) * np.sqrt(x)
        assert rel.max() < 1e-11  # vs fp32's ~6e-8

    def test_rsqrt_negative_rejected(self):
        with pytest.raises(DataFormatError):
            DS.from_float64(np.array([-1.0])).rsqrt()

    def test_mul_f32_scalar(self):
        x = np.array([1.234567890123])
        ds = DS.from_float64(x).mul_f32(3.0)
        assert ds.to_float64()[0] == pytest.approx(3.0 * x[0], rel=1e-13)


@given(st.integers(0, 2**31))
@settings(max_examples=30)
def test_ds_chain_stays_normalised_and_accurate(seed):
    """A random chain of DS ops tracks float64 to ~2^-40."""
    rng = np.random.default_rng(seed)
    vals = rng.uniform(0.5, 2.0, (4, 64))
    a, b, c, d = (DS.from_float64(v) for v in vals)
    result = a.mul(b).add(c.square()).sub(d)
    expect = vals[0] * vals[1] + vals[2] ** 2 - vals[3]
    got = result.to_float64()
    scale = np.maximum(np.abs(expect), 1.0)
    assert np.max(np.abs(got - expect) / scale) < 2.0**-38
    assert result.is_normalised(tol_ulps=2.0)

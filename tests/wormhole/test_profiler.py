"""Tests for the device profiler."""

import pytest

from repro.core import plummer
from repro.errors import ConfigurationError
from repro.metalium import CreateDevice
from repro.nbody_tt import TTForceBackend
from repro.wormhole.profiler import profile_device


@pytest.fixture(scope="module")
def profiled_device():
    device = CreateDevice(0)
    s = plummer(2048, seed=60)
    TTForceBackend(device, n_cores=4).compute(s.pos, s.vel, s.mass)
    return device


class TestProfiler:
    def test_requires_accumulated_work(self):
        device = CreateDevice(1)
        with pytest.raises(ConfigurationError, match="no accumulated work"):
            profile_device(device)

    def test_active_cores_match_tile_assignment(self, profiled_device):
        """2048 particles = 2 tiles: only 2 of the 4 cores carried work."""
        profile = profile_device(profiled_device)
        assert profile.active_cores == 2
        busy = [c for c in profile.cores if c.busy_seconds > 0]
        assert len(busy) == 2
        assert all(c.utilisation == pytest.approx(1.0) for c in busy)

    def test_critical_path_is_max_core(self, profiled_device):
        profile = profile_device(profiled_device)
        assert profile.critical_path_seconds == pytest.approx(
            max(c.busy_seconds for c in profile.cores)
        )

    def test_op_mix_reflects_force_kernel(self, profiled_device):
        profile = profile_device(profiled_device)
        busy = next(c for c in profile.cores if c.busy_seconds > 0)
        op_names = dict(busy.top_ops)
        assert any(name.startswith("sfpu.") for name in op_names)
        # the force kernel's dominant ops
        assert "sfpu.mul" in op_names or "sfpu.sub" in op_names

    def test_table_renders(self, profiled_device):
        text = profile_device(profiled_device).table(top=3)
        assert "critical path" in text
        assert "util" in text
        assert "100.0%" in text

    def test_cli_profile_flag(self, capsys):
        from repro.cli import main

        rc = main(["simulate", "--n", "1024", "--cycles", "1",
                   "--backend", "device", "--cores", "2", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Device occupancy" in out

    def test_cli_profile_ignored_for_cpu(self, capsys):
        from repro.cli import main

        rc = main(["simulate", "--n", "128", "--cycles", "1",
                   "--backend", "cpu", "--threads", "2", "--profile"])
        assert rc == 0
        assert "ignoring" in capsys.readouterr().out

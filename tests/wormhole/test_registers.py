"""Tests for the srcA/srcB/dst register-file model."""

import numpy as np
import pytest

from repro.errors import RegisterFileError
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.registers import DestRegister, RegisterFile, SourceRegister
from repro.wormhole.tile import Tile


class TestSourceRegister:
    def test_load_read(self):
        src = SourceRegister("srcA")
        t = Tile.full(2.0)
        src.load(t)
        assert src.read() == t
        assert src.valid

    def test_read_before_load(self):
        src = SourceRegister("srcB")
        with pytest.raises(RegisterFileError, match="srcB"):
            src.read()

    def test_invalidate(self):
        src = SourceRegister("srcA")
        src.load(Tile.zeros())
        src.invalidate()
        assert not src.valid
        with pytest.raises(RegisterFileError):
            src.read()


class TestDestRegister:
    def test_capacity_fp32_is_8(self):
        # Paper: 16 tiles in BFP16, "effectively halved" in FP32.
        assert DestRegister(DataFormat.FLOAT32).capacity == 8
        assert DestRegister(DataFormat.BFLOAT16).capacity == 16

    def test_write_read(self):
        dst = DestRegister()
        t = Tile.full(5.0)
        dst.write(3, t)
        assert dst.read(3) == t
        assert dst.occupied() == 1

    def test_spill_raises_with_cb_hint(self):
        dst = DestRegister(DataFormat.FLOAT32)
        with pytest.raises(RegisterFileError, match="circular buffers"):
            dst.write(8, Tile.zeros())

    def test_out_of_range_read(self):
        dst = DestRegister(DataFormat.BFLOAT16)
        with pytest.raises(RegisterFileError):
            dst.read(16)
        with pytest.raises(RegisterFileError):
            dst.read(-1)

    def test_read_before_write(self):
        dst = DestRegister()
        with pytest.raises(RegisterFileError, match="before write"):
            dst.read(0)

    def test_write_requantizes_to_dst_format(self):
        dst = DestRegister(DataFormat.BFLOAT16)
        fine = Tile.full(1.0 + 2.0**-10)  # not bf16 representable
        dst.write(0, fine)
        assert np.all(dst.read(0).data == 1.0)

    def test_clear(self):
        dst = DestRegister()
        dst.write(0, Tile.zeros())
        dst.clear()
        assert dst.occupied() == 0


class TestRegisterFile:
    def test_reconfigure_changes_capacity_and_clears(self):
        rf = RegisterFile(DataFormat.FLOAT32)
        rf.srcA.load(Tile.zeros())
        rf.dst.write(0, Tile.zeros())
        rf.reconfigure(DataFormat.BFLOAT16)
        assert rf.dst.capacity == 16
        assert not rf.srcA.valid
        assert rf.dst.occupied() == 0

"""Tests for the ethernet fabric and the card power model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.wormhole.ethernet import EthernetFabric, EthernetLink, LINK_LATENCY_S
from repro.wormhole.power import CardPowerModel, CardPowerParams, CardState


class TestEthernet:
    def test_single_device_has_no_links(self):
        fabric = EthernetFabric(1)
        assert fabric.links == []
        assert fabric.allgather_seconds(10**6) == 0.0
        assert fabric.broadcast_seconds(10**6) == 0.0

    def test_two_devices_one_link(self):
        fabric = EthernetFabric(2)
        assert len(fabric.links) == 1
        link = fabric.link_between(0, 1)
        assert link.other_end(0) == 1
        assert link.other_end(1) == 0

    def test_ring_topology(self):
        fabric = EthernetFabric(4)
        assert len(fabric.links) == 4
        fabric.link_between(0, 1)
        fabric.link_between(3, 0)
        with pytest.raises(ConfigurationError):
            fabric.link_between(0, 2)  # not adjacent on the ring

    def test_bandwidth_from_qsfp_rate(self):
        fabric = EthernetFabric(2)
        # 200 Gbps at 85% efficiency = 21.25 GB/s
        assert fabric.links[0].bandwidth_bytes_per_s == pytest.approx(21.25e9)

    def test_transfer_time_model(self):
        link = EthernetLink(0, 1, 20e9)
        assert link.transfer_seconds(0) == pytest.approx(LINK_LATENCY_S)
        assert link.transfer_seconds(20_000_000_000) == pytest.approx(
            1.0 + LINK_LATENCY_S
        )
        with pytest.raises(ConfigurationError):
            link.transfer_seconds(-1)

    def test_allgather_scales_with_ring_size(self):
        n_bytes = 10**7
        t2 = EthernetFabric(2).allgather_seconds(n_bytes)
        t4 = EthernetFabric(4).allgather_seconds(n_bytes)
        assert t4 == pytest.approx(3 * t2, rel=1e-9)

    def test_invalid_device_count(self):
        with pytest.raises(ConfigurationError):
            EthernetFabric(0)

    def test_other_end_requires_membership(self):
        link = EthernetLink(0, 1, 1e9)
        with pytest.raises(ConfigurationError):
            link.other_end(5)


class TestCardPower:
    def make(self, seed=0, **kwargs):
        return CardPowerModel(0, np.random.default_rng(seed),
                              CardPowerParams(**kwargs))

    def test_idle_band_10_to_11_w(self):
        """Paper Fig. 4: idle cards draw between 10 and 11 W."""
        for seed in range(8):
            model = self.make(seed)
            mean = model.mean_power(CardState.IDLE)
            assert 10.0 <= mean <= 11.0

    def test_powered_unused_below_20_w(self):
        model = self.make()
        samples = [model.sample_power(CardState.POWERED_UNUSED) for _ in range(200)]
        assert all(s < 20.0 for s in samples)
        assert np.mean(samples) > 15.0  # clearly above idle

    def test_active_band_26_to_33_w(self):
        model = self.make()
        compute = [model.sample_power(CardState.ACTIVE_COMPUTE) for _ in range(300)]
        host = [model.sample_power(CardState.ACTIVE_HOST_PHASE) for _ in range(300)]
        both = compute + host
        assert min(both) >= 25.0
        assert max(both) <= 34.0
        # peaks are the compute phases, dips the host phases
        assert np.mean(compute) > np.mean(host)

    def test_post_run_offset_small_but_nonzero(self):
        """Idle after the run differs slightly from idle before (Fig. 4)."""
        model = self.make()
        drift = model.mean_power(CardState.POST_RUN) - model.mean_power(CardState.IDLE)
        assert 0.0 < drift < 1.0

    def test_samples_clipped_to_physical_bounds(self):
        model = self.make(sample_noise_w=50.0)
        samples = [model.sample_power(CardState.IDLE) for _ in range(100)]
        assert all(9.5 <= s <= 35.0 for s in samples)

    def test_reproducible_given_seed(self):
        a = [self.make(7).sample_power(CardState.IDLE) for _ in range(5)]
        b = [self.make(7).sample_power(CardState.IDLE) for _ in range(5)]
        assert a == b

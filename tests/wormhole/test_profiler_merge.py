"""Pinning tests for profile_device's accumulation & merge semantics.

Scope absorbs the profiler's counters as per-core span attributes, so
the way counters accumulate across programs, stay isolated per device,
and behave on empty devices must not drift.  These tests freeze the
behaviour (including the explicit ``allow_empty`` escape hatch added
for ``repro simulate --profile``).
"""

import numpy as np
import pytest

from repro.core import plummer
from repro.errors import ConfigurationError
from repro.metalium import (
    CoreRange,
    CreateBuffer,
    CreateCircularBuffer,
    CreateDevice,
    CreateKernel,
    CreateProgram,
    EnqueueProgram,
    EnqueueWriteBuffer,
    GetCommandQueue,
    SetRuntimeArgs,
)
from repro.nbody_tt import TTForceBackend
from repro.wormhole import tilize_1d
from repro.wormhole.riscv import RiscvRole
from repro.wormhole.profiler import profile_device


def run_forces(device, n=1024, cores=2, seed=5):
    s = plummer(n, seed=seed)
    TTForceBackend(device, n_cores=cores).compute(s.pos, s.vel, s.mass)


def square_tiles_program(device, n_tiles=2):
    """A minimal read->compute program over ``n_tiles`` tiles, one core."""
    buf = CreateBuffer(device, n_tiles)
    queue = GetCommandQueue(device)
    EnqueueWriteBuffer(queue, buf, tilize_1d(np.arange(n_tiles * 1024.0)))

    program = CreateProgram(CoreRange(0, 1))
    CreateCircularBuffer(program, 0, 2)

    def reader(core, args):
        cb = core.get_cb(0)
        for t in args["my_tiles"]:
            yield from cb.reserve_back(1)
            cb.write_page(buf.noc_read_tile(core.core_id, t))
            cb.push_back(1)

    def compute(core, args):
        cb = core.get_cb(0)
        for _ in args["my_tiles"]:
            yield from cb.wait_front(1)
            (t,) = cb.pop_front(1)
            core.sfpu.square(t)

    CreateKernel(program, "reader", RiscvRole.NC, "data_movement", reader)
    CreateKernel(program, "compute", RiscvRole.T1, "compute", compute)
    SetRuntimeArgs(program, 0, {"my_tiles": list(range(n_tiles))})
    return queue, program


class TestEmptyDevices:
    def test_fresh_device_raises_by_default(self):
        with pytest.raises(ConfigurationError, match="no accumulated work"):
            profile_device(CreateDevice(0))

    def test_allow_empty_returns_an_empty_profile(self):
        profile = profile_device(CreateDevice(0), allow_empty=True)
        assert profile.cores == ()
        assert profile.critical_path_seconds == 0.0
        assert profile.mean_utilisation == 0.0
        assert profile.active_cores == 0

    def test_empty_profile_table_renders_a_fallback_line(self):
        text = profile_device(CreateDevice(0), allow_empty=True).table()
        assert text == "(no per-core profiler records)"

    def test_allow_empty_is_transparent_on_a_busy_device(self):
        device = CreateDevice(0)
        run_forces(device)
        assert (profile_device(device, allow_empty=True)
                == profile_device(device))


class TestAccumulation:
    def test_counters_accumulate_across_enqueued_programs(self):
        """Re-enqueueing a program doubles every per-core counter."""
        device = CreateDevice(0)
        queue, program = square_tiles_program(device)
        EnqueueProgram(queue, program)
        first = profile_device(device)
        EnqueueProgram(queue, program)
        second = profile_device(device)

        assert second.critical_path_seconds == pytest.approx(
            2.0 * first.critical_path_seconds
        )
        for c1, c2 in zip(first.cores, second.cores):
            assert c2.compute_cycles == pytest.approx(2.0 * c1.compute_cycles)
            assert c2.datamove_cycles == pytest.approx(
                2.0 * c1.datamove_cycles
            )
            assert c2.busy_seconds == pytest.approx(2.0 * c1.busy_seconds)

    def test_force_backend_profiles_the_last_evaluation_only(self):
        """TTForceBackend clears counters per evaluation: the profile is a
        snapshot of the *last* compute(), not a running total (this is
        what `repro simulate --profile` titles "last force evaluation")."""
        device = CreateDevice(0)
        s = plummer(1024, seed=5)
        backend = TTForceBackend(device, n_cores=2)
        backend.compute(s.pos, s.vel, s.mass)
        first = profile_device(device)
        backend.compute(s.pos, s.vel, s.mass)
        second = profile_device(device)
        assert second == first

    def test_utilisation_is_relative_to_the_merged_critical_path(self):
        device = CreateDevice(0)
        run_forces(device)
        profile = profile_device(device)
        worst = max(c.busy_seconds for c in profile.cores)
        for core in profile.cores:
            assert core.utilisation == pytest.approx(
                core.busy_seconds / worst
            )

    def test_top_ops_sorted_by_count(self):
        device = CreateDevice(0)
        run_forces(device)
        busy = next(
            c for c in profile_device(device).cores if c.busy_seconds > 0
        )
        counts = [n for _, n in busy.top_ops]
        assert counts == sorted(counts, reverse=True)
        assert len(busy.top_ops) <= 5


class TestMultiDevice:
    def test_profiles_are_per_device(self):
        """Work on one card never leaks into another card's profile."""
        dev_a = CreateDevice(0)
        dev_b = CreateDevice(1)
        run_forces(dev_a)
        # dev_b carried nothing: its profile is still the empty one.
        with pytest.raises(ConfigurationError):
            profile_device(dev_b)
        assert profile_device(dev_b, allow_empty=True).active_cores == 0

        # And running different work on dev_b leaves dev_a untouched.
        before = profile_device(dev_a)
        run_forces(dev_b, n=2048, cores=4, seed=9)
        assert profile_device(dev_a) == before

    def test_multi_device_backend_splits_work_across_cards(self):
        devices = [CreateDevice(0), CreateDevice(1)]
        s = plummer(2048, seed=7)  # 2 tiles -> one i-tile per card
        TTForceBackend(devices, n_cores=2).compute(s.pos, s.vel, s.mass)
        profiles = [profile_device(d) for d in devices]
        assert all(p.active_cores == 1 for p in profiles)

"""Unit and property tests for tilized tensors."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TileError
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.tile import (
    TILE_COLS,
    TILE_ELEMENTS,
    TILE_ROWS,
    Tile,
    tiles_needed,
    tilize_1d,
    tilize_2d,
    untilize_1d,
    untilize_2d,
)


class TestTile:
    def test_geometry_matches_paper(self):
        # 32x32 tiles of 1024 elements, the srcA/srcB capacity.
        assert TILE_ROWS == 32 and TILE_COLS == 32 and TILE_ELEMENTS == 1024

    def test_construction_quantizes(self):
        t = Tile(np.full(TILE_ELEMENTS, 1.0 + 2.0**-40))
        assert np.all(t.data == 1.0)

    def test_data_is_readonly(self):
        t = Tile.zeros()
        with pytest.raises(ValueError):
            t.data[0] = 1.0

    def test_wrong_shape_rejected(self):
        with pytest.raises(TileError):
            Tile(np.zeros(100))

    def test_from_vector_pads(self):
        t = Tile.from_vector(np.arange(10))
        assert np.array_equal(t.data[:10], np.arange(10, dtype=float))
        assert np.all(t.data[10:] == 0.0)

    def test_from_vector_overflow(self):
        with pytest.raises(TileError):
            Tile.from_vector(np.zeros(TILE_ELEMENTS + 1))

    def test_nbytes_by_format(self):
        assert Tile.zeros(DataFormat.FLOAT32).nbytes == 4096
        assert Tile.zeros(DataFormat.BFLOAT16).nbytes == 2048

    def test_as_matrix_roundtrip(self):
        vals = np.arange(TILE_ELEMENTS, dtype=float)
        t = Tile(vals)
        assert np.array_equal(t.as_matrix().ravel(), vals)

    def test_astype_requantizes(self):
        t = Tile.full(1.0 + 2.0**-10)  # representable in fp32, not bf16
        b = t.astype(DataFormat.BFLOAT16)
        assert np.all(b.data == 1.0)
        assert t.astype(DataFormat.FLOAT32) is t

    def test_equality_and_hash(self):
        a = Tile.full(3.0)
        b = Tile.full(3.0)
        assert a == b and hash(a) == hash(b)
        assert a != Tile.full(4.0)
        assert a != Tile.full(3.0, DataFormat.BFLOAT16)


class TestTilize1D:
    def test_tiles_needed(self):
        assert tiles_needed(0) == 0
        assert tiles_needed(1) == 1
        assert tiles_needed(1024) == 1
        assert tiles_needed(1025) == 2
        with pytest.raises(TileError):
            tiles_needed(-1)

    def test_paper_layout_n_102400(self):
        # The representative simulation's 102400 particles are exactly
        # 100 column tiles of 1024 elements.
        assert tiles_needed(102_400) == 100

    def test_roundtrip_exact_multiple(self):
        x = np.arange(2048, dtype=float)
        tiles = tilize_1d(x)
        assert len(tiles) == 2
        assert np.array_equal(untilize_1d(tiles, 2048), x)

    def test_roundtrip_with_padding(self):
        x = np.arange(1500, dtype=float)
        tiles = tilize_1d(x)
        assert len(tiles) == 2
        assert np.array_equal(untilize_1d(tiles, 1500), x)
        # pad region is zeros
        assert np.all(tiles[1].data[1500 - 1024 :] == 0.0)

    def test_custom_pad_value(self):
        tiles = tilize_1d(np.ones(10), pad_value=7.0)
        assert np.all(tiles[0].data[10:] == 7.0)

    def test_empty_input_yields_one_tile(self):
        tiles = tilize_1d(np.zeros(0))
        assert len(tiles) == 1

    def test_untilize_errors(self):
        with pytest.raises(TileError):
            untilize_1d([], 0)
        with pytest.raises(TileError):
            untilize_1d([Tile.zeros()], 2000)


class TestTilize2D:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        m = rng.normal(size=(50, 70))
        grid = tilize_2d(m)
        assert len(grid) == 2 and len(grid[0]) == 3
        back = untilize_2d(grid, (50, 70))
        assert np.array_equal(back, m.astype(np.float32).astype(np.float64))

    def test_exact_tile_multiple(self):
        m = np.ones((64, 32))
        grid = tilize_2d(m)
        assert len(grid) == 2 and len(grid[0]) == 1

    def test_rejects_non_matrix(self):
        with pytest.raises(TileError):
            tilize_2d(np.zeros(5))

    def test_ragged_grid_rejected(self):
        grid = tilize_2d(np.ones((32, 64)))
        grid[0].pop()
        grid.append([Tile.zeros(), Tile.zeros()])
        with pytest.raises(TileError):
            untilize_2d(grid, (32, 64))

    def test_oversized_request_rejected(self):
        grid = tilize_2d(np.ones((32, 32)))
        with pytest.raises(TileError):
            untilize_2d(grid, (33, 32))


class TestFaceOrder:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        mat = rng.normal(size=(32, 32))
        from repro.wormhole.tile import face_order_to_matrix, matrix_to_face_order

        assert np.array_equal(
            face_order_to_matrix(matrix_to_face_order(mat)), mat
        )

    def test_face_layout(self):
        """Faces are consecutive 16x16 quadrants: TL, TR, BL, BR."""
        from repro.wormhole.tile import matrix_to_face_order

        mat = np.zeros((32, 32))
        mat[:16, :16] = 1.0   # TL
        mat[:16, 16:] = 2.0   # TR
        mat[16:, :16] = 3.0   # BL
        mat[16:, 16:] = 4.0   # BR
        flat = matrix_to_face_order(mat)
        assert np.all(flat[0:256] == 1.0)
        assert np.all(flat[256:512] == 2.0)
        assert np.all(flat[512:768] == 3.0)
        assert np.all(flat[768:1024] == 4.0)

    def test_face_order_differs_from_row_major(self):
        from repro.wormhole.tile import matrix_to_face_order

        mat = np.arange(1024, dtype=float).reshape(32, 32)
        assert not np.array_equal(matrix_to_face_order(mat), mat.ravel())

    def test_validation(self):
        from repro.errors import TileError
        from repro.wormhole.tile import face_order_to_matrix, matrix_to_face_order

        with pytest.raises(TileError):
            matrix_to_face_order(np.zeros((16, 16)))
        with pytest.raises(TileError):
            face_order_to_matrix(np.zeros(100))


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------


@given(
    st.integers(min_value=1, max_value=5000),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40)
def test_tilize_untilize_roundtrip_fp32_values(n, seed):
    """tilize/untilize is the identity on FP32-representable data."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=n).astype(np.float32).astype(np.float64)
    assert np.array_equal(untilize_1d(tilize_1d(x), n), x)


@given(st.integers(min_value=0, max_value=10**7))
@settings(max_examples=100)
def test_tiles_needed_is_minimal(n):
    k = tiles_needed(n)
    assert k * TILE_ELEMENTS >= n
    assert (k - 1) * TILE_ELEMENTS < n or k == 0

"""Tests for the NoC and DRAM models."""

import numpy as np
import pytest

from repro.errors import AllocationError, ConfigurationError, DeviceMemoryError
from repro.wormhole.counters import CycleCounter
from repro.wormhole.dram import Dram
from repro.wormhole.noc import Noc, NocCoordinate
from repro.wormhole.params import WORMHOLE_N300


class TestNocCoordinate:
    def test_hops_torus_wraparound(self):
        a = NocCoordinate(0, 0)
        b = NocCoordinate(7, 7)
        # On an 8x8 torus the far corner is 1+1 hops, not 7+7.
        assert a.hops_to(b, 8, 8) == 2

    def test_hops_straight_line(self):
        assert NocCoordinate(1, 1).hops_to(NocCoordinate(4, 1), 8, 8) == 3

    def test_hops_symmetric(self):
        a, b = NocCoordinate(2, 5), NocCoordinate(6, 1)
        assert a.hops_to(b, 8, 8) == b.hops_to(a, 8, 8)


class TestNoc:
    def test_invalid_noc_id(self):
        with pytest.raises(ConfigurationError):
            Noc(5)

    def test_transaction_cost_scales_with_bytes(self):
        noc = Noc(0)
        small = noc.transaction_cycles(64)
        large = noc.transaction_cycles(64 * 1024)
        assert large > small
        # bandwidth term: delta matches bytes/width
        expected_delta = (64 * 1024 - 64) / WORMHOLE_N300.noc_bytes_per_cycle
        assert large - small == pytest.approx(expected_delta)

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            Noc(0).transaction_cycles(-1)

    def test_read_write_accounting(self):
        noc = Noc(0)
        counter = CycleCounter()
        noc.read(counter, 4096, NocCoordinate(0, 0), NocCoordinate(3, 0))
        noc.write(counter, 2048)
        assert noc.stats.transactions == 2
        assert noc.stats.bytes_read == 4096
        assert noc.stats.bytes_written == 2048
        assert noc.stats.total_hops == 3
        assert counter.datamove_cycles > 0
        assert counter.compute_cycles == 0  # NoC never lands on compute


class TestDram:
    def test_allocate_within_capacity(self):
        dram = Dram()
        a = dram.allocate(1024)
        assert a.size == 1024
        assert dram.allocated_bytes == 1024

    def test_capacity_is_12_gb(self):
        assert Dram().capacity == 12 * 1024**3

    def test_exhaustion(self):
        dram = Dram()
        dram.allocate(dram.capacity - 32)
        with pytest.raises(AllocationError, match="exhausted"):
            dram.allocate(1024)

    def test_write_read_roundtrip(self):
        dram = Dram()
        a = dram.allocate(4096)
        payload = np.arange(512, dtype=np.float64)
        dram.write(a.address, payload.tobytes())
        back = np.frombuffer(dram.read(a.address, 4096), dtype=np.float64)
        assert np.array_equal(back, payload)

    def test_write_at_offset(self):
        dram = Dram()
        a = dram.allocate(128)
        dram.write(a.address + 64, b"\xff" * 8)
        data = dram.read(a.address, 128)
        assert data[64:72] == b"\xff" * 8
        assert data[:64] == b"\x00" * 64

    def test_out_of_bounds_access(self):
        dram = Dram()
        a = dram.allocate(64)
        with pytest.raises(DeviceMemoryError):
            dram.read(a.address + 32, 64)
        with pytest.raises(DeviceMemoryError):
            dram.write(a.address + a.size, b"x")

    def test_access_after_free(self):
        dram = Dram()
        a = dram.allocate(64)
        dram.free(a)
        with pytest.raises(DeviceMemoryError):
            dram.read(a.address, 8)

    def test_double_free(self):
        dram = Dram()
        a = dram.allocate(64)
        dram.free(a)
        with pytest.raises(AllocationError):
            dram.free(a)

    def test_bandwidth_cost_model(self):
        dram = Dram()
        # one full second of traffic at the effective bandwidth: a large
        # interleaved transfer stripes over all six channels
        n = int(WORMHOLE_N300.dram_bandwidth_bytes_per_s)
        cycles = dram.transfer_cycles(n)
        assert cycles == pytest.approx(WORMHOLE_N300.clock_hz)

    def test_banking_model(self):
        """Single-page transfers see one of the six GDDR6 channels; large
        interleaved transfers see all of them; pinned transfers never
        stripe."""
        dram = Dram()
        one_page = dram.transfer_cycles(4096)
        assert one_page == pytest.approx(
            4096 * 6 / WORMHOLE_N300.dram_bandwidth_bytes_per_s
            * WORMHOLE_N300.clock_hz
        )
        six_pages = dram.transfer_cycles(6 * 4096)
        assert six_pages == pytest.approx(one_page)  # 6x data on 6 channels
        pinned = dram.transfer_cycles(6 * 4096, interleaved=False)
        assert pinned == pytest.approx(6 * one_page)
        # partial striping: k <= 6 pages over k channels take constant time
        three = dram.transfer_cycles(3 * 4096)
        assert three == pytest.approx(one_page)

    def test_traffic_counters(self):
        dram = Dram()
        a = dram.allocate(1024)
        counter = CycleCounter()
        dram.write(a.address, b"\x01" * 100, counter)
        dram.read(a.address, 50, counter)
        assert dram.bytes_written == 100
        assert dram.bytes_read == 50
        assert counter.datamove_cycles > 0

    def test_reset_clears_everything(self):
        dram = Dram()
        dram.allocate(1024)
        dram.reset()
        assert dram.allocated_bytes == 0
        assert dram.bytes_read == 0 and dram.bytes_written == 0

"""Import-graph test enforcing the layer map in docs/ARCHITECTURE.md.

The edge list itself lives in :mod:`repro.analysis.hostlint.layering` —
the same ``ALLOWED_DEPS`` / ``EXEMPT`` the static ``RH009`` host-lint
rule enforces, so this test and ``repro-lint --host`` can never disagree
about which cross-layer imports are legal.  If this test fails you
either added an import that violates the layering — move the shared code
down a layer instead — or you deliberately changed the architecture, in
which case update the shared edge list *and* docs/ARCHITECTURE.md
together.
"""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.hostlint import HostLinter
from repro.analysis.hostlint.layering import (
    ALLOWED_DEPS,
    EXEMPT,
    imported_packages,
    package_of,
)

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def _rel_parts(path: Path) -> tuple[str, ...]:
    return path.relative_to(SRC).parts


def test_every_package_is_in_the_layer_map():
    packages = {
        package_of(_rel_parts(p)) for p in SRC.rglob("*.py")
    } - EXEMPT
    unmapped = packages - set(ALLOWED_DEPS)
    assert not unmapped, (
        f"packages missing from ALLOWED_DEPS (add them to "
        f"repro/analysis/hostlint/layering.py and docs/ARCHITECTURE.md): "
        f"{sorted(unmapped)}"
    )


def test_layering():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        rel_parts = _rel_parts(path)
        package = package_of(rel_parts)
        if package in EXEMPT or (
            path.name == "__init__.py" and len(rel_parts) == 1
        ):
            continue
        allowed = ALLOWED_DEPS[package]
        tree = ast.parse(path.read_text())
        for target, _lineno in imported_packages(tree, rel_parts):
            if target == package or target == "__init__":
                continue
            if target not in allowed:
                violations.append(
                    f"{path.relative_to(SRC.parent)}: layer '{package}' "
                    f"imports '{target}' (allowed: {sorted(allowed)})"
                )
    assert not violations, "\n".join(sorted(set(violations)))


def test_rh009_agrees_with_this_test():
    """The static RH009 rule and this test share one edge list.

    A clean tree must be clean under both; the linter restricted to
    RH009 over the real sources is the cross-check.
    """
    linter = HostLinter(rules=["RH009"])
    report = linter.lint_paths([SRC])
    assert not report.diagnostics, report.format()


def test_architecture_doc_lists_every_layer():
    doc = (
        Path(__file__).resolve().parent.parent / "docs" / "ARCHITECTURE.md"
    ).read_text()
    missing = [name for name in ALLOWED_DEPS if f"`{name}`" not in doc]
    assert not missing, (
        f"docs/ARCHITECTURE.md does not mention layers: {missing}"
    )

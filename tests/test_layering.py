"""Import-graph test enforcing the layer map in docs/ARCHITECTURE.md.

Walks every module under ``src/repro`` with :mod:`ast` (no imports are
executed) and checks that each package only imports from the packages
the architecture document allows.  If this test fails you either added
an import that violates the layering — move the shared code down a
layer instead — or you deliberately changed the architecture, in which
case update ``ALLOWED_DEPS`` *and* docs/ARCHITECTURE.md together.
"""

from __future__ import annotations

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: package -> intra-repro packages it may import from.  Top-level
#: modules (config, errors, simclock) count as packages of their own
#: name; the aggregation surfaces (``cli``, ``bench`` and the package
#: ``__init__``) may import anything and are exempted below.
ALLOWED_DEPS: dict[str, set[str]] = {
    "errors": set(),
    "config": {"errors"},
    "simclock": {"errors"},
    "observability": {"errors"},
    "core": {"errors", "observability", "backends"},
    "wormhole": {"errors"},
    "analysis": {"errors", "wormhole"},
    "metalium": {"errors", "wormhole", "analysis"},
    "cpuref": {"errors", "core", "backends"},
    "nbody_tt": {"errors", "core", "wormhole", "metalium", "backends"},
    # The backends layer: its protocol module sits *below* core (core
    # re-exports ForceBackend/ForceEvaluation from it), while the
    # registry/sharded/runspec modules aggregate the competitors above
    # it via lazy imports.  The AST walk counts both directions, hence
    # the mutual core <-> backends allowance.
    "backends": {
        "errors", "config", "observability", "core", "wormhole",
        "metalium", "cpuref", "nbody_tt",
    },
    "telemetry": {
        "errors", "simclock", "core", "cpuref", "nbody_tt", "wormhole",
        "backends",
    },
    # The job server executes RunSpecs either as modelled campaign
    # replays (telemetry, lazily) or real integrations (core, lazily).
    "service": {"errors", "backends", "observability", "telemetry", "core"},
}

#: Modules allowed to import from any layer: the user-facing
#: aggregation points, by design at the top of the stack.
EXEMPT = {"cli", "bench", "__init__"}


def _package_of(path: Path) -> str:
    """The layer name a source file belongs to."""
    rel = path.relative_to(SRC)
    if len(rel.parts) == 1:
        return rel.stem            # top-level module: config.py, cli.py...
    return rel.parts[0]            # subpackage: core/, wormhole/...


def _imported_packages(path: Path) -> set[str]:
    """Intra-repro packages imported by one module (static analysis)."""
    tree = ast.parse(path.read_text())
    rel = path.relative_to(SRC)
    targets: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0:
                if module == "repro" or module.startswith("repro."):
                    parts = module.split(".")
                    targets.add(parts[1] if len(parts) > 1 else "__init__")
                continue
            # Relative import: resolve against this file's location.
            # depth = how many package levels up `level` dots reach.
            depth = len(rel.parts) - 1 - (node.level - 1)
            if depth <= 0:
                # Climbed to the repro package root (or its top-level
                # modules): `from ..errors import ...` etc.
                parts = module.split(".") if module else []
                if parts:
                    targets.add(parts[0])
                else:
                    # `from .. import x` — names are top-level modules
                    # or subpackages.
                    targets.update(alias.name for alias in node.names)
            # depth > 0 means a sibling import inside the same
            # package — always allowed.
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    parts = alias.name.split(".")
                    targets.add(parts[1] if len(parts) > 1 else "__init__")
    return targets


def test_every_package_is_in_the_layer_map():
    packages = {
        _package_of(p) for p in SRC.rglob("*.py")
    } - EXEMPT
    unmapped = packages - set(ALLOWED_DEPS)
    assert not unmapped, (
        f"packages missing from ALLOWED_DEPS (add them here and to "
        f"docs/ARCHITECTURE.md): {sorted(unmapped)}"
    )


def test_layering():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        package = _package_of(path)
        if package in EXEMPT or path.name == "__init__.py" and len(
            path.relative_to(SRC).parts
        ) == 1:
            continue
        allowed = ALLOWED_DEPS[package]
        for target in sorted(_imported_packages(path)):
            if target == package or target == "__init__":
                continue
            if target not in allowed:
                violations.append(
                    f"{path.relative_to(SRC.parent)}: layer '{package}' "
                    f"imports '{target}' (allowed: {sorted(allowed)})"
                )
    assert not violations, "\n".join(violations)


def test_architecture_doc_lists_every_layer():
    doc = (
        Path(__file__).resolve().parent.parent / "docs" / "ARCHITECTURE.md"
    ).read_text()
    missing = [name for name in ALLOWED_DEPS if f"`{name}`" not in doc]
    assert not missing, (
        f"docs/ARCHITECTURE.md does not mention layers: {missing}"
    )

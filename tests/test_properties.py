"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.energy import energy_report
from repro.core.forces import accel_jerk_on_targets, accel_jerk_reference
from repro.core.hermite import correct, predict
from repro.core.initial_conditions import plummer
from repro.cpuref.openmp import chunk_ranges
from repro.cpuref.mpi import split_counts
from repro.nbody_tt.tiling import assign_tiles_to_cores
from repro.telemetry.energy import integrate_power
from repro.telemetry.rapl import Rapl, unwrap_register_series
from repro.wormhole.circular_buffer import CircularBuffer
from repro.wormhole.tile import Tile


# ---------------------------------------------------------------------------
# Work-decomposition properties: every decomposition covers each unit once.
# ---------------------------------------------------------------------------

@given(st.integers(0, 5000), st.integers(1, 64))
@settings(max_examples=80)
def test_chunk_ranges_partition(n, k):
    covered = []
    for sl in chunk_ranges(n, k):
        covered.extend(range(sl.start, sl.stop))
    assert covered == list(range(n))


@given(st.integers(0, 5000), st.integers(1, 64))
@settings(max_examples=80)
def test_split_counts_partition(n, k):
    counts = split_counts(n, k)
    assert sum(counts) == n
    assert max(counts) - min(counts) <= 1


@given(st.integers(1, 500), st.integers(1, 128))
@settings(max_examples=80)
def test_tile_assignment_partition(n_tiles, n_cores):
    flat = sorted(
        t for core in assign_tiles_to_cores(n_tiles, n_cores) for t in core
    )
    assert flat == list(range(n_tiles))
    sizes = [len(c) for c in assign_tiles_to_cores(n_tiles, n_cores)]
    assert max(sizes) - min(sizes) <= 1


# ---------------------------------------------------------------------------
# Hermite interpolation property: exact on cubic acceleration histories.
# ---------------------------------------------------------------------------

@given(st.integers(0, 2**31), st.floats(0.01, 1.0))
@settings(max_examples=40)
def test_hermite_corrector_exact_on_cubics(seed, dt):
    # dt below ~0.01 makes the a^(3) reconstruction (a division by dt^3)
    # ill-conditioned in float64; the property itself is dt-independent.
    rng = np.random.default_rng(seed)
    a0, j0, s0, c0, x0, v0 = (rng.normal(size=(2, 3)) for _ in range(6))
    a1 = a0 + dt * j0 + dt**2 / 2 * s0 + dt**3 / 6 * c0
    j1 = j0 + dt * s0 + dt**2 / 2 * c0
    step = correct(x0, v0, a0, j0, a1, j1, dt)
    # velocity: exact integral of the cubic acceleration
    v_exact = v0 + dt * a0 + dt**2 / 2 * j0 + dt**3 / 6 * s0 + dt**4 / 24 * c0
    assert np.allclose(step.vel, v_exact, rtol=1e-9, atol=1e-9)
    assert np.allclose(step.crackle, c0, rtol=1e-7, atol=1e-7)


@given(st.integers(0, 2**31), st.floats(1e-4, 0.5))
@settings(max_examples=40)
def test_predictor_is_taylor_consistent(seed, dt):
    """predict(dt1+dt2) == predict(dt1) then constant-jerk predict(dt2)
    when acceleration history is exactly linear (jerk constant)."""
    rng = np.random.default_rng(seed)
    x, v, a, j = (rng.normal(size=(3, 3)) for _ in range(4))
    x_full, v_full = predict(x, v, a, j, 2 * dt)
    x_half, v_half = predict(x, v, a, j, dt)
    a_half = a + dt * j
    x_two, v_two = predict(x_half, v_half, a_half, j, dt)
    assert np.allclose(x_two, x_full, rtol=1e-9, atol=1e-9)
    assert np.allclose(v_two, v_full, rtol=1e-9, atol=1e-9)


# ---------------------------------------------------------------------------
# Force properties on random physical systems.
# ---------------------------------------------------------------------------

@given(st.integers(4, 48), st.integers(0, 2**31))
@settings(max_examples=30, deadline=None)
def test_subset_forces_consistent_with_full(n, seed):
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3))
    mass = rng.uniform(0.01, 1.0, n)
    targets = rng.choice(n, size=rng.integers(1, n + 1), replace=False)
    targets.sort()
    acc_full, jerk_full = accel_jerk_reference(pos, vel, mass, softening=0.01)
    acc, jerk = accel_jerk_on_targets(pos, vel, mass, targets, softening=0.01)
    assert np.allclose(acc, acc_full[targets], rtol=1e-12, atol=1e-12)
    assert np.allclose(jerk, jerk_full[targets], rtol=1e-12, atol=1e-12)


@given(st.integers(2, 32), st.integers(0, 2**31), st.floats(0.01, 1.0))
@settings(max_examples=30, deadline=None)
def test_force_scales_with_g(n, seed, g):
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3))
    mass = rng.uniform(0.01, 1.0, n)
    a1, j1 = accel_jerk_reference(pos, vel, mass, softening=0.05, G=1.0)
    ag, jg = accel_jerk_reference(pos, vel, mass, softening=0.05, G=g)
    assert np.allclose(ag, g * a1, rtol=1e-12)
    assert np.allclose(jg, g * j1, rtol=1e-12)


# ---------------------------------------------------------------------------
# Energy integration properties.
# ---------------------------------------------------------------------------

@given(
    st.lists(st.floats(0.0, 500.0), min_size=3, max_size=60),
    st.integers(0, 2**31),
)
@settings(max_examples=60)
def test_integration_additive_over_windows(watts, seed):
    """E[t0,t2] = E[t0,t1] + E[t1,t2] on sample boundaries."""
    times = np.arange(float(len(watts)))
    w = np.asarray(watts)
    rng = np.random.default_rng(seed)
    mid = int(rng.integers(1, len(watts) - 1))
    total = integrate_power(times, w, 0.0, float(len(watts)))
    left = integrate_power(times, w, 0.0, float(mid))
    right = integrate_power(times, w, float(mid), float(len(watts)))
    assert total == pytest.approx(left + right, rel=1e-12, abs=1e-9)


@given(st.lists(st.floats(10.0, 400.0), min_size=2, max_size=400))
@settings(max_examples=40)
def test_rapl_unwrap_always_matches_perf(powers):
    rapl = Rapl()
    readings = [rapl.read_register("package-0")]
    for p in powers:
        rapl.accumulate(p, 7.0)  # long intervals force frequent wraps
        readings.append(rapl.read_register("package-0"))
    unwrapped = unwrap_register_series(readings)
    assert unwrapped == pytest.approx(
        rapl.read_perf("package-0"), abs=2.0 * 2.0**-16 * len(powers)
    )


# ---------------------------------------------------------------------------
# Circular buffer conservation under random interleavings.
# ---------------------------------------------------------------------------

@given(
    st.lists(st.booleans(), min_size=1, max_size=200),
    st.integers(1, 6),
)
@settings(max_examples=50)
def test_cb_random_interleaving_conserves_pages(ops, capacity):
    cb = CircularBuffer(0, capacity_pages=capacity)
    pushed = popped = 0
    for do_push in ops:
        if do_push:
            if cb.try_reserve_back(1):
                cb.write_page(Tile.full(float(pushed)))
                cb.push_back(1)
                pushed += 1
        else:
            if cb.try_wait_front(1):
                (page,) = cb.pop_front(1)
                assert page.data[0] == float(popped)  # FIFO order
                popped += 1
    assert cb.pages_available() == pushed - popped
    assert 0 <= cb.pages_available() <= capacity


# ---------------------------------------------------------------------------
# Initial-condition invariants.
# ---------------------------------------------------------------------------

@given(st.integers(16, 256), st.integers(0, 2**31))
@settings(max_examples=15, deadline=None)
def test_plummer_always_henon_units(n, seed):
    s = plummer(n, seed=seed)
    rep = energy_report(s)
    assert rep.total == pytest.approx(-0.25, abs=1e-8)
    assert s.total_mass == pytest.approx(1.0, rel=1e-12)
    assert np.allclose(s.center_of_mass(), 0.0, atol=1e-10)

"""Tests for the mixed-precision SIMD kernel and the OpenMP model."""

import numpy as np
import pytest

from repro.core.forces import accel_jerk_reference
from repro.core.initial_conditions import plummer
from repro.core.validation import validate_forces
from repro.cpuref.openmp import OpenMPModel, chunk_ranges
from repro.cpuref.params import CpuCostParams, EPYC_9124_DUAL
from repro.cpuref.simd import interactions_count, simd_accel_jerk
from repro.errors import ConfigurationError, NBodyError


class TestSimdKernel:
    def test_close_to_float64_reference(self):
        s = plummer(256, seed=0)
        a32, j32 = simd_accel_jerk(s.pos, s.vel, s.mass)
        a64, j64 = accel_jerk_reference(s.pos, s.vel, s.mass)
        assert np.allclose(a32, a64, rtol=1e-4, atol=1e-5)
        assert np.allclose(j32, j64, rtol=1e-3, atol=1e-4)

    def test_passes_paper_gate(self):
        s = plummer(512, seed=1)
        a, j = simd_accel_jerk(s.pos, s.vel, s.mass)
        assert validate_forces(s.pos, s.vel, s.mass, a, j).passed

    def test_result_dtype_is_float64(self):
        s = plummer(64, seed=2)
        a, j = simd_accel_jerk(s.pos, s.vel, s.mass)
        assert a.dtype == np.float64 and j.dtype == np.float64

    def test_block_size_does_not_change_pair_math(self):
        s = plummer(200, seed=3)
        a1, j1 = simd_accel_jerk(s.pos, s.vel, s.mass, j_block=64)
        a2, j2 = simd_accel_jerk(s.pos, s.vel, s.mass, j_block=4096)
        # identical pair terms, only FP64-accumulation grouping differs
        assert np.allclose(a1, a2, rtol=1e-7)
        assert np.allclose(j1, j2, rtol=1e-6, atol=1e-9)

    def test_i_slice_composition(self):
        s = plummer(100, seed=4)
        a_full, j_full = simd_accel_jerk(s.pos, s.vel, s.mass)
        a_parts = np.empty_like(a_full)
        j_parts = np.empty_like(j_full)
        for sl in (slice(0, 30), slice(30, 77), slice(77, 100)):
            a_parts[sl], j_parts[sl] = simd_accel_jerk(
                s.pos, s.vel, s.mass, i_slice=sl
            )
        assert np.array_equal(a_parts, a_full)
        assert np.array_equal(j_parts, j_full)

    def test_softening(self):
        pos = np.array([[0.0, 0, 0], [1e-7, 0, 0]])
        vel = np.zeros((2, 3))
        mass = np.ones(2) * 0.5
        a, _ = simd_accel_jerk(pos, vel, mass, softening=0.01)
        assert np.all(np.isfinite(a))

    def test_coincident_unsoftened_raises(self):
        pos = np.zeros((2, 3))
        with pytest.raises(NBodyError):
            simd_accel_jerk(pos, np.zeros((2, 3)), np.ones(2))

    def test_interactions_count(self):
        assert interactions_count(102_400) == 102_400 * 102_399

    def test_input_validation(self):
        with pytest.raises(NBodyError):
            simd_accel_jerk(np.zeros((3, 3)), np.zeros((2, 3)), np.ones(3))
        with pytest.raises(NBodyError):
            simd_accel_jerk(
                np.zeros((2, 3)), np.zeros((2, 3)), np.ones(2), softening=-1
            )


class TestChunkRanges:
    def test_balanced(self):
        chunks = chunk_ranges(10, 3)
        assert chunks == [slice(0, 4), slice(4, 7), slice(7, 10)]

    def test_covers_everything_once(self):
        for n, k in [(0, 1), (5, 8), (100, 7), (64, 64)]:
            chunks = chunk_ranges(n, k)
            covered = []
            for c in chunks:
                covered.extend(range(c.start, c.stop))
            assert covered == list(range(n))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            chunk_ranges(10, 0)
        with pytest.raises(ConfigurationError):
            chunk_ranges(-1, 2)


class TestOpenMPModel:
    def test_host_matches_paper(self):
        assert EPYC_9124_DUAL.physical_cores == 32
        assert EPYC_9124_DUAL.hardware_threads == 64
        assert EPYC_9124_DUAL.max_clock_hz == 3.71e9
        assert EPYC_9124_DUAL.simd_width_fp32 == 16

    def test_thread_validation(self):
        with pytest.raises(ConfigurationError):
            OpenMPModel(0)
        with pytest.raises(ConfigurationError):
            OpenMPModel(65)

    def test_smt_gives_no_speedup(self):
        """Paper: using all hardware threads did not improve performance."""
        t32 = OpenMPModel(32).force_eval_seconds(102_400)
        t64 = OpenMPModel(64).force_eval_seconds(102_400)
        assert t64 >= t32  # only sync overhead grows

    def test_scaling_is_nearly_linear_below_core_count(self):
        t8 = OpenMPModel(8).force_eval_seconds(102_400)
        t16 = OpenMPModel(16).force_eval_seconds(102_400)
        assert t8 / t16 == pytest.approx(2.0, rel=0.02)

    def test_calibration_hits_paper_reference_time(self):
        """E1 anchor: 32 threads, N=102400, 10 cycles => 672.90 s."""
        model = OpenMPModel(32)
        assert model.job_seconds(102_400, 10) == pytest.approx(672.90, rel=0.01)

    def test_serial_term_scales_with_n(self):
        m = OpenMPModel(4)
        assert m.serial_seconds(2000) > m.serial_seconds(1000)

    def test_custom_costs(self):
        costs = CpuCostParams(seconds_per_interaction=1e-9,
                              sync_seconds_per_thread=0.0)
        m = OpenMPModel(2, costs=costs)
        assert m.force_eval_seconds(1000) == pytest.approx(500 * 1000 * 1e-9)

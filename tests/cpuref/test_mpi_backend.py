"""Tests for the MPI-like communicator and the CPU force backend."""

import numpy as np
import pytest

from repro.core.forces import accel_jerk_reference
from repro.core.initial_conditions import plummer
from repro.cpuref.mpi import FakeComm, split_counts
from repro.cpuref.reference import CPUForceBackend
from repro.errors import ConfigurationError


class TestSplitCounts:
    def test_balanced(self):
        assert split_counts(10, 3) == [4, 3, 3]
        assert split_counts(9, 3) == [3, 3, 3]
        assert sum(split_counts(102_400, 7)) == 102_400

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            split_counts(5, 0)


class TestFakeComm:
    def test_size_rank(self):
        comm = FakeComm(4, 2)
        assert comm.Get_size() == 4 and comm.Get_rank() == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FakeComm(0)
        with pytest.raises(ConfigurationError):
            FakeComm(2, 5)

    def test_allgatherv_places_data(self):
        comm = FakeComm(3, 1)
        counts = [2, 3, 2]
        recv = np.zeros((7, 3))
        send = np.ones((3, 3)) * 5.0
        comm.Allgatherv(send, recv, counts)
        assert np.all(recv[2:5] == 5.0)
        assert np.all(recv[:2] == 0.0) and np.all(recv[5:] == 0.0)

    def test_allgatherv_shape_checks(self):
        comm = FakeComm(2, 0)
        with pytest.raises(ConfigurationError):
            comm.Allgatherv(np.zeros((2, 3)), np.zeros((5, 3)), [2, 2])
        with pytest.raises(ConfigurationError):
            comm.Allgatherv(np.zeros((3, 3)), np.zeros((4, 3)), [2, 2])

    def test_collective_cost_accumulates(self):
        comm = FakeComm(4, 0)
        comm.Allgatherv(np.zeros((1, 3)), np.zeros((4, 3)), [1, 1, 1, 1])
        comm.Barrier()
        assert comm.collective_seconds > 0.0

    def test_single_rank_costs_nothing(self):
        comm = FakeComm(1, 0)
        recv = np.zeros((4, 3))
        comm.Allgatherv(np.ones((4, 3)), recv, [4])
        assert comm.collective_seconds == 0.0
        assert np.all(recv == 1.0)

    def test_bcast_root_validation(self):
        with pytest.raises(ConfigurationError):
            FakeComm(2, 0).Bcast(np.zeros(4), root=7)


class TestCPUForceBackend:
    def test_forces_match_simd_reference(self):
        s = plummer(200, seed=0)
        backend = CPUForceBackend(4, noisy=False)
        ev = backend.compute(s.pos, s.vel, s.mass)
        a64, j64 = accel_jerk_reference(s.pos, s.vel, s.mass)
        assert np.allclose(ev.acc, a64, rtol=1e-4, atol=1e-5)
        assert np.allclose(ev.jerk, j64, rtol=1e-3, atol=1e-4)

    def test_thread_count_does_not_change_results(self):
        s = plummer(150, seed=1)
        e1 = CPUForceBackend(1, noisy=False).compute(s.pos, s.vel, s.mass)
        e8 = CPUForceBackend(8, noisy=False).compute(s.pos, s.vel, s.mass)
        assert np.array_equal(e1.acc, e8.acc)
        assert np.array_equal(e1.jerk, e8.jerk)

    def test_timeline_segment_is_host_tagged(self):
        s = plummer(64, seed=2)
        ev = CPUForceBackend(2, noisy=False).compute(s.pos, s.vel, s.mass)
        assert len(ev.segments) == 1
        assert ev.segments[0].tag == "host"
        assert ev.model_seconds > 0

    def test_noise_is_per_job_and_bounded(self):
        rng = np.random.default_rng(0)
        factors = {
            CPUForceBackend(2, rng=rng).noise_factor for _ in range(10)
        }
        assert len(factors) == 10  # distinct per backend (per job)
        assert all(0.5 <= f <= 1.5 for f in factors)
        assert CPUForceBackend(2, noisy=False).noise_factor == 1.0

    def test_mpi_decomposition_matches_single_rank(self):
        s = plummer(100, seed=3)
        single = CPUForceBackend(2, noisy=False).compute(s.pos, s.vel, s.mass)
        # emulate 4 ranks and merge their slices as Allgatherv would
        from repro.cpuref.mpi import FakeComm, split_counts

        counts = split_counts(100, 4)
        acc = np.zeros((100, 3))
        jerk = np.zeros((100, 3))
        for rank in range(4):
            comm = FakeComm(4, rank)
            b = CPUForceBackend(2, comm=comm, noisy=False)
            ev = b.compute(s.pos, s.vel, s.mass)
            start = sum(counts[:rank])
            sl = slice(start, start + counts[rank])
            acc[sl] = ev.acc[sl]
            jerk[sl] = ev.jerk[sl]
        assert np.array_equal(acc, single.acc)
        assert np.array_equal(jerk, single.jerk)

    def test_job_model_validation(self):
        b = CPUForceBackend(2, noisy=False)
        with pytest.raises(ConfigurationError):
            b.job_model_seconds(0, 10)

    def test_backend_name(self):
        assert CPUForceBackend(32, noisy=False).name == "cpu-ref-omp32-mpi1"

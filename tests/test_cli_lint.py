"""``repro-lint`` CLI: device and host passes share one exit-code contract.

Exit 0 means clean, 1 means findings, 2 means the invocation itself was
wrong (unknown rule, missing baseline file, bad flags) or the linter
failed internally — so CI can tell "the code is bad" from "the gate is
broken".
"""

import json

import pytest

from repro.cli import lint_main, main

BAD = (
    "import random\n"
    "\n"
    "def jitter():\n"
    "    return random.random()\n"
)


@pytest.fixture
def bad_tree(tmp_path):
    pkg = tmp_path / "repro" / "cpuref"
    pkg.mkdir(parents=True)
    (pkg / "noise.py").write_text(BAD)
    return pkg


class TestHostExitCodes:
    def test_clean_repo_exits_0(self, capsys):
        assert main(["lint", "--host"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1(self, bad_tree, capsys):
        rc = main(["lint", "--host", "--paths", str(bad_tree)])
        assert rc == 1
        assert "RH003" in capsys.readouterr().out

    def test_warning_findings_exit_0_unless_escalated(self, tmp_path,
                                                      capsys):
        pkg = tmp_path / "repro" / "core"
        pkg.mkdir(parents=True)
        (pkg / "order.py").write_text(
            "def collect(items):\n"
            "    return [i for i in set(items)]\n"
        )
        assert main(["lint", "--host", "--paths", str(pkg)]) == 0
        assert main(["lint", "--host", "--paths", str(pkg),
                     "--warnings-as-errors"]) == 1
        assert "RH004" in capsys.readouterr().out

    def test_unknown_rule_exits_2_without_traceback(self, capsys):
        rc = main(["lint", "--host", "--rules", "RH999"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "unknown host lint rule" in captured.err
        assert "Traceback" not in captured.err

    def test_missing_baseline_file_exits_2(self, tmp_path, capsys):
        rc = main(["lint", "--host",
                   "--baseline", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "not found" in capsys.readouterr().err

    def test_write_baseline_requires_baseline_path(self, capsys):
        rc = main(["lint", "--host", "--write-baseline"])
        assert rc == 2
        assert "--write-baseline requires" in capsys.readouterr().err

    def test_usage_error_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--engine", "warp"])
        assert excinfo.value.code == 2

    def test_rules_flag_restricts_the_pass(self, bad_tree, capsys):
        rc = main(["lint", "--host", "--paths", str(bad_tree),
                   "--rules", "RH004"])
        assert rc == 0
        assert "clean" in capsys.readouterr().out


class TestHostBaselineFlow:
    def test_write_then_gate_round_trip(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        rc = main(["lint", "--host", "--paths", str(bad_tree),
                   "--baseline", str(baseline), "--write-baseline"])
        assert rc == 0
        assert "wrote 1 baseline entry" in capsys.readouterr().out

        rc = main(["lint", "--host", "--paths", str(bad_tree),
                   "--baseline", str(baseline)])
        assert rc == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_json_report_shape(self, bad_tree, capsys):
        rc = main(["lint", "--host", "--paths", str(bad_tree), "--json"])
        assert rc == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["counts"]["errors"] == 1
        finding = payload["findings"][0]
        assert finding["rule"] == "RH003"
        assert finding["path"].endswith("noise.py")
        assert finding["line"] == 4


class TestDeviceExitCodes:
    def test_clean_device_programs_exit_0(self, capsys):
        rc = main(["lint", "--n", "512", "--cores", "2"])
        assert rc == 0
        assert "WH" not in capsys.readouterr().out.replace("WH001", "")

    def test_internal_error_exits_2_without_traceback(self, capsys):
        rc = main(["lint", "--n", "-5", "--cores", "2"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "repro-lint: error:" in captured.err
        assert "Traceback" not in captured.err


class TestLintMainEntryPoint:
    def test_forwards_to_lint_subcommand(self, bad_tree, capsys):
        rc = lint_main(["--host", "--paths", str(bad_tree)])
        assert rc == 1
        assert "RH003" in capsys.readouterr().out

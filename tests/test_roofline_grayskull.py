"""Tests for the roofline characterisation and the Grayskull parameter set."""

import pytest

from repro.bench.roofline import characterise_force_kernel
from repro.errors import ConfigurationError
from repro.wormhole.device import WormholeDevice
from repro.wormhole.ethernet import EthernetFabric
from repro.wormhole.params import GRAYSKULL_E150, ChipParams


class TestRoofline:
    def test_kernel_is_compute_bound(self):
        rl = characterise_force_kernel()
        assert rl.compute_bound
        assert rl.kernel_intensity > 1000.0

    def test_bytes_per_pair(self):
        """7 pages of 4 KiB per 1024x1024 pair block."""
        rl = characterise_force_kernel()
        assert rl.kernel_bytes_per_pair == pytest.approx(
            7 * 4096 / 1024**2
        )

    def test_flops_per_pair_counts_macs_twice(self):
        rl = characterise_force_kernel()
        # 9 sub + 3 square + 4 add + 10 mul + 6 mac(x2) + 1 rsqrt + 1 scalar
        assert rl.kernel_flops_per_pair == 9 + 3 + 4 + 10 + 12 + 1 + 1

    def test_peak_scales_with_cores(self):
        full = characterise_force_kernel(n_cores=64)
        half = characterise_force_kernel(n_cores=32)
        assert full.peak_compute_flops == pytest.approx(
            2.0 * half.peak_compute_flops
        )

    def test_attainable_capped_by_memory_for_streaming_kernels(self):
        """Sanity: a hypothetical chip with tiny bandwidth flips the bound."""
        slow_mem = ChipParams(dram_bandwidth_bytes_per_s=1.0e4)
        rl = characterise_force_kernel(slow_mem)
        assert rl.ridge_flops_per_byte > rl.kernel_intensity
        assert not rl.compute_bound
        assert rl.attainable_flops < rl.peak_compute_flops


class TestGrayskull:
    def test_parameters(self):
        gs = GRAYSKULL_E150
        assert gs.n_tensix_cores == 120
        assert gs.grid_w * gs.grid_h >= 120
        assert gs.dram_bytes == 8 * 1024**3
        assert gs.qsfp_gbps == 0.0

    def test_device_builds_with_grayskull_grid(self):
        dev = WormholeDevice(chip=GRAYSKULL_E150)
        assert len(dev.cores) == 120
        coords = {(c.coord.x, c.coord.y) for c in dev.cores}
        assert len(coords) == 120
        assert all(x < 12 and y < 10 for x, y in coords)

    def test_no_multi_card_fabric(self):
        with pytest.raises(ConfigurationError, match="no chip-to-chip"):
            EthernetFabric(2, GRAYSKULL_E150)
        # single device is fine
        assert EthernetFabric(1, GRAYSKULL_E150).links == []

    def test_grid_validation(self):
        with pytest.raises(ConfigurationError, match="grid"):
            ChipParams(n_tensix_cores=100, grid_w=8, grid_h=8)

    def test_functional_force_on_grayskull(self):
        """The whole port runs unchanged on the other chip model."""
        from repro.core import plummer, validate_forces
        from repro.nbody_tt import TTForceBackend

        dev = WormholeDevice(chip=GRAYSKULL_E150)
        dev.reset()
        dev.open()
        s = plummer(1024, seed=50)
        backend = TTForceBackend(dev, n_cores=4)
        ev = backend.compute(s.pos, s.vel, s.mass)
        assert validate_forces(s.pos, s.vel, s.mass, ev.acc, ev.jerk).passed

"""Unit tests for the Scope exporters and the REPRO_TRACE hook."""

import json
from pathlib import Path

from repro.observability import (
    chrome_trace_events,
    format_flamegraph,
    trace_from_env,
    validate_chrome_trace,
    write_chrome_trace,
    Trace,
)


def sample_trace():
    trace = Trace()
    with trace.span("run", n=3):
        trace.add_span("host_bit", 1.0, category="host")
        with trace.span("device", category="device") as dev:
            start = trace.now
            trace.add_concurrent_span(
                "k", start, 2.0, track="dev0/core0", parent=dev, cycles=7,
            )
            trace.advance(2.0)
    return trace


class TestChromeTrace:
    def test_events_cover_metadata_and_spans(self):
        events = chrome_trace_events(sample_trace())
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in meta} == {"process_name", "thread_name"}
        assert len(spans) == 4
        # microsecond timestamps of modelled seconds
        host = next(e for e in spans if e["name"] == "host_bit")
        assert host["ts"] == 0.0 and host["dur"] == 1.0e6

    def test_tracks_become_thread_lanes(self):
        events = chrome_trace_events(sample_trace())
        lanes = {
            e["args"]["name"]: e["tid"]
            for e in events if e.get("name") == "thread_name"
        }
        assert lanes["main"] == 0
        assert lanes["dev0/core0"] == 1
        core = next(e for e in events if e["name"] == "k")
        assert core["tid"] == 1 and core["args"] == {"cycles": 7}

    def test_write_and_validate_roundtrip(self, tmp_path):
        path = write_chrome_trace(sample_trace(), tmp_path / "t.json")
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["timebase"].startswith("modelled")


class TestValidator:
    def test_flags_missing_trace_events(self):
        assert validate_chrome_trace({}) == ["payload has no traceEvents list"]

    def test_flags_bad_category_negative_time_unknown_tid(self):
        payload = {"traceEvents": [
            {"ph": "M", "name": "thread_name", "pid": 0, "tid": 0,
             "args": {"name": "main"}},
            {"ph": "X", "name": "a", "cat": "gpu", "ts": 0, "dur": 1,
             "pid": 0, "tid": 0},
            {"ph": "X", "name": "b", "cat": "host", "ts": -5, "dur": 1,
             "pid": 0, "tid": 0},
            {"ph": "X", "name": "c", "cat": "host", "ts": 0, "dur": 1,
             "pid": 0, "tid": 9},
        ]}
        problems = validate_chrome_trace(payload)
        assert any("unknown category 'gpu'" in p for p in problems)
        assert any("bad ts=-5" in p for p in problems)
        assert any("unnamed tid 9" in p for p in problems)

    def test_flags_unsupported_phase(self):
        problems = validate_chrome_trace({"traceEvents": [
            {"ph": "B", "name": "a", "pid": 0, "tid": 0},
        ]})
        assert any("unsupported ph 'B'" in p for p in problems)


class TestFlamegraph:
    def test_empty_trace(self):
        assert format_flamegraph(Trace()) == "(empty trace)"

    def test_aggregates_by_path_and_indents(self):
        text = format_flamegraph(sample_trace())
        lines = text.splitlines()
        assert lines[1].endswith("run")          # root, widest
        assert "  device" in text                # indented child
        assert "    k" in text                   # per-core leaf, deeper
        assert lines[-1].endswith("(total)")
        assert "100.0%" in lines[-1]

    def test_min_share_hides_thin_paths(self):
        trace = sample_trace()
        full = format_flamegraph(trace)
        pruned = format_flamegraph(trace, min_share=0.5)
        assert "host_bit" in full
        assert "host_bit" not in pruned          # 1.0 / 3.0 < 0.5
        assert "device" in pruned

    def test_repeated_spans_merge_with_counts(self):
        trace = Trace()
        for _ in range(3):
            trace.add_span("cycle", 1.0, category="sim")
        text = format_flamegraph(trace)
        (row,) = [ln for ln in text.splitlines() if ln.endswith("cycle")]
        assert " 3 " in row and "3.000000" in row


class TestTraceFromEnv:
    def test_unset_or_blank_returns_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE", raising=False)
        assert trace_from_env() is None
        monkeypatch.setenv("REPRO_TRACE", "   ")
        assert trace_from_env() is None

    def test_set_returns_fresh_trace_and_path(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "out/my_trace.json")
        got = trace_from_env()
        assert got is not None
        trace, path = got
        assert isinstance(trace, Trace) and not trace.spans
        assert path == Path("out/my_trace.json")

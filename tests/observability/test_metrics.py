"""Unit tests for the Scope metrics registry."""

import csv
import json

import pytest

from repro.observability import MetricsRegistry
from repro.observability.metrics import MetricsError


class TestCounter:
    def test_monotone(self):
        reg = MetricsRegistry()
        c = reg.counter("jobs")
        c.inc()
        c.add(2.5)
        assert c.value == 3.5
        with pytest.raises(MetricsError, match="cannot decrease"):
            c.add(-1.0)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.counter("x").inc()
        assert reg.counter("x").value == 2.0
        assert len(reg) == 1


class TestGauge:
    def test_set_and_set_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("l1")
        g.set(10.0)
        g.set(5.0)
        assert g.value == 5.0
        g.set_max(3.0)
        assert g.value == 5.0
        g.set_max(7.0)
        assert g.value == 7.0
        assert g.updates == 4

    def test_set_max_on_a_fresh_gauge_takes_any_value(self):
        g = MetricsRegistry().gauge("hw")
        g.set_max(-2.0)  # first observation wins even if below default 0.0
        assert g.value == -2.0


class TestHistogram:
    def test_summary_statistics(self):
        h = MetricsRegistry().histogram("tts")
        for v in [3.0, 1.0, 2.0, 4.0]:
            h.observe(v)
        assert h.count == 4
        assert h.sum == 10.0
        assert h.mean == 2.5
        assert h.percentile(50) == 2.0
        assert h.percentile(100) == 4.0
        s = h.summary()
        assert s["min"] == 1.0 and s["max"] == 4.0 and s["count"] == 4

    def test_empty_histogram(self):
        h = MetricsRegistry().histogram("empty")
        assert h.mean == 0.0
        assert h.percentile(95) == 0.0
        assert h.summary() == {"count": 0, "sum": 0.0}

    def test_rejects_non_finite(self):
        h = MetricsRegistry().histogram("x")
        with pytest.raises(MetricsError, match="non-finite"):
            h.observe(float("nan"))


class TestRegistry:
    def test_kind_clash_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(MetricsError, match="is a Counter"):
            reg.gauge("x")

    def test_name_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(MetricsError, match="no spaces"):
            reg.counter("bad name")
        with pytest.raises(MetricsError):
            reg.counter("")

    def test_contains_and_names(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert "a" in reg and "c" not in reg
        assert reg.names() == ["a", "b"]


class TestExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("dev.bytes").add(4096)
        reg.gauge("dev.l1").set_max(128.0)
        reg.histogram("dev.tiles_per_s").observe(100.0)
        reg.histogram("dev.tiles_per_s").observe(300.0)
        return reg

    def test_to_dict_shapes(self):
        d = self._registry().to_dict()
        assert d["dev.bytes"] == {"kind": "counter", "value": 4096.0}
        assert d["dev.l1"]["kind"] == "gauge"
        assert d["dev.tiles_per_s"]["mean"] == 200.0

    def test_json_roundtrip(self, tmp_path):
        path = self._registry().write_json(tmp_path / "m.json")
        assert json.loads(path.read_text()) == self._registry().to_dict()

    def test_csv_layout(self, tmp_path):
        path = self._registry().write_csv(tmp_path / "m.csv")
        rows = list(csv.reader(path.read_text().splitlines()))
        assert rows[0] == ["name", "kind", "value", "count", "sum"]
        by_name = {r[0]: r for r in rows[1:]}
        assert by_name["dev.bytes"][1:3] == ["counter", "4096.0"]
        assert by_name["dev.tiles_per_s"][1:] == [
            "histogram", "200.0", "2", "400.0",
        ]

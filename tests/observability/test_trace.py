"""Unit tests for the Scope span/cursor model."""

import pytest

from repro.observability import SPAN_CATEGORIES, Trace, TraceError


class TestCursor:
    def test_starts_at_zero_by_default(self):
        assert Trace().now == 0.0

    def test_explicit_start(self):
        assert Trace(start_s=12.5).now == 12.5

    def test_negative_start_rejected(self):
        with pytest.raises(TraceError, match="negative trace start"):
            Trace(start_s=-1.0)

    def test_leaf_spans_advance_the_cursor(self):
        trace = Trace()
        trace.add_span("a", 1.5)
        trace.add_span("b", 0.5)
        assert trace.now == 2.0
        assert trace.spans[1].start_s == 1.5

    def test_advance_and_jump(self):
        trace = Trace()
        trace.advance(3.0)
        trace.jump_to(10.0)
        assert trace.now == 10.0

    def test_cursor_never_moves_backwards(self):
        trace = Trace()
        trace.jump_to(5.0)
        with pytest.raises(TraceError, match="backwards"):
            trace.jump_to(4.0)
        with pytest.raises(TraceError, match="negative"):
            trace.advance(-1.0)

    def test_jump_to_tolerates_float_dust(self):
        trace = Trace()
        trace.jump_to(1.0)
        trace.jump_to(1.0 - 1e-13)  # accumulation noise, not a real rewind
        assert trace.now == pytest.approx(1.0)


class TestStructure:
    def test_parent_duration_covers_children(self):
        trace = Trace()
        with trace.span("parent") as parent:
            trace.add_span("a", 1.0)
            trace.add_span("b", 2.0)
        assert parent.duration_s == 3.0
        assert [s.name for s in trace.children_of(parent)] == ["a", "b"]
        assert trace.roots() == [parent]

    def test_nesting_three_deep(self):
        trace = Trace()
        with trace.span("outer"):
            with trace.span("inner"):
                trace.add_span("leaf", 4.0, category="device")
        outer, inner, leaf = trace.spans
        assert leaf.parent == 1 and inner.parent == 0 and outer.parent is None
        assert outer.duration_s == inner.duration_s == 4.0

    def test_concurrent_spans_share_time_on_own_tracks(self):
        trace = Trace()
        with trace.span("device", category="device") as dev:
            start = trace.now
            for core in range(4):
                trace.add_concurrent_span(
                    "kernels", start, 1.0 + core, track=f"dev0/core{core}",
                    parent=dev,
                )
            trace.advance(4.0)  # the critical path: the worst core
        assert dev.duration_s == 4.0
        cores = trace.children_of(dev)
        assert len(cores) == 4
        assert all(s.start_s == start for s in cores)
        assert len({s.track for s in cores}) == 4

    def test_concurrent_span_requires_a_track(self):
        with pytest.raises(TypeError):
            Trace().add_concurrent_span("x", 0.0, 1.0)

    def test_attributes_are_copied_and_mutable_afterwards(self):
        trace = Trace()
        with trace.span("job", category="job", index=1) as span:
            pass
        span.attributes.update(completed=True)
        assert trace.spans[0].attributes == {"index": 1, "completed": True}


class TestValidation:
    def test_category_must_be_known(self):
        with pytest.raises(TraceError, match="category"):
            Trace().add_span("x", 1.0, category="gpu")

    def test_name_must_be_non_empty(self):
        with pytest.raises(TraceError, match="non-empty"):
            Trace().add_span("", 1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(TraceError, match="negative span duration"):
            Trace().add_span("x", -0.5)

    def test_phase_tags_are_a_prefix_of_span_categories(self):
        from repro.metalium.command_queue import PHASE_TAGS

        assert SPAN_CATEGORIES[: len(PHASE_TAGS)] == PHASE_TAGS


class TestQueries:
    def _sample(self):
        trace = Trace()
        with trace.span("run"):
            trace.add_span("host_bit", 1.0, category="host")
            with trace.span("launchy", category="launch"):
                trace.add_span("pcie_bit", 0.5, category="pcie")
            with trace.span("device", category="device") as dev:
                start = trace.now
                trace.add_concurrent_span(
                    "k", start, 2.0, track="dev0/core0", parent=dev
                )
                trace.advance(2.0)
        return trace

    def test_duration_spans_the_whole_trace(self):
        assert self._sample().duration_s == 3.5

    def test_find(self):
        trace = self._sample()
        assert len(trace.find("pcie_bit")) == 1
        assert trace.find("nope") == []

    def test_seconds_by_category_counts_leaves_once(self):
        by_cat = self._sample().seconds_by_category()
        # The parent run/launchy spans must not double-count children;
        # the device span counts as a leaf (its only children are
        # concurrent per-core spans, which are excluded).
        assert by_cat == pytest.approx(
            {"host": 1.0, "pcie": 0.5, "device": 2.0}
        )
        assert sum(by_cat.values()) == pytest.approx(3.5)

    def test_empty_trace(self):
        trace = Trace()
        assert trace.duration_s == 0.0
        assert trace.seconds_by_category() == {}
        assert trace.roots() == []

"""Integration: one Trace threaded through every layer of the stack.

These tests are the acceptance criteria for Scope: a traced accelerated
run must produce a schema-valid Chrome trace containing the host phases,
EnqueueProgram spans with per-core children, and a populated metrics
registry — and the trace's clock must agree exactly with the modelled
timelines the repo already keeps.
"""

import json

import pytest

from repro import (
    Campaign,
    JobSpec,
    ReferenceBackend,
    Simulation,
    Trace,
    TTForceBackend,
    plummer,
    write_chrome_trace,
)
from repro.metalium import CreateDevice, GetCommandQueue
from repro.observability import validate_chrome_trace
from repro.telemetry import RetryPolicy


@pytest.fixture()
def traced_run():
    trace = Trace()
    system = plummer(512, seed=21)
    backend = TTForceBackend(CreateDevice(0), n_cores=4)
    result = Simulation(system, backend, dt=1e-3, trace=trace).run(2)
    return trace, result


class TestSimulationTrace:
    def test_cursor_equals_model_seconds(self, traced_run):
        trace, result = traced_run
        assert trace.duration_s == pytest.approx(
            result.model_seconds, abs=1e-9
        )
        assert trace.now == pytest.approx(result.model_seconds, abs=1e-9)

    def test_span_taxonomy(self, traced_run):
        trace, _ = traced_run
        run = trace.find("simulation.run")[0]
        assert run.parent is None
        assert run.attributes["n"] == 512 and run.attributes["n_cycles"] == 2

        cycles = trace.find("cycle")
        assert [c.attributes["index"] for c in cycles] == [0, 1]
        for cycle in cycles:
            names = [s.name for s in trace.children_of(cycle)]
            assert names == ["predict", "force", "correct"]

    def test_enqueue_program_has_per_core_children(self, traced_run):
        trace, _ = traced_run
        launches = trace.find("EnqueueProgram")
        assert len(launches) == 3  # initialise + 2 cycles
        for launch in launches:
            assert launch.category == "launch"
            assert launch.attributes["n_cores"] == 4
            device = next(
                s for s in trace.children_of(launch)
                if s.category == "device"
            )
            cores = trace.children_of(device)
            assert len(cores) == 4
            assert {s.track for s in cores} == {
                f"dev0/core{i}" for i in range(4)
            }
            assert all(s.start_s == device.start_s for s in cores)
            # The device span is the critical path over its cores.
            assert device.duration_s == pytest.approx(
                max(s.duration_s for s in cores)
            )
            assert all(
                s.attributes["compute_cycles"] >= 0 for s in cores
            )

    def test_chrome_export_is_schema_valid(self, traced_run, tmp_path):
        trace, _ = traced_run
        payload = json.loads(
            write_chrome_trace(trace, tmp_path / "t.json").read_text()
        )
        assert validate_chrome_trace(payload) == []
        cats = {e["cat"] for e in payload["traceEvents"] if e["ph"] == "X"}
        assert {"sim", "host", "launch", "device", "core"} <= cats

    def test_device_metrics_populated(self, traced_run):
        trace, _ = traced_run
        m = trace.metrics.to_dict()
        assert m["device0.programs"]["value"] == 3
        assert m["device0.dram.bytes_read"]["value"] > 0
        assert m["device0.noc.bytes"]["value"] > 0
        assert m["device0.l1.cb_high_water_bytes"]["value"] > 0
        assert m["device0.tiles_per_s"]["count"] == 3

    def test_pcie_spans_carry_byte_counts(self, traced_run):
        trace, _ = traced_run
        writes = trace.find("write_buffer")
        assert writes and all(
            s.category == "pcie" and s.attributes["bytes"] > 0
            for s in writes
        )

    def test_untraced_backend_still_traces_as_leaves(self):
        trace = Trace()
        system = plummer(256, seed=3)
        result = Simulation(
            system, ReferenceBackend(), dt=1e-3, trace=trace
        ).run(1)
        assert trace.find("simulation.run")
        assert trace.duration_s == pytest.approx(result.model_seconds)
        assert not trace.find("EnqueueProgram")


class TestTraceIsOptional:
    def test_traced_and_untraced_runs_are_identical(self):
        """Tracing must never change physics or modelled time."""
        def run(trace):
            system = plummer(256, seed=9)
            backend = TTForceBackend(CreateDevice(0), n_cores=2)
            result = Simulation(
                system, backend, dt=1e-3, trace=trace
            ).run(2)
            return system, result

        sys_a, res_a = run(None)
        sys_b, res_b = run(Trace())
        assert (sys_a.pos == sys_b.pos).all()
        assert (sys_a.vel == sys_b.vel).all()
        assert res_a.model_seconds == res_b.model_seconds

    def test_queue_trace_defaults_to_none(self):
        device = CreateDevice(0)
        assert GetCommandQueue(device).trace is None

    def test_multi_device_traced_run_matches_untraced(self):
        def run(trace):
            system = plummer(2048, seed=13)
            backend = TTForceBackend(
                [CreateDevice(0), CreateDevice(1)], n_cores=2, trace=trace
            )
            ev = backend.compute(system.pos, system.vel, system.mass)
            return ev

        ev_a = run(None)
        trace = Trace()
        ev_b = run(trace)
        assert (ev_a.acc == ev_b.acc).all()
        assert sum(s.seconds for s in ev_a.segments) == pytest.approx(
            sum(s.seconds for s in ev_b.segments)
        )
        # Both devices narrated their launches, and the allgather shows.
        tracks = {s.track for s in trace.spans if s.category == "core"}
        assert any(t.startswith("dev0/") for t in tracks)
        assert any(t.startswith("dev1/") for t in tracks)
        assert trace.find("allgather")


class TestCampaignTrace:
    def test_job_spans_on_the_virtual_clock(self):
        trace = Trace()
        campaign = Campaign(
            seed=5, n_cards=2, reset_failure_rate=0.5,
            retry=RetryPolicy(max_attempts=4, base_backoff_s=5.0),
            trace=trace,
        )
        for _ in range(3):
            campaign.run_job(JobSpec.paper_accelerated())

        assert trace.now == pytest.approx(campaign.clock.now(), abs=1e-6)
        jobs = trace.find("job")
        assert [j.attributes["index"] for j in jobs] == [1, 2, 3]
        for job in jobs:
            names = [s.name for s in trace.children_of(job)]
            assert names[0] == "reset"
            assert names.count("sleep") == 2
            assert "simulate" in names
            assert job.attributes["completed"] is True

        m = trace.metrics.to_dict()
        assert m["campaign.jobs"]["value"] == 3
        assert m["campaign.reset_attempts"]["value"] >= 3
        assert m["campaign.time_to_solution_s"]["count"] == 3
        assert m["campaign.joules_per_cycle"]["count"] == 3

    def test_campaign_trace_chrome_valid(self, tmp_path):
        trace = Trace()
        campaign = Campaign(seed=8, reset_failure_rate=0.0, trace=trace)
        campaign.run_job(JobSpec.paper_reference())
        payload = json.loads(
            write_chrome_trace(trace, tmp_path / "c.json").read_text()
        )
        assert validate_chrome_trace(payload) == []

    def test_traced_campaign_results_unchanged(self):
        def run(trace):
            campaign = Campaign(
                seed=31, n_cards=2, reset_failure_rate=0.4,
                retry=RetryPolicy(max_attempts=3, base_backoff_s=2.0),
                failover="card", trace=trace,
            )
            return [
                campaign.run_job(JobSpec.paper_accelerated())
                for _ in range(4)
            ]

        plain = run(None)
        traced = run(Trace())
        for a, b in zip(plain, traced):
            assert a.time_to_solution == b.time_to_solution
            assert a.attempts == b.attempts
            assert a.completed == b.completed

"""Execute every fenced ``python`` block in the user-facing docs.

Extraction-based: each documented file's ``python`` blocks run
*sequentially in one shared namespace* (so a later block may use names
an earlier block defined, exactly as a reader following the document
would), with the working directory set to a temporary directory (so
snippets that write ``trace.json`` / ``campaign.jsonl`` stay clean).

A snippet that raises fails the suite with the block's source and its
position in the file — documentation cannot rot silently.  Blocks
tagged anything other than ``python`` (``bash``, ``text``, untagged)
are ignored.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent.parent

#: Documents whose python blocks must execute, in reading order.
DOCUMENTS = [
    "README.md",
    "docs/OBSERVABILITY.md",
    "docs/PORTING.md",
    "docs/ARCHITECTURE.md",
    "docs/FARFIELD.md",
    "docs/INTEGRATORS.md",
]

_FENCE = re.compile(
    r"^```python[ \t]*\n(.*?)^```[ \t]*$", re.MULTILINE | re.DOTALL
)


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """(starting line, source) for each ```python fence in a file."""
    text = path.read_text()
    blocks = []
    for match in _FENCE.finditer(text):
        line = text.count("\n", 0, match.start()) + 2  # first code line
        blocks.append((line, match.group(1)))
    return blocks


def test_the_documents_under_test_exist():
    for name in DOCUMENTS:
        assert (REPO / name).is_file(), name


def test_readme_has_executable_snippets():
    assert len(python_blocks(REPO / "README.md")) >= 3


def test_observability_guide_has_executable_snippets():
    assert len(python_blocks(REPO / "docs" / "OBSERVABILITY.md")) >= 4


@pytest.mark.parametrize("document", DOCUMENTS)
def test_document_snippets_execute(document, tmp_path, monkeypatch):
    blocks = python_blocks(REPO / document)
    monkeypatch.chdir(tmp_path)
    # REPRO_TRACE / REPRO_SANITIZE in the reader's environment must not
    # change what the snippets do.
    monkeypatch.delenv("REPRO_TRACE", raising=False)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    namespace: dict = {"__name__": f"snippet:{document}"}
    for line, source in blocks:
        code = compile(source, f"{document}:{line}", "exec")
        try:
            exec(code, namespace)  # noqa: S102 - the point of the test
        except Exception as exc:
            pytest.fail(
                f"{document} snippet at line {line} raised "
                f"{type(exc).__name__}: {exc}\n---\n{source}"
            )

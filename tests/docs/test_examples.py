"""The integrator-registry examples must run clean, end to end.

Both examples are declared through :class:`repro.backends.RunSpec` with
``integrator="block-hermite"`` over the ``tt`` backend, so this net
exercises the registry → driver → ``compute_on_targets`` path exactly as
a user would.
"""

from __future__ import annotations

import runpy
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent


def test_black_hole_binary_example_runs(capsys):
    runpy.run_path(str(REPO / "examples" / "black_hole_binary.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "integrator = block-hermite" in out
    assert "stayed bound and hard" in out
    assert "block hierarchy:" in out


def test_block_timesteps_example_runs(capsys):
    runpy.run_path(str(REPO / "examples" / "block_timesteps.py"),
                   run_name="__main__")
    out = capsys.readouterr().out
    assert "fewer pairwise force evaluations" in out
    # the whole point of block steps: a large pair-count saving
    saving = float(out.split("same physics with ")[1].split("x fewer")[0])
    assert saving > 5.0

"""The observability tour example must run clean, end to end."""

from __future__ import annotations

import json
import runpy
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent


def test_tracing_tour_runs_and_exports_a_valid_trace(tmp_path, monkeypatch,
                                                     capsys):
    from repro.observability import validate_chrome_trace

    monkeypatch.chdir(tmp_path)
    runpy.run_path(str(REPO / "examples" / "tracing_tour.py"),
                   run_name="__main__")

    out = capsys.readouterr().out
    assert "spans over" in out
    assert "EnqueueProgram" in out          # the flamegraph shows launches
    assert "reset attempts over 3 jobs" in out

    payload = json.loads((tmp_path / "trace.json").read_text())
    assert validate_chrome_trace(payload) == []
    metrics = json.loads(
        (tmp_path / "trace.json.metrics.json").read_text()
    )
    assert metrics["device0.programs"]["value"] == 4

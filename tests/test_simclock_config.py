"""Tests for the virtual clock, stopwatch, and workload-scale config."""

import pytest

from repro.config import (
    DEFAULT_BENCH_N_PARTICLES,
    PAPER_N_CYCLES,
    PAPER_N_PARTICLES,
    paper_scale_enabled,
    select_workload_scale,
)
from repro.errors import ConfigurationError
from repro.simclock import Stopwatch, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now() == 0.0

    def test_advance_and_sleep(self):
        clock = VirtualClock()
        clock.advance(5.0)
        clock.sleep(120.0)
        assert clock.now() == 125.0

    def test_never_backwards(self):
        clock = VirtualClock()
        with pytest.raises(ConfigurationError):
            clock.advance(-1.0)

    def test_custom_start(self):
        assert VirtualClock(100.0).now() == 100.0
        with pytest.raises(ConfigurationError):
            VirtualClock(-1.0)

    def test_zero_advance_allowed(self):
        clock = VirtualClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_jump_to_for_checkpoint_resume(self):
        clock = VirtualClock()
        clock.advance(10.0)
        assert clock.jump_to(1234.5) == 1234.5
        assert clock.now() == 1234.5
        clock.jump_to(1234.5)  # jumping to the current time is a no-op

    def test_jump_backwards_rejected(self):
        clock = VirtualClock(100.0)
        with pytest.raises(ConfigurationError):
            clock.jump_to(99.9)


class TestStopwatch:
    def test_measures_interval_excluding_outside_time(self):
        clock = VirtualClock()
        clock.sleep(120.0)  # pre-run sleep: not measured
        watch = Stopwatch(clock)
        watch.start()
        clock.advance(301.4)
        elapsed = watch.stop()
        clock.sleep(120.0)  # post-run sleep: not measured
        assert elapsed == pytest.approx(301.4)
        assert watch.elapsed == pytest.approx(301.4)

    def test_double_start_rejected(self):
        watch = Stopwatch(VirtualClock())
        watch.start()
        with pytest.raises(ConfigurationError):
            watch.start()

    def test_stop_without_start(self):
        with pytest.raises(ConfigurationError):
            Stopwatch(VirtualClock()).stop()

    def test_running_flag(self):
        watch = Stopwatch(VirtualClock())
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_reusable(self):
        clock = VirtualClock()
        watch = Stopwatch(clock)
        watch.start()
        clock.advance(1.0)
        watch.stop()
        watch.start()
        clock.advance(2.0)
        assert watch.stop() == pytest.approx(2.0)


class TestWorkloadScale:
    def test_paper_constants(self):
        assert PAPER_N_PARTICLES == 102_400
        assert PAPER_N_CYCLES == 10

    def test_default_is_bench_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert not paper_scale_enabled()
        scale = select_workload_scale()
        assert scale.n_particles == DEFAULT_BENCH_N_PARTICLES
        assert not scale.is_paper_scale
        assert "bench-scale" in scale.label

    def test_env_enables_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert paper_scale_enabled()
        scale = select_workload_scale()
        assert scale.n_particles == PAPER_N_PARTICLES
        assert "paper-scale" in scale.label

    def test_zero_and_false_disable(self, monkeypatch):
        for value in ("0", "false", "False", ""):
            monkeypatch.setenv("REPRO_PAPER_SCALE", value)
            assert not paper_scale_enabled(), value


class TestEnvFlag:
    """The shared boolean-env parser every REPRO_* switch goes through.

    Historically each call site hand-rolled its own truthiness test, and
    the sanitizer's ("any non-empty value other than '0'") treated
    ``REPRO_SANITIZE=false`` as *on* — an explicit opt-out read as an
    opt-in.  These tests pin the shared spellings.
    """

    def test_unset_returns_default(self):
        from repro.config import env_flag

        assert env_flag(None) is False
        assert env_flag(None, default=True) is True

    @pytest.mark.parametrize("value", ["1", "true", "TRUE", "Yes", "on", "On"])
    def test_truthy_spellings(self, value):
        from repro.config import env_flag

        assert env_flag(value) is True
        assert env_flag(value, default=False) is True

    @pytest.mark.parametrize(
        "value", ["", "  ", "0", "false", "FALSE", "No", "off", "Off"]
    )
    def test_falsy_spellings(self, value):
        from repro.config import env_flag

        assert env_flag(value) is False
        # an explicit falsy spelling beats a truthy default (that is the
        # whole point: "off" must mean off)
        if value.strip():
            assert env_flag(value, default=True) is False
        else:
            # blank is "unset", which falls back to the default
            assert env_flag(value, default=True) is True

    def test_garbage_rejected_with_name(self):
        from repro.config import env_flag
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="REPRO_SANITIZE"):
            env_flag("maybe", name="REPRO_SANITIZE")

    def test_env_str_blank_is_none(self):
        from repro.config import env_str

        assert env_str({}, "X") is None
        assert env_str({"X": ""}, "X") is None
        assert env_str({"X": "   "}, "X") is None
        assert env_str({"X": " v "}, "X") == "v"

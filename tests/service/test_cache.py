"""The bounded LRU result cache keyed by canonical spec hashes."""

import pytest

from repro.errors import ConfigurationError
from repro.service import ResultCache


def test_rejects_zero_capacity():
    with pytest.raises(ConfigurationError):
        ResultCache(0)


def test_miss_then_hit():
    cache = ResultCache()
    assert cache.get("k") is None
    cache.put("k", {"x": 1})
    assert cache.get("k") == {"x": 1}
    assert (cache.hits, cache.misses) == (1, 1)
    assert cache.hit_rate == 0.5


def test_hit_rate_before_any_lookup_is_zero():
    assert ResultCache().hit_rate == 0.0


def test_eviction_is_lru_not_fifo():
    cache = ResultCache(max_entries=2)
    cache.put("a", {"v": 1})
    cache.put("b", {"v": 2})
    assert cache.get("a") is not None  # refresh a: b is now the LRU
    cache.put("c", {"v": 3})
    assert "b" not in cache
    assert "a" in cache and "c" in cache
    assert cache.evictions == 1


def test_put_refresh_updates_value_without_eviction():
    cache = ResultCache(max_entries=2)
    cache.put("a", {"v": 1})
    cache.put("a", {"v": 2})
    assert len(cache) == 1
    assert cache.get("a") == {"v": 2}
    assert cache.evictions == 0


def test_stats_shape():
    cache = ResultCache(max_entries=4)
    cache.put("a", {})
    cache.get("a")
    cache.get("zzz")
    stats = cache.stats()
    assert stats == {
        "entries": 1, "max_entries": 4, "hits": 1, "misses": 1,
        "evictions": 0, "hit_rate": 0.5,
    }

"""The job server: submission flow (cache/dedupe/quota) and the HTTP surface."""

import asyncio
import json
import multiprocessing
import urllib.error
import urllib.request

import pytest

from repro.backends import RunSpec
from repro.errors import JobNotFoundError, QuotaExceededError
from repro.service import (
    JobServer,
    QuotaPolicy,
    ServerConfig,
    ServiceClient,
    ServiceThread,
)

SPEC = RunSpec(n=1024, cycles=2)


def run(coro):
    return asyncio.run(coro)


class TestSubmissionFlow:
    """JobServer.submit drives everything; HTTP is a thin skin over it."""

    def test_first_submission_executes_then_cache_serves(self):
        async def main():
            server = JobServer(ServerConfig(n_cards=2))
            await server.start()
            try:
                first = await server.submit("t", SPEC)
                await first.wait_finished()
                assert first.state == "done" and not first.cached

                again = await server.submit("t", SPEC)
                assert again.state == "done"
                assert again.cached
                assert again.result == first.result
                assert server.cache.hits == 1
            finally:
                await server.stop()

        run(main())

    def test_identical_inflight_submissions_dedupe(self):
        async def main():
            # one slow-ish modelled job; submit 3 identical before it runs
            server = JobServer(ServerConfig(n_cards=1))
            await server.start()
            try:
                jobs = [await server.submit("t", SPEC) for _ in range(3)]
                for job in jobs:
                    await asyncio.wait_for(job.wait_finished(), timeout=30.0)
                primary, followers = jobs[0], jobs[1:]
                assert all(f.deduped_from == primary.id for f in followers)
                assert all(f.result == primary.result for f in followers)
                # one execution total
                assert server.scheduler.jobs_done == 1
                assert server.deduped_served == 2
            finally:
                await server.stop()

        run(main())

    def test_equivalent_spellings_share_one_execution(self):
        """device-alias + explicit-default specs hit the same cache entry."""

        async def main():
            server = JobServer(ServerConfig(n_cards=1))
            await server.start()
            try:
                from repro.backends import BackendSpec

                a = RunSpec(n=512, backend=BackendSpec("tt"))
                b = RunSpec(n=512, backend=BackendSpec("device", {"cores": 8}))
                first = await server.submit("t", a)
                await first.wait_finished()
                second = await server.submit("t", b)
                assert second.cached
                assert second.result == first.result
            finally:
                await server.stop()

        run(main())

    def test_quota_rejection_carries_retry_after(self):
        async def main():
            server = JobServer(ServerConfig(
                n_cards=1,
                policy=QuotaPolicy(max_queued=2, max_active=1),
            ))
            await server.start()
            try:
                with pytest.raises(QuotaExceededError) as exc_info:
                    for seed in range(50):
                        await server.submit(
                            "spam", RunSpec(n=256, cycles=1, seed=seed)
                        )
                assert exc_info.value.retry_after_s >= 1.0
                assert sum(server.ledger.rejections.values()) == 1
            finally:
                await server.stop()

        run(main())

    def test_cached_answers_bypass_quota(self):
        """Duplicate submissions never burn a tenant's queue slots."""

        async def main():
            server = JobServer(ServerConfig(
                n_cards=1, policy=QuotaPolicy(max_queued=1, max_active=1),
            ))
            await server.start()
            try:
                first = await server.submit("t", SPEC)
                await first.wait_finished()
                for _ in range(10):  # far beyond max_queued
                    job = await server.submit("t", SPEC)
                    assert job.cached
            finally:
                await server.stop()

        run(main())

    def test_unknown_job_lookup_raises(self):
        async def main():
            server = JobServer(ServerConfig(n_cards=1))
            await server.start()
            try:
                with pytest.raises(JobNotFoundError):
                    server.get_job("job-999999")
            finally:
                await server.stop()

        run(main())

    def test_stop_fails_queued_jobs_and_settles_followers(self):
        async def main():
            server = JobServer(ServerConfig(n_cards=1))
            # don't start(): nothing will ever execute
            server.scheduler.start()
            await server.scheduler.stop()  # workers exit immediately
            server.scheduler._tasks = []
            job = await server.submit("t", SPEC)
            follower = await server.submit("t", SPEC)
            assert follower.deduped_from == job.id
            await server.stop()
            assert job.state == "failed"
            assert "shut down" in job.error
            assert follower.state == "failed"
            assert server.ledger.total_pending == 0

        run(main())

    def test_stats_shape(self):
        async def main():
            server = JobServer(ServerConfig(n_cards=2))
            await server.start()
            try:
                job = await server.submit("t", SPEC)
                await job.wait_finished()
                await (await server.submit("t", SPEC)).wait_finished()
                stats = server.stats()
                assert stats["jobs"]["submitted"] == 2
                assert stats["jobs"]["executed_ok"] == 1
                assert stats["jobs"]["cached"] == 1
                assert stats["cache"]["hit_rate"] == 0.5
                assert stats["latency"]["p50_s"] is not None
                assert stats["latency"]["p99_s"] is not None
                assert stats["queue"]["depth_peak"] >= 1
                json.dumps(stats)  # endpoint-serialisable
            finally:
                await server.stop()

        run(main())


class TestHttpSurface:
    """Real sockets end to end: ServiceThread + the urllib client."""

    @pytest.fixture()
    def service(self):
        thread = ServiceThread(ServerConfig(
            n_cards=2,
            policy=QuotaPolicy(max_queued=4, max_active=2),
        ))
        url = thread.start()
        yield ServiceClient(url)
        thread.stop()
        assert multiprocessing.active_children() == []

    def test_healthz(self, service):
        assert service.healthy()

    def test_submit_wait_and_fetch(self, service):
        job = service.submit(SPEC, tenant="alice")
        assert job["state"] in ("queued", "running", "done")
        done = service.wait(job["id"])
        assert done["state"] == "done"
        assert done["result"]["mode"] == "modelled"
        assert done["latency_s"] >= 0
        fetched = service.job(job["id"])
        assert fetched == done

    def test_duplicate_over_http_is_cached(self, service):
        first = service.submit_and_wait(SPEC, tenant="alice")
        second = service.submit(SPEC, tenant="bob")
        assert second["cached"] is True
        assert second["state"] == "done"
        assert second["result"] == first["result"]

    def test_events_stream_ndjson(self, service):
        job = service.submit_and_wait(SPEC)
        events = list(service.events(job["id"]))
        assert events[0]["event"] == "queued"
        assert events[-1]["event"] == "done"
        assert [e["seq"] for e in events] == list(range(len(events)))
        assert any(e["event"] == "span" for e in events)

    def test_quota_rejection_is_429_with_retry_after(self):
        """Saturate a deliberately slow one-card farm: rejection is certain."""
        import time

        thread = ServiceThread(ServerConfig(
            n_cards=1, policy=QuotaPolicy(max_queued=2, max_active=1),
        ))
        url = thread.start()

        def slow_execute(spec, card):
            time.sleep(0.5)
            return {"mode": "modelled", "completed": True,
                    "virtual_s": 1.0, "events": []}

        thread.server.farm.execute = slow_execute
        client = ServiceClient(url)
        try:
            rejected = None
            for seed in range(8):
                try:
                    client.submit(RunSpec(n=256, cycles=1, seed=seed),
                                  tenant="spam")
                except QuotaExceededError as exc:
                    rejected = exc
                    break
            assert rejected is not None, "quota never rejected"
            assert rejected.retry_after_s >= 1.0
            # the farm is still wedged, so the raw response is observable:
            # a real 429 status with a Retry-After header
            req = urllib.request.Request(
                url + "/v1/jobs", method="POST",
                data=json.dumps({
                    "tenant": "spam",
                    "spec": RunSpec(n=64, cycles=1).to_dict(),
                }).encode(),
            )
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                urllib.request.urlopen(req)
            assert exc_info.value.code == 429
            assert int(exc_info.value.headers["Retry-After"]) >= 1
        finally:
            thread.stop()
        assert multiprocessing.active_children() == []

    def test_unknown_job_is_404(self, service):
        with pytest.raises(JobNotFoundError):
            service.job("job-424242")

    def test_malformed_spec_is_400(self, service):
        import urllib.error

        req = urllib.request.Request(
            service.url + "/v1/jobs", method="POST",
            data=json.dumps({"spec": {"wibble": 1}}).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(req)
        assert exc_info.value.code == 400

    def test_unknown_route_is_404(self, service):
        import urllib.error

        with pytest.raises(urllib.error.HTTPError) as exc_info:
            urllib.request.urlopen(service.url + "/nope")
        assert exc_info.value.code == 404

    def test_stats_over_http(self, service):
        service.submit_and_wait(SPEC)
        stats = service.stats()
        assert stats["jobs"]["submitted"] >= 1
        assert stats["n_cards"] == 2


def test_shutdown_endpoint_stops_the_service():
    thread = ServiceThread(ServerConfig(n_cards=1))
    url = thread.start()
    client = ServiceClient(url)
    job = client.submit_and_wait(SPEC)
    assert job["state"] == "done"
    assert client.shutdown()["stopping"] is True
    thread._thread.join(timeout=30.0)
    assert not thread._thread.is_alive()
    assert multiprocessing.active_children() == []


def test_cli_serve_and_submit(tmp_path):
    """``repro serve`` + ``repro submit`` round-trip over a real socket."""
    import socket
    import subprocess
    import sys
    import time

    with socket.socket() as s:
        s.bind(("127.0.0.1", 0))
        port = s.getsockname()[1]
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", str(port), "--cards", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        client = ServiceClient(f"http://127.0.0.1:{port}")
        deadline = time.monotonic() + 30.0
        while not client.healthy():
            assert time.monotonic() < deadline, "server never came up"
            assert proc.poll() is None, proc.stdout.read()
            time.sleep(0.05)
        out = subprocess.run(
            [sys.executable, "-m", "repro.cli", "submit",
             "--url", f"http://127.0.0.1:{port}",
             "--n", "512", "--cycles", "2", "--tenant", "cli"],
            capture_output=True, text=True, timeout=60,
        )
        assert out.returncode == 0, out.stderr
        job = json.loads(out.stdout)
        assert job["state"] == "done"
        assert job["result"]["mode"] == "modelled"
        client.shutdown()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

"""CardFarm execution (modelled + functional) and the worker scheduler."""

import asyncio

import pytest

from repro.backends import BackendSpec, RunSpec
from repro.errors import ConfigurationError
from repro.service import (
    CardFarm,
    JobQueue,
    Job,
    QuotaLedger,
    QuotaPolicy,
    Scheduler,
)

SPEC = RunSpec(n=1024, cycles=2)


def _job(spec=SPEC, tenant="t"):
    return Job(tenant=tenant, spec=spec, spec_hash=spec.canonical_hash())


class TestCardFarm:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError, match="mode"):
            CardFarm(mode="warp")

    def test_rejects_zero_cards(self):
        with pytest.raises(ConfigurationError):
            CardFarm(0)

    def test_modelled_payload_shape(self):
        payload = CardFarm(1).execute(SPEC, card=0)
        assert payload["mode"] == "modelled"
        assert payload["completed"] is True
        assert payload["time_to_solution_s"] > 0
        assert payload["energy_kj"] > 0
        assert payload["virtual_s"] > 0
        assert payload["events"], "trace spans must become progress events"

    def test_modelled_execution_is_deterministic(self):
        """Same spec, any card, any farm: identical payload (cache contract)."""
        a = CardFarm(2).execute(SPEC, card=0)
        b = CardFarm(4).execute(SPEC, card=3)
        assert a == b

    def test_distinct_specs_are_decorrelated(self):
        a = CardFarm(1).execute(SPEC, card=0)
        b = CardFarm(1).execute(RunSpec(n=1024, cycles=2, seed=9), card=0)
        assert a["time_to_solution_s"] != b["time_to_solution_s"]

    def test_functional_payload_shape(self):
        farm = CardFarm(1, mode="functional")
        spec = RunSpec(n=128, cycles=2, backend=BackendSpec("reference"))
        payload = farm.execute(spec, card=0)
        assert payload["mode"] == "functional"
        assert payload["completed"] is True
        # the reference backend has no modelled device timeline, so its
        # model_seconds is legitimately zero; drift is the quality gate
        assert payload["model_seconds"] >= 0
        assert abs(payload["energy_drift"]) < 1e-3

    def test_functional_device_backend_has_model_time(self):
        farm = CardFarm(1, mode="functional")
        spec = RunSpec(n=256, cycles=1,
                       backend=BackendSpec("tt", {"cores": 2}))
        payload = farm.execute(spec, card=0)
        assert payload["model_seconds"] > 0
        assert payload["seconds_by_tag"]
        assert payload["backend"].startswith("tt-wormhole")

    def test_functional_closes_sharded_backends(self):
        import multiprocessing

        farm = CardFarm(1, mode="functional")
        spec = RunSpec(
            n=256, cycles=1,
            backend=BackendSpec(
                "tt", {"cores": 2, "cards": 2, "workers": "process"}
            ),
        )
        payload = farm.execute(spec, card=0)
        assert payload["completed"] is True
        assert multiprocessing.active_children() == []


class TestScheduler:
    @staticmethod
    def _make(n_cards=2, policy=None):
        queue = JobQueue()
        ledger = QuotaLedger(policy or QuotaPolicy())
        farm = CardFarm(n_cards)
        finished = []
        sched = Scheduler(farm, queue, ledger, on_finished=finished.append)
        return queue, ledger, sched, finished

    def test_runs_jobs_and_reports(self):
        async def main():
            queue, ledger, sched, finished = self._make()
            sched.start()
            jobs = []
            for seed in range(4):
                job = _job(RunSpec(n=512, cycles=1, seed=seed))
                ledger.admit(job.tenant)
                jobs.append(job)
                await queue.put(job)
            for job in jobs:
                await asyncio.wait_for(job.wait_finished(), timeout=30.0)
            await sched.stop()
            assert all(j.state == "done" for j in jobs)
            assert all(j.result["completed"] for j in jobs)
            assert all(j.card is not None for j in jobs)
            assert all(j.latency_s >= 0 for j in jobs)
            assert sched.jobs_done == 4
            assert len(finished) == 4
            assert sched.virtual_s_total > 0
            assert sum(sched.per_card_jobs.values()) == 4
            # quota fully released
            assert ledger.total_pending == 0
            # every job narrates: queued by server, started, spans, done
            states = [e["event"] for e in jobs[0].events]
            assert "started" in states and "done" in states
            assert "span" in states

        asyncio.run(main())

    def test_execution_failure_lands_on_the_job(self):
        async def main():
            queue, ledger, sched, _ = self._make(n_cards=1)

            def boom(spec, card):
                raise ConfigurationError("warp coil misaligned")

            sched.farm.execute = boom
            sched.start()
            bad = _job(RunSpec(n=64, cycles=1))
            ledger.admit(bad.tenant)
            await queue.put(bad)
            await asyncio.wait_for(bad.wait_finished(), timeout=30.0)
            await sched.stop()
            assert bad.state == "failed"
            assert bad.error_kind == "configuration"
            assert "warp" in bad.error
            assert sched.jobs_failed == 1
            assert ledger.total_pending == 0

        asyncio.run(main())

    def test_active_cap_respected(self):
        """A tenant at max_active never has more jobs running at once."""

        async def main():
            policy = QuotaPolicy(max_queued=64, max_active=1)
            queue, ledger, sched, _ = self._make(n_cards=4, policy=policy)
            peak = {"running": 0, "max": 0}

            original_mark = ledger.mark_active
            original_release = ledger.release

            def mark(tenant):
                original_mark(tenant)
                peak["running"] += 1
                peak["max"] = max(peak["max"], peak["running"])

            def release(tenant, **kwargs):
                original_release(tenant, **kwargs)
                peak["running"] -= 1

            ledger.mark_active = mark
            ledger.release = release
            sched.start()
            jobs = [_job(RunSpec(n=256, cycles=1, seed=s)) for s in range(6)]
            for job in jobs:
                ledger.admit(job.tenant)
                await queue.put(job)
            for job in jobs:
                await asyncio.wait_for(job.wait_finished(), timeout=30.0)
            await sched.stop()
            assert peak["max"] == 1

        asyncio.run(main())

    def test_drain_rate_estimates_from_completed_jobs(self):
        async def main():
            queue, ledger, sched, _ = self._make(n_cards=2)
            assert sched.drain_rate_s == 1.0  # before any job: the floor
            sched.start()
            job = _job()
            ledger.admit(job.tenant)
            await queue.put(job)
            await asyncio.wait_for(job.wait_finished(), timeout=30.0)
            await sched.stop()
            expected = job.result["virtual_s"] / 2  # one job over two cards
            assert sched.drain_rate_s == pytest.approx(expected)

        asyncio.run(main())

    def test_stop_returns_undispatched_jobs(self):
        async def main():
            queue, ledger, sched, _ = self._make(n_cards=1)
            # never start the workers: everything stays queued
            jobs = [_job(RunSpec(n=128, cycles=1, seed=s)) for s in range(3)]
            for job in jobs:
                await queue.put(job)
            leftover = await sched.stop()
            assert leftover == jobs

        asyncio.run(main())

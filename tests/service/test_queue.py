"""Job lifecycle model and the tenant-aware FIFO."""

import asyncio

from repro.backends import RunSpec
from repro.service import Job, JobQueue


def _job(tenant="t", **kwargs):
    spec = RunSpec(n=64, cycles=1)
    return Job(tenant=tenant, spec=spec, spec_hash=spec.canonical_hash(),
               **kwargs)


class TestJob:
    def test_ids_are_unique_and_ordered(self):
        a, b = _job(), _job()
        assert a.id != b.id
        assert a.id < b.id

    def test_latency_none_until_finished(self):
        job = _job()
        assert job.latency_s is None
        job.finished_wall = job.submitted_wall + 1.5
        assert job.latency_s == 1.5

    def test_events_carry_sequence_numbers(self):
        job = _job()
        job.add_event("queued")
        job.add_event("started", card=2)
        assert [e["seq"] for e in job.events] == [0, 1]
        assert job.events[1]["card"] == 2
        assert all(e["job"] == job.id for e in job.events)

    def test_to_dict_is_json_shaped(self):
        import json

        job = _job()
        json.dumps(job.to_dict())  # raises if not serialisable

    def test_wait_finished_returns_immediately_when_done(self):
        async def main():
            job = _job(state="done")
            await asyncio.wait_for(job.wait_finished(), timeout=1.0)

        asyncio.run(main())

    def test_wait_finished_wakes_on_completion(self):
        async def main():
            job = _job()

            async def finish_later():
                await asyncio.sleep(0.01)
                job.state = "done"
                job.add_event("done")

            asyncio.create_task(finish_later())
            await asyncio.wait_for(job.wait_finished(), timeout=2.0)

        asyncio.run(main())

    def test_stream_events_replays_then_follows(self):
        async def main():
            job = _job()
            job.add_event("queued")

            async def produce():
                await asyncio.sleep(0.01)
                job.add_event("started")
                await asyncio.sleep(0.01)
                job.state = "done"
                job.add_event("done")

            asyncio.create_task(produce())
            seen = [e["event"] async for e in job.stream_events()]
            assert seen == ["queued", "started", "done"]

            # a late subscriber sees the identical stream
            late = [e["event"] async for e in job.stream_events()]
            assert late == seen

        asyncio.run(main())


class TestJobQueue:
    def test_fifo_within_a_tenant(self):
        async def main():
            q = JobQueue()
            a, b = _job(), _job()
            await q.put(a)
            await q.put(b)
            assert await q.get(lambda t: True) is a
            assert await q.get(lambda t: True) is b

        asyncio.run(main())

    def test_capped_tenant_does_not_head_of_line_block(self):
        async def main():
            q = JobQueue()
            blocked, runnable = _job("alice"), _job("bob")
            await q.put(blocked)
            await q.put(runnable)
            got = await q.get(lambda tenant: tenant != "alice")
            assert got is runnable
            assert len(q) == 1  # alice's job still queued

        asyncio.run(main())

    def test_get_blocks_until_put_or_close(self):
        async def main():
            q = JobQueue()

            async def put_later():
                await asyncio.sleep(0.01)
                await q.put(_job())

            asyncio.create_task(put_later())
            job = await asyncio.wait_for(q.get(lambda t: True), timeout=2.0)
            assert job is not None

            async def close_later():
                await asyncio.sleep(0.01)
                await q.close()

            asyncio.create_task(close_later())
            assert await asyncio.wait_for(
                q.get(lambda t: True), timeout=2.0
            ) is None

        asyncio.run(main())

    def test_kick_rechecks_a_waiting_worker(self):
        async def main():
            q = JobQueue()
            allowed = {"ok": False}
            await q.put(_job())

            async def allow_later():
                await asyncio.sleep(0.01)
                allowed["ok"] = True
                await q.kick()

            asyncio.create_task(allow_later())
            job = await asyncio.wait_for(
                q.get(lambda t: allowed["ok"]), timeout=2.0
            )
            assert job is not None

        asyncio.run(main())

    def test_close_returns_leftovers_and_depth_peak_tracks(self):
        async def main():
            q = JobQueue()
            jobs = [_job() for _ in range(5)]
            for job in jobs:
                await q.put(job)
            assert q.depth_peak == 5
            await q.get(lambda t: True)
            leftover = await q.close()
            assert leftover == jobs[1:]
            assert len(q) == 0
            assert q.depth_peak == 5  # peak is sticky

        asyncio.run(main())

"""Per-tenant admission control: caps, backpressure, retry-after pricing."""

import pytest

from repro.errors import ConfigurationError, QuotaExceededError
from repro.service import QuotaLedger, QuotaPolicy


class TestPolicyValidation:
    def test_defaults_are_sane(self):
        p = QuotaPolicy()
        assert p.max_queued >= 1
        assert p.max_active >= 1
        assert p.max_pending_total >= p.max_queued

    @pytest.mark.parametrize("kwargs", [
        {"max_queued": 0}, {"max_active": 0}, {"max_pending_total": 0},
        {"max_queued": -3},
    ])
    def test_rejects_non_positive_limits(self, kwargs):
        with pytest.raises(ConfigurationError):
            QuotaPolicy(**kwargs)


class TestAdmission:
    def test_admit_up_to_the_cap_then_reject(self):
        ledger = QuotaLedger(QuotaPolicy(max_queued=3))
        for _ in range(3):
            ledger.admit("alice")
        with pytest.raises(QuotaExceededError, match="alice"):
            ledger.admit("alice")
        assert ledger.rejections["alice"] == 1

    def test_tenants_are_independent(self):
        ledger = QuotaLedger(QuotaPolicy(max_queued=2))
        ledger.admit("alice")
        ledger.admit("alice")
        with pytest.raises(QuotaExceededError):
            ledger.admit("alice")
        # bob is unaffected by alice's full queue
        ledger.admit("bob")
        assert ledger.queued("bob") == 1

    def test_global_pending_bound(self):
        ledger = QuotaLedger(
            QuotaPolicy(max_queued=10, max_pending_total=3)
        )
        ledger.admit("a")
        ledger.admit("b")
        ledger.admit("c")
        with pytest.raises(QuotaExceededError, match="queue is full"):
            ledger.admit("d")

    def test_retry_after_scales_with_backlog_and_drain_rate(self):
        ledger = QuotaLedger(QuotaPolicy(max_queued=4))
        for _ in range(4):
            ledger.admit("t")
        with pytest.raises(QuotaExceededError) as exc_info:
            ledger.admit("t", drain_rate_s=10.0)
        assert exc_info.value.retry_after_s == pytest.approx(40.0)

    def test_retry_after_floor_is_one_second(self):
        ledger = QuotaLedger(QuotaPolicy(max_queued=1))
        ledger.admit("t")
        with pytest.raises(QuotaExceededError) as exc_info:
            ledger.admit("t", drain_rate_s=1e-6)
        assert exc_info.value.retry_after_s == 1.0


class TestLifecycleAccounting:
    def test_queued_to_active_to_released(self):
        ledger = QuotaLedger(QuotaPolicy(max_queued=2, max_active=1))
        ledger.admit("t")
        assert (ledger.queued("t"), ledger.active("t")) == (1, 0)
        ledger.mark_active("t")
        assert (ledger.queued("t"), ledger.active("t")) == (0, 1)
        assert not ledger.can_start("t")  # at the active cap
        ledger.release("t")
        assert ledger.active("t") == 0
        assert ledger.can_start("t")

    def test_release_unqueued_job(self):
        """A job dropped before running gives back a *queued* slot."""
        ledger = QuotaLedger(QuotaPolicy(max_queued=1))
        ledger.admit("t")
        ledger.release("t", was_active=False)
        assert ledger.queued("t") == 0
        ledger.admit("t")  # slot really is free again

    def test_active_slots_free_queue_capacity(self):
        """Quota is on *waiting* jobs: running ones free their queue slot."""
        ledger = QuotaLedger(QuotaPolicy(max_queued=1, max_active=8))
        ledger.admit("t")
        ledger.mark_active("t")
        ledger.admit("t")  # the queued slot was vacated by mark_active
        assert ledger.total_pending == 2

    def test_snapshot_covers_all_tenants(self):
        ledger = QuotaLedger(QuotaPolicy(max_queued=1))
        ledger.admit("a")
        ledger.admit("b")
        ledger.mark_active("b")
        with pytest.raises(QuotaExceededError):
            ledger.admit("a")
        snap = ledger.snapshot()
        assert snap["a"] == {"queued": 1, "active": 0, "rejected": 1}
        assert snap["b"] == {"queued": 0, "active": 1, "rejected": 0}

"""The FFT kernel set: lint/sanitizer cleanliness and model pinning."""

import pytest

from repro.analysis import ProgramLinter, SanitizerContext
from repro.core import uniform_sphere
from repro.metalium import CloseDevice, CreateDevice
from repro.nbody_pm import (
    PMDeviceModel,
    PMForceBackend,
    fft_batch_tile_ops,
    fft_batches_per_pass,
    fft_stages,
    tiles_per_batch,
)


@pytest.fixture
def device():
    dev = CreateDevice(0)
    yield dev
    if dev.is_open:
        CloseDevice(dev)


def test_fft_geometry():
    assert fft_stages(64) == 6
    assert tiles_per_batch(64) == 2
    assert fft_batches_per_pass(64) == 128
    assert fft_batch_tile_ops(64) == 6 * 1


@pytest.mark.parametrize("kspace", [False, True], ids=["pass", "kspace"])
def test_pm_programs_lint_clean(device, kspace):
    backend = PMForceBackend(device, mesh=32, cores=4)
    backend._ensure_buffers()
    src, dst = ("R1", "W0") if kspace else ("R0", "R1")
    program = backend._program(src, dst, kspace=kspace)
    report = ProgramLinter().lint(program, device=device)
    assert len(report) == 0, report.format()


def test_pm_eval_runs_sanitized_clean(device):
    with SanitizerContext(halt=False) as ctx:
        backend = PMForceBackend(device, mesh=32, cores=4)
        system = uniform_sphere(256, seed=3)
        backend.compute(system.pos, system.vel, system.mass)
    assert ctx.report.ok, ctx.report.format()


def test_device_model_matches_charged_pass(device):
    """PMDeviceModel's closed form must equal the cycles the charged
    program actually accumulates — the same pinning contract
    DeviceTimeModel has with the force kernels."""
    backend = PMForceBackend(device, mesh=32, cores=4)
    backend._ensure_buffers()
    program = backend._program("R0", "R1")
    for buf in backend._buffers["R0"]:   # prime, as the real eval does
        backend.queues[0].charge_write_buffer(buf)
    device.clear_counters()
    backend.queues[0].enqueue_program(program)
    worst = max(c.counter.compute_cycles for c in device.cores)
    assert worst == pytest.approx(backend.model.pass_compute_cycles())


def test_device_model_matches_charged_kspace(device):
    backend = PMForceBackend(device, mesh=32, cores=4)
    backend._ensure_buffers()
    program = backend._program("R1", "W0", kspace=True)
    for buf in backend._buffers["R1"]:   # prime, as the real eval does
        backend.queues[0].charge_write_buffer(buf)
    device.clear_counters()
    backend.queues[0].enqueue_program(program)
    worst = max(c.counter.compute_cycles for c in device.cores)
    assert worst == pytest.approx(backend.model.kspace_compute_cycles())


def test_model_eval_covers_whole_pipeline():
    model = PMDeviceModel(mesh=64, n_cores=8)
    n = 10_000
    total = model.eval_seconds(n, n_pairs=5000)
    assert total > model.host_cic_seconds(n)
    assert total > model.fft_device_seconds()
    assert model.near_field_seconds(0) == 0.0


def test_device_segments_match_model(device):
    """The summed device segments of a real eval equal the model."""
    backend = PMForceBackend(device, mesh=32, cores=4, cutoff=0.0)
    system = uniform_sphere(256, seed=5)
    ev = backend.compute(system.pos, system.vel, system.mass)
    device_s = sum(s.seconds for s in ev.segments if s.tag == "device")
    assert device_s == pytest.approx(backend.model.fft_device_seconds())

"""The PM accuracy gate: RMS force error vs direct summation.

This is the particle-mesh counterpart of the paper-gate parity test —
the PM backends are carved out of ``tests/backends/test_parity.py``
because a mesh method approximates the far field, and its honest gate is
the RMS force error against the float64 direct sum (ISSUE: <= 1% at the
benchmark's accuracy point; here <= 0.5% at N = 4096 with the default
mesh, which the backend meets with ~2x margin).
"""

import numpy as np
import pytest

from repro.backends import make_backend
from repro.core import accel_jerk_reference, uniform_sphere
from repro.nbody_pm import PMForceBackend, near_field_correction


def rms_relative_error(acc, acc_ref):
    num = np.mean(np.sum((acc - acc_ref) ** 2, axis=1))
    den = np.mean(np.sum(acc_ref**2, axis=1))
    return float(np.sqrt(num / den))


def test_cpu_pm_meets_accuracy_gate():
    system = uniform_sphere(4096, seed=7)
    backend = make_backend("cpu-pm")
    ev = backend.compute(system.pos, system.vel, system.mass)
    acc_ref, _ = accel_jerk_reference(system.pos, system.vel, system.mass)
    assert rms_relative_error(ev.acc, acc_ref) < 0.005


def test_finer_mesh_is_more_accurate():
    system = uniform_sphere(4096, seed=11)
    acc_ref, _ = accel_jerk_reference(system.pos, system.vel, system.mass)
    errs = []
    for mesh in (32, 64):
        ev = make_backend("cpu-pm", mesh=mesh).compute(
            system.pos, system.vel, system.mass
        )
        errs.append(rms_relative_error(ev.acc, acc_ref))
    assert errs[1] < errs[0]


def test_isolated_particle_has_no_self_force():
    """Mesh round-trip: a particle's deposit/solve/gather must exert no
    force on itself (the Hockney vacuum solve has no image charges).

    A massless probe a unit length away sets the box scale and gives the
    natural force scale the self-force must vanish against."""
    pos = np.array([[0.37, -0.21, 0.11], [1.37, 0.79, 1.11]])
    vel = np.zeros((2, 3))
    mass = np.array([1.0, 0.0])
    ev = PMForceBackend(mesh=32, cutoff=0.0).compute(pos, vel, mass)
    probe_scale = np.abs(ev.acc[1]).max()
    assert probe_scale > 0.0
    assert np.abs(ev.acc[0]).max() < 1e-10 * probe_scale
    assert np.abs(ev.jerk).max() == 0.0


def test_two_body_force_is_antisymmetric():
    """Same CIC window on both sides => momentum-conserving mesh force."""
    pos = np.array([[0.3, 0.0, 0.0], [-0.3, 0.1, -0.2]])
    vel = np.zeros((2, 3))
    mass = np.array([2.0, 3.0])
    ev = PMForceBackend(mesh=32, cutoff=0.0).compute(pos, vel, mass)
    total = mass[:, None] * ev.acc
    scale = np.abs(total).max()
    np.testing.assert_allclose(total.sum(axis=0), 0.0, atol=1e-12 * scale)


def test_near_field_jerk_matches_finite_difference():
    rng = np.random.default_rng(13)
    n = 64
    pos = rng.uniform(-1, 1, size=(n, 3))
    vel = rng.normal(size=(n, 3)) * 0.1
    mass = rng.uniform(0.5, 1.5, size=n)
    r_cut, a = 0.8, 0.16
    acc, jerk, _ = near_field_correction(
        pos, vel, mass, r_cut=r_cut, split_scale=a
    )
    dt = 1e-7
    acc_hi, _, _ = near_field_correction(
        pos + dt * vel, vel, mass, r_cut=r_cut, split_scale=a
    )
    acc_lo, _, _ = near_field_correction(
        pos - dt * vel, vel, mass, r_cut=r_cut, split_scale=a
    )
    fd = (acc_hi - acc_lo) / (2 * dt)
    scale = np.abs(jerk).max()
    np.testing.assert_allclose(jerk, fd, atol=1e-4 * scale)


def test_near_field_pairs_are_symmetric_count():
    rng = np.random.default_rng(17)
    pos = rng.uniform(-1, 1, size=(256, 3))
    vel = np.zeros((256, 3))
    mass = np.ones(256)
    _, _, n_pairs = near_field_correction(
        pos, vel, mass, r_cut=0.5, split_scale=0.1
    )
    # Ordered pairs: every unordered pair counted twice.
    assert n_pairs % 2 == 0
    assert n_pairs > 0


def test_pure_pm_mode_skips_near_field():
    system = uniform_sphere(512, seed=3)
    backend = PMForceBackend(mesh=32, cutoff=0.0)
    ev = backend.compute(system.pos, system.vel, system.mass)
    assert np.abs(ev.jerk).max() == 0.0
    assert all(s.detail != "pm.near-field" for s in ev.segments)


def test_softening_damps_close_pair():
    pos = np.array([[0.0, 0.0, 0.0], [1e-4, 0.0, 0.0]])
    vel = np.zeros((2, 3))
    mass = np.ones(2)
    hard = near_field_correction(
        pos, vel, mass, r_cut=0.5, split_scale=0.1
    )[0]
    soft = near_field_correction(
        pos, vel, mass, r_cut=0.5, split_scale=0.1, softening=0.01
    )[0]
    assert np.abs(soft).max() < np.abs(hard).max()


@pytest.mark.parametrize("bad", [31, 16, 512, 0])
def test_backend_rejects_bad_mesh(bad):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        PMForceBackend(mesh=bad)

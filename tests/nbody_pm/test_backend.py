"""PMForceBackend wiring: registry, RunSpec, determinism, timelines."""

import argparse

import numpy as np
import pytest

from repro.backends import BackendSpec, RunSpec, backend_names, make_backend
from repro.core import uniform_sphere
from repro.metalium import CloseDevice
from repro.nbody_pm import PMForceBackend


@pytest.fixture
def system():
    return uniform_sphere(512, seed=9)


def close(backend):
    for device in backend.devices:
        if device.is_open:
            CloseDevice(device)


class TestRegistry:
    def test_pm_backends_are_registered(self):
        assert "tt-pm" in backend_names()
        assert "cpu-pm" in backend_names()

    def test_make_backend_with_options(self, system):
        backend = make_backend("tt-pm", mesh=64, cutoff=3.0, cores=4)
        try:
            assert backend.mesh == 64
            assert backend.cutoff == 3.0
            assert backend.n_cores == 4
            ev = backend.compute(system.pos, system.vel, system.mass)
            assert ev.model_seconds > 0
        finally:
            close(backend)

    def test_cpu_pm_rejects_cores_option(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            make_backend("cpu-pm", cores=4)

    def test_runspec_round_trips_mesh_and_cutoff(self):
        spec = RunSpec(n=256, backend=BackendSpec(
            "tt-pm", {"mesh": 64, "cutoff": 2.5}
        ))
        again = RunSpec.from_json(spec.to_json())
        assert again.backend.options["mesh"] == 64
        assert again.backend.options["cutoff"] == 2.5

    def test_runspec_from_cli_picks_up_pm_flags(self):
        args = argparse.Namespace(
            n=256, cycles=1, dt=1e-3, adaptive=False, softening=0.0,
            seed=0, backend="tt-pm", mesh=64, cutoff=0.0, cores=None,
            cards=None, threads=None, workers=None,
        )
        spec = RunSpec.from_cli(args, {})
        assert spec.backend.options["mesh"] == 64
        assert spec.backend.options["cutoff"] == 0.0
        backend = spec.make_backend()
        try:
            assert backend.mesh == 64
            assert backend.cutoff == 0.0
        finally:
            close(backend)


class TestDeterminism:
    def test_cpu_and_tt_are_bit_identical(self, system):
        cpu = make_backend("cpu-pm")
        tt = make_backend("tt-pm")
        try:
            a = cpu.compute(system.pos, system.vel, system.mass)
            b = tt.compute(system.pos, system.vel, system.mass)
            assert np.array_equal(a.acc, b.acc)
            assert np.array_equal(a.jerk, b.jerk)
        finally:
            close(tt)

    def test_same_seed_gives_bit_identical_grids(self, system):
        a = PMForceBackend(mesh=32)
        b = PMForceBackend(mesh=32)
        a.compute(system.pos, system.vel, system.mass)
        b.compute(system.pos, system.vel, system.mass)
        assert a.last_mesh_spec == b.last_mesh_spec
        for key in a.last_grids:
            assert np.array_equal(a.last_grids[key], b.last_grids[key])

    def test_repeated_eval_is_bit_identical(self, system):
        backend = PMForceBackend(mesh=32)
        first = backend.compute(system.pos, system.vel, system.mass)
        second = backend.compute(system.pos, system.vel, system.mass)
        assert np.array_equal(first.acc, second.acc)
        assert np.array_equal(first.jerk, second.jerk)


class TestTimeline:
    def test_tt_pm_segments_cover_all_phases(self, system):
        backend = make_backend("tt-pm")
        try:
            ev = backend.compute(system.pos, system.vel, system.mass)
            tags = {s.tag for s in ev.segments}
            assert {"host", "pcie", "device", "launch"} <= tags
        finally:
            close(backend)

    def test_program_build_charged_once(self, system):
        backend = make_backend("tt-pm")
        try:
            first = backend.compute(system.pos, system.vel, system.mass)
            second = backend.compute(system.pos, system.vel, system.mass)
            # 5 cached programs x 2.5 s build cost only in the first eval
            assert first.model_seconds > second.model_seconds + 10.0
        finally:
            close(backend)

    def test_cpu_pm_is_host_only(self, system):
        ev = make_backend("cpu-pm").compute(
            system.pos, system.vel, system.mass
        )
        assert {s.tag for s in ev.segments} == {"host"}

    def test_residency_counters_accumulate(self, system):
        backend = PMForceBackend(mesh=32)
        backend.compute(system.pos, system.vel, system.mass)
        after_one = backend.residency_counters()
        backend.compute(system.pos, system.vel, system.mass)
        after_two = backend.residency_counters()
        assert after_one["green_cache_misses"] == 1
        assert after_two["green_cache_hits"] == \
            after_one["green_cache_hits"] + 1
        backend.invalidate_residency()
        backend.compute(system.pos, system.vel, system.mass)
        assert backend.residency_counters()["green_cache_misses"] == 2

    def test_trace_receives_residency_metrics(self, system):
        from repro.observability import Trace

        backend = make_backend("tt-pm")
        try:
            backend.trace = Trace()
            backend.compute(system.pos, system.vel, system.mass)
            counter = backend.trace.metrics.counter(
                "residency.green_cache_misses"
            )
            assert counter.value == 1
        finally:
            close(backend)


class TestSimulation:
    def test_energy_is_conserved_over_cycles(self):
        from repro.core import Simulation, energy_report

        system = uniform_sphere(512, seed=4, virial_ratio=0.5)
        before = energy_report(system)
        backend = PMForceBackend(mesh=32)
        sim = Simulation(system, backend, dt=1e-3)
        sim.run(5)
        after = energy_report(system)
        assert after.drift_from(before) < 1e-4

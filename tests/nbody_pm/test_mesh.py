"""Mesh geometry, CIC transfer, and the force-split primitives."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.nbody_pm import (
    MeshSpec,
    cic_deposit,
    cic_gather,
    erf,
    erfc,
    split_weights,
)


class TestMeshSpec:
    def test_fit_is_power_of_two_box(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(-1.3, 1.3, size=(100, 3))
        spec = MeshSpec.fit(pos, 32)
        assert spec.size == 32
        assert math.log2(spec.box_length) == round(math.log2(spec.box_length))

    def test_fit_leaves_cic_safe_margin(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(-5.0, 5.0, size=(1000, 3))
        spec = MeshSpec.fit(pos, 64)
        u = spec.cell_coordinates(pos)
        base = np.floor(u)
        assert (base >= 0).all() and (base <= spec.size - 2).all()

    def test_fit_key_stable_under_small_excursions(self):
        """The cloud breathing a little must not change the box length
        (that would thrash the Green's-function cache)."""
        rng = np.random.default_rng(3)
        pos = rng.uniform(-1.0, 1.0, size=(500, 3))
        a = MeshSpec.fit(pos, 32)
        b = MeshSpec.fit(pos * 1.05, 32)
        assert a.box_length == b.box_length

    def test_fit_rejects_bad_sizes(self):
        pos = np.zeros((4, 3))
        with pytest.raises(ConfigurationError):
            MeshSpec.fit(pos, 48)
        with pytest.raises(ConfigurationError):
            MeshSpec.fit(pos, 8)

    def test_deposit_outside_mesh_raises(self):
        spec = MeshSpec(32, 1.0, (0.0, 0.0, 0.0))
        with pytest.raises(ConfigurationError):
            cic_deposit(np.array([[100.0, 0.0, 0.0]]), np.ones(1), spec)


class TestCIC:
    def test_deposit_conserves_mass(self):
        rng = np.random.default_rng(5)
        pos = rng.uniform(-1, 1, size=(300, 3))
        mass = rng.uniform(0.5, 2.0, size=300)
        spec = MeshSpec.fit(pos, 32)
        grid = cic_deposit(pos, mass, spec)
        assert grid.sum() == pytest.approx(mass.sum(), rel=1e-12)

    def test_gather_inverts_constant_field(self):
        """A constant grid must interpolate to exactly that constant."""
        rng = np.random.default_rng(6)
        pos = rng.uniform(-1, 1, size=(200, 3))
        spec = MeshSpec.fit(pos, 32)
        grid = np.full((32, 32, 32), 7.25)
        np.testing.assert_allclose(
            cic_gather(grid, pos, spec), 7.25, rtol=1e-14
        )

    def test_particle_on_cell_centre_touches_one_cell(self):
        spec = MeshSpec(32, 0.5, (0.0, 0.0, 0.0))
        pos = np.array([[2.0, 3.0, 1.5]])  # exactly cell (4, 6, 3)
        grid = cic_deposit(pos, np.array([3.0]), spec)
        assert grid[4, 6, 3] == 3.0
        assert grid.sum() == 3.0
        assert np.count_nonzero(grid) == 1

    def test_deposit_is_deterministic(self):
        rng = np.random.default_rng(7)
        pos = rng.uniform(-1, 1, size=(5000, 3))
        mass = rng.uniform(0.1, 1.0, size=5000)
        spec = MeshSpec.fit(pos, 32)
        a = cic_deposit(pos, mass, spec)
        b = cic_deposit(pos, mass, spec)
        assert np.array_equal(a, b)


class TestSplit:
    def test_erfc_matches_series_values(self):
        # Reference values from the A&S tables.
        assert erfc(np.array([0.0]))[0] == pytest.approx(1.0, abs=2e-7)
        assert erfc(np.array([0.5]))[0] == pytest.approx(0.4795001, abs=2e-7)
        assert erfc(np.array([2.0]))[0] == pytest.approx(0.0046777, abs=2e-7)

    def test_erf_odd_symmetry(self):
        # exact except at x = 0, where the A&S polynomial is off by ~1e-9
        # (within its documented 1.5e-7 accuracy)
        x = np.linspace(-3, 3, 61)
        np.testing.assert_allclose(erf(-x), -erf(x), atol=5e-9)

    def test_split_sums_to_unity(self):
        """erf + erfc = 1 exactly, so far + near recovers the full force."""
        x = np.linspace(0, 5, 101)
        np.testing.assert_allclose(erf(x) + erfc(x), 1.0, atol=1e-15)

    def test_screen_limits(self):
        s0, _ = split_weights(np.array([1e-12]), 0.5)
        s_far, _ = split_weights(np.array([10.0]), 0.5)
        assert s0[0] == pytest.approx(1.0, abs=1e-9)
        assert s_far[0] == pytest.approx(0.0, abs=1e-9)

    def test_screen_derivative_by_finite_difference(self):
        a = 0.37
        r = np.linspace(0.05, 3.0, 40)
        eps = 1e-6
        s_hi, _ = split_weights(r + eps, a)
        s_lo, _ = split_weights(r - eps, a)
        _, sp = split_weights(r, a)
        # rtol bounded by the A&S approximation's local slope error, not
        # by the finite-difference step
        np.testing.assert_allclose(sp, (s_hi - s_lo) / (2 * eps),
                                   rtol=1e-3, atol=1e-9)

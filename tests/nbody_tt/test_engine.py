"""Bit-identity and accounting regression tests for the batched engine.

The batched block-dispatch engine must be indistinguishable from the
per-block path in everything but wall clock: identical result bits for
every data format (softened or not, with the diagonal self-mask, across
multi-device tile splits), identical cost-model charges, identical
timeline phases, and identical cooperative-scheduler round counts.
"""

import numpy as np
import pytest

from repro.core.initial_conditions import plummer
from repro.errors import ConfigurationError
from repro.metalium import CreateDevice
from repro.nbody_tt.engine import BatchedDispatchEngine
from repro.nbody_tt.force_kernel import (
    BlockAccumulators,
    force_block,
    resident_i_arrays,
)
from repro.nbody_tt.offload import TTForceBackend
from repro.nbody_tt.tiling import (
    J_QUANTITIES,
    OUT_QUANTITIES,
    ParticleTiles,
    TilizeCache,
)
from repro.wormhole.dtypes import DataFormat

#: Formats DRAM buffers can round-trip (BFP8 is covered engine-directly).
DRAM_FMTS = [DataFormat.FLOAT32, DataFormat.BFLOAT16, DataFormat.FLOAT16]


def _backend_pair(*, fmt=DataFormat.FLOAT32, softening=0.0, n_cores=4):
    per_block = TTForceBackend(
        CreateDevice(0), n_cores=n_cores, fmt=fmt, softening=softening,
        engine="per-block",
    )
    batched = TTForceBackend(
        CreateDevice(0), n_cores=n_cores, fmt=fmt, softening=softening,
        engine="batched",
    )
    return per_block, batched


def _reference_tiles(tiles, fmt, softening):
    """Per-block accumulator tiles for every i-tile (the ground truth)."""
    out = {}
    for it in range(tiles.n_tiles):
        acc = BlockAccumulators(fmt)
        i_pages = tiles.i_pages(it)
        i_arrays = resident_i_arrays(i_pages, fmt)
        for jt in range(tiles.n_tiles):
            force_block(
                i_pages, tiles.j_pages(jt), acc,
                softening=softening, fmt=fmt, diagonal=jt == it,
                i_arrays=i_arrays,
            )
        out[it] = acc.to_tiles()
    return out


class TestBitIdentity:
    @pytest.mark.parametrize("softening", [0.0, 0.05])
    @pytest.mark.parametrize("fmt", DRAM_FMTS, ids=lambda f: f.value)
    def test_backend_matches_per_block(self, fmt, softening):
        s = plummer(2048, seed=0)
        per_block, batched = _backend_pair(fmt=fmt, softening=softening)
        e_pb = per_block.compute(s.pos, s.vel, s.mass)
        e_ba = batched.compute(s.pos, s.vel, s.mass)
        assert np.array_equal(e_pb.acc, e_ba.acc, equal_nan=True)
        assert np.array_equal(e_pb.jerk, e_ba.jerk, equal_nan=True)

    def test_non_multiple_of_tile_size(self):
        s = plummer(1500, seed=1)
        per_block, batched = _backend_pair(n_cores=3)
        e_pb = per_block.compute(s.pos, s.vel, s.mass)
        e_ba = batched.compute(s.pos, s.vel, s.mass)
        assert np.array_equal(e_pb.acc, e_ba.acc, equal_nan=True)
        assert np.array_equal(e_pb.jerk, e_ba.jerk, equal_nan=True)

    @pytest.mark.parametrize("softening", [0.0, 0.01])
    @pytest.mark.parametrize("fmt", list(DataFormat), ids=lambda f: f.value)
    def test_engine_matches_force_block_directly(self, fmt, softening):
        """Every format — including BFP8, which DRAM cannot round-trip —
        against the raw per-block kernel, exercising the diagonal mask on
        every i-tile."""
        s = plummer(3000, seed=2)
        tiles = ParticleTiles.from_arrays(s.pos, s.vel, s.mass, fmt)
        engine = BatchedDispatchEngine(fmt, softening)
        engine.load_j_stream(tiles)
        values = engine.compute_tiles(list(range(tiles.n_tiles)))
        reference = _reference_tiles(tiles, fmt, softening)
        for it in range(tiles.n_tiles):
            for k, ref_tile in enumerate(reference[it]):
                got = np.asarray(values[it][k], dtype=np.float64)
                assert np.array_equal(got, ref_tile.data, equal_nan=True), (
                    fmt, it, OUT_QUANTITIES[k]
                )

    def test_numpy_fallback_matches_force_block(self, monkeypatch):
        """With the native kernel disabled the pure-NumPy chunk path must
        still be bit-identical."""
        monkeypatch.setenv("REPRO_NATIVE", "0")
        s = plummer(2048, seed=3)
        tiles = ParticleTiles.from_arrays(s.pos, s.vel, s.mass)
        engine = BatchedDispatchEngine(DataFormat.FLOAT32, 0.0)
        assert engine._native is None
        engine.load_j_stream(tiles)
        values = engine.compute_tiles([0, 1])
        reference = _reference_tiles(tiles, DataFormat.FLOAT32, 0.0)
        for it in (0, 1):
            for k, ref_tile in enumerate(reference[it]):
                got = np.asarray(values[it][k], dtype=np.float64)
                assert np.array_equal(got, ref_tile.data, equal_nan=True)

    def test_multi_device_tile_split(self):
        s = plummer(4096, seed=4)
        single = TTForceBackend(
            CreateDevice(0), n_cores=2, engine="batched"
        ).compute(s.pos, s.vel, s.mass)
        pb2 = TTForceBackend(
            [CreateDevice(0), CreateDevice(1)], n_cores=2, engine="per-block"
        ).compute(s.pos, s.vel, s.mass)
        ba2 = TTForceBackend(
            [CreateDevice(0), CreateDevice(1)], n_cores=2, engine="batched"
        ).compute(s.pos, s.vel, s.mass)
        assert np.array_equal(pb2.acc, ba2.acc, equal_nan=True)
        assert np.array_equal(pb2.jerk, ba2.jerk, equal_nan=True)
        assert np.array_equal(single.acc, ba2.acc, equal_nan=True)

    def test_engine_rejects_mismatched_format_and_range(self):
        s = plummer(1024, seed=5)
        tiles = ParticleTiles.from_arrays(s.pos, s.vel, s.mass)
        engine = BatchedDispatchEngine(DataFormat.BFLOAT16, 0.0)
        from repro.errors import NBodyError

        with pytest.raises(NBodyError, match="built for"):
            engine.load_j_stream(tiles)
        engine = BatchedDispatchEngine(DataFormat.FLOAT32, 0.0)
        with pytest.raises(NBodyError, match="load_j_stream"):
            engine.compute_tiles([0])
        engine.load_j_stream(tiles)
        with pytest.raises(NBodyError, match="out of range"):
            engine.compute_tiles([5])


class TestAccountingUnchanged:
    def test_charges_phases_and_rounds_identical(self):
        """Cycle charges, DRAM traffic, timeline phases, and scheduler
        rounds must not depend on the engine (the E11 ablation reads
        them)."""
        s = plummer(3000, seed=6)
        per_block, batched = _backend_pair(n_cores=4)
        e_pb = per_block.compute(s.pos, s.vel, s.mass)
        e_ba = batched.compute(s.pos, s.vel, s.mass)

        seg = lambda ev: [(g.tag, g.seconds, g.detail) for g in ev.segments]  # noqa: E731
        assert seg(e_pb) == seg(e_ba)
        q_pb, q_ba = per_block.queues[0], batched.queues[0]
        assert q_pb.last_scheduler_rounds == q_ba.last_scheduler_rounds
        assert [(p.tag, p.duration_s, p.detail) for p in q_pb.phases] == [
            (p.tag, p.duration_s, p.detail) for p in q_ba.phases
        ]
        d_pb, d_ba = per_block.devices[0], batched.devices[0]
        assert d_pb.dram.bytes_read == d_ba.dram.bytes_read
        assert d_pb.dram.bytes_written == d_ba.dram.bytes_written
        for c_pb, c_ba in zip(d_pb.cores, d_ba.cores):
            assert c_pb.counter.ops == c_ba.counter.ops
            assert c_pb.counter.compute_cycles == c_ba.counter.compute_cycles
            assert c_pb.counter.datamove_cycles == c_ba.counter.datamove_cycles

    @pytest.mark.parametrize("cb_buffering", [1, 2])
    def test_rounds_track_cb_buffering_in_both_engines(self, cb_buffering):
        """The double-buffering ablation's observable is unchanged."""
        s = plummer(2048, seed=7)
        rounds = {}
        for engine in ("per-block", "batched"):
            backend = TTForceBackend(
                CreateDevice(0), n_cores=1, cb_buffering=cb_buffering,
                engine=engine,
            )
            backend.compute(s.pos, s.vel, s.mass)
            rounds[engine] = backend.queues[0].last_scheduler_rounds[0]
        assert rounds["per-block"] == rounds["batched"]

    def test_repeat_evaluations_stay_identical(self):
        """The tilize/upload caches must not change accounting on the
        second evaluation (charged transfers replace real ones 1:1)."""
        s = plummer(2048, seed=8)
        per_block, batched = _backend_pair(n_cores=2)
        for backend in (per_block, batched):
            backend.compute(s.pos, s.vel, s.mass)
        e_pb = per_block.compute(s.pos, s.vel, s.mass)
        e_ba = batched.compute(s.pos, s.vel, s.mass)
        assert np.array_equal(e_pb.acc, e_ba.acc, equal_nan=True)
        q_pb, q_ba = per_block.queues[0], batched.queues[0]
        assert [(p.tag, p.duration_s, p.detail) for p in q_pb.phases] == [
            (p.tag, p.duration_s, p.detail) for p in q_ba.phases
        ]


class TestCaches:
    def test_tilize_cache_reuses_unchanged_columns(self):
        s = plummer(1024, seed=9)
        cache = TilizeCache()
        t1 = ParticleTiles.from_arrays(
            s.pos, s.vel, s.mass, DataFormat.FLOAT32, cache=cache
        )
        t2 = ParticleTiles.from_arrays(
            s.pos, s.vel, s.mass, DataFormat.FLOAT32, cache=cache
        )
        for q in J_QUANTITIES:
            assert t2.columns[q] is t1.columns[q], q
        # a position change rebuilds x/y/z but keeps mass and velocities
        pos2 = s.pos.copy()
        pos2[0, 0] += 1e-3
        t3 = ParticleTiles.from_arrays(
            pos2, s.vel, s.mass, DataFormat.FLOAT32, cache=cache
        )
        assert t3.columns["m"] is t1.columns["m"]
        assert t3.columns["vx"] is t1.columns["vx"]
        assert t3.columns["x"] is not t1.columns["x"]

    def test_tilize_cache_respects_format(self):
        s = plummer(1024, seed=10)
        cache = TilizeCache()
        t32 = ParticleTiles.from_arrays(
            s.pos, s.vel, s.mass, DataFormat.FLOAT32, cache=cache
        )
        t16 = ParticleTiles.from_arrays(
            s.pos, s.vel, s.mass, DataFormat.BFLOAT16, cache=cache
        )
        assert t16.columns["m"] is not t32.columns["m"]
        assert t16.columns["m"][0].fmt is DataFormat.BFLOAT16

    def test_cached_tiles_match_uncached(self):
        s = plummer(1500, seed=11)
        cache = TilizeCache()
        cached = ParticleTiles.from_arrays(
            s.pos, s.vel, s.mass, DataFormat.FLOAT32, cache=cache
        )
        plain = ParticleTiles.from_arrays(s.pos, s.vel, s.mass)
        for q in J_QUANTITIES:
            for a, b in zip(cached.columns[q], plain.columns[q]):
                assert np.array_equal(a.data, b.data)

    def test_upload_cache_skips_reupload_of_constant_columns(self):
        s = plummer(1024, seed=12)
        backend = TTForceBackend(CreateDevice(0), n_cores=1, engine="batched")
        backend.compute(s.pos, s.vel, s.mass)
        uploaded_mass = backend._uploaded[0]["m"]
        pos2 = s.pos + 1e-4
        backend.compute(pos2, s.vel, s.mass)
        # mass column untouched -> same resident tile list; positions
        # changed -> re-uploaded
        assert backend._uploaded[0]["m"] is uploaded_mass

    def test_integration_results_stable_across_steps(self):
        """A short Hermite run through both engines stays bit-identical
        even with the caches active across predictor/corrector steps."""
        from repro.core.simulation import Simulation

        runs = {}
        for engine in ("per-block", "batched"):
            backend = TTForceBackend(CreateDevice(0), n_cores=2, engine=engine)
            sim = Simulation(plummer(1024, seed=13), backend, dt=5e-4)
            result = sim.run(3)
            runs[engine] = result.system
        assert np.array_equal(runs["per-block"].pos, runs["batched"].pos)
        assert np.array_equal(runs["per-block"].vel, runs["batched"].vel)


class TestEngineSelection:
    def test_default_engine_is_batched(self):
        backend = TTForceBackend(CreateDevice(0), n_cores=1)
        assert backend.engine == "batched"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TT_ENGINE", "per-block")
        backend = TTForceBackend(CreateDevice(0), n_cores=1)
        assert backend.engine == "per-block"
        # an explicit argument wins over the environment
        backend = TTForceBackend(
            CreateDevice(0), n_cores=1, engine="batched"
        )
        assert backend.engine == "batched"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            TTForceBackend(CreateDevice(0), n_cores=1, engine="warp-drive")

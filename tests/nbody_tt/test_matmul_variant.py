"""Unit tests for the FPU Gram-matmul ablation module."""

import numpy as np
import pytest

from repro.errors import KernelError
from repro.nbody_tt.matmul_variant import (
    PAIR_MATRIX_TILES,
    MatmulVariantModel,
    gram_r2_block,
)


class TestGramBlock:
    def test_matches_exact_for_generic_points(self):
        rng = np.random.default_rng(0)
        pi = rng.normal(size=(1024, 3))
        pj = rng.normal(size=(1024, 3)) + 3.0
        r2 = gram_r2_block(pi, pj)
        exact = ((pj[None, :, :] - pi[:, None, :]) ** 2).sum(axis=2)
        assert np.allclose(r2, exact, rtol=1e-4, atol=1e-5)

    def test_softening_added(self):
        rng = np.random.default_rng(1)
        pi = rng.normal(size=(1024, 3))
        r2_soft = gram_r2_block(pi, pi + 2.0, softening=0.5)
        r2 = gram_r2_block(pi, pi + 2.0)
        assert np.allclose(r2_soft - r2, 0.25, atol=1e-3)

    def test_shape_validation(self):
        with pytest.raises(KernelError):
            gram_r2_block(np.zeros((100, 3)), np.zeros((1024, 3)))

    def test_pair_matrix_tiles(self):
        assert PAIR_MATRIX_TILES == 1024


class TestModel:
    def test_slowdown_above_one(self):
        model = MatmulVariantModel()
        assert model.slowdown_vs_broadcast() > 1.0

    def test_fpu_is_minor_share_but_real(self):
        model = MatmulVariantModel()
        share = (model.fpu_cycles_per_tile_pair()
                 / model.total_cycles_per_tile_pair())
        assert 0.05 < share < 0.5

    def test_utilisation_is_3_of_32(self):
        assert MatmulVariantModel().fpu_utilisation() == pytest.approx(3 / 32)

"""Tests for the TT force backend and the analytic device time model."""

import numpy as np
import pytest

from repro.core.forces import accel_jerk_reference
from repro.core.initial_conditions import plummer
from repro.core.simulation import Simulation
from repro.core.energy import energy_report
from repro.core.validation import validate_forces
from repro.errors import ConfigurationError
from repro.metalium import CreateDevice
from repro.nbody_tt.offload import DeviceTimeModel, TTForceBackend


@pytest.fixture
def device():
    return CreateDevice(0)


class TestFunctionalBackend:
    def test_passes_paper_accuracy_gates(self, device):
        """E4: device forces within 0.05% (acc) / 0.2% (jerk)."""
        s = plummer(2048, seed=0)
        backend = TTForceBackend(device, n_cores=4)
        ev = backend.compute(s.pos, s.vel, s.mass)
        report = validate_forces(s.pos, s.vel, s.mass, ev.acc, ev.jerk)
        assert report.passed, report.summary()

    def test_non_multiple_of_1024(self, device):
        s = plummer(1500, seed=1)
        backend = TTForceBackend(device, n_cores=3)
        ev = backend.compute(s.pos, s.vel, s.mass)
        assert validate_forces(s.pos, s.vel, s.mass, ev.acc, ev.jerk).passed

    def test_core_count_does_not_change_results(self, device):
        s = plummer(2048, seed=2)
        e1 = TTForceBackend(device, n_cores=1).compute(s.pos, s.vel, s.mass)
        e8 = TTForceBackend(device, n_cores=8).compute(s.pos, s.vel, s.mass)
        assert np.array_equal(e1.acc, e8.acc)
        assert np.array_equal(e1.jerk, e8.jerk)

    def test_more_cores_is_faster_modelled_time(self, device):
        s = plummer(4096, seed=3)

        def device_seconds(n_cores):
            ev = TTForceBackend(device, n_cores=n_cores).compute(
                s.pos, s.vel, s.mass
            )
            return sum(seg.seconds for seg in ev.segments
                       if seg.tag == "device")

        t1 = device_seconds(1)
        t4 = device_seconds(4)
        assert t1 / t4 == pytest.approx(4.0, rel=0.05)

    def test_functional_time_matches_analytic(self, device):
        s = plummer(2048, seed=4)
        backend = TTForceBackend(device, n_cores=2)
        ev = backend.compute(s.pos, s.vel, s.mass)
        functional = sum(s_.seconds for s_ in ev.segments
                         if s_.tag == "device")
        analytic = DeviceTimeModel(n_cores=2).eval_seconds(2048)
        assert functional == pytest.approx(analytic, rel=0.03)

    def test_segments_cover_all_phases(self, device):
        s = plummer(1024, seed=5)
        ev = TTForceBackend(device, n_cores=1).compute(s.pos, s.vel, s.mass)
        tags = {seg.tag for seg in ev.segments}
        assert tags == {"pcie", "launch", "device"}

    def test_softened_forces(self, device):
        s = plummer(1024, seed=6)
        backend = TTForceBackend(device, n_cores=2, softening=0.05)
        ev = backend.compute(s.pos, s.vel, s.mass)
        a64, j64 = accel_jerk_reference(s.pos, s.vel, s.mass, softening=0.05)
        assert np.allclose(ev.acc, a64, rtol=1e-3, atol=1e-4)

    def test_validation(self, device):
        with pytest.raises(ConfigurationError):
            TTForceBackend(device, n_cores=0)
        with pytest.raises(ConfigurationError):
            TTForceBackend(device, n_cores=65)
        with pytest.raises(ConfigurationError):
            TTForceBackend(device, softening=-1.0)
        with pytest.raises(ConfigurationError):
            TTForceBackend([])

    def test_repeated_evaluations_reuse_buffers(self, device):
        s = plummer(1024, seed=7)
        backend = TTForceBackend(device, n_cores=2)
        backend.compute(s.pos, s.vel, s.mass)
        allocated = device.dram.allocated_bytes
        backend.compute(s.pos, s.vel, s.mass)
        assert device.dram.allocated_bytes == allocated

    def test_program_build_cost_charged_once_per_job(self, device):
        """Kernels compile once; later evaluations only pay dispatch."""
        s = plummer(1024, seed=9)
        backend = TTForceBackend(device, n_cores=2)
        first = backend.compute(s.pos, s.vel, s.mass)
        second = backend.compute(s.pos, s.vel, s.mass)
        launch = lambda ev: sum(
            seg.seconds for seg in ev.segments if seg.tag == "launch"
        )
        assert launch(first) > 1.0       # includes the program build
        assert launch(second) < 0.01     # dispatch only


class TestIntegrationWithSimulation:
    def test_hermite_cycles_on_device_conserve_energy(self, device):
        """The full offloaded pipeline drives a stable integration."""
        s = plummer(1024, seed=8)
        e0 = energy_report(s)
        backend = TTForceBackend(device, n_cores=4)
        sim = Simulation(s, backend, dt=5e-4)
        result = sim.run(5)
        e1 = energy_report(result.system)
        assert e1.drift_from(e0) < 1e-4
        assert result.model_seconds > 0
        assert result.seconds_by_tag()["device"] > 0


class TestDeviceTimeModel:
    def test_paper_scale_calibration(self):
        """E1 anchor: N=102400, 10 cycles, 64 cores => 301.40 s."""
        model = DeviceTimeModel(n_cores=64)
        assert model.job_seconds(102_400, 10) == pytest.approx(301.40, rel=0.01)

    def test_speedup_vs_cpu_matches_paper(self):
        """The headline 2.23x speedup."""
        from repro.cpuref.openmp import OpenMPModel

        t_dev = DeviceTimeModel(n_cores=64).job_seconds(102_400, 10)
        t_cpu = OpenMPModel(32).job_seconds(102_400, 10)
        assert t_cpu / t_dev == pytest.approx(2.23, abs=0.03)

    def test_worst_core_tiles(self):
        m = DeviceTimeModel(n_cores=64)
        assert m.worst_core_tiles(102_400) == 2
        assert m.worst_core_tiles(1024) == 1
        assert DeviceTimeModel(n_cores=4).worst_core_tiles(102_400) == 25

    def test_compute_dominates_datamove(self):
        m = DeviceTimeModel(n_cores=64)
        assert m.compute_seconds(102_400) > 10 * m.datamove_seconds(102_400)

    def test_dram_contention_floor_exists_but_is_slack(self):
        """The aggregate-bandwidth floor is real but ~3 orders of magnitude
        below the compute time for this kernel (it is compute-bound)."""
        m = DeviceTimeModel(n_cores=64)
        floor = m.dram_contention_seconds(102_400)
        assert floor > 0
        assert m.compute_seconds(102_400) > 100 * floor
        # and it scales with total traffic, not with core count
        assert DeviceTimeModel(n_cores=1).dram_contention_seconds(
            102_400
        ) == pytest.approx(floor)

    def test_multi_device_scales_when_tiles_divide_evenly(self):
        n = 1024 * 512  # 512 tiles: 8/4/2 worst-core tiles for 1/2/4 devices
        t1 = DeviceTimeModel(n_cores=64, n_devices=1).eval_seconds(n)
        t2 = DeviceTimeModel(n_cores=64, n_devices=2).eval_seconds(n)
        t4 = DeviceTimeModel(n_cores=64, n_devices=4).eval_seconds(n)
        assert t1 / t2 == pytest.approx(2.0, rel=0.02)
        assert t1 / t4 == pytest.approx(4.0, rel=0.02)

    def test_multi_device_saturates_on_tile_granularity(self):
        """At N=102400 (100 tiles) 2 devices already reach the 1-tile-per-
        core floor, so 4 devices cannot improve further — the granularity
        effect the strong-scaling bench (E8) reports."""
        t2 = DeviceTimeModel(n_cores=64, n_devices=2).compute_seconds(102_400)
        t4 = DeviceTimeModel(n_cores=64, n_devices=4).compute_seconds(102_400)
        assert t2 == pytest.approx(t4)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DeviceTimeModel(n_cores=0)
        with pytest.raises(ConfigurationError):
            DeviceTimeModel(n_devices=0)
        with pytest.raises(ConfigurationError):
            DeviceTimeModel().job_seconds(0, 10)

    def test_o_n_squared_scaling(self):
        m = DeviceTimeModel(n_cores=1)
        t1 = m.compute_seconds(1024)
        t4 = m.compute_seconds(4096)
        # pure O(N^2) up to the per-i-tile diagonal self-mask correction
        assert t4 / t1 == pytest.approx(16.0, rel=0.03)

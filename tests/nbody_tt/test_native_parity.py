"""Native-kernel parity: every C fast path is bit-identical to the
NumPy code it replaces, under both ``REPRO_NATIVE`` settings.

The bit-identity contract (same IEEE fp32 ops, same order, reductions
matching NumPy's pairwise tree) is what lets the native kernels be a pure
speed change: these tests pin it for the fused engine tile kernel, the
double-single ablation, the Gram-chain ablation, and the pairwise-sum
reduction itself."""

import numpy as np
import pytest

from repro import plummer
from repro.backends import make_backend
from repro.nbody_tt._native import (
    _pairwise_matches_numpy,
    native_available,
    native_ds_kernel,
    native_gram_kernel,
    native_pairwise_sum,
    native_tile_kernel,
)

pytestmark = pytest.mark.skipif(
    not native_available(), reason="no C toolchain for the native kernels"
)


def _compute(backend_name, system, **options):
    backend = make_backend(backend_name, **options)
    return backend.compute(system.pos, system.vel, system.mass)


class TestPairwiseSum:
    """The C reduction reproduces NumPy's pairwise tree exactly."""

    def test_self_test_passes_for_loaded_kernel(self):
        from repro.nbody_tt import _native

        kernels = _native._load()
        assert kernels is not None
        assert _pairwise_matches_numpy(kernels.pairwise)

    def test_matches_numpy_across_sizes(self):
        rng = np.random.default_rng(99)
        for n in (1, 7, 8, 127, 128, 129, 1024, 4096, 5000):
            values = rng.standard_normal(n).astype(np.float32) * 1e3
            got = native_pairwise_sum(values)
            assert got is not None
            assert np.float32(got) == values.sum(dtype=np.float32), n

    def test_fused_tile_kernel_gated_on_self_test(self):
        # the fused kernel only loads when the reduction self-test passed
        assert native_tile_kernel() is not None


@pytest.mark.parametrize("softening", [0.0, 0.01])
class TestDSParity:
    def test_native_matches_numpy_fallback(self, monkeypatch, softening):
        system = plummer(512, seed=21)
        assert native_ds_kernel() is not None
        fast = _compute("tt-ds", system, softening=softening)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert native_ds_kernel() is None
        slow = _compute("tt-ds", system, softening=softening)
        assert np.array_equal(fast.acc, slow.acc, equal_nan=True)
        assert np.array_equal(fast.jerk, slow.jerk, equal_nan=True)


@pytest.mark.parametrize("softening", [0.0, 0.01])
class TestMatmulParity:
    def test_native_matches_numpy_fallback(self, monkeypatch, softening):
        # 1500 is not a multiple of the 1024 Gram block: exercises padding
        system = plummer(1500, seed=22)
        assert native_gram_kernel() is not None
        fast = _compute("tt-matmul", system, softening=softening)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert native_gram_kernel() is None
        slow = _compute("tt-matmul", system, softening=softening)
        assert np.array_equal(fast.acc, slow.acc, equal_nan=True)
        assert np.array_equal(fast.jerk, slow.jerk, equal_nan=True)


class TestEngineFusedParity:
    def test_fused_tile_path_matches_disabled_native(self, monkeypatch):
        system = plummer(2048, seed=23)
        fast = _compute("tt", system, cores=4)
        monkeypatch.setenv("REPRO_NATIVE", "0")
        slow = _compute("tt", system, cores=4)
        assert np.array_equal(fast.acc, slow.acc, equal_nan=True)
        assert np.array_equal(fast.jerk, slow.jerk, equal_nan=True)

    def test_sharded_uses_fused_path_identically(self, monkeypatch):
        system = plummer(4096, seed=24)
        fast = _compute("tt", system, cores=4, cards=2, workers="serial")
        monkeypatch.setenv("REPRO_NATIVE", "0")
        slow = _compute("tt", system, cores=4, cards=2, workers="serial")
        assert np.array_equal(fast.acc, slow.acc, equal_nan=True)
        assert np.array_equal(fast.jerk, slow.jerk, equal_nan=True)


def test_loaders_honour_repro_native_zero(monkeypatch):
    monkeypatch.setenv("REPRO_NATIVE", "0")
    assert native_tile_kernel() is None
    assert native_ds_kernel() is None
    assert native_gram_kernel() is None
    assert native_pairwise_sum(np.ones(4, dtype=np.float32)) is None
    assert not native_available()

"""Tests for particle tiling and the core scheduling (paper Fig. 2)."""

import numpy as np
import pytest

from repro.core.initial_conditions import plummer
from repro.errors import NBodyError
from repro.nbody_tt.tiling import (
    I_QUANTITIES,
    J_QUANTITIES,
    OUT_QUANTITIES,
    PAD_OFFSET,
    ParticleTiles,
    assign_tiles_to_cores,
)
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.tile import TILE_ELEMENTS, Tile


class TestParticleTiles:
    def test_exact_multiple(self):
        s = plummer(2048, seed=0)
        tiles = ParticleTiles.from_arrays(s.pos, s.vel, s.mass)
        assert tiles.n == 2048 and tiles.n_tiles == 2
        assert set(tiles.columns) == set(J_QUANTITIES)

    def test_paper_scale_layout(self):
        """N = 102400 particles => exactly 100 column tiles of 1024."""
        rng = np.random.default_rng(0)
        n = 102_400
        pos = rng.normal(size=(n, 3))
        vel = np.zeros((n, 3))
        mass = np.full(n, 1.0 / n)
        tiles = ParticleTiles.from_arrays(pos, vel, mass)
        assert tiles.n_tiles == 100

    def test_padding_masses_zero(self):
        s = plummer(1500, seed=1)
        tiles = ParticleTiles.from_arrays(s.pos, s.vel, s.mass)
        assert tiles.n_tiles == 2
        m_last = tiles.columns["m"][1].data
        assert np.all(m_last[1500 - 1024 :] == 0.0)
        assert np.all(m_last[: 1500 - 1024] > 0.0)

    def test_padding_positions_far_and_distinct(self):
        s = plummer(1030, seed=2)
        tiles = ParticleTiles.from_arrays(s.pos, s.vel, s.mass)
        x_pad = tiles.columns["x"][1].data[1030 - 1024 :]
        assert np.all(np.abs(x_pad) >= PAD_OFFSET)
        assert len(np.unique(x_pad)) == x_pad.size
        # distinct as 3D points even across axes
        y_pad = tiles.columns["y"][1].data[1030 - 1024 :]
        pts = set(zip(x_pad, y_pad))
        assert len(pts) == x_pad.size

    def test_round_trip_values(self):
        s = plummer(2000, seed=3)
        tiles = ParticleTiles.from_arrays(s.pos, s.vel, s.mass)
        from repro.wormhole.tile import untilize_1d

        x = untilize_1d(tiles.columns["x"], 2000)
        assert np.allclose(x, s.pos[:, 0], rtol=1e-7)  # fp32 rounding only

    def test_page_accessors(self):
        s = plummer(1024, seed=4)
        tiles = ParticleTiles.from_arrays(s.pos, s.vel, s.mass)
        assert len(tiles.j_pages(0)) == len(J_QUANTITIES) == 7
        assert len(tiles.i_pages(0)) == len(I_QUANTITIES) == 6

    def test_results_to_arrays(self):
        rng = np.random.default_rng(5)
        cols = {
            q: [Tile(rng.normal(size=TILE_ELEMENTS))] for q in OUT_QUANTITIES
        }
        acc, jerk = ParticleTiles.results_to_arrays(cols, 1000)
        assert acc.shape == (1000, 3) and jerk.shape == (1000, 3)
        assert np.array_equal(acc[:, 0], cols["ax"][0].data[:1000])
        assert np.array_equal(jerk[:, 2], cols["jz"][0].data[:1000])

    def test_results_missing_column(self):
        with pytest.raises(NBodyError, match="missing"):
            ParticleTiles.results_to_arrays({"ax": []}, 10)

    def test_validation(self):
        with pytest.raises(NBodyError):
            ParticleTiles.from_arrays(
                np.zeros((3, 3)), np.zeros((2, 3)), np.ones(3)
            )

    def test_bf16_format(self):
        s = plummer(512, seed=6)
        tiles = ParticleTiles.from_arrays(
            s.pos, s.vel, s.mass, DataFormat.BFLOAT16
        )
        assert tiles.columns["x"][0].fmt is DataFormat.BFLOAT16


class TestScheduling:
    def test_round_robin(self):
        assert assign_tiles_to_cores(5, 2) == [[0, 2, 4], [1, 3]]

    def test_more_cores_than_tiles(self):
        out = assign_tiles_to_cores(2, 4)
        assert out == [[0], [1], [], []]

    def test_paper_scale_balance(self):
        """100 tiles over 64 cores: 36 cores get 2 tiles, 28 get 1."""
        out = assign_tiles_to_cores(100, 64)
        sizes = [len(t) for t in out]
        assert sizes.count(2) == 36 and sizes.count(1) == 28
        assert sum(sizes) == 100

    def test_every_tile_exactly_once(self):
        out = assign_tiles_to_cores(37, 8)
        flat = sorted(t for core in out for t in core)
        assert flat == list(range(37))

    def test_validation(self):
        with pytest.raises(NBodyError):
            assign_tiles_to_cores(0, 4)
        with pytest.raises(NBodyError):
            assign_tiles_to_cores(4, 0)

"""Cross-timestep device residency: the tilize/upload caches skip work
for unchanged columns, the counters prove it, and the generation counter
lets callers skip even the value comparison."""

import numpy as np
import pytest

from repro import plummer
from repro.backends import make_backend
from repro.nbody_tt.tiling import J_QUANTITIES, TilizeCache
from repro.observability import Trace
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.tile import TILE_ELEMENTS, tilize_1d

N_COLUMNS = len(J_QUANTITIES)


class TestTilizeCache:
    def _build(self, values):
        return lambda: tilize_1d(values, DataFormat.FLOAT32)

    def test_value_hit_and_miss_counters(self):
        cache = TilizeCache()
        a = np.arange(100, dtype=np.float64)
        first = cache.get_or_build("x", a, DataFormat.FLOAT32, self._build(a))
        assert (cache.hits, cache.misses) == (0, 1)
        again = cache.get_or_build(
            "x", a.copy(), DataFormat.FLOAT32, self._build(a)
        )
        assert again is first  # identity: lets the upload cache skip too
        assert (cache.hits, cache.misses) == (1, 1)
        b = a + 1.0
        changed = cache.get_or_build(
            "x", b, DataFormat.FLOAT32, self._build(b)
        )
        assert changed is not first
        assert (cache.hits, cache.misses) == (1, 2)

    def test_generation_match_skips_comparison(self):
        cache = TilizeCache()
        a = np.arange(64, dtype=np.float64)
        first = cache.get_or_build(
            "x", a, DataFormat.FLOAT32, self._build(a), generation=5
        )
        # same generation: the caller vouches, no array compare happens —
        # even a different array object returns the cached tiles
        different = a + 100.0
        hit = cache.get_or_build(
            "x", different, DataFormat.FLOAT32,
            self._build(different), generation=5,
        )
        assert hit is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_generation_bump_falls_back_to_value_compare(self):
        cache = TilizeCache()
        a = np.arange(64, dtype=np.float64)
        first = cache.get_or_build(
            "m", a, DataFormat.FLOAT32, self._build(a), generation=1
        )
        # new generation, unchanged values: still a hit (constant masses
        # survive generation bumps), and the stored generation advances
        hit = cache.get_or_build(
            "m", a.copy(), DataFormat.FLOAT32, self._build(a), generation=2
        )
        assert hit is first
        assert (cache.hits, cache.misses) == (1, 1)
        # changed values under a *new* generation: the compare catches it
        again = cache.get_or_build(
            "m", a + 1.0, DataFormat.FLOAT32,
            self._build(a + 1.0), generation=3,
        )
        assert again is not first
        assert cache.misses == 2

    def test_invalidate_forces_rebuild(self):
        cache = TilizeCache()
        a = np.arange(64, dtype=np.float64)
        cache.get_or_build("x", a, DataFormat.FLOAT32, self._build(a))
        cache.invalidate("x")
        cache.get_or_build("x", a, DataFormat.FLOAT32, self._build(a))
        assert (cache.hits, cache.misses) == (0, 2)
        cache.invalidate()
        cache.get_or_build("x", a, DataFormat.FLOAT32, self._build(a))
        assert cache.misses == 3


class TestSingleCardResidency:
    def test_first_step_all_misses(self):
        system = plummer(512, seed=31)
        backend = make_backend("tt", cores=4)
        backend.compute(system.pos, system.vel, system.mass)
        counters = backend.residency_counters()
        assert counters["tilize_cache_hits"] == 0
        assert counters["tilize_cache_misses"] == N_COLUMNS
        assert counters["upload_skipped_bytes"] == 0

    def test_unchanged_mass_never_retilized_or_reuploaded(self):
        """The acceptance criterion: second-and-later steps with unchanged
        masses do zero mass re-tilize and zero mass re-upload."""
        system = plummer(512, seed=31)
        backend = make_backend("tt", cores=4)
        n_tiles = 1  # 512 particles fit one tile
        column_bytes = n_tiles * TILE_ELEMENTS * 4  # fp32 storage
        backend.compute(system.pos, system.vel, system.mass)
        for step in (1, 2, 3):
            moved = system.pos + 0.001 * step * system.vel
            kicked = system.vel * (1.0 + 0.001 * step)
            backend.compute(moved, kicked, system.mass)
            counters = backend.residency_counters()
            # per extra step: the 6 changed columns miss, mass hits
            assert counters["tilize_cache_hits"] == step
            assert counters["tilize_cache_misses"] == N_COLUMNS + 6 * step
            assert counters["upload_skipped_bytes"] == column_bytes * step

    def test_identical_step_hits_every_column(self):
        system = plummer(512, seed=31)
        backend = make_backend("tt", cores=4)
        backend.compute(system.pos, system.vel, system.mass)
        backend.compute(system.pos, system.vel, system.mass)
        counters = backend.residency_counters()
        assert counters["tilize_cache_hits"] == N_COLUMNS
        assert counters["tilize_cache_misses"] == N_COLUMNS
        assert counters["upload_skipped_bytes"] == N_COLUMNS * TILE_ELEMENTS * 4

    def test_invalidate_residency_forces_full_rebuild(self):
        system = plummer(512, seed=31)
        backend = make_backend("tt", cores=4)
        backend.compute(system.pos, system.vel, system.mass)
        backend.invalidate_residency()
        backend.compute(system.pos, system.vel, system.mass)
        counters = backend.residency_counters()
        assert counters["tilize_cache_hits"] == 0
        assert counters["tilize_cache_misses"] == 2 * N_COLUMNS
        assert counters["upload_skipped_bytes"] == 0

    def test_generation_counter_skips_value_compares(self):
        system = plummer(512, seed=31)
        backend = make_backend("tt", cores=4)
        backend.data_generation = 1
        backend.compute(system.pos, system.vel, system.mass)
        backend.compute(system.pos, system.vel, system.mass)
        counters = backend.residency_counters()
        assert counters["tilize_cache_hits"] == N_COLUMNS
        # results stay correct through the generation fast path
        ev = backend.compute(system.pos, system.vel, system.mass)
        fresh = make_backend("tt", cores=4).compute(
            system.pos, system.vel, system.mass
        )
        assert np.array_equal(ev.acc, fresh.acc, equal_nan=True)
        assert np.array_equal(ev.jerk, fresh.jerk, equal_nan=True)


@pytest.mark.parametrize("mode", ["serial", "thread", "process"])
class TestShardedResidency:
    """Counters aggregate across cards — including forked workers, whose
    caches live in the child process."""

    def test_counters_aggregate_across_cards(self, mode):
        system = plummer(2048, seed=32)
        backend = make_backend("tt", cores=4, cards=2, workers=mode)
        try:
            backend.compute(system.pos, system.vel, system.mass)
            counters = backend.residency_counters()
            # each card tilizes the full replicated j-set: 7 columns each
            assert counters["tilize_cache_misses"] == 2 * N_COLUMNS
            assert counters["tilize_cache_hits"] == 0
            backend.compute(system.pos, system.vel, system.mass)
            counters = backend.residency_counters()
            assert counters["tilize_cache_hits"] == 2 * N_COLUMNS
            assert counters["tilize_cache_misses"] == 2 * N_COLUMNS
            assert counters["upload_skipped_bytes"] > 0
        finally:
            backend.close()

    def test_invalidate_reaches_workers(self, mode):
        system = plummer(2048, seed=32)
        backend = make_backend("tt", cores=4, cards=2, workers=mode)
        try:
            backend.compute(system.pos, system.vel, system.mass)
            backend.invalidate_residency()
            backend.compute(system.pos, system.vel, system.mass)
            counters = backend.residency_counters()
            assert counters["tilize_cache_hits"] == 0
            assert counters["tilize_cache_misses"] == 4 * N_COLUMNS
        finally:
            backend.close()


class TestResidencyMetrics:
    def test_single_card_counters_mirrored_into_trace(self):
        system = plummer(512, seed=33)
        trace = Trace()
        backend = make_backend("tt", cores=4)
        backend.trace = trace
        backend.compute(system.pos, system.vel, system.mass)
        backend.compute(system.pos, system.vel, system.mass)
        counters = backend.residency_counters()
        for name, total in counters.items():
            assert trace.metrics.counter(f"residency.{name}").value == total
        assert trace.metrics.counter("residency.tilize_cache_hits").value > 0

    def test_sharded_counters_mirrored_into_trace(self):
        system = plummer(2048, seed=33)
        trace = Trace()
        backend = make_backend("tt", cores=4, cards=2)
        backend.trace = trace  # forces the serial in-line path
        backend.compute(system.pos, system.vel, system.mass)
        backend.compute(system.pos, system.vel, system.mass)
        counters = backend.residency_counters()
        for name, total in counters.items():
            assert trace.metrics.counter(f"residency.{name}").value == total

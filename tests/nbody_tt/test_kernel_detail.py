"""Fine-grained tests of the read/compute/write kernels themselves.

These drive the kernel factories directly on a single Tensix core (no
backend wrapper), asserting the paper's dataflow details: page ordering in
the CBs, the double-for-loop structure of the read kernel, accumulator
handoff, and DRAM write placement.
"""

import numpy as np
import pytest

from repro.core import plummer
from repro.metalium import CreateBuffer, CreateDevice
from repro.nbody_tt.force_kernel import CB_I_IN, CB_J_IN, CB_OUT
from repro.nbody_tt.offload import (
    _make_compute_kernel,
    _make_read_kernel,
    _make_write_kernel,
)
from repro.nbody_tt.tiling import (
    I_QUANTITIES,
    J_QUANTITIES,
    OUT_QUANTITIES,
    ParticleTiles,
)
from repro.wormhole.riscv import RiscvRole
from repro.wormhole.tile import Tile


@pytest.fixture
def setup():
    device = CreateDevice(0)
    s = plummer(2048, seed=77)
    tiles = ParticleTiles.from_arrays(s.pos, s.vel, s.mass)
    in_bufs = {q: CreateBuffer(device, tiles.n_tiles) for q in J_QUANTITIES}
    out_bufs = {q: CreateBuffer(device, tiles.n_tiles) for q in OUT_QUANTITIES}
    for q in J_QUANTITIES:
        in_bufs[q].host_write_tiles(tiles.columns[q])
    return device, s, tiles, in_bufs, out_bufs


class TestReadKernel:
    def test_page_order_i_then_j_stream(self, setup):
        """For each i-tile: 6 i-pages first, then n_tiles groups of 7
        j-pages — the paper's double for-loop."""
        device, s, tiles, in_bufs, _ = setup
        core = device.cores[0]
        cb_i = core.create_cb(CB_I_IN, 6)
        cb_j = core.create_cb(CB_J_IN, 7 * tiles.n_tiles)  # room for all
        kernel = _make_read_kernel(in_bufs, [0], tiles.n_tiles)
        core.bind_kernel("read", RiscvRole.NC, lambda c: kernel(c, {}),
                         kind="data_movement")
        core.run_kernels()

        assert cb_i.pages_available() == len(I_QUANTITIES)
        assert cb_j.pages_available() == 7 * tiles.n_tiles
        # i pages are x,y,z,vx,vy,vz of tile 0
        i_pages = cb_i.pop_front(6)
        for page, q in zip(i_pages, I_QUANTITIES):
            assert np.array_equal(page.data, tiles.columns[q][0].data), q
        # first j group is m,x,y,z,... of tile 0, second group tile 1
        for jt in range(tiles.n_tiles):
            group = cb_j.pop_front(7)
            for page, q in zip(group, J_QUANTITIES):
                assert np.array_equal(
                    page.data, tiles.columns[q][jt].data
                ), (jt, q)

    def test_dram_traffic_charged_to_movers(self, setup):
        device, s, tiles, in_bufs, _ = setup
        core = device.cores[0]
        core.create_cb(CB_I_IN, 6)
        core.create_cb(CB_J_IN, 7 * tiles.n_tiles)
        kernel = _make_read_kernel(in_bufs, [0], tiles.n_tiles)
        core.bind_kernel("read", RiscvRole.NC, lambda c: kernel(c, {}),
                         kind="data_movement")
        core.run_kernels()
        assert core.counter.datamove_cycles > 0
        # reads: 6 i-pages + 7 * n_tiles j-pages, 4 KiB each
        expected_bytes = (6 + 7 * tiles.n_tiles) * 4096
        assert device.dram.bytes_read == expected_bytes


class TestComputeKernel:
    def test_consumes_exactly_and_pushes_results(self, setup):
        device, s, tiles, in_bufs, _ = setup
        core = device.cores[1]
        cb_i = core.create_cb(CB_I_IN, 6)
        cb_j = core.create_cb(CB_J_IN, 7 * tiles.n_tiles)
        cb_out = core.create_cb(CB_OUT, 6)

        # preload the CBs as the read kernel would
        cb_i.try_reserve_back(6)
        for q in I_QUANTITIES:
            cb_i.write_page(tiles.columns[q][1])
        cb_i.push_back(6)
        for jt in range(tiles.n_tiles):
            cb_j.try_reserve_back(7)
            for q in J_QUANTITIES:
                cb_j.write_page(tiles.columns[q][jt])
            cb_j.push_back(7)

        kernel = _make_compute_kernel([1], tiles.n_tiles, 0.0,
                                      tiles.columns["m"][0].fmt)
        core.bind_kernel("compute", RiscvRole.T1, lambda c: kernel(c, {}),
                         kind="compute")
        core.run_kernels()

        assert cb_i.pages_available() == 0
        assert cb_j.pages_available() == 0
        assert cb_out.pages_available() == len(OUT_QUANTITIES)
        # the pushed accumulators hold the forces on tile 1's particles
        pages = cb_out.pop_front(6)
        from repro.core import accel_jerk_reference

        a64, _ = accel_jerk_reference(s.pos, s.vel, s.mass)
        got_ax = pages[0].data[: 2048 - 1024]
        ref_ax = a64[1024:2048, 0]
        scale = np.abs(ref_ax).max()
        assert np.abs(got_ax - ref_ax).max() / scale < 1e-4

    def test_op_stats_match_charge_model(self, setup):
        device, s, tiles, in_bufs, _ = setup
        core = device.cores[2]
        cb_i = core.create_cb(CB_I_IN, 6)
        cb_j = core.create_cb(CB_J_IN, 7 * tiles.n_tiles)
        core.create_cb(CB_OUT, 6)
        cb_i.try_reserve_back(6)
        for q in I_QUANTITIES:
            cb_i.write_page(tiles.columns[q][0])
        cb_i.push_back(6)
        for jt in range(tiles.n_tiles):
            cb_j.try_reserve_back(7)
            for q in J_QUANTITIES:
                cb_j.write_page(tiles.columns[q][jt])
            cb_j.push_back(7)
        kernel = _make_compute_kernel([0], tiles.n_tiles, 0.0,
                                      tiles.columns["m"][0].fmt)
        core.bind_kernel("compute", RiscvRole.T1, lambda c: kernel(c, {}),
                         kind="compute")
        core.run_kernels()
        # one rsqrt per j-particle per i-tile, diagonal where included
        assert core.counter.ops["sfpu.rsqrt"] == tiles.n_tiles * 1024
        assert core.counter.ops["sfpu.where"] == 1024  # one diagonal block


class TestWriteKernel:
    def test_places_tiles_at_right_indices(self, setup):
        device, s, tiles, _, out_bufs = setup
        core = device.cores[3]
        cb_out = core.create_cb(CB_OUT, 12)
        marker = {q: Tile.full(float(k)) for k, q in enumerate(OUT_QUANTITIES)}
        for _ in range(2):  # two i-tiles worth of results
            cb_out.try_reserve_back(6)
            for q in OUT_QUANTITIES:
                cb_out.write_page(marker[q])
            cb_out.push_back(6)
        kernel = _make_write_kernel(out_bufs, [0, 1])
        core.bind_kernel("write", RiscvRole.B, lambda c: kernel(c, {}),
                         kind="data_movement")
        core.run_kernels()
        for k, q in enumerate(OUT_QUANTITIES):
            back, _ = out_bufs[q].host_read_tiles()
            assert np.all(back[0].data == float(k)), q
            assert np.all(back[1].data == float(k)), q

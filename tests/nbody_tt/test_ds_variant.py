"""Unit tests for the double-single force-kernel variant."""

import numpy as np
import pytest

from repro.core import accel_jerk_reference, plummer
from repro.errors import NBodyError
from repro.nbody_tt.ds_variant import DS_OPS_PER_J, DSCostModel, ds_accel_jerk


class TestDSForces:
    def test_matches_reference_to_ds_precision(self):
        s = plummer(256, seed=0)
        acc, jerk = ds_accel_jerk(s.pos, s.vel, s.mass)
        a64, j64 = accel_jerk_reference(s.pos, s.vel, s.mass)
        scale = np.sqrt(np.mean(np.sum(a64**2, axis=1)))
        assert np.abs(acc - a64).max() / scale < 1e-11

    def test_softened(self):
        s = plummer(128, seed=1)
        acc, _ = ds_accel_jerk(s.pos, s.vel, s.mass, softening=0.05)
        a64, _ = accel_jerk_reference(s.pos, s.vel, s.mass, softening=0.05)
        assert np.allclose(acc, a64, rtol=1e-9, atol=1e-11)

    def test_momentum_conservation(self):
        s = plummer(128, seed=2)
        acc, jerk = ds_accel_jerk(s.pos, s.vel, s.mass)
        assert np.allclose((s.mass[:, None] * acc).sum(axis=0), 0.0,
                           atol=1e-12)

    def test_size_guard(self):
        with pytest.raises(NBodyError, match="N <= 2048"):
            big = np.zeros((4096, 3))
            ds_accel_jerk(big, big, np.ones(4096))

    def test_shape_validation(self):
        with pytest.raises(NBodyError):
            ds_accel_jerk(np.zeros((4, 3)), np.zeros((3, 3)), np.ones(4))


class TestDSCostModel:
    def test_op_table_covers_chain(self):
        assert DS_OPS_PER_J["rsqrt"] == 1
        assert DS_OPS_PER_J["sub"] == 9

    def test_slowdown_band(self):
        assert 8.0 < DSCostModel().slowdown_vs_fp32() < 14.0

    def test_projection_scales_like_fp32(self):
        m = DSCostModel()
        assert m.device_eval_seconds(2048) / m.device_eval_seconds(
            1024
        ) == pytest.approx(
            DSCostModel().device_eval_seconds(2048)
            / DSCostModel().device_eval_seconds(1024)
        )
        # and the slowdown is n-independent
        from repro.nbody_tt.offload import DeviceTimeModel

        base = DeviceTimeModel(n_cores=64).compute_seconds(102_400)
        assert m.device_eval_seconds(102_400) == pytest.approx(
            base * m.slowdown_vs_fp32()
        )

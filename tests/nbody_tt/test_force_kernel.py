"""Tests for the force-block macro and its op accounting."""

import numpy as np
import pytest

from repro.core.forces import accel_jerk_reference
from repro.errors import KernelError
from repro.nbody_tt.force_kernel import (
    BlockAccumulators,
    charge_block,
    force_block,
    ops_per_j_iteration,
    weighted_ops_per_j,
)
from repro.nbody_tt.tiling import ParticleTiles
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.noc import NocCoordinate
from repro.wormhole.params import DEFAULT_COSTS
from repro.wormhole.tensix import TensixCore
from repro.wormhole.tile import TILE_ELEMENTS


def block_forces(n, seed=0, fmt=DataFormat.FLOAT32, softening=0.0):
    """Compute forces for a <=1024-particle system via one diagonal block."""
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3)) * 0.3
    mass = rng.uniform(0.1, 1.0, n)
    tiles = ParticleTiles.from_arrays(pos, vel, mass, fmt)
    assert tiles.n_tiles == 1
    acc = BlockAccumulators(fmt)
    force_block(
        tiles.i_pages(0), tiles.j_pages(0), acc,
        softening=softening, fmt=fmt, diagonal=True,
    )
    out = acc.to_tiles()
    a = np.column_stack([t.data[:n] for t in out[:3]])
    j = np.column_stack([t.data[:n] for t in out[3:]])
    return pos, vel, mass, a, j


class TestForceBlockFp32:
    def test_matches_float64_reference(self):
        pos, vel, mass, a, j = block_forces(800, seed=0)
        a64, j64 = accel_jerk_reference(pos, vel, mass)
        scale_a = np.sqrt(np.mean(np.sum(a64**2, axis=1)))
        scale_j = np.sqrt(np.mean(np.sum(j64**2, axis=1)))
        assert np.abs(a - a64).max() / scale_a < 5e-4   # paper acc gate
        assert np.abs(j - j64).max() / scale_j < 2e-3   # paper jerk gate

    def test_softened_matches_reference(self):
        pos, vel, mass, a, j = block_forces(500, seed=1, softening=0.05)
        a64, j64 = accel_jerk_reference(pos, vel, mass, softening=0.05)
        assert np.allclose(a, a64, rtol=1e-3, atol=1e-4)

    def test_phantom_lanes_do_not_contaminate(self):
        """Real lanes are unaffected by the padded phantom particles."""
        pos, vel, mass, a, j = block_forces(700, seed=2)
        assert np.all(np.isfinite(a)) and np.all(np.isfinite(j))

    def test_off_diagonal_block_no_self_mask(self):
        rng = np.random.default_rng(3)
        n = 2048
        pos = rng.normal(size=(n, 3))
        vel = rng.normal(size=(n, 3)) * 0.3
        mass = rng.uniform(0.1, 1.0, n)
        tiles = ParticleTiles.from_arrays(pos, vel, mass)
        acc = BlockAccumulators(DataFormat.FLOAT32)
        # i-tile 0 against j-tile 1: all 1024x1024 pairs are distinct
        force_block(tiles.i_pages(0), tiles.j_pages(1), acc,
                    softening=0.0, fmt=DataFormat.FLOAT32, diagonal=False)
        out = acc.to_tiles()
        a_partial = np.column_stack([t.data for t in out[:3]])
        # reference: force on first 1024 particles from sources 1024..2047
        a64 = np.zeros((1024, 3))
        for k in range(1024, 2048):
            dr = pos[k] - pos[:1024]
            r3 = np.sum(dr * dr, axis=1) ** 1.5
            a64 += mass[k] * dr / r3[:, None]
        assert np.allclose(a_partial, a64, rtol=1e-3, atol=1e-4)

    def test_page_count_validation(self):
        acc = BlockAccumulators(DataFormat.FLOAT32)
        with pytest.raises(KernelError):
            force_block([], [], acc, softening=0.0,
                        fmt=DataFormat.FLOAT32, diagonal=False)


class TestGenericFormats:
    def test_bf16_is_less_accurate_than_fp32(self):
        _, _, _, a32, _ = block_forces(600, seed=4)
        pos, vel, mass, a16, _ = block_forces(600, seed=4,
                                              fmt=DataFormat.BFLOAT16)
        a64, _ = accel_jerk_reference(pos, vel, mass)
        err32 = np.abs(a32 - a64).max()
        err16 = np.abs(a16 - a64).max()
        assert err16 > 3.0 * err32

    def test_fp16_finite_for_moderate_systems(self):
        _, _, _, a, j = block_forces(300, seed=5, fmt=DataFormat.FLOAT16)
        assert np.all(np.isfinite(a))


class TestOpAccounting:
    def test_op_mix_contains_paper_primitives(self):
        """The kernel issues the ops the paper names: sub_binary_tile,
        square_tile, rsqrt_tile."""
        ops = ops_per_j_iteration(softened=False, diagonal=False)
        assert ops["sub"] > 0 and ops["square"] == 3 and ops["rsqrt"] == 1

    def test_softening_and_diagonal_add_ops(self):
        base = ops_per_j_iteration(softened=False, diagonal=False)
        soft = ops_per_j_iteration(softened=True, diagonal=False)
        diag = ops_per_j_iteration(softened=False, diagonal=True)
        assert soft["scalar"] == base["scalar"] + 1
        assert diag["where"] == 1 and "where" not in base

    def test_weighted_ops_value(self):
        w = weighted_ops_per_j(DEFAULT_COSTS, softened=False, diagonal=False)
        assert w == pytest.approx(34.75)

    def test_charge_block_matches_manual_total(self):
        core = TensixCore(0, NocCoordinate(0, 0))
        charge_block(core, TILE_ELEMENTS, softened=False, diagonal=False)
        w = weighted_ops_per_j(DEFAULT_COSTS, softened=False, diagonal=False)
        expected = (
            TILE_ELEMENTS * w * DEFAULT_COSTS.sfpu_cycles_per_tile_op
        )
        assert core.counter.compute_cycles == pytest.approx(expected)
        assert core.counter.ops["sfpu.rsqrt"] == TILE_ELEMENTS

    def test_charged_ops_mirror_op_table(self):
        core = TensixCore(0, NocCoordinate(0, 0))
        charge_block(core, 10, softened=True, diagonal=True)
        table = ops_per_j_iteration(softened=True, diagonal=True)
        for op, per_j in table.items():
            assert core.counter.ops[f"sfpu.{op}"] == per_j * 10, op

"""Tests for analytic profiles, including Monte-Carlo cross-checks of the
IC generators against the theory they sample."""

import numpy as np
import pytest
from scipy.integrate import quad

from repro.core.initial_conditions import plummer, uniform_sphere
from repro.core.profiles import (
    HernquistProfile,
    PlummerProfile,
    UniformSphereProfile,
)
from repro.errors import ConfigurationError


class TestPlummerProfile:
    def test_mass_converges_to_total(self):
        p = PlummerProfile()
        assert p.enclosed_mass(1e6) == pytest.approx(1.0, rel=1e-9)

    def test_density_integrates_to_mass(self):
        p = PlummerProfile(scale_radius=0.7, total_mass=2.0)
        integral, _ = quad(
            lambda r: 4.0 * np.pi * r**2 * p.density(r), 0.0, np.inf
        )
        assert integral == pytest.approx(2.0, rel=1e-8)

    def test_mass_is_integral_of_density(self):
        p = PlummerProfile()
        for r in (0.2, 1.0, 4.0):
            integral, _ = quad(
                lambda x: 4.0 * np.pi * x**2 * p.density(x), 0.0, r
            )
            assert p.enclosed_mass(r) == pytest.approx(integral, rel=1e-8)

    def test_potential_from_poisson(self):
        """dphi/dr = M(r)/r^2."""
        p = PlummerProfile()
        r = 1.3
        h = 1e-6
        dphi = (p.potential(r + h) - p.potential(r - h)) / (2 * h)
        assert dphi == pytest.approx(p.enclosed_mass(r) / r**2, rel=1e-6)

    def test_henon_energy(self):
        """At the Henon scale radius 3pi/16 the total energy is -1/4."""
        assert PlummerProfile().total_energy == pytest.approx(-0.25)

    def test_half_mass_radius(self):
        p = PlummerProfile()
        assert p.enclosed_mass(p.half_mass_radius) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PlummerProfile(scale_radius=-1.0)
        with pytest.raises(ConfigurationError):
            PlummerProfile().density(-1.0)


class TestHernquistProfile:
    def test_mass_limits(self):
        h = HernquistProfile()
        assert h.enclosed_mass(0.0) == 0.0
        assert h.enclosed_mass(1e9) == pytest.approx(1.0, rel=1e-8)

    def test_half_mass_radius(self):
        h = HernquistProfile(scale_radius=0.3)
        assert h.enclosed_mass(h.half_mass_radius) == pytest.approx(0.5)

    def test_density_integrates_to_mass(self):
        h = HernquistProfile()
        integral, _ = quad(
            lambda r: 4.0 * np.pi * r**2 * h.density(r), 0.0, np.inf
        )
        assert integral == pytest.approx(1.0, rel=1e-8)

    def test_potential_at_origin_finite(self):
        h = HernquistProfile(scale_radius=0.5)
        assert h.potential(0.0) == pytest.approx(-2.0)

    def test_total_energy(self):
        assert HernquistProfile(scale_radius=0.5).total_energy == pytest.approx(
            -1.0 / 6.0
        )


class TestUniformSphereProfile:
    def test_mass_profile(self):
        u = UniformSphereProfile(radius=2.0)
        assert u.enclosed_mass(1.0) == pytest.approx(1.0 / 8.0)
        assert u.enclosed_mass(5.0) == pytest.approx(1.0)

    def test_potential_continuous_at_surface(self):
        u = UniformSphereProfile(radius=1.5)
        eps = 1e-9
        assert u.potential(1.5 - eps) == pytest.approx(
            u.potential(1.5 + eps), rel=1e-6
        )

    def test_potential_energy_formula(self):
        u = UniformSphereProfile(radius=2.0, total_mass=3.0)
        assert u.potential_energy == pytest.approx(-0.6 * 9.0 / 2.0)

    def test_free_fall_time(self):
        u = UniformSphereProfile()
        assert u.free_fall_time == pytest.approx(np.pi / (2 * np.sqrt(2.0)))


class TestMonteCarloAgreement:
    """The IC generators sample these profiles: check realisations."""

    def test_plummer_sampler_matches_mass_profile(self):
        n = 20_000
        s = plummer(n, seed=0, virial_scaled=False)  # unscaled sampler: a = 1
        radii = np.sort(np.linalg.norm(s.pos, axis=1))
        for frac in (0.25, 0.5, 0.75):
            r_measured = radii[int(frac * n)]
            # invert M(r) = frac analytically: r = a * (f^{-2/3} - 1)^{-1/2}
            r_theory = (frac ** (-2.0 / 3.0) - 1.0) ** -0.5
            assert r_measured == pytest.approx(r_theory, rel=0.05), frac

    def test_plummer_dispersion_profile(self):
        n = 30_000
        s = plummer(n, seed=1, virial_scaled=False)
        p = PlummerProfile(scale_radius=1.0)
        radii = np.linalg.norm(s.pos, axis=1)
        shell = (radii > 0.4) & (radii < 0.6)
        sigma_measured = s.vel[shell].std()
        assert sigma_measured == pytest.approx(
            p.velocity_dispersion_1d(0.5), rel=0.05
        )

    def test_uniform_sampler_matches_profile(self):
        n = 20_000
        s = uniform_sphere(n, seed=2, radius=1.0)
        u = UniformSphereProfile(radius=1.0)
        radii = np.sort(np.linalg.norm(s.pos, axis=1))
        r_half = radii[n // 2]
        assert r_half == pytest.approx(u.half_mass_radius, rel=0.03)

    def test_cold_collapse_time_matches_theory(self):
        """The cold-collapse example's bounce time is the analytic free
        fall time of the uniform sphere (integration cross-check)."""
        from repro.core import ReferenceBackend, Simulation
        from repro.core.analysis import lagrangian_radii

        s = uniform_sphere(512, seed=3, radius=1.0)
        u = UniformSphereProfile(radius=1.0)
        sim = Simulation(s, ReferenceBackend(softening=0.05), dt=5e-3)
        min_r50 = np.inf
        t_min = 0.0
        for _ in range(int(1.4 * u.free_fall_time / 5e-3 / 10)):
            sim.run(10)
            r50 = lagrangian_radii(s, (0.5,))[0]
            if r50 < min_r50:
                min_r50 = r50
                t_min = s.time
        assert t_min == pytest.approx(u.free_fall_time, rel=0.15)

"""Tests for the Hermite predictor-corrector: order and conservation."""

import numpy as np
import pytest

from repro.core.forces import accel_jerk_reference
from repro.core.hermite import correct, hermite_step, predict
from repro.errors import IntegratorError


def kepler_circular():
    """Equal-mass circular binary with separation 1, period 2*pi/sqrt(2)."""
    mass = np.array([0.5, 0.5])
    pos = np.array([[-0.5, 0.0, 0.0], [0.5, 0.0, 0.0]])
    v = 0.5 * np.sqrt(1.0 / 1.0)  # v_orb of each body: sqrt(M/r)/2 with M=1,r=1
    vel = np.array([[0.0, -v, 0.0], [0.0, v, 0.0]])
    return mass, pos, vel


def evaluate_factory(mass):
    def evaluate(pos, vel):
        return accel_jerk_reference(pos, vel, mass)

    return evaluate


class TestPredict:
    def test_taylor_terms(self):
        pos = np.array([[1.0, 0, 0]])
        vel = np.array([[0.0, 2.0, 0]])
        acc = np.array([[0.0, 0, 3.0]])
        jerk = np.array([[6.0, 0, 0]])
        dt = 0.1
        p, v = predict(pos, vel, acc, jerk, dt)
        assert p[0] == pytest.approx([1.0 + 0.001, 0.2, 0.015])
        assert v[0] == pytest.approx([0.03, 2.0, 0.3])

    def test_invalid_dt(self):
        z = np.zeros((1, 3))
        for dt in (0.0, -1.0, np.nan, np.inf):
            with pytest.raises(IntegratorError):
                predict(z, z, z, z, dt)


class TestCorrect:
    def test_constant_acceleration_exact(self):
        """With a1 = a0 and zero jerk, the corrector is the exact parabola."""
        pos = np.zeros((1, 3))
        vel = np.array([[1.0, 0, 0]])
        acc = np.array([[0.0, -2.0, 0]])
        jerk = np.zeros((1, 3))
        dt = 0.5
        step = correct(pos, vel, acc, jerk, acc, jerk, dt)
        assert step.vel[0] == pytest.approx([1.0, -1.0, 0.0])
        assert step.pos[0] == pytest.approx([0.5, -0.25, 0.0])
        assert np.allclose(step.snap, 0.0)
        assert np.allclose(step.crackle, 0.0)

    def test_derivative_reconstruction_on_polynomial(self):
        """For a(t) = a0 + j t + s t^2/2 + c t^3/6, the corrector recovers
        s and c exactly (it solves that cubic Hermite interpolation)."""
        rng = np.random.default_rng(0)
        a0 = rng.normal(size=(1, 3))
        j0 = rng.normal(size=(1, 3))
        s0 = rng.normal(size=(1, 3))
        c0 = rng.normal(size=(1, 3))
        dt = 0.3
        a1 = a0 + dt * j0 + dt**2 / 2 * s0 + dt**3 / 6 * c0
        j1 = j0 + dt * s0 + dt**2 / 2 * c0
        step = correct(np.zeros((1, 3)), np.zeros((1, 3)), a0, j0, a1, j1, dt)
        assert np.allclose(step.crackle, c0, rtol=1e-9, atol=1e-9)
        assert np.allclose(step.snap, s0 + dt * c0, rtol=1e-9, atol=1e-9)

    def test_invalid_dt(self):
        z = np.zeros((1, 3))
        with pytest.raises(IntegratorError):
            correct(z, z, z, z, z, z, -0.1)


class TestOrderOfAccuracy:
    def test_fourth_order_convergence_on_kepler(self):
        """Halving dt reduces the one-orbit energy error by ~2^4."""
        mass, pos0, vel0 = kepler_circular()
        evaluate = evaluate_factory(mass)
        period = 2.0 * np.pi  # circular orbit, M=1, r=1 => omega=1

        def energy(pos, vel):
            ke = 0.5 * (mass[:, None] * vel**2).sum()
            pe = -mass[0] * mass[1] / np.linalg.norm(pos[1] - pos[0])
            return ke + pe

        errors = []
        for n_steps in (128, 256, 512):
            dt = period / n_steps
            pos, vel = pos0.copy(), vel0.copy()
            acc, jerk = evaluate(pos, vel)
            for _ in range(n_steps):
                step = hermite_step(pos, vel, acc, jerk, dt, evaluate)
                pos, vel, acc, jerk = step.pos, step.vel, step.acc, step.jerk
            errors.append(abs(energy(pos, vel) - energy(pos0, vel0)))
        rate1 = errors[0] / errors[1]
        rate2 = errors[1] / errors[2]
        assert rate1 > 10.0  # ~16 for a clean 4th-order scheme
        assert rate2 > 10.0

    def test_circular_orbit_stays_circular(self):
        mass, pos, vel = kepler_circular()
        evaluate = evaluate_factory(mass)
        acc, jerk = evaluate(pos, vel)
        dt = 2.0 * np.pi / 500
        for _ in range(500):  # one full period
            step = hermite_step(pos, vel, acc, jerk, dt, evaluate)
            pos, vel, acc, jerk = step.pos, step.vel, step.acc, step.jerk
            sep = np.linalg.norm(pos[1] - pos[0])
            assert sep == pytest.approx(1.0, abs=1e-5)
        # returned to the starting phase
        assert np.allclose(pos, kepler_circular()[1], atol=1e-4)

    def test_momentum_conserved_over_many_steps(self):
        rng = np.random.default_rng(5)
        n = 16
        mass = rng.uniform(0.1, 1.0, n)
        pos = rng.normal(size=(n, 3))
        vel = rng.normal(size=(n, 3)) * 0.3
        evaluate = lambda p, v: accel_jerk_reference(p, v, mass, softening=0.05)
        acc, jerk = evaluate(pos, vel)
        p0 = (mass[:, None] * vel).sum(axis=0)
        for _ in range(50):
            step = hermite_step(pos, vel, acc, jerk, 0.01, evaluate)
            pos, vel, acc, jerk = step.pos, step.vel, step.acc, step.jerk
        p1 = (mass[:, None] * vel).sum(axis=0)
        assert np.allclose(p0, p1, atol=1e-12)

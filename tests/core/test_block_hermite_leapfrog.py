"""Tests for the block-timestep Hermite and leapfrog integrators."""

import numpy as np
import pytest

from repro.core.block_hermite import BlockHermiteIntegrator
from repro.core.energy import energy_report
from repro.core.forces import accel_jerk_on_targets, accel_jerk_reference
from repro.core.initial_conditions import binary, plummer
from repro.core.leapfrog import LeapfrogSimulation, leapfrog_step
from repro.core.simulation import ReferenceBackend, Simulation
from repro.errors import ConfigurationError, NBodyError


class TestAccelJerkOnTargets:
    def test_matches_full_evaluation(self):
        s = plummer(128, seed=0)
        acc_full, jerk_full = accel_jerk_reference(s.pos, s.vel, s.mass)
        targets = np.array([3, 17, 55, 100])
        acc, jerk = accel_jerk_on_targets(s.pos, s.vel, s.mass, targets)
        assert np.allclose(acc, acc_full[targets], rtol=1e-13)
        assert np.allclose(jerk, jerk_full[targets], rtol=1e-13)

    def test_all_targets_equals_reference(self):
        s = plummer(64, seed=1)
        acc_full, jerk_full = accel_jerk_reference(s.pos, s.vel, s.mass)
        acc, jerk = accel_jerk_on_targets(
            s.pos, s.vel, s.mass, np.arange(64)
        )
        assert np.allclose(acc, acc_full, rtol=1e-13)
        assert np.allclose(jerk, jerk_full, rtol=1e-13)

    def test_validation(self):
        s = plummer(16, seed=2)
        with pytest.raises(NBodyError):
            accel_jerk_on_targets(s.pos, s.vel, s.mass, np.array([], int))
        with pytest.raises(NBodyError):
            accel_jerk_on_targets(s.pos, s.vel, s.mass, np.array([99]))


class TestBlockHermite:
    def test_energy_conservation(self):
        s = plummer(256, seed=3)
        e0 = energy_report(s)
        integ = BlockHermiteIntegrator(s, eta=0.01, eta_start=0.005)
        integ.run_until(0.25)
        integ.synchronise()
        assert energy_report(s).drift_from(e0) < 1e-7

    def test_momentum_conservation(self):
        """Block schemes pair forces against *predicted* partners, so
        Newton's third law holds only to the scheme's order — momentum
        drifts at the truncation level, not round-off."""
        s = plummer(128, seed=4)
        p0 = (s.mass[:, None] * s.vel).sum(axis=0)
        integ = BlockHermiteIntegrator(s, eta=0.02)
        integ.run_until(0.2)
        integ.synchronise()
        p1 = (s.mass[:, None] * s.vel).sum(axis=0)
        assert np.allclose(p0, p1, atol=1e-6)
        assert not np.allclose(p0, p1, atol=1e-12)  # genuinely block-paired

    def test_saves_force_evaluations_vs_shared(self):
        """The point of block steps: far fewer pairwise evaluations than a
        shared-step run resolving the same fastest particle."""
        s = plummer(256, seed=5)
        integ = BlockHermiteIntegrator(s, eta=0.01, eta_start=0.005)
        integ.run_until(0.2)
        shared_equivalent = integ.stats.block_steps * s.n * s.n
        assert integ.stats.force_pair_evaluations < shared_equivalent / 4

    def test_levels_form_a_hierarchy(self):
        s = plummer(256, seed=6)
        integ = BlockHermiteIntegrator(s, eta=0.01)
        integ.run_until(0.1)
        levels = sorted(integ.stats.level_histogram)
        assert len(levels) >= 3  # genuinely multi-rate
        assert all(level >= 0 for level in levels)

    def test_block_times_stay_on_hierarchy(self):
        s = plummer(64, seed=7)
        integ = BlockHermiteIntegrator(s, dt_max=0.0625)
        integ.initialise()
        for _ in range(40):
            integ.step_block()
            # time is an exact multiple of the finest active level
            t = s.time
            ratio = t / (0.0625 / 2.0**40)
            assert abs(ratio - round(ratio)) < 1e-6

    def test_binary_gets_finer_steps_than_field(self):
        """A hard binary in a cluster forces deep levels for its members
        while field stars stay shallow."""
        from repro.core.initial_conditions import cluster_with_binary

        s = cluster_with_binary(126, seed=8, semi_major_axis=0.002)
        integ = BlockHermiteIntegrator(s, eta=0.02, eta_start=0.01)
        integ.initialise()
        binary_levels = integ._level[:2]
        field_levels = integ._level[2:]
        assert binary_levels.min() > np.median(field_levels) + 2

    def test_run_until_validation(self):
        s = plummer(32, seed=9)
        integ = BlockHermiteIntegrator(s)
        with pytest.raises(ConfigurationError):
            integ.run_until(0.0)

    def test_constructor_validation(self):
        s = plummer(32, seed=10)
        with pytest.raises(ConfigurationError):
            BlockHermiteIntegrator(s, eta=-1.0)
        with pytest.raises(ConfigurationError):
            BlockHermiteIntegrator(s, dt_max=0.0)

    def test_matches_shared_step_trajectory(self):
        """On a short window the block scheme tracks the shared-step
        Hermite solution."""
        s_block = plummer(128, seed=11)
        s_shared = s_block.copy()
        integ = BlockHermiteIntegrator(s_block, eta=0.005, eta_start=0.0025)
        integ.run_until(0.05)
        integ.synchronise()
        t_end = s_block.time
        n_steps = 200
        Simulation(s_shared, ReferenceBackend(), dt=t_end / n_steps).run(n_steps)
        assert np.abs(s_block.pos - s_shared.pos).max() < 1e-6


class TestLeapfrog:
    def evaluate_acc_factory(self, mass):
        def evaluate(pos, vel):
            acc, _ = accel_jerk_reference(pos, vel, mass)
            return acc
        return evaluate

    def test_second_order_convergence(self):
        """KDK is symplectic: the energy error oscillates within a bounded
        envelope that shrinks as dt^2 (measured as the max over an orbit —
        at period end the error returns to round-off)."""
        b = binary(semi_major_axis=1.0, eccentricity=0.6)
        evaluate = self.evaluate_acc_factory(b.mass)
        period = 2.0 * np.pi

        def max_energy_error(n_steps):
            pos, vel = b.pos.copy(), b.vel.copy()
            acc = evaluate(pos, vel)
            dt = period / n_steps
            worst = 0.0
            for _ in range(n_steps):
                pos, vel, acc = leapfrog_step(pos, vel, acc, dt, evaluate)
                ke = 0.5 * (b.mass[:, None] * vel**2).sum()
                pe = -b.mass[0] * b.mass[1] / np.linalg.norm(pos[1] - pos[0])
                worst = max(worst, abs((ke + pe) - (-0.125)))
            return worst

        e1, e2 = max_energy_error(256), max_energy_error(512)
        assert 3.0 < e1 / e2 < 5.5

    def test_symplectic_energy_returns_at_period_end(self):
        """After a whole orbit the leapfrog's energy error nearly cancels —
        the signature of a symplectic scheme."""
        b = binary(semi_major_axis=1.0, eccentricity=0.6)
        evaluate = self.evaluate_acc_factory(b.mass)
        n_steps = 512
        dt = 2.0 * np.pi / n_steps
        pos, vel = b.pos.copy(), b.vel.copy()
        acc = evaluate(pos, vel)
        worst = 0.0
        for _ in range(n_steps):
            pos, vel, acc = leapfrog_step(pos, vel, acc, dt, evaluate)
            ke = 0.5 * (b.mass[:, None] * vel**2).sum()
            pe = -b.mass[0] * b.mass[1] / np.linalg.norm(pos[1] - pos[0])
            worst = max(worst, abs(ke + pe + 0.125))
        final = abs(ke + pe + 0.125)
        assert final < worst / 100

    def test_hermite_beats_leapfrog_at_equal_evals(self):
        """What the jerk buys: Hermite's error is orders of magnitude
        smaller at the same number of force evaluations."""
        s_lf = plummer(128, seed=12)
        s_h = s_lf.copy()
        e0 = energy_report(s_lf)
        n_steps = 50
        dt = 2e-3
        LeapfrogSimulation(s_lf, ReferenceBackend(), dt=dt).run(n_steps)
        Simulation(s_h, ReferenceBackend(), dt=dt).run(n_steps)
        err_lf = energy_report(s_lf).drift_from(e0)
        err_h = energy_report(s_h).drift_from(e0)
        assert err_h < err_lf / 100

    def test_backend_reuse(self):
        """The same Wormhole backend drives the leapfrog (jerk ignored)."""
        from repro.metalium import CreateDevice
        from repro.nbody_tt import TTForceBackend

        s = plummer(1024, seed=13)
        e0 = energy_report(s)
        device = CreateDevice(0)
        sim = LeapfrogSimulation(
            s, TTForceBackend(device, n_cores=2), dt=1e-3
        )
        sim.run(5)
        assert energy_report(s).drift_from(e0) < 1e-4
        assert sim.force_evaluations == 6  # init + 5 steps
        assert any(seg.tag == "device" for seg in sim.timeline)

    def test_validation(self):
        s = plummer(16, seed=14)
        with pytest.raises(ConfigurationError):
            LeapfrogSimulation(s, ReferenceBackend(), dt=0.0)
        sim = LeapfrogSimulation(s, ReferenceBackend(), dt=0.01)
        with pytest.raises(ConfigurationError):
            sim.run(0)

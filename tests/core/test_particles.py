"""Tests for the ParticleSystem container."""

import numpy as np
import pytest

from repro.core.particles import ParticleSystem
from repro.errors import NBodyError


def make(n=4, seed=0):
    rng = np.random.default_rng(seed)
    return ParticleSystem(
        mass=rng.uniform(0.1, 1.0, n),
        pos=rng.normal(size=(n, 3)),
        vel=rng.normal(size=(n, 3)),
    )


class TestConstruction:
    def test_basic(self):
        s = make(5)
        assert s.n == 5
        assert s.acc.shape == (5, 3) and np.all(s.acc == 0.0)
        assert s.jerk.shape == (5, 3)
        assert s.time == 0.0

    def test_arrays_coerced_to_float64_contiguous(self):
        s = ParticleSystem(
            mass=[1.0, 2.0],
            pos=np.asfortranarray(np.zeros((2, 3), dtype=np.float32)),
            vel=np.zeros((2, 3)),
        )
        assert s.pos.dtype == np.float64
        assert s.pos.flags.c_contiguous
        assert s.mass.dtype == np.float64

    def test_shape_validation(self):
        with pytest.raises(NBodyError):
            ParticleSystem(np.ones(3), np.zeros((2, 3)), np.zeros((3, 3)))
        with pytest.raises(NBodyError):
            ParticleSystem(np.ones(2), np.zeros((2, 2)), np.zeros((2, 3)))
        with pytest.raises(NBodyError):
            ParticleSystem(np.ones((2, 2)), np.zeros((2, 3)), np.zeros((2, 3)))

    def test_empty_rejected(self):
        with pytest.raises(NBodyError):
            ParticleSystem(np.ones(0), np.zeros((0, 3)), np.zeros((0, 3)))

    def test_negative_mass_rejected(self):
        with pytest.raises(NBodyError, match="negative"):
            ParticleSystem(np.array([-1.0]), np.zeros((1, 3)), np.zeros((1, 3)))

    def test_nonfinite_rejected(self):
        with pytest.raises(NBodyError, match="non-finite"):
            ParticleSystem(
                np.ones(1), np.array([[np.nan, 0, 0]]), np.zeros((1, 3))
            )


class TestFrame:
    def test_center_of_mass(self):
        s = ParticleSystem(
            mass=np.array([1.0, 3.0]),
            pos=np.array([[0.0, 0, 0], [4.0, 0, 0]]),
            vel=np.array([[0.0, 0, 0], [0.0, 4.0, 0]]),
        )
        assert np.allclose(s.center_of_mass(), [3.0, 0, 0])
        assert np.allclose(s.center_of_mass_velocity(), [0, 3.0, 0])

    def test_to_com_frame(self):
        s = make(10, seed=3)
        s.to_center_of_mass_frame()
        assert np.allclose(s.center_of_mass(), 0.0, atol=1e-14)
        assert np.allclose(s.center_of_mass_velocity(), 0.0, atol=1e-14)

    def test_total_mass(self):
        s = make(7)
        assert s.total_mass == pytest.approx(s.mass.sum())


class TestCopyAndChecks:
    def test_copy_is_deep(self):
        s = make()
        c = s.copy()
        c.pos[0, 0] = 99.0
        assert s.pos[0, 0] != 99.0
        assert c.time == s.time

    def test_check_finite_passes_and_fails(self):
        s = make()
        s.check_finite()
        s.vel[1, 2] = np.inf
        with pytest.raises(NBodyError, match="non-finite"):
            s.check_finite()

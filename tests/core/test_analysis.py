"""Tests for the cluster-structure diagnostics."""

import numpy as np
import pytest

from repro.core.analysis import (
    cluster_report,
    core_radius,
    density_center,
    half_mass_relaxation_time,
    lagrangian_radii,
    velocity_dispersion,
)
from repro.core.initial_conditions import plummer, uniform_sphere
from repro.core.particles import ParticleSystem
from repro.errors import NBodyError


@pytest.fixture(scope="module")
def cluster():
    return plummer(4096, seed=0)


class TestLagrangianRadii:
    def test_monotonic(self, cluster):
        r = lagrangian_radii(cluster, (0.1, 0.25, 0.5, 0.75, 0.9))
        assert np.all(np.diff(r) > 0)

    def test_plummer_half_mass_radius(self, cluster):
        """Virial-scaled Plummer: r_h ~ 1.30 a with a ~ 0.59 => ~0.77."""
        r_half = lagrangian_radii(cluster, (0.5,))[0]
        assert 0.65 < r_half < 0.9

    def test_uniform_sphere_median(self):
        s = uniform_sphere(20_000, seed=1, radius=2.0)
        r_half = lagrangian_radii(s, (0.5,))[0]
        assert r_half == pytest.approx(2.0 * 2.0 ** (-1 / 3), rel=0.05)

    def test_full_mass_radius_is_max(self, cluster):
        r_all = lagrangian_radii(cluster, (1.0,))[0]
        radii = np.linalg.norm(cluster.pos - density_center(cluster), axis=1)
        assert r_all == pytest.approx(radii.max())

    def test_validation(self, cluster):
        with pytest.raises(NBodyError):
            lagrangian_radii(cluster, ())
        with pytest.raises(NBodyError):
            lagrangian_radii(cluster, (0.0,))
        with pytest.raises(NBodyError):
            lagrangian_radii(cluster, (1.5,))


class TestDensityCenter:
    def test_near_origin_for_plummer(self, cluster):
        center = density_center(cluster)
        assert np.linalg.norm(center) < 0.1

    def test_robust_against_escaper(self):
        """One far-flung particle drags the barycentre but not the
        density centre."""
        s = plummer(2048, seed=2)
        s.pos[0] = [500.0, 0.0, 0.0]
        com_shift = np.linalg.norm(s.center_of_mass())
        dc_shift = np.linalg.norm(density_center(s))
        assert com_shift > 0.2
        assert dc_shift < 0.05

    def test_tiny_system_falls_back_to_com(self):
        s = ParticleSystem(
            np.ones(3) / 3,
            np.array([[0.0, 0, 0], [1.0, 0, 0], [0.0, 1.0, 0]]),
            np.zeros((3, 3)),
        )
        assert np.allclose(density_center(s), s.center_of_mass())


class TestCoreRadius:
    def test_plummer_core_radius_band(self, cluster):
        """Plummer core radius ~0.64 a; allow a generous estimator band."""
        rc = core_radius(cluster)
        assert 0.1 < rc < 0.8

    def test_concentrated_smaller_than_uniform(self):
        p = plummer(4096, seed=3)
        u = uniform_sphere(4096, seed=3, radius=1.0)
        assert core_radius(p) < core_radius(u)

    def test_too_few_particles(self):
        s = ParticleSystem(np.ones(4), np.eye(4, 3), np.zeros((4, 3)))
        with pytest.raises(NBodyError):
            core_radius(s)


class TestVelocityDispersion:
    def test_virial_plummer_value(self, cluster):
        """T = 1/4 => sigma_1d = sqrt(2T/3M) = sqrt(1/6)."""
        assert velocity_dispersion(cluster) == pytest.approx(
            np.sqrt(1.0 / 6.0), rel=0.02
        )

    def test_bulk_motion_removed(self, cluster):
        boosted = cluster.copy()
        boosted.vel += np.array([10.0, -5.0, 2.0])
        assert velocity_dispersion(boosted) == pytest.approx(
            velocity_dispersion(cluster), rel=1e-10
        )


class TestRelaxationTime:
    def test_scales_superlinearly_with_n(self):
        t_small = half_mass_relaxation_time(plummer(512, seed=4))
        t_large = half_mass_relaxation_time(plummer(4096, seed=4))
        assert t_large > 4.0 * t_small  # ~ N / ln N

    def test_positive_and_many_crossings(self, cluster):
        report = cluster_report(cluster)
        assert report.t_relax > 0
        assert report.crossing_times_per_relaxation > 10.0

    def test_needs_particles(self):
        s = ParticleSystem(np.ones(2), np.eye(2, 3), np.zeros((2, 3)))
        with pytest.raises(NBodyError):
            half_mass_relaxation_time(s)


class TestClusterReport:
    def test_bundle(self, cluster):
        report = cluster_report(cluster)
        assert report.half_mass_radius == pytest.approx(
            report.lagrangian[1]
        )
        assert report.time == cluster.time
        assert report.sigma_1d > 0

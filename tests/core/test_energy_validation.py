"""Tests for energy diagnostics and the paper's validation gates."""

import numpy as np
import pytest

from repro.core.energy import energy_report, kinetic_energy
from repro.core.initial_conditions import plummer
from repro.core.forces import accel_jerk_reference
from repro.core.validation import (
    ACC_TOLERANCE,
    JERK_TOLERANCE,
    compare_to_reference,
    validate_forces,
)
from repro.errors import ValidationError


class TestEnergy:
    def test_kinetic(self):
        mass = np.array([2.0, 4.0])
        vel = np.array([[1.0, 0, 0], [0, 2.0, 0]])
        assert kinetic_energy(mass, vel) == pytest.approx(1.0 + 8.0)

    def test_report_fields(self):
        s = plummer(128, seed=0)
        rep = energy_report(s)
        assert rep.kinetic == pytest.approx(0.25, rel=1e-9)
        assert rep.potential == pytest.approx(-0.5, rel=1e-9)
        assert rep.total == pytest.approx(-0.25, rel=1e-9)
        assert np.allclose(rep.momentum, 0.0, atol=1e-12)

    def test_drift(self):
        s = plummer(64, seed=1)
        rep = energy_report(s)
        assert rep.drift_from(rep) == 0.0


class TestValidationGates:
    def test_tolerances_match_paper(self):
        assert ACC_TOLERANCE == 5.0e-4   # 0.05%
        assert JERK_TOLERANCE == 2.0e-3  # 0.2%

    def test_perfect_agreement_passes(self):
        s = plummer(128, seed=2)
        acc, jerk = accel_jerk_reference(s.pos, s.vel, s.mass)
        report = compare_to_reference(acc, jerk, acc, jerk)
        assert report.passed
        assert report.max_acc_error == 0.0
        assert "OK" in report.summary()

    def test_fp32_rounding_passes_gate(self):
        """Simple FP32 rounding of the result is far inside the paper's
        0.05%/0.2% envelope — the gate tests *algorithmic* precision loss."""
        s = plummer(256, seed=3)
        acc, jerk = accel_jerk_reference(s.pos, s.vel, s.mass)
        acc32 = acc.astype(np.float32).astype(np.float64)
        jerk32 = jerk.astype(np.float32).astype(np.float64)
        report = compare_to_reference(acc32, jerk32, acc, jerk)
        assert report.passed

    def test_large_error_fails_acc_gate(self):
        s = plummer(64, seed=4)
        acc, jerk = accel_jerk_reference(s.pos, s.vel, s.mass)
        bad = acc.copy()
        bad[0, 0] += 0.01 * np.sqrt(np.mean(np.sum(acc**2, axis=1)))
        report = compare_to_reference(bad, jerk, acc, jerk)
        assert not report.acc_passed
        assert report.jerk_passed
        assert not report.passed
        assert "FAIL" in report.summary()

    def test_validate_forces_inline(self):
        s = plummer(64, seed=5)
        acc, jerk = accel_jerk_reference(s.pos, s.vel, s.mass)
        report = validate_forces(s.pos, s.vel, s.mass, acc, jerk)
        assert report.passed

    def test_raise_on_failure(self):
        s = plummer(64, seed=6)
        acc, jerk = accel_jerk_reference(s.pos, s.vel, s.mass)
        with pytest.raises(ValidationError):
            validate_forces(
                s.pos, s.vel, s.mass, acc * 1.5, jerk, raise_on_failure=True
            )

    def test_shape_mismatch(self):
        a = np.zeros((4, 3))
        with pytest.raises(ValidationError, match="shape"):
            compare_to_reference(a, a, np.zeros((5, 3)), np.zeros((5, 3)))

    def test_zero_reference_rejected(self):
        z = np.zeros((4, 3))
        with pytest.raises(ValidationError, match="zero"):
            compare_to_reference(z, z, z, z)

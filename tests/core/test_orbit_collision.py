"""Tests for orbital-element utilities and the cluster-collision IC."""

import numpy as np
import pytest

from repro.core.energy import energy_report
from repro.core.initial_conditions import binary, cluster_collision, plummer
from repro.core.orbit import (
    binary_elements,
    elements_from_state,
    hardness_ratio,
    orbital_period,
)
from repro.errors import NBodyError


class TestElements:
    def test_circular_orbit(self):
        b = binary(semi_major_axis=0.5, eccentricity=0.0)
        el = binary_elements(b)
        assert el.semi_major_axis == pytest.approx(0.5, rel=1e-12)
        assert el.eccentricity == pytest.approx(0.0, abs=1e-7)
        assert el.bound
        assert el.separation == pytest.approx(0.5)
        assert el.period == pytest.approx(orbital_period(0.5, 1.0))

    def test_eccentric_orbit_at_apoapsis(self):
        b = binary(semi_major_axis=0.2, eccentricity=0.7)
        el = binary_elements(b)
        assert el.semi_major_axis == pytest.approx(0.2, rel=1e-12)
        assert el.eccentricity == pytest.approx(0.7, rel=1e-9)
        assert el.separation == pytest.approx(el.apoapsis)
        assert el.periapsis == pytest.approx(0.2 * 0.3)

    def test_hyperbolic_pair(self):
        el = elements_from_state(
            np.zeros(3), np.zeros(3), 0.5,
            np.array([1.0, 0, 0]), np.array([0.0, 5.0, 0]), 0.5,
        )
        assert not el.bound
        assert el.semi_major_axis < 0
        with pytest.raises(NBodyError):
            _ = el.period

    def test_elements_conserved_along_kepler_orbit(self):
        """a and e are invariants of the two-body problem."""
        from repro.core.forces import accel_jerk_reference
        from repro.core.hermite import hermite_step

        b = binary(semi_major_axis=1.0, eccentricity=0.5)
        evaluate = lambda p, v: accel_jerk_reference(p, v, b.mass)
        pos, vel = b.pos.copy(), b.vel.copy()
        acc, jerk = evaluate(pos, vel)
        el0 = elements_from_state(pos[0], vel[0], 0.5, pos[1], vel[1], 0.5)
        dt = el0.period / 500
        for _ in range(500):
            step = hermite_step(pos, vel, acc, jerk, dt, evaluate)
            pos, vel, acc, jerk = step.pos, step.vel, step.acc, step.jerk
            el = elements_from_state(pos[0], vel[0], 0.5, pos[1], vel[1], 0.5)
            assert el.semi_major_axis == pytest.approx(1.0, rel=1e-5)
            assert el.eccentricity == pytest.approx(0.5, abs=1e-5)

    def test_validation(self):
        b = binary()
        with pytest.raises(NBodyError):
            binary_elements(b, 0, 0)
        with pytest.raises(NBodyError):
            binary_elements(b, 0, 5)
        with pytest.raises(NBodyError):
            elements_from_state(np.zeros(3), np.zeros(3), -1.0,
                                np.ones(3), np.zeros(3), 1.0)
        with pytest.raises(NBodyError):
            elements_from_state(np.zeros(3), np.zeros(3), 1.0,
                                np.zeros(3), np.zeros(3), 1.0)


class TestHardness:
    def test_hard_binary_in_cluster(self):
        from repro.core.initial_conditions import cluster_with_binary

        s = cluster_with_binary(500, seed=0, semi_major_axis=0.001)
        assert hardness_ratio(s) > 10.0

    def test_soft_binary(self):
        from repro.core.initial_conditions import cluster_with_binary

        s = cluster_with_binary(500, seed=1, semi_major_axis=2.0)
        assert hardness_ratio(s) < 1.0

    def test_unbound_pair_is_zero(self):
        s = plummer(64, seed=2)
        s.vel[0] = [50.0, 0, 0]  # fling particle 0 away from particle 1
        assert hardness_ratio(s, 0, 1) == 0.0


class TestClusterCollision:
    def test_total_mass_and_frame(self):
        s = cluster_collision(200, 100, seed=0, mass_ratio=3.0)
        assert s.n == 300
        assert s.total_mass == pytest.approx(1.0)
        assert np.allclose(s.center_of_mass(), 0.0, atol=1e-12)
        assert np.allclose(s.center_of_mass_velocity(), 0.0, atol=1e-12)

    def test_mass_split(self):
        s = cluster_collision(200, 100, seed=1, mass_ratio=3.0)
        m1 = s.mass[:200].sum()
        m2 = s.mass[200:].sum()
        assert m1 / m2 == pytest.approx(3.0, rel=1e-12)

    def test_clusters_are_separated_and_approaching(self):
        s = cluster_collision(128, 128, seed=2, separation=8.0)
        c1 = s.pos[:128].mean(axis=0)
        c2 = s.pos[128:].mean(axis=0)
        assert np.linalg.norm(c2 - c1) > 6.0
        v1 = s.vel[:128].mean(axis=0)
        v2 = s.vel[128:].mean(axis=0)
        # approaching: relative velocity opposes relative position
        assert (c2 - c1) @ (v2 - v1) < 0

    def test_parabolic_default_is_marginally_bound(self):
        s = cluster_collision(256, 256, seed=3, impact_parameter=0.0)
        rep = energy_report(s)
        # internal binding dominates; orbital part is ~zero, so E ~ sum of
        # the two clusters' internal energies (each -0.25 scaled by k^... )
        assert rep.total < 0

    def test_custom_speed_unbound_flyby(self):
        slow = cluster_collision(64, 64, seed=4, relative_speed=0.0)
        fast = cluster_collision(64, 64, seed=4, relative_speed=3.0)
        assert energy_report(fast).total > energy_report(slow).total

    def test_validation(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            cluster_collision(1, 10)
        with pytest.raises(ConfigurationError):
            cluster_collision(10, 10, mass_ratio=0.0)
        with pytest.raises(ConfigurationError):
            cluster_collision(10, 10, separation=-1.0)
        with pytest.raises(ConfigurationError):
            cluster_collision(10, 10, impact_parameter=-0.1)
        with pytest.raises(ConfigurationError):
            cluster_collision(10, 10, relative_speed=-1.0)

"""Tests for the golden-reference force/jerk computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.forces import (
    accel_jerk_reference,
    accel_reference,
    potential_reference,
)
from repro.errors import NBodyError


def pairwise_naive(pos, vel, mass, softening=0.0):
    """Textbook per-pair loops: the slowest, most obviously correct form."""
    n = len(mass)
    acc = np.zeros((n, 3))
    jerk = np.zeros((n, 3))
    eps2 = softening * softening
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            dr = pos[j] - pos[i]
            dv = vel[j] - vel[i]
            s = dr @ dr + eps2
            inv_r3 = s ** -1.5
            acc[i] += mass[j] * inv_r3 * dr
            jerk[i] += mass[j] * (
                dv * inv_r3 - 3.0 * (dr @ dv) / s * inv_r3 * dr
            )
    return acc, jerk


@pytest.fixture
def small_system():
    rng = np.random.default_rng(7)
    n = 24
    return (
        rng.normal(size=(n, 3)),
        rng.normal(size=(n, 3)),
        rng.uniform(0.1, 1.0, n),
    )


class TestAgainstNaiveLoops:
    def test_matches_pairwise_loops(self, small_system):
        pos, vel, mass = small_system
        acc, jerk = accel_jerk_reference(pos, vel, mass)
        acc_n, jerk_n = pairwise_naive(pos, vel, mass)
        assert np.allclose(acc, acc_n, rtol=1e-13, atol=1e-14)
        assert np.allclose(jerk, jerk_n, rtol=1e-13, atol=1e-14)

    def test_matches_with_softening(self, small_system):
        pos, vel, mass = small_system
        acc, jerk = accel_jerk_reference(pos, vel, mass, softening=0.1)
        acc_n, jerk_n = pairwise_naive(pos, vel, mass, softening=0.1)
        assert np.allclose(acc, acc_n, rtol=1e-13, atol=1e-14)
        assert np.allclose(jerk, jerk_n, rtol=1e-13, atol=1e-14)

    def test_blocking_invariant(self, small_system):
        pos, vel, mass = small_system
        a1, j1 = accel_jerk_reference(pos, vel, mass, block=5)
        a2, j2 = accel_jerk_reference(pos, vel, mass, block=1000)
        assert np.allclose(a1, a2, rtol=1e-14)
        assert np.allclose(j1, j2, rtol=1e-14)


class TestPhysics:
    def test_two_body_inverse_square(self):
        pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        vel = np.zeros((2, 3))
        mass = np.array([3.0, 5.0])
        acc, jerk = accel_jerk_reference(pos, vel, mass)
        assert acc[0] == pytest.approx([5.0 / 4.0, 0, 0])
        assert acc[1] == pytest.approx([-3.0 / 4.0, 0, 0])
        assert np.allclose(jerk, 0.0)  # no relative motion

    def test_momentum_conservation(self, small_system):
        """Newton's third law: sum(m a) = 0 and sum(m jdot) = 0."""
        pos, vel, mass = small_system
        acc, jerk = accel_jerk_reference(pos, vel, mass)
        assert np.allclose((mass[:, None] * acc).sum(axis=0), 0.0, atol=1e-12)
        assert np.allclose((mass[:, None] * jerk).sum(axis=0), 0.0, atol=1e-12)

    def test_jerk_is_da_dt(self, small_system):
        """Finite-difference check: j ~ (a(t+h) - a(t-h)) / 2h."""
        pos, vel, mass = small_system
        h = 1e-6
        _, jerk = accel_jerk_reference(pos, vel, mass)
        a_plus = accel_reference(pos + h * vel, mass)
        a_minus = accel_reference(pos - h * vel, mass)
        jerk_fd = (a_plus - a_minus) / (2.0 * h)
        assert np.allclose(jerk, jerk_fd, rtol=1e-5, atol=1e-5)

    def test_softening_caps_close_encounters(self):
        pos = np.array([[0.0, 0, 0], [1e-8, 0, 0]])
        vel = np.zeros((2, 3))
        mass = np.array([0.5, 0.5])
        acc, _ = accel_jerk_reference(pos, vel, mass, softening=0.01)
        assert np.all(np.isfinite(acc))
        assert np.abs(acc).max() < 0.5 / 0.01**2

    def test_coincident_unsoftened_raises(self):
        pos = np.zeros((2, 3))
        vel = np.zeros((2, 3))
        mass = np.ones(2)
        with pytest.raises(NBodyError, match="singular|coincident"):
            accel_jerk_reference(pos, vel, mass)

    def test_negative_softening_rejected(self, small_system):
        pos, vel, mass = small_system
        with pytest.raises(NBodyError):
            accel_jerk_reference(pos, vel, mass, softening=-1.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(NBodyError):
            accel_jerk_reference(np.zeros((3, 3)), np.zeros((3, 3)), np.ones(2))

    def test_g_scaling(self, small_system):
        pos, vel, mass = small_system
        a1, j1 = accel_jerk_reference(pos, vel, mass, G=1.0)
        a2, j2 = accel_jerk_reference(pos, vel, mass, G=2.0)
        assert np.allclose(a2, 2.0 * a1)
        assert np.allclose(j2, 2.0 * j1)


class TestPotential:
    def test_two_body(self):
        pos = np.array([[0.0, 0, 0], [2.0, 0, 0]])
        mass = np.array([3.0, 5.0])
        assert potential_reference(pos, mass) == pytest.approx(-7.5)

    def test_against_naive(self, small_system):
        pos, _, mass = small_system
        naive = 0.0
        for i in range(len(mass)):
            for j in range(i + 1, len(mass)):
                naive -= mass[i] * mass[j] / np.linalg.norm(pos[j] - pos[i])
        assert potential_reference(pos, mass) == pytest.approx(naive, rel=1e-13)

    def test_block_invariant(self, small_system):
        pos, _, mass = small_system
        assert potential_reference(pos, mass, block=3) == pytest.approx(
            potential_reference(pos, mass, block=500), rel=1e-14
        )

    def test_softened_potential_bounded(self):
        pos = np.zeros((2, 3))
        mass = np.ones(2)
        w = potential_reference(pos, mass, softening=0.1)
        assert w == pytest.approx(-1.0 / 0.1)


# ---------------------------------------------------------------------------
# Property tests
# ---------------------------------------------------------------------------


@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_translation_invariance(n, seed):
    """Forces depend only on relative coordinates."""
    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3))
    mass = rng.uniform(0.1, 1.0, n)
    shift = rng.normal(size=3) * 100
    boost = rng.normal(size=3) * 10
    a1, j1 = accel_jerk_reference(pos, vel, mass, softening=0.05)
    a2, j2 = accel_jerk_reference(pos + shift, vel + boost, mass, softening=0.05)
    assert np.allclose(a1, a2, rtol=1e-9, atol=1e-9)
    assert np.allclose(j1, j2, rtol=1e-9, atol=1e-9)


@given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=10**6))
@settings(max_examples=25, deadline=None)
def test_rotation_equivariance(n, seed):
    """Rotating the system rotates forces: a(Rx) = R a(x)."""
    from scipy.spatial.transform import Rotation

    rng = np.random.default_rng(seed)
    pos = rng.normal(size=(n, 3))
    vel = rng.normal(size=(n, 3))
    mass = rng.uniform(0.1, 1.0, n)
    R = Rotation.random(random_state=seed).as_matrix()
    a1, j1 = accel_jerk_reference(pos, vel, mass, softening=0.05)
    a2, j2 = accel_jerk_reference(pos @ R.T, vel @ R.T, mass, softening=0.05)
    assert np.allclose(a2, a1 @ R.T, rtol=1e-9, atol=1e-9)
    assert np.allclose(j2, j1 @ R.T, rtol=1e-9, atol=1e-9)

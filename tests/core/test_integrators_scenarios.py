"""The integrator and scenario registries, and their physics gates.

Three layers of coverage:

* registry mechanics — spec round-trips, unknown names, option
  validation (including the block-Hermite power-of-two ``dt_max`` rule
  that used to silently desynchronise the block hierarchy);
* driver behaviour — every registered integrator runs every gated
  scenario on the reference backend and conserves energy;
* RunSpec integration — the declarative path builds the same drivers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import BackendSpec, RunSpec
from repro.core import (
    BlockHermiteIntegrator,
    IntegratorSpec,
    ReferenceBackend,
    ScenarioSpec,
    energy_report,
    integrator_entry,
    integrator_names,
    make_integrator,
    make_scenario,
    scenario_entry,
    scenario_names,
)
from repro.errors import (
    ConfigurationError,
    UnknownIntegratorError,
    UnknownScenarioError,
)


class TestIntegratorRegistry:
    def test_builtins_registered(self):
        assert set(integrator_names()) >= {
            "hermite", "block-hermite", "leapfrog"
        }

    def test_unknown_name_lists_choices(self):
        with pytest.raises(UnknownIntegratorError, match="hermite"):
            integrator_entry("rk4")

    def test_spec_json_round_trip(self):
        spec = IntegratorSpec("block-hermite", {"eta": 0.01})
        assert IntegratorSpec.from_json(spec.to_json()) == spec

    def test_spec_from_bare_name(self):
        assert IntegratorSpec.from_dict("leapfrog").name == "leapfrog"

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="leapfrog"):
            integrator_entry("leapfrog").resolve_options({"eta": 0.1})


class TestPowerOfTwoDtMax:
    """``dt_max`` must be a power of two: the hierarchy is dt_max / 2^k.

    A non-power-of-two top level used to be accepted silently, producing
    block times that never re-align with the synchronisation points.
    """

    @pytest.mark.parametrize("bad", [0.3, 0.1, 3.0, 0.75])
    def test_option_spec_rejects(self, bad):
        with pytest.raises(ConfigurationError, match="power of two"):
            integrator_entry("block-hermite").resolve_options(
                {"dt_max": bad}
            )

    @pytest.mark.parametrize("bad", [0.3, 0.1, 3.0, 0.75])
    def test_direct_construction_rejects(self, bad):
        from repro.core import plummer

        with pytest.raises(ConfigurationError, match="power of two"):
            BlockHermiteIntegrator(plummer(8, seed=0), dt_max=bad)

    @pytest.mark.parametrize("good", [0.0625, 0.5, 1.0, 2.0, 2.0**-10])
    def test_powers_of_two_accepted(self, good):
        opts = integrator_entry("block-hermite").resolve_options(
            {"dt_max": good}
        )
        assert opts["dt_max"] == good

    def test_nonpositive_still_rejected(self):
        from repro.core import plummer

        with pytest.raises(ConfigurationError, match="positive"):
            BlockHermiteIntegrator(plummer(8, seed=0), dt_max=0.0)


class TestScenarioRegistry:
    def test_all_six_generators_registered(self):
        assert set(scenario_names()) == {
            "plummer", "uniform_sphere", "hernquist", "binary",
            "cluster_collision", "cluster_with_binary",
        }

    def test_unknown_name_lists_choices(self):
        with pytest.raises(UnknownScenarioError, match="plummer"):
            scenario_entry("king")

    def test_spec_json_round_trip(self):
        spec = ScenarioSpec("hernquist", {"scale_radius": 0.3})
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @pytest.mark.parametrize("name", [
        "plummer", "uniform_sphere", "hernquist",
        "cluster_collision", "cluster_with_binary",
    ])
    def test_n_and_seed_are_honoured(self, name):
        a = make_scenario(name, 48, 3)
        b = make_scenario(name, 48, 3)
        c = make_scenario(name, 48, 4)
        assert a.n == 48
        np.testing.assert_array_equal(a.pos, b.pos)
        assert not np.array_equal(a.pos, c.pos)

    def test_binary_is_two_bodies(self):
        assert make_scenario("binary", 48, 3).n == 2

    def test_cluster_with_binary_total_includes_pair(self):
        assert make_scenario("cluster_with_binary", 130, 0).n == 130

    def test_options_reach_the_generator(self):
        wide = make_scenario("binary", 2, 0, semi_major_axis=0.5)
        sep = np.linalg.norm(wide.pos[0] - wide.pos[1])
        assert sep == pytest.approx(0.5)

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="hernquist"):
            make_scenario("hernquist", 16, 0, concentration=7)


#: |dE/E| gates per scenario: generous enough for a short fixed-dt run of
#: each scheme, tight enough to catch a broken force path immediately.
GATED_SCENARIOS = {
    "plummer": 1e-5,
    "hernquist": 1e-5,
    "cluster_with_binary": 1e-3,
    "cluster_collision": 1e-5,
}


class TestEnergyConservationGates:
    @pytest.mark.parametrize("scenario", sorted(GATED_SCENARIOS))
    @pytest.mark.parametrize("integrator", sorted(integrator_names()))
    def test_energy_gate(self, integrator, scenario):
        system = make_scenario(scenario, 64, 7)
        initial = energy_report(system)
        sim = make_integrator(
            integrator, system, ReferenceBackend(), dt=1e-4
        )
        sim.run(5)
        drift = energy_report(system).drift_from(initial)
        assert drift < GATED_SCENARIOS[scenario], (
            f"{integrator} on {scenario}: |dE/E| = {drift:.2e}"
        )


class TestRunSpecIntegration:
    def test_runspec_builds_each_integrator(self):
        for name in integrator_names():
            spec = RunSpec(
                n=32, dt=1e-4, backend=BackendSpec("reference"),
                integrator=name, scenario="hernquist",
            )
            result = spec.make_simulation().run(2)
            assert result.backend_name.startswith("reference")

    def test_block_hermite_stats_reachable(self):
        spec = RunSpec(
            n=34, dt=1e-3, backend=BackendSpec("reference"),
            integrator="block-hermite", scenario="cluster_with_binary",
        )
        sim = spec.make_simulation()
        sim.run(1)
        assert sim.stats.force_pair_evaluations > 0

"""Tests for the simulation driver and its timeline assembly."""

import pytest

from repro.core.energy import energy_report
from repro.core.initial_conditions import plummer
from repro.core.simulation import (
    ForceEvaluation,
    HostCostModel,
    ReferenceBackend,
    Simulation,
    TimelineSegment,
)
from repro.core.timestep import SharedTimestep
from repro.errors import ConfigurationError, NBodyError


class TestConstruction:
    def test_needs_exactly_one_timestep_scheme(self):
        s = plummer(16, seed=0)
        with pytest.raises(ConfigurationError):
            Simulation(s, ReferenceBackend())
        with pytest.raises(ConfigurationError):
            Simulation(s, ReferenceBackend(), dt=0.01, timestep=SharedTimestep())

    def test_invalid_dt(self):
        s = plummer(16, seed=0)
        with pytest.raises(ConfigurationError):
            Simulation(s, ReferenceBackend(), dt=-0.1)

    def test_invalid_cycles(self):
        s = plummer(16, seed=0)
        sim = Simulation(s, ReferenceBackend(), dt=0.01)
        with pytest.raises(ConfigurationError):
            sim.run(0)


class TestPhysics:
    def test_energy_conservation_fixed_dt(self):
        s = plummer(128, seed=1)
        e0 = energy_report(s)
        sim = Simulation(s, ReferenceBackend(softening=0.01), dt=0.001)
        result = sim.run(50)
        e1 = energy_report(result.system)
        # softened system: compare against the softened-force dynamics; the
        # unsoftened energy still drifts only slightly at this dt
        assert e1.drift_from(e0) < 5e-4

    def test_energy_conservation_adaptive(self):
        s = plummer(128, seed=2)
        e0 = energy_report(s)
        sim = Simulation(
            s, ReferenceBackend(),
            timestep=SharedTimestep(eta=0.005, eta_start=0.0025),
        )
        result = sim.run(30)
        e1 = energy_report(result.system)
        assert e1.drift_from(e0) < 1e-6
        assert all(c.dt > 0 for c in result.cycles)

    def test_time_advances(self):
        s = plummer(32, seed=3)
        sim = Simulation(s, ReferenceBackend(), dt=0.01)
        result = sim.run(10)
        assert result.system.time == pytest.approx(0.1)
        assert [c.index for c in result.cycles] == list(range(10))

    @pytest.mark.filterwarnings("ignore:overflow encountered")
    @pytest.mark.filterwarnings("ignore:invalid value encountered")
    def test_divergence_detected(self):
        """A dt large enough to overflow the predictor is caught."""
        s = plummer(32, seed=4)
        sim = Simulation(s, ReferenceBackend(), dt=1e150)
        with pytest.raises(NBodyError, match="non-finite|singular"):
            sim.run(1)


class TestTimeline:
    def test_reference_backend_has_no_model_time(self):
        s = plummer(16, seed=5)
        sim = Simulation(s, ReferenceBackend(), dt=0.01)
        result = sim.run(3)
        assert result.model_seconds == 0.0
        assert result.timeline == []

    def test_host_cost_model_segments(self):
        s = plummer(16, seed=6)
        host = HostCostModel(seconds_per_particle_cycle=1e-3, init_seconds=2.0)
        sim = Simulation(s, ReferenceBackend(), dt=0.01, host_cost=host)
        result = sim.run(4)
        by_tag = result.seconds_by_tag()
        # init + 4 cycles * 16 particles * 1e-3
        assert by_tag["host"] == pytest.approx(2.0 + 4 * 16 * 1e-3)
        details = [seg.detail for seg in result.timeline]
        assert details[0] == "init"
        assert details.count("predict") == 4
        assert details.count("correct") == 4

    def test_backend_segments_interleaved(self):
        """Backend device segments land between predict and correct."""

        class FakeBackend:
            name = "fake"

            def compute(self, pos, vel, mass):
                from repro.core.forces import accel_jerk_reference

                acc, jerk = accel_jerk_reference(pos, vel, mass, softening=0.1)
                return ForceEvaluation(
                    acc, jerk,
                    segments=(TimelineSegment("device", 1.5, "force"),),
                )

        s = plummer(16, seed=7)
        host = HostCostModel(seconds_per_particle_cycle=1e-3)
        sim = Simulation(s, FakeBackend(), dt=0.01, host_cost=host)
        result = sim.run(2)
        tags = [seg.tag for seg in result.timeline]
        # init eval produces one device segment, then per cycle host/device/host
        assert tags == ["device", "host", "device", "host",
                        "host", "device", "host"]
        assert result.seconds_by_tag()["device"] == pytest.approx(4.5)
        assert result.backend_name == "fake"

    def test_cycle_records_model_seconds(self):
        s = plummer(16, seed=8)
        host = HostCostModel(seconds_per_particle_cycle=1e-3)
        sim = Simulation(s, ReferenceBackend(), dt=0.01, host_cost=host)
        result = sim.run(2)
        for c in result.cycles:
            assert c.model_seconds == pytest.approx(16 * 1e-3)

"""Tests for N-body units and astrophysical conversions."""

import numpy as np
import pytest

from repro.core.units import G_NBODY, HENON_CROSSING_TIME, UnitSystem
from repro.errors import ConfigurationError


class TestConstants:
    def test_g_is_one(self):
        assert G_NBODY == 1.0

    def test_crossing_time(self):
        assert HENON_CROSSING_TIME == pytest.approx(2.0 * np.sqrt(2.0))


class TestUnitSystem:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UnitSystem(mass_msun=-1.0)
        with pytest.raises(ConfigurationError):
            UnitSystem(length_pc=0.0)

    def test_typical_cluster_scales(self):
        """A 10^4 Msun, 1 pc cluster: t ~ 0.15 Myr, v ~ 6.6 km/s."""
        units = UnitSystem(mass_msun=1.0e4, length_pc=1.0)
        assert units.time_myr == pytest.approx(0.1491, rel=2e-3)
        assert units.velocity_kms == pytest.approx(6.559, rel=2e-3)

    def test_roundtrip_conversions(self):
        units = UnitSystem(mass_msun=5.0e5, length_pc=3.0)
        for to, frm, value in [
            (units.to_msun, units.from_msun, 0.37),
            (units.to_pc, units.from_pc, 2.2),
            (units.to_myr, units.from_myr, 1.9),
            (units.to_kms, units.from_kms, 0.45),
        ]:
            assert frm(to(value)) == pytest.approx(value, rel=1e-14)

    def test_time_scales_as_sqrt_l3_over_m(self):
        base = UnitSystem(1e4, 1.0)
        bigger = UnitSystem(1e4, 4.0)
        assert bigger.time_myr == pytest.approx(8.0 * base.time_myr, rel=1e-12)
        heavier = UnitSystem(4e4, 1.0)
        assert heavier.time_myr == pytest.approx(base.time_myr / 2.0, rel=1e-12)

    def test_velocity_scales_as_sqrt_m_over_l(self):
        base = UnitSystem(1e4, 1.0)
        assert UnitSystem(4e4, 1.0).velocity_kms == pytest.approx(
            2.0 * base.velocity_kms, rel=1e-12
        )
        assert UnitSystem(1e4, 4.0).velocity_kms == pytest.approx(
            base.velocity_kms / 2.0, rel=1e-12
        )

    def test_crossing_time_myr(self):
        units = UnitSystem(1e4, 1.0)
        assert units.crossing_time_myr == pytest.approx(
            HENON_CROSSING_TIME * units.time_myr
        )

    def test_array_conversion(self):
        units = UnitSystem(1e4, 1.0)
        arr = np.array([0.1, 0.2])
        assert np.allclose(units.to_pc(arr), arr * 1.0)

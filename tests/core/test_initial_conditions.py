"""Tests for initial-condition generators."""

import numpy as np
import pytest

from repro.core.energy import energy_report
from repro.core.initial_conditions import (
    binary,
    cluster_with_binary,
    hernquist,
    plummer,
    uniform_sphere,
)
from repro.errors import ConfigurationError


class TestPlummer:
    def test_henon_units(self):
        s = plummer(512, seed=0)
        assert s.total_mass == pytest.approx(1.0)
        rep = energy_report(s)
        assert rep.total == pytest.approx(-0.25, rel=1e-10)
        assert rep.virial_ratio == pytest.approx(0.5, rel=1e-10)

    def test_barycentric(self):
        s = plummer(256, seed=1)
        assert np.allclose(s.center_of_mass(), 0.0, atol=1e-12)
        assert np.allclose(s.center_of_mass_velocity(), 0.0, atol=1e-12)

    def test_reproducible(self):
        a = plummer(128, seed=42)
        b = plummer(128, seed=42)
        assert np.array_equal(a.pos, b.pos) and np.array_equal(a.vel, b.vel)
        c = plummer(128, seed=43)
        assert not np.array_equal(a.pos, c.pos)

    def test_cutoff_respected(self):
        s = plummer(2048, seed=2, virial_scaled=False)
        radii = np.linalg.norm(s.pos - s.center_of_mass(), axis=1)
        assert radii.max() < 22.8 * 1.01

    def test_half_mass_radius_plummer_profile(self):
        """Plummer half-mass radius ~ 1.30 a; in virial units r_h ~ 0.77."""
        s = plummer(8192, seed=3)
        radii = np.sort(np.linalg.norm(s.pos, axis=1))
        r_half = radii[len(radii) // 2]
        assert 0.6 < r_half < 0.95

    def test_minimum_n(self):
        with pytest.raises(ConfigurationError):
            plummer(1)


class TestUniformSphere:
    def test_cold_by_default(self):
        s = uniform_sphere(256, seed=0)
        assert np.all(s.vel == 0.0)
        assert s.total_mass == pytest.approx(1.0)

    def test_density_uniform(self):
        s = uniform_sphere(20000, seed=1, radius=1.0)
        radii = np.linalg.norm(s.pos - s.center_of_mass(), axis=1)
        # M(<r) ~ r^3: the median radius of a uniform sphere is 2^{-1/3}
        assert np.median(radii) == pytest.approx(2.0 ** (-1 / 3), rel=0.03)

    def test_virial_ratio_setting(self):
        s = uniform_sphere(512, seed=2, virial_ratio=0.5)
        rep = energy_report(s)
        assert rep.virial_ratio == pytest.approx(0.5, rel=1e-8)

    def test_invalid_virial_ratio(self):
        with pytest.raises(ConfigurationError):
            uniform_sphere(16, virial_ratio=1.5)


class TestHernquist:
    def test_mass_and_frame(self):
        s = hernquist(1024, seed=0)
        assert s.total_mass == pytest.approx(1.0)
        assert np.allclose(s.center_of_mass(), 0.0, atol=1e-12)

    def test_cuspier_than_plummer(self):
        """Hernquist has far more mass inside small radii than Plummer."""
        h = hernquist(8192, seed=1)
        p = plummer(8192, seed=1)
        rh = np.linalg.norm(h.pos, axis=1)
        rp = np.linalg.norm(p.pos, axis=1)
        frac_h = np.mean(rh < 0.1)
        frac_p = np.mean(rp < 0.1)
        assert frac_h > 2.0 * frac_p

    def test_roughly_bound(self):
        s = hernquist(2048, seed=2)
        rep = energy_report(s)
        assert rep.total < 0.0
        assert 0.2 < rep.virial_ratio < 0.9


class TestBinary:
    def test_circular_equal_mass(self):
        b = binary(semi_major_axis=1.0)
        assert b.total_mass == pytest.approx(1.0)
        assert np.linalg.norm(b.pos[1] - b.pos[0]) == pytest.approx(1.0)
        # Kepler: E = -m1 m2 / (2a) with m1 = m2 = 1/2, a = 1
        rep = energy_report(b)
        assert rep.total == pytest.approx(-0.125, rel=1e-12)

    def test_kepler_energy_any_eccentricity(self):
        for e in (0.0, 0.5, 0.9):
            b = binary(semi_major_axis=0.1, eccentricity=e, mass_ratio=3.0)
            rep = energy_report(b)
            m1, m2 = b.mass
            expected = -m1 * m2 / (2.0 * 0.1)
            assert rep.total == pytest.approx(expected, rel=1e-12), e

    def test_barycentric(self):
        b = binary(mass_ratio=4.0, eccentricity=0.3)
        assert np.allclose(b.center_of_mass(), 0.0, atol=1e-15)
        assert np.allclose(b.center_of_mass_velocity(), 0.0, atol=1e-15)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            binary(eccentricity=1.0)
        with pytest.raises(ConfigurationError):
            binary(mass_ratio=-1.0)
        with pytest.raises(ConfigurationError):
            binary(semi_major_axis=0.0)


class TestClusterWithBinary:
    def test_composition(self):
        s = cluster_with_binary(100, seed=0, binary_mass_fraction=0.05)
        assert s.n == 102
        assert s.total_mass == pytest.approx(1.0)
        assert s.mass[0] + s.mass[1] == pytest.approx(0.05)
        assert np.allclose(s.center_of_mass(), 0.0, atol=1e-12)

    def test_binary_is_hard(self):
        """The embedded binary's internal orbital speed far exceeds the
        cluster velocity dispersion (it is a *hard* binary)."""
        s = cluster_with_binary(500, seed=1, semi_major_axis=0.001)
        v_rel = np.linalg.norm(s.vel[1] - s.vel[0])
        sigma = np.std(np.linalg.norm(s.vel[2:], axis=1))
        assert v_rel > 3.0 * sigma

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cluster_with_binary(100, binary_mass_fraction=0.0)
        with pytest.raises(ConfigurationError):
            cluster_with_binary(1)

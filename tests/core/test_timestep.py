"""Tests for the Aarseth timestep criteria and block quantisation."""

import numpy as np
import pytest

from repro.core.timestep import (
    SharedTimestep,
    aarseth_timestep,
    initial_timestep,
    quantize_block_timestep,
)
from repro.errors import IntegratorError


class TestInitial:
    def test_scales_linearly_with_eta(self):
        acc = np.array([[1.0, 0, 0]])
        jerk = np.array([[0.0, 2.0, 0]])
        dt1 = initial_timestep(acc, jerk, eta=0.01)
        dt2 = initial_timestep(acc, jerk, eta=0.02)
        assert dt2 == pytest.approx(2.0 * dt1)
        assert dt1[0] == pytest.approx(0.01 * 1.0 / 2.0)

    def test_zero_jerk_does_not_blow_up(self):
        dt = initial_timestep(np.ones((1, 3)), np.zeros((1, 3)))
        assert np.isfinite(dt[0]) and dt[0] > 0

    def test_eta_validation(self):
        with pytest.raises(IntegratorError):
            initial_timestep(np.ones((1, 3)), np.ones((1, 3)), eta=0.0)


class TestAarseth:
    def test_dimensional_consistency(self):
        """Scaling time by k scales each derivative by k^-(order+1) and the
        criterion's dt by k."""
        rng = np.random.default_rng(0)
        a = rng.normal(size=(5, 3))
        j = rng.normal(size=(5, 3))
        s = rng.normal(size=(5, 3))
        c = rng.normal(size=(5, 3))
        dt = aarseth_timestep(a, j, s, c)
        k = 3.0
        dt_scaled = aarseth_timestep(a / k, j / k**2, s / k**3, c / k**4)
        assert np.allclose(dt_scaled, k * dt)

    def test_eta_sqrt_scaling(self):
        rng = np.random.default_rng(1)
        arrs = [rng.normal(size=(4, 3)) for _ in range(4)]
        dt1 = aarseth_timestep(*arrs, eta=0.01)
        dt4 = aarseth_timestep(*arrs, eta=0.04)
        assert np.allclose(dt4, 2.0 * dt1)

    def test_eta_validation(self):
        z = np.ones((1, 3))
        with pytest.raises(IntegratorError):
            aarseth_timestep(z, z, z, z, eta=-1.0)


class TestBlockQuantize:
    def test_powers_of_two(self):
        dt = quantize_block_timestep(np.array([0.1, 0.07, 0.011]), dt_max=0.125)
        assert np.allclose(dt, [0.0625, 0.0625, 0.0078125])

    def test_never_rounds_up(self):
        rng = np.random.default_rng(2)
        raw = rng.uniform(1e-6, 0.125, 100)
        q = quantize_block_timestep(raw, dt_max=0.125)
        assert np.all(q <= raw + 1e-15)
        assert np.all(q >= raw / 2.0)

    def test_dt_above_max_clamps_to_max(self):
        assert quantize_block_timestep(1.0, dt_max=0.125) == 0.125

    def test_scalar_in_scalar_out(self):
        out = quantize_block_timestep(0.03, dt_max=0.125)
        assert isinstance(out, float)

    def test_collapse_detected(self):
        with pytest.raises(IntegratorError, match="collapsed"):
            quantize_block_timestep(1e-30, dt_max=0.125, min_exponent=40)

    def test_invalid_values(self):
        with pytest.raises(IntegratorError):
            quantize_block_timestep(np.array([0.1, -0.1]))
        with pytest.raises(IntegratorError):
            quantize_block_timestep(np.array([np.nan]))


class TestShared:
    def test_validation(self):
        with pytest.raises(IntegratorError):
            SharedTimestep(dt_min=0.1, dt_max=0.01)

    def test_first_uses_min_over_particles(self):
        acc = np.array([[1.0, 0, 0], [1.0, 0, 0]])
        jerk = np.array([[0.0, 1.0, 0], [0.0, 10.0, 0]])
        ts = SharedTimestep(eta_start=0.01, dt_min=1e-10)
        assert ts.first(acc, jerk) == pytest.approx(0.001)

    def test_clipping(self):
        acc = np.ones((1, 3)) * 1e-20
        jerk = np.ones((1, 3))
        ts = SharedTimestep(dt_min=1e-4, dt_max=0.125)
        assert ts.first(acc, jerk) == ts.dt_min
        big_acc = np.ones((1, 3)) * 1e20
        small = np.ones((1, 3)) * 1e-20
        assert ts.next(big_acc, small, small, small) == ts.dt_max

"""Tests for snapshot I/O round trips."""

import numpy as np
import pytest

from repro.core.initial_conditions import plummer
from repro.core.snapshots import load_csv, load_npz, save_csv, save_npz
from repro.errors import NBodyError


@pytest.fixture
def system():
    s = plummer(32, seed=0)
    s.time = 1.25
    s.acc = np.random.default_rng(1).normal(size=(32, 3))
    s.jerk = np.random.default_rng(2).normal(size=(32, 3))
    return s


class TestNpz:
    def test_roundtrip_exact(self, system, tmp_path):
        path = tmp_path / "snap.npz"
        save_npz(path, system)
        back = load_npz(path)
        assert np.array_equal(back.mass, system.mass)
        assert np.array_equal(back.pos, system.pos)
        assert np.array_equal(back.vel, system.vel)
        assert np.array_equal(back.acc, system.acc)
        assert np.array_equal(back.jerk, system.jerk)
        assert back.time == system.time

    def test_missing_file(self, tmp_path):
        with pytest.raises(NBodyError, match="not found"):
            load_npz(tmp_path / "nope.npz")


class TestCsv:
    def test_roundtrip_exact(self, system, tmp_path):
        """repr() serialisation keeps float64 exact through csv."""
        path = tmp_path / "snap.csv"
        save_csv(path, system)
        back = load_csv(path)
        assert np.array_equal(back.pos, system.pos)
        assert np.array_equal(back.vel, system.vel)
        assert np.array_equal(back.jerk, system.jerk)
        assert back.time == system.time

    def test_header_check(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("not a header\nwhatever\n")
        with pytest.raises(NBodyError, match="time header"):
            load_csv(path)

    def test_empty_snapshot_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text(
            "# time = 0.0\n"
            "id,mass,x,y,z,vx,vy,vz,ax,ay,az,jx,jy,jz\n"
        )
        with pytest.raises(NBodyError, match="empty"):
            load_csv(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(NBodyError, match="not found"):
            load_csv(tmp_path / "nope.csv")

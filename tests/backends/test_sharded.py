"""ShardedTTBackend: bit identity, per-card accounting, trace fan-out."""

import numpy as np
import pytest

from repro.backends import ShardedTTBackend, make_backend, shard_tiles
from repro.core import plummer
from repro.errors import ConfigurationError
from repro.observability import Trace


class TestShardTiles:
    def test_contiguous_split_with_remainder(self):
        assert shard_tiles(5, 2) == [[0, 1, 2], [3, 4]]

    def test_more_cards_than_tiles(self):
        assert shard_tiles(2, 4) == [[0], [1], [], []]

    def test_sizes_within_one_tile(self):
        for n_tiles in range(1, 12):
            for n_cards in range(1, 6):
                sizes = [len(s) for s in shard_tiles(n_tiles, n_cards)]
                assert sum(sizes) == n_tiles
                assert max(sizes) - min(sizes) <= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            shard_tiles(0, 2)


class TestBitIdentity:
    """The headline guarantee: sharding never changes a single bit."""

    @pytest.fixture(scope="class")
    def single_card(self):
        system = plummer(4096, seed=5)
        backend = make_backend("tt", cores=4)
        ev = backend.compute(system.pos, system.vel, system.mass)
        return system, ev

    @pytest.mark.parametrize("cards", [2, 4])
    def test_bit_identical_to_single_card(self, single_card, cards):
        system, reference = single_card
        backend = make_backend("tt", cores=4, cards=cards)
        ev = backend.compute(system.pos, system.vel, system.mass)
        assert np.array_equal(ev.acc, reference.acc)
        assert np.array_equal(ev.jerk, reference.jerk)

    def test_single_tile_shard(self):
        """N below one tile-block: one card computes, the rest idle."""
        system = plummer(256, seed=5)
        reference = make_backend("tt", cores=4).compute(
            system.pos, system.vel, system.mass
        )
        ev = make_backend("tt", cores=4, cards=2).compute(
            system.pos, system.vel, system.mass
        )
        assert np.array_equal(ev.acc, reference.acc)
        assert np.array_equal(ev.jerk, reference.jerk)


class TestAccounting:
    def test_per_card_costs_and_segments(self):
        system = plummer(4096, seed=5)
        backend = make_backend("tt", cores=4, cards=2)
        ev = backend.compute(system.pos, system.vel, system.mass)

        costs = backend.last_card_costs
        assert [c.card for c in costs] == [0, 1]
        assert sum(c.n_tiles for c in costs) == 4
        assert all(c.device_seconds > 0 for c in costs)
        assert all(c.gather_bytes > 0 for c in costs)
        assert all("i-tiles" in c.format() for c in costs)

        details = [s.detail for s in ev.segments]
        assert "allgather" in details
        assert "force" in details
        assert any(d.startswith("card0:") for d in details)
        assert any(d.startswith("card1:") for d in details)

    def test_evaluation_priced_by_slowest_card_plus_gather(self):
        system = plummer(4096, seed=5)
        backend = make_backend("tt", cores=4, cards=2)
        ev = backend.compute(system.pos, system.vel, system.mass)
        force = next(s for s in ev.segments if s.detail == "force")
        gather = next(s for s in ev.segments if s.detail == "allgather")
        worst = max(c.device_seconds for c in backend.last_card_costs)
        assert force.seconds == worst
        assert gather.seconds > 0

    def test_requires_two_cards(self):
        with pytest.raises(ConfigurationError, match="at least 2"):
            ShardedTTBackend(1)


class TestTraceFanOut:
    def test_trace_setter_reaches_children_and_queues(self):
        backend = make_backend("tt", cores=2, cards=2)
        trace = Trace()
        backend.trace = trace
        assert backend.trace is trace
        for child in backend.children:
            assert child.trace is trace

    def test_traced_run_has_one_card_span_per_shard(self):
        system = plummer(2048, seed=5)
        backend = make_backend("tt", cores=2, cards=2)
        backend.trace = Trace()
        backend.compute(system.pos, system.vel, system.mass)

        cards = backend.trace.find("card")
        assert [s.attributes["card"] for s in cards] == [0, 1]
        assert sum(s.attributes["n_tiles"] for s in cards) == 2
        assert len(backend.trace.find("allgather")) == 1

"""RunSpec: JSON round-trip, the single env/CLI path, JobSpec bridge."""

from argparse import Namespace

import pytest

from repro.backends import BackendSpec, RunSpec, make_backend
from repro.errors import ConfigurationError
from repro.telemetry import JobSpec


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        spec = RunSpec(
            n=512, cycles=3, dt=2e-3, adaptive=True, softening=0.01,
            seed=7, backend=BackendSpec("tt", {"cores": 4, "cards": 2}),
            trace_path="trace.json", lint="warn", sanitize=True,
        )
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_defaults_round_trip(self):
        spec = RunSpec()
        assert RunSpec.from_json(spec.to_json()) == spec
        assert spec.backend == BackendSpec("tt")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="wibble"):
            RunSpec.from_dict({"n": 64, "wibble": 1})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunSpec(n=0)
        with pytest.raises(ConfigurationError):
            RunSpec(lint="loud")


class TestFromCli:
    """One flat CLI surface; the registry filters per-backend knobs."""

    @staticmethod
    def _args(**overrides):
        defaults = dict(
            backend="tt", n=256, cycles=2, dt=1e-3, adaptive=False,
            softening=0.0, seed=0, cores=None, threads=None, cards=None,
        )
        defaults.update(overrides)
        return Namespace(**defaults)

    def test_device_alias_and_cores_forwarded(self):
        spec = RunSpec.from_cli(self._args(backend="device", cores=4))
        assert spec.backend == BackendSpec("device", {"cores": 4})
        assert spec.n == 256 and spec.cycles == 2

    def test_threads_never_reach_the_device_backend(self):
        spec = RunSpec.from_cli(self._args(cores=4, threads=16))
        assert spec.backend.options == {"cores": 4}

    def test_cores_never_reach_the_cpu_backend(self):
        spec = RunSpec.from_cli(
            self._args(backend="cpu", cores=4, threads=16)
        )
        assert spec.backend.options == {"threads": 16}

    def test_format_maps_to_fmt(self):
        spec = RunSpec.from_cli(self._args(format="bfloat16"))
        assert spec.backend.options == {"fmt": "bfloat16"}

    def test_unset_options_stay_unset(self):
        spec = RunSpec.from_cli(self._args())
        assert spec.backend.options == {}


class TestEnvResolution:
    def test_trace_path_from_env_is_stripped(self):
        spec = RunSpec().resolved_from_env({"REPRO_TRACE": "  out.json  "})
        assert spec.trace_path == "out.json"

    def test_blank_trace_env_is_unset(self):
        assert RunSpec().resolved_from_env({"REPRO_TRACE": "   "}) == RunSpec()

    def test_cli_value_wins_over_env(self):
        spec = RunSpec(trace_path="cli.json", lint="error")
        resolved = spec.resolved_from_env(
            {"REPRO_TRACE": "env.json", "REPRO_LINT": "warn"}
        )
        assert resolved.trace_path == "cli.json"
        assert resolved.lint == "error"

    def test_lint_and_sanitize_fill_from_env(self):
        resolved = RunSpec().resolved_from_env(
            {"REPRO_LINT": "warn", "REPRO_SANITIZE": "1"}
        )
        assert resolved.lint == "warn"
        assert resolved.sanitize is True

    def test_sanitize_zero_means_off(self):
        assert RunSpec().resolved_from_env({"REPRO_SANITIZE": "0"}) == RunSpec()

    @pytest.mark.parametrize(
        "value", ["false", "False", "FALSE", "no", "off", "Off", "", "  "]
    )
    def test_sanitize_falsy_spellings_mean_off(self, value):
        """``REPRO_SANITIZE=false`` must be an opt-out, not an opt-in.

        The historical parser treated any non-empty value other than
        ``"0"`` as true, so users who wrote ``false``/``off`` silently
        got the sanitizer (and its overhead) turned *on*.
        """
        resolved = RunSpec().resolved_from_env({"REPRO_SANITIZE": value})
        assert resolved.sanitize is False

    @pytest.mark.parametrize("value", ["1", "true", "yes", "ON"])
    def test_sanitize_truthy_spellings_mean_on(self, value):
        resolved = RunSpec().resolved_from_env({"REPRO_SANITIZE": value})
        assert resolved.sanitize is True

    def test_sanitize_garbage_rejected(self):
        with pytest.raises(ConfigurationError, match="REPRO_SANITIZE"):
            RunSpec().resolved_from_env({"REPRO_SANITIZE": "maybe"})

    def test_environ_updates_is_the_inverse(self):
        assert RunSpec().environ_updates() == {}
        assert RunSpec(lint="error", sanitize=True).environ_updates() == {
            "REPRO_LINT": "error", "REPRO_SANITIZE": "1",
        }


class TestCanonicalHash:
    """The dedupe/cache key of the service layer: one identity per run."""

    #: Golden hash of the all-defaults spec.  If this changes, every
    #: deployed result cache silently invalidates — bump it only for a
    #: deliberate, release-noted identity change.
    GOLDEN_DEFAULT = (
        "61879e83f45cc7076240170a55710be52584e5f6de17b399d6b4c822e1731778"
    )

    def test_golden_default_hash(self):
        assert RunSpec().canonical_hash() == self.GOLDEN_DEFAULT

    def test_alias_collapses(self):
        """``device`` is an alias of ``tt``: same run, same hash."""
        a = RunSpec(backend=BackendSpec("device"))
        b = RunSpec(backend=BackendSpec("tt"))
        assert a.canonical_hash() == b.canonical_hash()

    def test_defaulted_and_explicit_options_match(self):
        """``{}`` and the registry defaults written out are the same spec."""
        implicit = RunSpec(backend=BackendSpec("tt"))
        explicit = RunSpec(backend=BackendSpec("tt", {"cores": 8}))
        assert implicit.canonical_hash() == explicit.canonical_hash()

    def test_key_order_irrelevant(self):
        a = RunSpec.from_dict({"n": 512, "cycles": 3, "seed": 1})
        b = RunSpec.from_dict({"seed": 1, "cycles": 3, "n": 512})
        assert a.canonical_hash() == b.canonical_hash()

    def test_trace_path_excluded(self):
        """Where the trace lands says nothing about what is computed."""
        a = RunSpec(trace_path=None)
        b = RunSpec(trace_path="/tmp/trace.json")
        assert a.canonical_hash() == b.canonical_hash()

    def test_execution_mode_included(self):
        """lint/sanitize change how the run executes: distinct identity."""
        base = RunSpec()
        assert base.canonical_hash() != RunSpec(sanitize=True).canonical_hash()
        assert base.canonical_hash() != RunSpec(lint="warn").canonical_hash()

    @pytest.mark.parametrize("field, value", [
        ("n", 4096), ("cycles", 7), ("dt", 5e-4), ("adaptive", True),
        ("softening", 0.01), ("seed", 42),
    ])
    def test_each_physics_field_changes_the_hash(self, field, value):
        from dataclasses import replace

        assert (replace(RunSpec(), **{field: value}).canonical_hash()
                != RunSpec().canonical_hash())

    def test_distinct_backend_options_distinct_hash(self):
        a = RunSpec(backend=BackendSpec("tt", {"cores": 4}))
        b = RunSpec(backend=BackendSpec("tt", {"cores": 8}))
        assert a.canonical_hash() != b.canonical_hash()

    def test_different_backend_family_distinct_hash(self):
        a = RunSpec(backend=BackendSpec("cpu"))
        b = RunSpec(backend=BackendSpec("tt"))
        assert a.canonical_hash() != b.canonical_hash()

    def test_unknown_option_rejected(self):
        spec = RunSpec(backend=BackendSpec("tt", {"warp": 9}))
        with pytest.raises(ConfigurationError):
            spec.canonical_hash()

    def test_hash_is_hex_sha256(self):
        digest = RunSpec().canonical_hash()
        assert len(digest) == 64
        int(digest, 16)  # raises if not hex


class TestRealisation:
    def test_make_backend_forces_spec_softening(self):
        spec = RunSpec(softening=0.02, backend=BackendSpec("reference"))
        assert spec.make_backend().softening == 0.02

    def test_explicit_backend_softening_wins(self):
        spec = RunSpec(
            softening=0.02,
            backend=BackendSpec("reference", {"softening": 0.5}),
        )
        assert spec.make_backend().softening == 0.5

    def test_make_simulation_runs(self):
        spec = RunSpec(n=128, cycles=2, backend=BackendSpec("reference"))
        result = spec.make_simulation().run(spec.cycles)
        assert len(result.cycles) == 2

    def test_adaptive_spec_uses_shared_timestep(self):
        spec = RunSpec(
            n=64, adaptive=True, backend=BackendSpec("reference")
        )
        sim = spec.make_simulation()
        result = sim.run(1)
        assert result.cycles[0].dt > 0


class TestJobSpecBridge:
    def test_accelerated_round_trip(self):
        job = JobSpec.paper_accelerated(
            n_particles=2048, n_cycles=4, n_cores=16, n_devices=2
        )
        spec = job.to_runspec()
        assert spec.backend == BackendSpec("tt", {"cores": 16, "cards": 2})
        assert spec.n == 2048 and spec.cycles == 4
        assert JobSpec.from_runspec(spec) == job

    def test_reference_round_trip(self):
        job = JobSpec.paper_reference(n_particles=1024, n_cycles=3)
        spec = job.to_runspec()
        assert spec.backend == BackendSpec("cpu", {"threads": 32})
        assert JobSpec.from_runspec(spec) == job

    def test_device_alias_maps_to_accelerated(self):
        spec = RunSpec(backend=BackendSpec("device"))
        assert JobSpec.from_runspec(spec).accelerated is True


def test_runspec_backend_realises_sharded():
    spec = RunSpec(backend=BackendSpec("tt", {"cards": 2, "cores": 2}))
    backend = spec.make_backend()
    assert backend.n_cards == 2
    assert isinstance(backend, type(make_backend("tt", cards=2, cores=2)))

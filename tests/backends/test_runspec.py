"""RunSpec: JSON round-trip, the single env/CLI path, JobSpec bridge."""

from argparse import Namespace

import pytest

from repro.backends import BackendSpec, RunSpec, make_backend
from repro.errors import ConfigurationError
from repro.telemetry import JobSpec


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self):
        spec = RunSpec(
            n=512, cycles=3, dt=2e-3, adaptive=True, softening=0.01,
            seed=7, backend=BackendSpec("tt", {"cores": 4, "cards": 2}),
            trace_path="trace.json", lint="warn", sanitize=True,
        )
        assert RunSpec.from_json(spec.to_json()) == spec

    def test_defaults_round_trip(self):
        spec = RunSpec()
        assert RunSpec.from_json(spec.to_json()) == spec
        assert spec.backend == BackendSpec("tt")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="wibble"):
            RunSpec.from_dict({"n": 64, "wibble": 1})

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RunSpec(n=0)
        with pytest.raises(ConfigurationError):
            RunSpec(lint="loud")


class TestFromCli:
    """One flat CLI surface; the registry filters per-backend knobs."""

    @staticmethod
    def _args(**overrides):
        defaults = dict(
            backend="tt", n=256, cycles=2, dt=1e-3, adaptive=False,
            softening=0.0, seed=0, cores=None, threads=None, cards=None,
        )
        defaults.update(overrides)
        return Namespace(**defaults)

    def test_device_alias_and_cores_forwarded(self):
        spec = RunSpec.from_cli(self._args(backend="device", cores=4))
        assert spec.backend == BackendSpec("device", {"cores": 4})
        assert spec.n == 256 and spec.cycles == 2

    def test_threads_never_reach_the_device_backend(self):
        spec = RunSpec.from_cli(self._args(cores=4, threads=16))
        assert spec.backend.options == {"cores": 4}

    def test_cores_never_reach_the_cpu_backend(self):
        spec = RunSpec.from_cli(
            self._args(backend="cpu", cores=4, threads=16)
        )
        assert spec.backend.options == {"threads": 16}

    def test_format_maps_to_fmt(self):
        spec = RunSpec.from_cli(self._args(format="bfloat16"))
        assert spec.backend.options == {"fmt": "bfloat16"}

    def test_unset_options_stay_unset(self):
        spec = RunSpec.from_cli(self._args())
        assert spec.backend.options == {}


class TestEnvResolution:
    def test_trace_path_from_env_is_stripped(self):
        spec = RunSpec().resolved_from_env({"REPRO_TRACE": "  out.json  "})
        assert spec.trace_path == "out.json"

    def test_blank_trace_env_is_unset(self):
        assert RunSpec().resolved_from_env({"REPRO_TRACE": "   "}) == RunSpec()

    def test_cli_value_wins_over_env(self):
        spec = RunSpec(trace_path="cli.json", lint="error")
        resolved = spec.resolved_from_env(
            {"REPRO_TRACE": "env.json", "REPRO_LINT": "warn"}
        )
        assert resolved.trace_path == "cli.json"
        assert resolved.lint == "error"

    def test_lint_and_sanitize_fill_from_env(self):
        resolved = RunSpec().resolved_from_env(
            {"REPRO_LINT": "warn", "REPRO_SANITIZE": "1"}
        )
        assert resolved.lint == "warn"
        assert resolved.sanitize is True

    def test_sanitize_zero_means_off(self):
        assert RunSpec().resolved_from_env({"REPRO_SANITIZE": "0"}) == RunSpec()

    def test_environ_updates_is_the_inverse(self):
        assert RunSpec().environ_updates() == {}
        assert RunSpec(lint="error", sanitize=True).environ_updates() == {
            "REPRO_LINT": "error", "REPRO_SANITIZE": "1",
        }


class TestRealisation:
    def test_make_backend_forces_spec_softening(self):
        spec = RunSpec(softening=0.02, backend=BackendSpec("reference"))
        assert spec.make_backend().softening == 0.02

    def test_explicit_backend_softening_wins(self):
        spec = RunSpec(
            softening=0.02,
            backend=BackendSpec("reference", {"softening": 0.5}),
        )
        assert spec.make_backend().softening == 0.5

    def test_make_simulation_runs(self):
        spec = RunSpec(n=128, cycles=2, backend=BackendSpec("reference"))
        result = spec.make_simulation().run(spec.cycles)
        assert len(result.cycles) == 2

    def test_adaptive_spec_uses_shared_timestep(self):
        spec = RunSpec(
            n=64, adaptive=True, backend=BackendSpec("reference")
        )
        sim = spec.make_simulation()
        result = sim.run(1)
        assert result.cycles[0].dt > 0


class TestJobSpecBridge:
    def test_accelerated_round_trip(self):
        job = JobSpec.paper_accelerated(
            n_particles=2048, n_cycles=4, n_cores=16, n_devices=2
        )
        spec = job.to_runspec()
        assert spec.backend == BackendSpec("tt", {"cores": 16, "cards": 2})
        assert spec.n == 2048 and spec.cycles == 4
        assert JobSpec.from_runspec(spec) == job

    def test_reference_round_trip(self):
        job = JobSpec.paper_reference(n_particles=1024, n_cycles=3)
        spec = job.to_runspec()
        assert spec.backend == BackendSpec("cpu", {"threads": 32})
        assert JobSpec.from_runspec(spec) == job

    def test_device_alias_maps_to_accelerated(self):
        spec = RunSpec(backend=BackendSpec("device"))
        assert JobSpec.from_runspec(spec).accelerated is True


def test_runspec_backend_realises_sharded():
    spec = RunSpec(backend=BackendSpec("tt", {"cards": 2, "cores": 2}))
    backend = spec.make_backend()
    assert backend.n_cards == 2
    assert isinstance(backend, type(make_backend("tt", cards=2, cores=2)))

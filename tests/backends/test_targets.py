"""Target-subset force evaluation: bit-identity on every backend.

The contract of ``compute_on_targets``: for any backend and any target
subset, row ``k`` of the result equals row ``targets[k]`` of the full
``compute`` — *bit-identical*, not merely close — because the block
integrator mixes subset evaluations with full ones across the block
hierarchy and any drift between the two paths would desynchronise it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import make_backend
from repro.backends.protocol import (
    compute_on_targets,
    normalize_targets,
    supports_targets,
)
from repro.core import ReferenceBackend, plummer

N = 96
SUBSETS = [
    np.array([0]),
    np.array([5, 17, 63]),
    np.arange(0, N, 7),
    np.arange(N - 1, -1, -1),        # reversed order must be honoured
    np.arange(N),                    # all targets == full compute
]


def _system():
    return plummer(N, seed=11)


def _assert_subset_bit_identical(backend):
    s = _system()
    full = backend.compute(s.pos, s.vel, s.mass)
    for targets in SUBSETS:
        sub = compute_on_targets(backend, s.pos, s.vel, s.mass, targets)
        np.testing.assert_array_equal(sub.acc, full.acc[targets])
        np.testing.assert_array_equal(sub.jerk, full.jerk[targets])
        assert sub.acc.dtype == full.acc.dtype


BACKENDS = [
    ("reference", {}),
    ("cpu", {}),
    ("tt", {}),
    ("tt-ds", {}),
    ("tt-matmul", {}),
    ("cpu-pm", {"mesh": 32}),
    ("tt-pm", {"mesh": 32}),
]


@pytest.mark.parametrize(
    "name, options", BACKENDS, ids=[name for name, _ in BACKENDS]
)
def test_subset_bit_identical_to_masked_full_compute(name, options):
    backend = make_backend(name, **options)
    try:
        assert supports_targets(backend)
        _assert_subset_bit_identical(backend)
    finally:
        close = getattr(backend, "close", None)
        if close is not None:
            close()


@pytest.mark.parametrize("cards", [2, 4])
@pytest.mark.parametrize("workers", ["serial", "thread", "process"])
def test_sharded_subset_bit_identical_across_executors(cards, workers):
    backend = make_backend("tt", cards=cards, workers=workers)
    try:
        assert supports_targets(backend)
        _assert_subset_bit_identical(backend)
    finally:
        backend.close()


@pytest.mark.parametrize("cards", [2, 4])
def test_sharded_subset_matches_single_card(cards):
    """The sharded merge must reproduce the single-card subset bits."""
    s = _system()
    single = make_backend("tt")
    sharded = make_backend("tt", cards=cards)
    targets = np.array([3, 40, 41, 90])
    try:
        a = single.compute_on_targets(s.pos, s.vel, s.mass, targets)
        b = sharded.compute_on_targets(s.pos, s.vel, s.mass, targets)
        np.testing.assert_array_equal(a.acc, b.acc)
        np.testing.assert_array_equal(a.jerk, b.jerk)
    finally:
        for backend in (single, sharded):
            close = getattr(backend, "close", None)
            if close is not None:
                close()


def test_subset_costs_no_more_than_full_compute():
    """Scope pricing: an active block must not be charged a full sweep."""
    s = _system()
    for name, options in [("cpu", {}), ("tt", {}), ("tt-ds", {})]:
        backend = make_backend(name, **options)
        try:
            full = backend.compute(s.pos, s.vel, s.mass)
            sub = backend.compute_on_targets(
                s.pos, s.vel, s.mass, np.array([1, 2, 3])
            )
            full_s = sum(seg.seconds for seg in full.segments)
            sub_s = sum(seg.seconds for seg in sub.segments)
            assert sub_s <= full_s
        finally:
            close = getattr(backend, "close", None)
            if close is not None:
                close()


class TestDispatcherFallback:
    def test_fallback_slices_full_compute(self):
        class Plain:
            """A targets-unaware backend: only the base protocol."""

            name = "plain"

            def __init__(self):
                self.inner = ReferenceBackend()

            def compute(self, pos, vel, mass):
                return self.inner.compute(pos, vel, mass)

        s = _system()
        backend = Plain()
        assert not supports_targets(backend)
        targets = np.array([2, 44])
        sub = compute_on_targets(backend, s.pos, s.vel, s.mass, targets)
        full = backend.compute(s.pos, s.vel, s.mass)
        np.testing.assert_array_equal(sub.acc, full.acc[targets])
        np.testing.assert_array_equal(sub.jerk, full.jerk[targets])


class TestNormalizeTargets:
    def test_sorted_unique_intp(self):
        idx = normalize_targets([3, 1, 2], 10)
        assert idx.dtype == np.intp
        np.testing.assert_array_equal(idx, [3, 1, 2])

    @pytest.mark.parametrize("bad", [[], [10], [-11], [[1, 2]]])
    def test_invalid_targets_rejected(self, bad):
        with pytest.raises(Exception):
            normalize_targets(bad, 10)

"""The ForceBackend / TracedForceBackend contracts, pinned.

``accepts_trace`` replaces the ad-hoc ``hasattr(backend, "trace")``
checks that used to live in ``core/simulation.py``; these tests pin
which backends opt into tracing and that ``core`` re-exports the
protocol names it historically owned.
"""

import numpy as np

from repro.backends import accepts_trace, make_backend
from repro.backends.protocol import (
    ForceBackend,
    ForceEvaluation,
    TimelineSegment,
    TracedForceBackend,
)
from repro.observability import Trace


class TestProtocolMembership:
    def test_every_registered_backend_satisfies_force_backend(self):
        from repro.backends import backend_names

        for name in backend_names():
            assert isinstance(make_backend(name), ForceBackend), name

    def test_tt_backends_are_traced(self):
        for backend in (
            make_backend("tt", cores=2),
            make_backend("tt", cores=2, cards=2),
        ):
            assert accepts_trace(backend)
            assert isinstance(backend, TracedForceBackend)

    def test_reference_and_cpu_are_not_traced(self):
        for name in ("reference", "cpu", "tt-ds", "tt-matmul"):
            backend = make_backend(name)
            assert not accepts_trace(backend), name
            assert not isinstance(backend, TracedForceBackend), name


class TestSimulationUsesTheProtocol:
    def test_traced_backend_receives_the_simulation_trace(self):
        from repro.core import Simulation, plummer

        system = plummer(1024, seed=1)
        backend = make_backend("tt", cores=2)
        trace = Trace()
        Simulation(system, backend, dt=1e-3, trace=trace).run(1)
        assert backend.trace is trace
        assert trace.find("EnqueueProgram")

    def test_untraced_backend_segments_become_leaf_spans(self):
        from repro.core import Simulation, plummer

        system = plummer(128, seed=1)
        trace = Trace()
        Simulation(
            system, make_backend("cpu", threads=2), dt=1e-3, trace=trace
        ).run(1)
        assert trace.spans


class TestCoreReexports:
    def test_core_names_are_the_protocol_objects(self):
        from repro.core import simulation

        assert simulation.ForceBackend is ForceBackend
        assert simulation.ForceEvaluation is ForceEvaluation
        assert simulation.TimelineSegment is TimelineSegment

    def test_top_level_reexports(self):
        import repro

        assert repro.ForceEvaluation is ForceEvaluation
        assert repro.TimelineSegment is TimelineSegment


def test_force_evaluation_model_seconds_sums_segments():
    ev = ForceEvaluation(
        np.zeros((1, 3)), np.zeros((1, 3)),
        segments=(
            TimelineSegment("device", 1.0, "force"),
            TimelineSegment("pcie", 0.5, "writeback"),
        ),
    )
    assert ev.model_seconds == 1.5

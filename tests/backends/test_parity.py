"""Every registered backend stays inside the paper's accuracy gates.

The gate is the paper's validation criterion: per-component relative
error within 0.05% for acceleration and 0.2% for jerk against the
float64 golden reference (``validate_forces`` encodes the thresholds).
"""

import pytest

from repro.backends import make_backend
from repro.core import plummer, validate_forces

#: Per-backend problem size: small enough to stay fast, large enough to
#: exercise tiling/padding.  tt-ds runs O(N^2) pair matrices in NumPy and
#: tt-matmul pads to 1024-blocks, so they get tailored sizes.
PARITY_N = {
    "reference": 1024,
    "cpu": 1024,
    "tt": 1024,
    "tt-per-block": 1024,
    "tt-ds": 512,
    "tt-matmul": 1024,
}

#: The particle-mesh backends approximate the far field, so the paper's
#: direct-summation gates (0.05% / 0.2% per component) do not apply to
#: them; their own accuracy gate — RMS force error vs direct summation —
#: lives in tests/nbody_pm/test_accuracy.py.
PM_BACKENDS = {"tt-pm", "cpu-pm"}


@pytest.mark.parametrize("name", sorted(PARITY_N))
def test_backend_passes_paper_gates(name):
    system = plummer(PARITY_N[name], seed=2)
    backend = make_backend(name)
    ev = backend.compute(system.pos, system.vel, system.mass)
    report = validate_forces(
        system.pos, system.vel, system.mass, ev.acc, ev.jerk
    )
    assert report.passed, f"{name}: {report.summary()}"


def test_parity_table_covers_every_registered_backend():
    """New registry entries must join the parity matrix above (or the
    PM carve-out, which has its own accuracy gate)."""
    from repro.backends import backend_names

    assert set(PARITY_N) | PM_BACKENDS == set(backend_names())
    assert not set(PARITY_N) & PM_BACKENDS


def test_sharded_passes_paper_gates():
    system = plummer(2048, seed=2)
    backend = make_backend("tt", cards=2, cores=2)
    ev = backend.compute(system.pos, system.vel, system.mass)
    report = validate_forces(
        system.pos, system.vel, system.mass, ev.acc, ev.jerk
    )
    assert report.passed, report.summary()

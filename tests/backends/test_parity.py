"""Every registered backend stays inside the paper's accuracy gates.

The gate is the paper's validation criterion: per-component relative
error within 0.05% for acceleration and 0.2% for jerk against the
float64 golden reference (``validate_forces`` encodes the thresholds).
"""

import pytest

from repro.backends import make_backend
from repro.core import plummer, validate_forces

#: Per-backend problem size: small enough to stay fast, large enough to
#: exercise tiling/padding.  tt-ds runs O(N^2) pair matrices in NumPy and
#: tt-matmul pads to 1024-blocks, so they get tailored sizes.
PARITY_N = {
    "reference": 1024,
    "cpu": 1024,
    "tt": 1024,
    "tt-per-block": 1024,
    "tt-ds": 512,
    "tt-matmul": 1024,
}


@pytest.mark.parametrize("name", sorted(PARITY_N))
def test_backend_passes_paper_gates(name):
    system = plummer(PARITY_N[name], seed=2)
    backend = make_backend(name)
    ev = backend.compute(system.pos, system.vel, system.mass)
    report = validate_forces(
        system.pos, system.vel, system.mass, ev.acc, ev.jerk
    )
    assert report.passed, f"{name}: {report.summary()}"


def test_parity_table_covers_every_registered_backend():
    """New registry entries must join the parity matrix above."""
    from repro.backends import backend_names

    assert set(PARITY_N) == set(backend_names())


def test_sharded_passes_paper_gates():
    system = plummer(2048, seed=2)
    backend = make_backend("tt", cards=2, cores=2)
    ev = backend.compute(system.pos, system.vel, system.mass)
    report = validate_forces(
        system.pos, system.vel, system.mass, ev.acc, ev.jerk
    )
    assert report.passed, report.summary()

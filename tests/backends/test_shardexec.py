"""The shard executor layer: mode resolution, parallel bit-identity,
worker failure surfacing, worker lifecycle (wedged/killed workers,
interpreter-exit reaping), and the option plumbing down from the CLI."""

import argparse
import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import plummer
from repro.backends import RunSpec, make_backend
from repro.backends.shardexec import (
    EXECUTOR_MODES,
    _LIVE_EXECUTORS,
    _reap_live_executors,
    make_executor,
    resolve_workers,
)
from repro.errors import ConfigurationError, NBodyError


class TestResolveWorkers:
    def test_default_is_thread(self):
        assert resolve_workers(env={}) == "thread"

    def test_env_variable(self):
        env = {"REPRO_SHARD_WORKERS": "process"}
        assert resolve_workers(env=env) == "process"

    def test_explicit_option_beats_env(self):
        env = {"REPRO_SHARD_WORKERS": "process"}
        assert resolve_workers("serial", env=env) == "serial"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="workers mode"):
            resolve_workers("greenlet", env={})

    def test_unknown_env_mode_rejected(self):
        with pytest.raises(ConfigurationError, match="workers mode"):
            resolve_workers(env={"REPRO_SHARD_WORKERS": "turbo"})

    @pytest.mark.parametrize("blank", ["", "   ", "\t"])
    def test_blank_env_means_unset(self, blank):
        """``REPRO_SHARD_WORKERS=''`` is "unset", not an unknown mode."""
        assert resolve_workers(env={"REPRO_SHARD_WORKERS": blank}) == "thread"

    def test_all_modes_resolve(self):
        for mode in EXECUTOR_MODES:
            assert resolve_workers(mode, env={}) == mode


class TestExecutorBitIdentity:
    """Every executor, at every card count, is bit-for-bit the single card."""

    @pytest.fixture(scope="class")
    def system(self):
        return plummer(4096, seed=7)

    @pytest.fixture(scope="class")
    def single(self, system):
        backend = make_backend("tt", cores=4)
        return backend.compute(system.pos, system.vel, system.mass)

    @pytest.mark.parametrize("cards", [2, 4])
    @pytest.mark.parametrize("mode", ["serial", "thread", "process"])
    def test_matches_single_card(self, system, single, mode, cards):
        backend = make_backend("tt", cores=4, cards=cards, workers=mode)
        try:
            ev = backend.compute(system.pos, system.vel, system.mass)
        finally:
            backend.close()
        assert backend.workers == mode
        assert np.array_equal(single.acc, ev.acc, equal_nan=True)
        assert np.array_equal(single.jerk, ev.jerk, equal_nan=True)

    def test_parallel_modes_match_serial_across_steps(self, system):
        """Repeated evaluations (warm residency caches) stay identical."""
        evals = {}
        for mode in EXECUTOR_MODES:
            backend = make_backend("tt", cores=4, cards=2, workers=mode)
            try:
                backend.compute(system.pos, system.vel, system.mass)
                evals[mode] = backend.compute(
                    system.pos, system.vel, system.mass
                )
            finally:
                backend.close()
        for mode in ("thread", "process"):
            assert np.array_equal(
                evals["serial"].acc, evals[mode].acc, equal_nan=True
            ), mode
            assert np.array_equal(
                evals["serial"].jerk, evals[mode].jerk, equal_nan=True
            ), mode

    def test_card_costs_stable_order(self, system):
        """Costs come back sorted by card index whatever the scheduling."""
        backend = make_backend("tt", cores=4, cards=4, workers="process")
        try:
            backend.compute(system.pos, system.vel, system.mass)
        finally:
            backend.close()
        assert [c.card for c in backend.last_card_costs] == [0, 1, 2, 3]
        assert all(c.n_tiles == 1 for c in backend.last_card_costs)

    def test_mode_switch_recreates_executor(self, system):
        backend = make_backend("tt", cores=4, cards=2, workers="thread")
        try:
            first = backend.compute(system.pos, system.vel, system.mass)
            backend.workers = "process"
            second = backend.compute(system.pos, system.vel, system.mass)
        finally:
            backend.close()
        assert np.array_equal(first.acc, second.acc, equal_nan=True)
        assert np.array_equal(first.jerk, second.jerk, equal_nan=True)


class _ExplodingChild:
    """A stand-in card whose compute always fails (picklable via fork)."""

    def compute_shard(self, *args, **kwargs):
        raise ValueError("kaput")

    def residency_counters(self):
        return {}

    def invalidate_residency(self):
        pass


def test_process_worker_error_surfaces_in_parent():
    executor = make_executor("process", [_ExplodingChild()])
    try:
        with pytest.raises(NBodyError, match=r"card 0.*ValueError: kaput"):
            executor.run([0], (None, None, None, [[0]], None))
    finally:
        executor.close()


def test_make_executor_rejects_unknown_mode():
    with pytest.raises(ConfigurationError, match="workers mode"):
        make_executor("fibers", [])


class _WedgedChild:
    """A stand-in card whose compute never returns (picklable via fork)."""

    def compute_shard(self, *args, **kwargs):
        time.sleep(600)

    def residency_counters(self):
        return {}

    def invalidate_residency(self):
        pass


class TestWorkerLifecycle:
    """The bugfixes: wedged workers, killed workers, leaked workers."""

    def test_close_escalates_on_wedged_worker(self):
        """close() must terminate a worker stuck inside a compute request.

        The worker is busy sleeping, so it never reads the cooperative
        close message; a close() that joins without a timeout would hang
        the host forever.
        """
        executor = make_executor(
            "process", [_WedgedChild()], join_timeout=0.2
        )
        conn = executor._conn(0)
        conn.send(("compute", (None, None, None, [0], 0)))
        proc = executor._workers[0][0]
        deadline = time.monotonic() + 5.0
        while proc.is_alive() and time.monotonic() < deadline:
            time.sleep(0.01)  # let the fork get into compute_shard
            break
        t0 = time.monotonic()
        executor.close()
        assert time.monotonic() - t0 < 5.0
        assert not proc.is_alive()
        assert executor._workers == {}

    def test_killed_worker_raises_attributable_error(self):
        """SIGKILL mid-step surfaces card + exit code, not a bare EOFError.

        Before the fix the parent's ``conn.recv()`` raised ``EOFError``
        straight through (or, with the write half still open, blocked
        forever), leaving a zombie and no indication of which card died.
        """
        executor = make_executor(
            "process", [_WedgedChild()], join_timeout=2.0
        )
        proc_holder = {}

        def kill_soon():
            proc_holder["proc"].kill()

        killer = threading.Timer(0.3, kill_soon)
        try:
            conn = executor._conn(0)
            del conn
            proc_holder["proc"] = executor._workers[0][0]
            killer.start()
            with pytest.raises(
                NBodyError,
                match=r"card 0 died mid-step \(exit code -9\)",
            ):
                executor.run([0], (None, None, None, [[0]], 0))
        finally:
            killer.cancel()
        assert not proc_holder["proc"].is_alive()
        assert executor._workers == {}

    def test_worker_error_resets_all_workers(self):
        """A worker-side exception resets the fleet (no stale pipe data)."""
        executor = make_executor("process", [_ExplodingChild()])
        with pytest.raises(NBodyError, match="kaput"):
            executor.run([0], (None, None, None, [[0]], 0))
        assert executor._workers == {}

    def test_backend_context_manager_reaps_workers(self):
        system = plummer(256, seed=3)
        with make_backend("tt", cores=4, cards=2, workers="process") as b:
            b.compute(system.pos, system.vel, system.mass)
            workers = [
                entry[0] for entry in b._executor._workers.values()
            ]
            assert workers and all(p.is_alive() for p in workers)
        assert all(not p.is_alive() for p in workers)
        assert multiprocessing.active_children() == []

    def test_atexit_reaper_closes_leaked_executors(self):
        """An executor nobody closed is torn down by the atexit hook."""
        executor = make_executor("process", [_WedgedChild()])
        executor._conn(0)
        proc = executor._workers[0][0]
        assert executor in _LIVE_EXECUTORS
        assert proc.is_alive()
        _reap_live_executors()
        assert not proc.is_alive()
        assert executor._workers == {}

    def test_live_set_does_not_keep_executors_alive(self):
        """_LIVE_EXECUTORS is weak: it must never extend executor lifetime."""
        import gc
        import weakref

        executor = make_executor("process", [_WedgedChild()])
        executor.close()
        ref = weakref.ref(executor)
        del executor
        gc.collect()
        assert ref() is None


class TestOptionPlumbing:
    """workers flows CLI -> RunSpec -> registry -> backend."""

    def test_registry_accepts_workers(self):
        backend = make_backend("tt", cards=2, workers="serial")
        assert backend.workers == "serial"

    def test_registry_rejects_bad_workers(self):
        with pytest.raises(ConfigurationError, match="workers mode"):
            make_backend("tt", cards=2, workers="turbo")

    def test_single_card_ignores_workers(self):
        backend = make_backend("tt", workers="process")
        assert not hasattr(backend, "workers")

    def test_runspec_forwards_workers_for_tt(self):
        args = argparse.Namespace(
            backend="tt", cards=2, workers="process", n=256
        )
        spec = RunSpec.from_cli(args)
        assert spec.backend.options["workers"] == "process"
        backend = spec.make_backend()
        assert backend.workers == "process"

    def test_runspec_filters_workers_for_cpu(self):
        args = argparse.Namespace(backend="cpu", workers="process", n=256)
        spec = RunSpec.from_cli(args)
        assert "workers" not in spec.backend.options

    def test_env_default_reaches_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_WORKERS", "serial")
        backend = make_backend("tt", cards=2)
        assert backend.workers == "serial"

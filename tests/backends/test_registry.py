"""The backend registry: specs, coercion, round-trips, construction."""

import pytest

from repro.backends import (
    BackendSpec,
    OptionSpec,
    backend_choices_help,
    backend_entry,
    backend_names,
    make_backend,
    register_backend,
)
from repro.backends.registry import _REGISTRY
from repro.errors import ConfigurationError, ReproError, UnknownBackendError


class TestRoundTrip:
    @pytest.mark.parametrize("name", backend_names())
    def test_every_registered_name_realises_via_json(self, name):
        """name -> spec -> JSON -> spec -> live backend, for every entry."""
        spec = BackendSpec(name)
        restored = BackendSpec.from_json(spec.to_json())
        assert restored == spec
        backend = make_backend(restored)
        assert hasattr(backend, "compute")
        assert isinstance(backend.name, str) and backend.name

    def test_options_survive_json(self):
        spec = BackendSpec("tt", {"cores": 4, "softening": 0.01})
        restored = BackendSpec.from_json(spec.to_json())
        assert restored.options == {"cores": 4, "softening": 0.01}

    def test_with_options_merges(self):
        spec = BackendSpec("tt", {"cores": 4}).with_options(cores=2, cards=2)
        assert spec.options == {"cores": 2, "cards": 2}

    def test_from_dict_requires_name(self):
        with pytest.raises(ConfigurationError):
            BackendSpec.from_dict({"options": {}})


class TestLookup:
    def test_unknown_name_raises_with_registered_list(self):
        with pytest.raises(UnknownBackendError) as err:
            make_backend("nope")
        message = str(err.value)
        assert "nope" in message
        for name in backend_names():
            assert name in message

    def test_unknown_backend_error_is_repro_error(self):
        assert issubclass(UnknownBackendError, ConfigurationError)
        assert issubclass(UnknownBackendError, ReproError)

    def test_device_alias_resolves_to_tt(self):
        assert backend_entry("device") is backend_entry("tt")

    def test_choices_help_mentions_every_backend(self):
        text = backend_choices_help()
        for name in backend_names():
            assert name in text


class TestOptionResolution:
    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigurationError, match="does not accept"):
            make_backend("reference", cores=8)

    def test_string_values_coerce_for_env_round_trips(self):
        backend = make_backend("tt", cores="4", softening="0.5")
        assert backend.n_cores == 4
        assert backend.softening == 0.5

    def test_int_accepted_where_float_expected(self):
        assert make_backend("reference", softening=1).softening == 1.0

    def test_bool_rejected_for_int_option(self):
        with pytest.raises(ConfigurationError, match="expects int"):
            make_backend("tt", cores=True)

    def test_enum_flattens_for_str_option(self):
        from repro.wormhole import DataFormat

        backend = make_backend("tt", fmt=DataFormat.BFLOAT16)
        assert backend.fmt is DataFormat.BFLOAT16

    def test_type_mismatch_message_names_the_option(self):
        opt = OptionSpec("cores", int, 8)
        with pytest.raises(ConfigurationError, match="'cores'"):
            opt.coerce(object())


class TestConstruction:
    def test_tt_single_card_is_plain_backend(self):
        from repro.nbody_tt.offload import TTForceBackend

        assert isinstance(make_backend("tt"), TTForceBackend)

    def test_tt_multi_card_is_sharded(self):
        from repro.backends import ShardedTTBackend

        backend = make_backend("tt", cards=2, cores=2)
        assert isinstance(backend, ShardedTTBackend)
        assert backend.n_cards == 2

    def test_zero_cards_rejected(self):
        with pytest.raises(ConfigurationError, match="cards"):
            make_backend("tt", cards=0)

    def test_per_block_entry_pins_engine(self):
        assert make_backend("tt-per-block", cores=2).engine == "per-block"

    def test_reregistration_replaces(self):
        saved = _REGISTRY["reference"]
        sentinel = object()
        try:
            register_backend("reference", lambda: sentinel)
            assert make_backend("reference") is sentinel
        finally:
            _REGISTRY["reference"] = saved
        assert backend_entry("reference") is saved


def test_no_direct_backend_construction_outside_backends_layer():
    """The acceptance pin: competitors are built only by the registry."""
    from pathlib import Path

    src = Path(__file__).resolve().parent.parent.parent / "src" / "repro"
    offenders = []
    for path in sorted(src.rglob("*.py")):
        if "backends" in path.relative_to(src).parts:
            continue
        text = path.read_text()
        for needle in ("TTForceBackend(", "CPUForceBackend("):
            if needle in text:
                offenders.append(f"{path.relative_to(src)}: {needle}")
    assert not offenders, (
        "construct backends via repro.backends.make_backend, not directly:\n"
        + "\n".join(offenders)
    )

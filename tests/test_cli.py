"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestInfo:
    def test_prints_hardware(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Tensix cores: 64" in out
        assert "12 GiB GDDR6" in out
        assert "EPYC 9124" in out


class TestSimulate:
    def test_reference_backend(self, capsys):
        rc = main(["simulate", "--n", "128", "--cycles", "3",
                   "--backend", "reference"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "energy drift" in out
        assert "reference-f64" in out

    def test_device_backend_with_timeline(self, capsys):
        rc = main(["simulate", "--n", "1024", "--cycles", "2",
                   "--backend", "device", "--cores", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "modelled device" in out

    def test_cpu_backend_adaptive(self, capsys):
        rc = main(["simulate", "--n", "128", "--cycles", "2",
                   "--backend", "cpu", "--threads", "2", "--adaptive"])
        assert rc == 0
        assert "cpu-ref-omp2" in capsys.readouterr().out

    def test_unknown_backend_exits_2_without_traceback(self, capsys):
        rc = main(["simulate", "--n", "64", "--backend", "warp-drive"])
        assert rc == 2
        captured = capsys.readouterr()
        assert "unknown backend 'warp-drive'" in captured.err
        assert "registered backends:" in captured.err
        assert "Traceback" not in captured.err

    def test_registry_backend_name_accepted(self, capsys):
        rc = main(["simulate", "--n", "512", "--cycles", "1",
                   "--backend", "tt-ds"])
        assert rc == 0
        assert "tt-ds-cores8" in capsys.readouterr().out

    def test_multi_card_profile_shows_per_card_costs(self, capsys):
        rc = main(["simulate", "--n", "2048", "--cycles", "1",
                   "--backend", "tt", "--cores", "2", "--cards", "2",
                   "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tt-sharded-cards2" in out
        assert "Per-card cost accounting" in out
        assert "card 0:" in out and "card 1:" in out
        assert "-- card 0 --" in out and "-- card 1 --" in out
        assert "Residency" in out and "tilize cache" in out

    def test_workers_flag_selects_executor(self, capsys):
        rc = main(["simulate", "--n", "2048", "--cycles", "1",
                   "--backend", "tt", "--cores", "2", "--cards", "2",
                   "--workers", "process", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tt-sharded-cards2" in out
        assert "Residency" in out

    def test_workers_flag_rejects_unknown_mode(self, capsys):
        with pytest.raises(SystemExit):
            main(["simulate", "--n", "64", "--backend", "tt",
                  "--cards", "2", "--workers", "turbo"])
        assert "invalid choice" in capsys.readouterr().err

    def test_single_card_profile_shows_residency(self, capsys):
        rc = main(["simulate", "--n", "1024", "--cycles", "2",
                   "--backend", "device", "--cores", "2", "--profile"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Residency" in out and "hits" in out

    def test_snapshot_written(self, tmp_path, capsys):
        path = tmp_path / "final.npz"
        rc = main(["simulate", "--n", "64", "--cycles", "1",
                   "--backend", "reference", "--snapshot", str(path)])
        assert rc == 0
        assert path.exists()
        from repro.core import load_npz

        snap = load_npz(path)
        assert snap.n == 64
        assert snap.time > 0


class TestValidate:
    def test_fp32_passes(self, capsys):
        rc = main(["validate", "--n", "1024", "--cores", "2"])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_bf16_fails_with_nonzero_exit(self, capsys):
        rc = main(["validate", "--n", "1024", "--cores", "2",
                   "--format", "bfloat16"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out


class TestCampaign:
    def test_small_campaign(self, capsys):
        rc = main(["campaign", "--accel-jobs", "2", "--ref-jobs", "2",
                   "--n", "10240", "--cycles", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accelerated: 2/2 completed" in out
        assert "speedup" in out

    def test_csv_dir(self, tmp_path, capsys):
        rc = main(["campaign", "--accel-jobs", "1", "--ref-jobs", "1",
                   "--n", "10240", "--cycles", "1",
                   "--csv-dir", str(tmp_path)])
        assert rc == 0
        assert len(list(tmp_path.glob("*.csv"))) == 2

    def test_report_flag(self, tmp_path, capsys):
        path = tmp_path / "campaign.md"
        rc = main(["campaign", "--accel-jobs", "2", "--ref-jobs", "2",
                   "--n", "10240", "--cycles", "1",
                   "--report", str(path)])
        assert rc == 0
        assert path.exists()
        assert "## Summary" in path.read_text()

    def test_reset_failures_reported(self, capsys):
        rc = main(["campaign", "--accel-jobs", "10", "--ref-jobs", "1",
                   "--n", "10240", "--cycles", "1",
                   "--reset-failure-rate", "1.0"])
        assert rc == 0
        assert "accelerated: 0/10 completed" in capsys.readouterr().out

    def test_retries_recover_failed_resets(self, capsys):
        rc = main(["campaign", "--accel-jobs", "4", "--ref-jobs", "1",
                   "--n", "10240", "--cycles", "1", "--seed", "11",
                   "--reset-failure-rate", "0.48", "--retries", "8",
                   "--backoff", "1.0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accelerated: 4/4 completed" in out
        assert "reset attempts:" in out

    def test_cpu_failover_completes_jobs(self, capsys):
        rc = main(["campaign", "--accel-jobs", "2", "--ref-jobs", "1",
                   "--n", "10240", "--cycles", "1",
                   "--reset-failure-rate", "1.0", "--failover", "cpu"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "accelerated: 2/2 completed" in out
        assert "failovers: cpu x2" in out

    def test_checkpoint_and_resume(self, tmp_path, capsys):
        path = tmp_path / "campaign.jsonl"
        rc = main(["campaign", "--accel-jobs", "2", "--ref-jobs", "2",
                   "--n", "10240", "--cycles", "1",
                   "--checkpoint", str(path)])
        assert rc == 0
        first = capsys.readouterr().out
        assert path.exists()
        rc = main(["campaign", "--resume", "--checkpoint", str(path)])
        assert rc == 0
        resumed = capsys.readouterr().out
        assert "4 jobs restored, 0 pending" in resumed
        # the resumed summary reproduces the original one exactly
        assert first.splitlines()[0] in resumed
        for line in first.splitlines():
            if "time-to-solution" in line:
                assert line in resumed

    def test_resume_requires_checkpoint(self, capsys):
        rc = main(["campaign", "--resume"])
        assert rc == 2
        assert "requires --checkpoint" in capsys.readouterr().err


class TestSmi:
    def test_table(self, capsys):
        rc = main(["smi", "--cards", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "n300 (WH)" in out
        assert out.count("idle") == 4

    def test_custom_card_count(self, capsys):
        rc = main(["smi", "--cards", "2"])
        assert rc == 0
        assert capsys.readouterr().out.count("n300") == 2

"""Tests for DRAM buffers and host<->device transfers."""

import numpy as np
import pytest

from repro.errors import DataFormatError, HostApiError
from repro.metalium.buffer import DramBuffer
from repro.wormhole.device import WormholeDevice
from repro.wormhole.dtypes import DataFormat
from repro.wormhole.tile import Tile, tilize_1d


@pytest.fixture
def device():
    dev = WormholeDevice()
    dev.reset()
    dev.open()
    return dev


class TestLifecycle:
    def test_requires_open_device(self):
        dev = WormholeDevice()
        dev.reset()
        with pytest.raises(Exception):
            DramBuffer(dev, 4)

    def test_invalid_tile_count(self, device):
        with pytest.raises(HostApiError):
            DramBuffer(device, 0)

    def test_deallocate(self, device):
        buf = DramBuffer(device, 4)
        assert device.dram.allocated_bytes == 4 * 4096
        buf.deallocate()
        assert device.dram.allocated_bytes == 0
        assert not buf.is_live
        with pytest.raises(HostApiError):
            buf.host_read_tiles()

    def test_format_sizes(self, device):
        assert DramBuffer(device, 2, DataFormat.FLOAT32).size_bytes == 8192
        assert DramBuffer(device, 2, DataFormat.BFLOAT16).size_bytes == 4096

    def test_bfp8_buffers_rejected(self, device):
        buf = DramBuffer(device, 1, DataFormat.BFP8)
        with pytest.raises(DataFormatError):
            buf.host_write_tiles([Tile.zeros(DataFormat.BFP8)])


class TestHostRoundtrip:
    def test_fp32_roundtrip_exact(self, device):
        rng = np.random.default_rng(0)
        data = rng.normal(size=3000).astype(np.float32).astype(np.float64)
        tiles = tilize_1d(data)
        buf = DramBuffer(device, len(tiles))
        t_write = buf.host_write_tiles(tiles)
        back, t_read = buf.host_read_tiles()
        assert t_write > 0 and t_read > 0
        got = np.concatenate([t.data for t in back])[:3000]
        assert np.array_equal(got, data)

    def test_bf16_roundtrip_exact_in_bf16(self, device):
        rng = np.random.default_rng(1)
        data = rng.normal(size=1024)
        tiles = tilize_1d(data, DataFormat.BFLOAT16)
        buf = DramBuffer(device, 1, DataFormat.BFLOAT16)
        buf.host_write_tiles(tiles)
        back, _ = buf.host_read_tiles()
        assert np.array_equal(back[0].data, tiles[0].data)

    def test_fp16_roundtrip(self, device):
        data = np.linspace(-5, 5, 1024)
        tiles = tilize_1d(data, DataFormat.FLOAT16)
        buf = DramBuffer(device, 1, DataFormat.FLOAT16)
        buf.host_write_tiles(tiles)
        back, _ = buf.host_read_tiles()
        assert np.array_equal(back[0].data, tiles[0].data)

    def test_write_requantizes_foreign_format(self, device):
        buf = DramBuffer(device, 1, DataFormat.BFLOAT16)
        buf.host_write_tiles([Tile.full(1.0 + 2.0**-10)])  # fp32-only value
        back, _ = buf.host_read_tiles()
        assert np.all(back[0].data == 1.0)

    def test_wrong_tile_count(self, device):
        buf = DramBuffer(device, 2)
        with pytest.raises(HostApiError, match="holds 2"):
            buf.host_write_tiles([Tile.zeros()])

    def test_pcie_time_scales_with_size(self, device):
        small = DramBuffer(device, 1)
        large = DramBuffer(device, 64)
        t_small = small.host_write_tiles([Tile.zeros()])
        t_large = large.host_write_tiles([Tile.zeros()] * 64)
        assert t_large == pytest.approx(64 * t_small)


class TestNocAccess:
    def test_core_reads_individual_tiles(self, device):
        data = np.arange(2048, dtype=float)
        tiles = tilize_1d(data)
        buf = DramBuffer(device, 2)
        buf.host_write_tiles(tiles)
        t0 = buf.noc_read_tile(0, 0)
        t1 = buf.noc_read_tile(0, 1)
        assert np.array_equal(t0.data, tiles[0].data)
        assert np.array_equal(t1.data, tiles[1].data)
        # traffic landed on the issuing core's data-movement timeline
        assert device.cores[0].counter.datamove_cycles > 0
        assert device.cores[0].counter.compute_cycles == 0

    def test_core_writes_tile(self, device):
        buf = DramBuffer(device, 2)
        buf.host_write_tiles([Tile.zeros(), Tile.zeros()])
        buf.noc_write_tile(5, 1, Tile.full(7.0))
        back, _ = buf.host_read_tiles()
        assert np.all(back[1].data == 7.0)
        assert np.all(back[0].data == 0.0)

    def test_tile_index_bounds(self, device):
        buf = DramBuffer(device, 2)
        with pytest.raises(HostApiError, match="out of range"):
            buf.noc_read_tile(0, 2)
        with pytest.raises(HostApiError, match="out of range"):
            buf.noc_write_tile(0, -1, Tile.zeros())

    def test_noc_traffic_recorded(self, device):
        buf = DramBuffer(device, 1)
        buf.host_write_tiles([Tile.zeros()])
        before = sum(n.stats.bytes_read for n in device.nocs)
        buf.noc_read_tile(0, 0)
        after = sum(n.stats.bytes_read for n in device.nocs)
        assert after - before == 4096

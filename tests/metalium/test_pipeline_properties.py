"""Property/fuzz tests for the metalium pipeline machinery.

Random multi-stage, multi-core pipelines with random CB depths must always
deliver every page exactly once, in order, without deadlock — the
invariants the paper's read/compute/write structure relies on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metalium import (
    CBConfig,
    CoreRange,
    CreateDevice,
    KernelSpec,
    Program,
)
from repro.wormhole.riscv import RiscvRole
from repro.wormhole.tensix import TensixCore
from repro.wormhole.noc import NocCoordinate
from repro.wormhole.tile import Tile


@given(
    n_tiles=st.integers(1, 24),
    cap_in=st.integers(1, 5),
    cap_out=st.integers(1, 5),
    chunk=st.integers(1, 4),
)
@settings(max_examples=40, deadline=None)
def test_three_stage_pipeline_any_buffering(n_tiles, cap_in, cap_out, chunk):
    """read->compute->write with arbitrary CB depths and batch sizes."""
    chunk = min(chunk, cap_in, cap_out)
    core = TensixCore(0, NocCoordinate(0, 0))
    cb_in = core.create_cb(0, cap_in)
    cb_out = core.create_cb(1, cap_out)
    sink = []

    def reader(c):
        sent = 0
        while sent < n_tiles:
            batch = min(chunk, n_tiles - sent)
            yield from cb_in.reserve_back(batch)
            for k in range(batch):
                cb_in.write_page(Tile.full(float(sent + k)))
            cb_in.push_back(batch)
            sent += batch

    def computer(c):
        done = 0
        while done < n_tiles:
            batch = min(chunk, n_tiles - done)
            yield from cb_in.wait_front(batch)
            pages = cb_in.pop_front(batch)
            yield from cb_out.reserve_back(batch)
            for p in pages:
                cb_out.write_page(c.sfpu.add_scalar(p, 100.0))
            cb_out.push_back(batch)
            done += batch

    def writer(c):
        got = 0
        while got < n_tiles:
            batch = min(chunk, n_tiles - got)
            yield from cb_out.wait_front(batch)
            sink.extend(cb_out.pop_front(batch))
            got += batch

    core.bind_kernel("r", RiscvRole.NC, reader, kind="data_movement")
    core.bind_kernel("c", RiscvRole.T1, computer, kind="compute")
    core.bind_kernel("w", RiscvRole.B, writer, kind="data_movement")
    core.run_kernels()

    assert [t.data[0] for t in sink] == [100.0 + i for i in range(n_tiles)]


@given(
    n_cores=st.integers(1, 6),
    tiles_per_core=st.integers(1, 6),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=15, deadline=None)
def test_multicore_program_partitions_work(n_cores, tiles_per_core, seed):
    """A program over several cores: each core transforms its own tiles;
    every input appears in the output exactly once."""
    rng = np.random.default_rng(seed)
    device = CreateDevice(0)
    from repro.metalium import GetCommandQueue

    queue = GetCommandQueue(device)
    values = rng.uniform(-5, 5, size=n_cores * tiles_per_core)
    collected: dict[int, float] = {}

    program = Program(core_range=CoreRange(0, n_cores))
    program.add_cb(CBConfig(0, 2))

    def worker(core, args):
        cb = core.get_cb(0)
        for tile_id in args["my"]:
            yield from cb.reserve_back(1)
            cb.write_page(Tile.full(values[tile_id]))
            cb.push_back(1)
            yield from cb.wait_front(1)
            (page,) = cb.pop_front(1)
            out = core.sfpu.mul_scalar(page, 2.0)
            collected[tile_id] = float(out.data[0])

    program.add_kernel(KernelSpec("w", RiscvRole.T1, "compute", worker))
    for c in range(n_cores):
        program.set_runtime_args(
            c, {"my": list(range(c * tiles_per_core, (c + 1) * tiles_per_core))}
        )
    queue.enqueue_program(program)

    assert set(collected) == set(range(n_cores * tiles_per_core))
    for tile_id, got in collected.items():
        expect = np.float32(values[tile_id]) * np.float32(2.0)
        assert got == pytest.approx(float(expect), rel=1e-6)

"""Tests for the host API and command queue: the paper's dev workflow."""

import numpy as np
import pytest

from repro.errors import CommandQueueError, DeviceResetError, HostApiError, KernelError
from repro.metalium import (
    CloseDevice,
    CommandQueue,
    CoreRange,
    CreateBuffer,
    CreateCircularBuffer,
    CreateDevice,
    CreateKernel,
    CreateProgram,
    EnqueueProgram,
    EnqueueReadBuffer,
    EnqueueWriteBuffer,
    Finish,
    GetCommandQueue,
    KernelSpec,
    Program,
    SetRuntimeArgs,
)
from repro.wormhole.device import ResetFaultModel
from repro.wormhole.riscv import RiscvRole
from repro.wormhole.tile import tilize_1d


class TestDeviceCreation:
    def test_create_returns_open_device(self):
        dev = CreateDevice(0)
        assert dev.is_open
        assert isinstance(GetCommandQueue(dev), CommandQueue)
        CloseDevice(dev)

    def test_close_removes_queue(self):
        dev = CreateDevice(0)
        CloseDevice(dev)
        with pytest.raises(HostApiError):
            GetCommandQueue(dev)

    def test_reset_failure_propagates(self):
        fault = ResetFaultModel(1.0, np.random.default_rng(0))
        with pytest.raises(DeviceResetError):
            CreateDevice(0, fault_model=fault)


class TestProgramValidation:
    def test_duplicate_role_rejected(self):
        program = CreateProgram(CoreRange(0, 1))

        def body(core, args):
            return
            yield

        CreateKernel(program, "a", RiscvRole.T1, "compute", body)
        with pytest.raises(KernelError, match="already has a kernel"):
            CreateKernel(program, "b", RiscvRole.T1, "compute", body)

    def test_duplicate_cb_rejected(self):
        program = CreateProgram(CoreRange(0, 1))
        CreateCircularBuffer(program, 0, 2)
        with pytest.raises(KernelError, match="already configures"):
            CreateCircularBuffer(program, 0, 4)

    def test_bad_kernel_kind(self):
        with pytest.raises(KernelError, match="kind"):
            KernelSpec("x", RiscvRole.T0, "weird", lambda c, a: iter(()))

    def test_bad_core_range(self):
        with pytest.raises(KernelError):
            CoreRange(3, 3)
        with pytest.raises(KernelError):
            CoreRange(-1, 2)

    def test_empty_program_rejected(self):
        dev = CreateDevice(0)
        queue = GetCommandQueue(dev)
        with pytest.raises(CommandQueueError, match="no kernels"):
            EnqueueProgram(queue, Program(core_range=CoreRange(0, 1)))
        CloseDevice(dev)


class TestEndToEndPipeline:
    def test_scale_tiles_program_multi_core(self):
        """Full workflow: write buffer, run a 4-core program, read back."""
        dev = CreateDevice(0)
        queue = GetCommandQueue(dev)
        n_tiles = 8
        data = np.arange(n_tiles * 1024, dtype=float)
        in_buf = CreateBuffer(dev, n_tiles)
        out_buf = CreateBuffer(dev, n_tiles)
        EnqueueWriteBuffer(queue, in_buf, tilize_1d(data))

        n_cores = 4
        program = CreateProgram(CoreRange(0, n_cores))
        CreateCircularBuffer(program, 0, 2)
        CreateCircularBuffer(program, 16, 2)

        def reader(core, args):
            cb = core.get_cb(0)
            for t in args["my_tiles"]:
                yield from cb.reserve_back(1)
                cb.write_page(in_buf.noc_read_tile(core.core_id, t))
                cb.push_back(1)

        def compute(core, args):
            cb_in, cb_out = core.get_cb(0), core.get_cb(16)
            for _ in args["my_tiles"]:
                yield from cb_in.wait_front(1)
                (t,) = cb_in.pop_front(1)
                r = core.sfpu.mul_scalar(t, 3.0)
                yield from cb_out.reserve_back(1)
                cb_out.write_page(r)
                cb_out.push_back(1)

        def writer(core, args):
            cb = core.get_cb(16)
            for t in args["my_tiles"]:
                yield from cb.wait_front(1)
                (page,) = cb.pop_front(1)
                out_buf.noc_write_tile(core.core_id, t, page)

        CreateKernel(program, "reader", RiscvRole.NC, "data_movement", reader)
        CreateKernel(program, "compute", RiscvRole.T1, "compute", compute)
        CreateKernel(program, "writer", RiscvRole.B, "data_movement", writer)
        for core_index in range(n_cores):
            SetRuntimeArgs(
                program, core_index,
                {"my_tiles": list(range(core_index, n_tiles, n_cores))},
            )

        device_s = EnqueueProgram(queue, program)
        tiles = EnqueueReadBuffer(queue, out_buf)
        elapsed = Finish(queue)

        got = np.concatenate([t.data for t in tiles])
        assert np.array_equal(got, 3.0 * data)
        assert device_s > 0
        assert elapsed > device_s  # launch + pcie phases included
        CloseDevice(dev)

    def test_program_build_cost_charged_once(self):
        dev = CreateDevice(0)
        queue = GetCommandQueue(dev)
        program = CreateProgram(CoreRange(0, 1))

        def noop(core, args):
            return
            yield

        CreateKernel(program, "noop", RiscvRole.T1, "compute", noop)
        EnqueueProgram(queue, program)
        builds_after_first = sum(
            1 for p in queue.phases if p.detail == "program_build"
        )
        EnqueueProgram(queue, program)
        builds_after_second = sum(
            1 for p in queue.phases if p.detail == "program_build"
        )
        assert builds_after_first == builds_after_second == 1
        dispatches = sum(1 for p in queue.phases if p.detail == "dispatch")
        assert dispatches == 2
        CloseDevice(dev)

    def test_cbs_are_program_scoped(self):
        """The same cb id can be reconfigured by consecutive programs."""
        dev = CreateDevice(0)
        queue = GetCommandQueue(dev)

        def noop(core, args):
            return
            yield

        for _ in range(2):
            program = CreateProgram(CoreRange(0, 1))
            CreateCircularBuffer(program, 0, 2)
            CreateKernel(program, "noop", RiscvRole.T1, "compute", noop)
            EnqueueProgram(queue, program)
        assert dev.cores[0].l1.allocated_bytes == 0
        CloseDevice(dev)

    def test_host_phase_recording(self):
        dev = CreateDevice(0)
        queue = GetCommandQueue(dev)
        queue.record_host(1.5, "predictor")
        assert queue.host_seconds() == pytest.approx(1.5)
        with pytest.raises(CommandQueueError):
            queue.record_host(-1.0)
        CloseDevice(dev)


class TestQueueRegistry:
    def test_queue_is_bound_to_device_object(self):
        # id() values are recycled after garbage collection; a registry
        # keyed by id(device) could hand a dead device's queue to a new
        # device.  The queue lives on the device itself now.
        import gc

        dead = CreateDevice(0)
        dead_id = id(dead)
        del dead
        gc.collect()
        devices = [CreateDevice(i) for i in range(8)]
        try:
            for dev in devices:
                queue = GetCommandQueue(dev)
                assert queue.device is dev
            recycled = [d for d in devices if id(d) == dead_id]
            for dev in recycled:  # the recycled id must see its own queue
                assert GetCommandQueue(dev).device is dev
        finally:
            for dev in devices:
                CloseDevice(dev)

    def test_two_live_devices_have_distinct_queues(self):
        a, b = CreateDevice(0), CreateDevice(1)
        assert GetCommandQueue(a) is not GetCommandQueue(b)
        CloseDevice(a)
        CloseDevice(b)


class TestConfigValidation:
    def test_cbconfig_rejects_nonpositive_capacity(self):
        from repro.metalium import CBConfig

        with pytest.raises(KernelError, match="capacity_pages"):
            CBConfig(0, 0)
        with pytest.raises(KernelError, match="capacity_pages"):
            CBConfig(0, -3)

    def test_cbconfig_rejects_negative_id(self):
        from repro.metalium import CBConfig

        with pytest.raises(KernelError, match="non-negative"):
            CBConfig(-1, 2)

    def test_phase_rejects_unknown_tag(self):
        from repro.metalium.command_queue import Phase

        with pytest.raises(CommandQueueError, match="phase tag"):
            Phase("gpu", 1.0)

    def test_phase_accepts_the_known_tags(self):
        from repro.metalium.command_queue import PHASE_TAGS, Phase

        for tag in PHASE_TAGS:
            assert Phase(tag, 0.5).tag == tag


class TestEnqueueLintGate:
    def _broken_program(self):
        program = CreateProgram(CoreRange(0, 1))
        CreateCircularBuffer(program, 0, 400)  # 1.6 MB of CBs > 1.5 MB L1

        def noop(core, args):
            return
            yield

        CreateKernel(program, "noop", RiscvRole.T1, "compute", noop)
        return program

    def test_lint_error_blocks_dispatch(self):
        from repro.errors import LintError

        dev = CreateDevice(0)
        queue = GetCommandQueue(dev)
        phases_before = len(queue.phases)
        with pytest.raises(LintError) as excinfo:
            EnqueueProgram(queue, self._broken_program(), lint="error")
        assert "WH001" in str(excinfo.value)
        assert len(queue.phases) == phases_before  # nothing executed
        CloseDevice(dev)

    def test_lint_warn_dispatches_with_warning(self):
        dev = CreateDevice(0)
        queue = GetCommandQueue(dev)
        program = CreateProgram(CoreRange(0, 1))

        def noop(core, args):
            return
            yield

        CreateKernel(program, "noop", RiscvRole.T1, "compute", noop)
        SetRuntimeArgs(program, 0, {"dead": 1})  # warning-only finding
        with pytest.warns(UserWarning, match="WH007"):
            EnqueueProgram(queue, program, lint="warn")
        CloseDevice(dev)

    def test_invalid_lint_mode_rejected(self):
        dev = CreateDevice(0)
        queue = GetCommandQueue(dev)
        with pytest.raises(HostApiError, match="lint mode"):
            EnqueueProgram(queue, self._broken_program(), lint="loud")
        CloseDevice(dev)

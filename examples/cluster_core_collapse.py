#!/usr/bin/env python
"""Cold collapse of a star cluster, offloaded to the Wormhole.

The workload the paper's introduction motivates: modelling dense stellar
systems with direct (unsoftened-physics) N-body integration.  A uniform,
initially cold sphere collapses under self-gravity, bounces, and relaxes
towards virial equilibrium.  We integrate it with adaptive shared Aarseth
timesteps on the simulated Wormhole backend and track:

* Lagrangian radii (10%, 50%, 90% mass shells) through the collapse;
* the virial ratio Q = -T/W approaching ~0.5;
* energy conservation of the mixed-precision pipeline.

A small Plummer softening keeps the central bounce integrable at the
modest N used here, exactly as production cold-collapse runs do.

Run:  python examples/cluster_core_collapse.py
"""

import numpy as np

from repro import (
    SharedTimestep,
    Simulation,
    energy_report,
    make_backend,
    uniform_sphere,
)

N = 1024
SOFTENING = 0.05
CYCLES_PER_SNAPSHOT = 40
SNAPSHOTS = 10


def lagrangian_radii(system, fractions=(0.1, 0.5, 0.9)):
    """Radii enclosing the given mass fractions around the barycentre."""
    center = system.center_of_mass()
    radii = np.linalg.norm(system.pos - center, axis=1)
    order = np.argsort(radii)
    cum_mass = np.cumsum(system.mass[order]) / system.total_mass
    return [radii[order][np.searchsorted(cum_mass, f)] for f in fractions]


def main() -> None:
    print(f"Cold uniform sphere, N = {N}, softening eps = {SOFTENING}")
    system = uniform_sphere(N, seed=7, radius=1.0, virial_ratio=0.0)
    initial = energy_report(system, softening=SOFTENING)
    print(f"  E0 = {initial.total:+.5f},  Q0 = {initial.virial_ratio:.3f} "
          "(cold: Q = 0)\n")

    backend = make_backend("tt", cores=8, softening=SOFTENING)
    timestep = SharedTimestep(eta=0.01, eta_start=0.005, dt_max=0.01)
    sim = Simulation(system, backend, timestep=timestep)

    print(f"{'t':>7} {'dt':>9} {'r10%':>7} {'r50%':>7} {'r90%':>7} "
          f"{'Q':>6} {'|dE/E0|':>9}")
    for _ in range(SNAPSHOTS):
        result = sim.run(CYCLES_PER_SNAPSHOT)
        report = energy_report(system, softening=SOFTENING)
        r10, r50, r90 = lagrangian_radii(system)
        last_dt = result.cycles[-1].dt
        print(f"{system.time:7.3f} {last_dt:9.2e} {r10:7.3f} {r50:7.3f} "
              f"{r90:7.3f} {report.virial_ratio:6.3f} "
              f"{report.drift_from(initial):9.2e}")

    final = energy_report(system, softening=SOFTENING)
    print("\nCollapse summary:")
    print(f"  the half-mass radius contracted from ~0.79 to "
          f"{lagrangian_radii(system)[1]:.3f}")
    print(f"  virial ratio moved from 0 toward equilibrium: "
          f"Q = {final.virial_ratio:.3f}")
    print(f"  total energy drift through the bounce: "
          f"{final.drift_from(initial):.2e}")
    print(f"  (forces computed on the device in FP32; integration in FP64)")


if __name__ == "__main__":
    main()

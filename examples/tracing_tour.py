#!/usr/bin/env python
"""Tracing tour: watch one accelerated run through Scope's eyes.

The observability layer ("Scope", ``repro.observability``) threads one
``Trace`` through every layer of the stack.  This tour:

1. runs a traced Hermite simulation with forces offloaded to the
   simulated Wormhole — the trace records simulation phases, PCIe
   transfers, program launches, and one concurrent span per Tensix core;
2. walks the span tree and the modelled-time category split;
3. reads the metrics registry the device layer filled in
   (DRAM/NoC traffic, scheduler rounds, L1 high water, tiles/s);
4. exports Chrome/Perfetto ``trace.json`` (open it in ui.perfetto.dev)
   and prints the terminal flamegraph;
5. traces a small resilient campaign — reset attempts, backoff sleeps
   and per-job phase replays on the shared virtual clock.

Run:  python examples/tracing_tour.py
Docs: docs/OBSERVABILITY.md
"""

import json

from repro import (
    Campaign,
    JobSpec,
    Simulation,
    Trace,
    make_backend,
    plummer,
    write_chrome_trace,
)
from repro.observability import format_flamegraph, validate_chrome_trace
from repro.telemetry import RetryPolicy

N = 1024
CYCLES = 3
CORES = 8


def traced_simulation() -> Trace:
    """A traced accelerated run; returns the filled trace."""
    print(f"== Traced simulation: N = {N}, {CYCLES} cycles, "
          f"{CORES} cores ==")
    trace = Trace()
    system = plummer(N, seed=3)
    backend = make_backend("tt", cores=CORES)
    result = Simulation(system, backend, dt=1e-3, trace=trace).run(CYCLES)

    assert abs(trace.duration_s - result.model_seconds) < 1e-9
    print(f"  {len(trace.spans)} spans over {trace.duration_s:.4f} "
          f"modelled s (== result.model_seconds)")

    print("  modelled seconds by category:")
    for category, seconds in sorted(trace.seconds_by_category().items()):
        print(f"    {category:>8}: {seconds:.6f}")

    # One EnqueueProgram, expanded: launch -> device -> concurrent cores.
    enqueue = trace.find("EnqueueProgram")[0]
    device_span = next(
        s for s in trace.children_of(enqueue) if s.category == "device"
    )
    cores = trace.children_of(device_span)
    worst = max(cores, key=lambda s: s.duration_s)
    print(f"  one launch: {len(cores)} concurrent core spans; critical "
          f"path core {worst.track} at {worst.duration_s * 1e3:.3f} ms")
    return trace


def inspect_metrics(trace: Trace) -> None:
    print("\n== Metrics the device layer registered ==")
    for name, record in sorted(trace.metrics.to_dict().items()):
        value = record.get("value", record.get("mean"))
        print(f"  {name:<34} {record['kind']:<9} {value:,.1f}")


def export(trace: Trace) -> None:
    print("\n== Exports ==")
    path = write_chrome_trace(trace, "trace.json")
    problems = validate_chrome_trace(json.loads(path.read_text()))
    assert problems == [], problems
    print(f"  {path} (schema-valid; open in ui.perfetto.dev)")
    print(f"  {trace.metrics.write_json('trace.json.metrics.json')}")
    print("\n" + format_flamegraph(trace, min_share=0.02))


def traced_campaign() -> None:
    print("\n== Traced campaign: 3 jobs, flaky resets, retries ==")
    trace = Trace()
    campaign = Campaign(
        seed=11, n_cards=2, reset_failure_rate=0.5,
        retry=RetryPolicy(max_attempts=4, base_backoff_s=5.0),
        trace=trace,
    )
    for _ in range(3):
        campaign.run_job(JobSpec.paper_accelerated())

    assert abs(trace.now - campaign.clock.now()) < 1e-6
    metrics = trace.metrics.to_dict()
    print(f"  {metrics['campaign.reset_attempts']['value']:.0f} reset "
          f"attempts over {metrics['campaign.jobs']['value']:.0f} jobs; "
          f"cursor == virtual clock at {trace.now:.1f} s")
    for job in trace.find("job"):
        children = ", ".join(
            f"{s.name}" for s in trace.children_of(job)
        )
        print(f"  job {job.attributes['index']}: attempts="
              f"{job.attributes['attempts']} [{children}]")


def main() -> None:
    trace = traced_simulation()
    inspect_metrics(trace)
    export(trace)
    traced_campaign()
    print("\nDone. The full guide is docs/OBSERVABILITY.md; "
          "`repro trace --help` is the CLI version of this tour.")


if __name__ == "__main__":
    main()

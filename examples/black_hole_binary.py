#!/usr/bin/env python
"""A hard black-hole binary inside a star cluster, on the Wormhole.

The science case from the paper's introduction: dense stellar systems are
"the primary environments for the formation of compact object binaries,
such as black hole binaries", whose mergers LIGO/Virgo/KAGRA observe.
This example embeds a hard binary (2% of the cluster mass) at the centre
of a Plummer cluster, integrates the whole system with the offloaded
mixed-precision force kernel, and tracks the binary's osculating orbital
elements — semi-major axis and eccentricity — plus the conserved
quantities of the full (binary + cluster) system.

Run:  python examples/black_hole_binary.py
"""

import numpy as np

from repro import Simulation, cluster_with_binary, energy_report, make_backend
from repro.core import binary_elements, hardness_ratio

N_BACKGROUND = 1022            # +2 binary components = 1024 total
BINARY_MASS_FRACTION = 0.02
SEMI_MAJOR_AXIS = 0.002        # hard: a << cluster scale
DT = 2.0e-5                    # resolves the binary orbit
CYCLES_PER_SNAPSHOT = 50
SNAPSHOTS = 8


def orbital_elements(system):
    """Osculating Keplerian elements of particles 0 and 1 (library call)."""
    el = binary_elements(system)
    return el.semi_major_axis, el.eccentricity, el.separation


def main() -> None:
    print(f"Plummer cluster (N = {N_BACKGROUND}) hosting a black-hole "
          f"binary ({BINARY_MASS_FRACTION:.0%} of the mass)")
    system = cluster_with_binary(
        N_BACKGROUND,
        seed=3,
        binary_mass_fraction=BINARY_MASS_FRACTION,
        semi_major_axis=SEMI_MAJOR_AXIS,
    )
    elements = binary_elements(system)
    a0, e0 = elements.semi_major_axis, elements.eccentricity
    period = elements.period
    print(f"  binary: a = {a0:.5f}, e = {e0:.3f}, "
          f"P = {period:.5f} N-body time units")
    print(f"  Heggie hardness x = {hardness_ratio(system):.0f} "
          "(>> 1: a hard binary)\n")

    initial = energy_report(system)
    backend = make_backend("tt", cores=8)
    sim = Simulation(system, backend, dt=DT)

    print(f"{'t':>9} {'orbits':>7} {'a':>9} {'e':>6} {'r12':>9} "
          f"{'|dE/E0|':>9}")
    for _ in range(SNAPSHOTS):
        sim.run(CYCLES_PER_SNAPSHOT)
        a, e, r12 = orbital_elements(system)
        report = energy_report(system)
        print(f"{system.time:9.5f} {system.time / period:7.2f} "
              f"{a:9.6f} {e:6.3f} {r12:9.6f} "
              f"{report.drift_from(initial):9.2e}")

    a1, e1, _ = orbital_elements(system)
    print("\nBinary survival summary:")
    print(f"  semi-major axis: {a0:.6f} -> {a1:.6f} "
          f"(relative change {abs(a1 - a0) / a0:.1e})")
    print(f"  the binary stayed bound and hard through "
          f"{system.time / period:.1f} orbits under the FP32 device kernel")
    print(f"  full-system energy drift: "
          f"{energy_report(system).drift_from(initial):.2e}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A hard black-hole binary inside a star cluster, on the Wormhole.

The science case from the paper's introduction: dense stellar systems are
"the primary environments for the formation of compact object binaries,
such as black hole binaries", whose mergers LIGO/Virgo/KAGRA observe.
This example declares the whole run as a :class:`repro.backends.RunSpec`
— scenario ``cluster_with_binary``, integrator ``block-hermite``, backend
``tt`` — so the binary members step at the deep levels of the block
hierarchy while the field stars stay shallow, and every block's force
evaluation reaches the offloaded mixed-precision kernel through
``compute_on_targets``.  It tracks the binary's osculating orbital
elements — semi-major axis and eccentricity — plus the conserved
quantities of the full (binary + cluster) system.

Run:  python examples/black_hole_binary.py
"""

from repro.backends import BackendSpec, RunSpec
from repro.core import binary_elements, energy_report, hardness_ratio

N = 1024                       # 1022 background stars + binary pair
BINARY_MASS_FRACTION = 0.02
SEMI_MAJOR_AXIS = 0.002        # hard: a << cluster scale
DT = 1.0e-3                    # one run() chunk of physical time
SNAPSHOTS = 8

SPEC = RunSpec(
    n=N,
    dt=DT,
    seed=3,
    backend=BackendSpec("tt", {"cores": 8}),
    integrator={"name": "block-hermite",
                "options": {"eta": 0.01, "dt_max": 0.0625}},
    scenario={"name": "cluster_with_binary",
              "options": {"binary_mass_fraction": BINARY_MASS_FRACTION,
                          "semi_major_axis": SEMI_MAJOR_AXIS}},
)


def orbital_elements(system):
    """Osculating Keplerian elements of particles 0 and 1 (library call)."""
    el = binary_elements(system)
    return el.semi_major_axis, el.eccentricity, el.separation


def main() -> None:
    print(f"Plummer cluster (N = {N - 2}) hosting a black-hole "
          f"binary ({BINARY_MASS_FRACTION:.0%} of the mass)")
    sim = SPEC.make_simulation()
    system = sim.system
    elements = binary_elements(system)
    a0, e0 = elements.semi_major_axis, elements.eccentricity
    period = elements.period
    print(f"  binary: a = {a0:.5f}, e = {e0:.3f}, "
          f"P = {period:.5f} N-body time units")
    print(f"  Heggie hardness x = {hardness_ratio(system):.0f} "
          "(>> 1: a hard binary)")
    print(f"  integrator = {SPEC.integrator.name}, "
          f"backend = tt, dt per chunk = {DT}\n")

    initial = energy_report(system)

    print(f"{'t':>9} {'orbits':>7} {'a':>9} {'e':>6} {'r12':>9} "
          f"{'|dE/E0|':>9}")
    for _ in range(SNAPSHOTS):
        sim.run(1)
        a, e, r12 = orbital_elements(system)
        report = energy_report(system)
        print(f"{system.time:9.5f} {system.time / period:7.2f} "
              f"{a:9.6f} {e:6.3f} {r12:9.6f} "
              f"{report.drift_from(initial):9.2e}")

    stats = sim.stats
    a1, e1, _ = orbital_elements(system)
    print("\nBinary survival summary:")
    print(f"  semi-major axis: {a0:.6f} -> {a1:.6f} "
          f"(relative change {abs(a1 - a0) / a0:.1e})")
    print(f"  the binary stayed bound and hard through "
          f"{system.time / period:.1f} orbits under the FP32 device kernel")
    print(f"  block hierarchy: {stats.block_steps} block steps, "
          f"{stats.force_pair_evaluations:,} pairwise force evaluations")
    print(f"  full-system energy drift: "
          f"{energy_report(system).drift_from(initial):.2e}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Individual block timesteps: the production-integrator extension.

The paper's representative benchmark advances all particles with shared
"time cycles", but production direct N-body codes assign each particle its
own power-of-two timestep so that a tight binary does not force the whole
cluster onto its microscopic step.  This example integrates the same
binary-hosting cluster two ways:

1. shared adaptive timestep (everyone steps at the binary's pace);
2. individual block timesteps (only the binary members take tiny steps);

and compares accuracy and the number of pairwise force evaluations — the
quantity the Wormhole offload accelerates.

Run:  python examples/block_timesteps.py
"""

import numpy as np

from repro.core import (
    BlockHermiteIntegrator,
    ReferenceBackend,
    SharedTimestep,
    Simulation,
    cluster_with_binary,
    energy_report,
)

N_BACKGROUND = 254          # +2 binary members = 256 particles
SEMI_MAJOR_AXIS = 0.005
T_END = 0.05


def main() -> None:
    print(f"Cluster of {N_BACKGROUND + 2} particles hosting a hard binary "
          f"(a = {SEMI_MAJOR_AXIS})\n")

    # --- shared adaptive steps --------------------------------------------
    shared_system = cluster_with_binary(
        N_BACKGROUND, seed=5, semi_major_axis=SEMI_MAJOR_AXIS
    )
    e0 = energy_report(shared_system)
    sim = Simulation(
        shared_system,
        ReferenceBackend(),
        timestep=SharedTimestep(eta=0.01, eta_start=0.005, dt_min=1e-9),
    )
    shared_cycles = 0
    while shared_system.time < T_END:
        sim.run(1)
        shared_cycles += 1
    n = shared_system.n
    shared_pairs = (shared_cycles + 1) * n * n
    shared_drift = energy_report(shared_system).drift_from(e0)
    print("Shared adaptive timestep:")
    print(f"  cycles to t = {T_END}: {shared_cycles}")
    print(f"  pairwise force evaluations: {shared_pairs:,}")
    print(f"  energy drift: {shared_drift:.2e}\n")

    # --- individual block timesteps ----------------------------------------
    block_system = cluster_with_binary(
        N_BACKGROUND, seed=5, semi_major_axis=SEMI_MAJOR_AXIS
    )
    integ = BlockHermiteIntegrator(
        block_system, eta=0.01, eta_start=0.005, dt_max=0.0625
    )
    integ.run_until(T_END)
    integ.synchronise()
    block_drift = energy_report(block_system).drift_from(e0)
    stats = integ.stats
    print("Individual block timesteps:")
    print(f"  block steps: {stats.block_steps}, particle updates: "
          f"{stats.particle_updates:,}")
    print(f"  pairwise force evaluations: {stats.force_pair_evaluations:,}")
    print(f"  energy drift: {block_drift:.2e}")
    levels = stats.level_histogram
    deepest = max(levels)
    print(f"  timestep hierarchy: levels {min(levels)}..{deepest} "
          f"(dt from {0.0625 / 2**min(levels):.1e} "
          f"down to {0.0625 / 2**deepest:.1e})\n")

    saving = shared_pairs / stats.force_pair_evaluations
    print(f"Block timesteps did the same physics with {saving:.1f}x fewer "
          "pairwise force evaluations —")
    print("the binary members run at the deep levels while field stars "
          "stay shallow.")
    print("\nTrajectory agreement (max position difference): "
          f"{np.abs(block_system.pos - shared_system.pos).max():.2e}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Individual block timesteps: the production-integrator extension.

The paper's representative benchmark advances all particles with shared
"time cycles", but production direct N-body codes assign each particle its
own power-of-two timestep so that a tight binary does not force the whole
cluster onto its microscopic step.  This example integrates the same
binary-hosting cluster two ways — both declared as a
:class:`repro.backends.RunSpec` and realised through the integrator and
scenario registries, with forces on the simulated Wormhole (``tt``)
backend:

1. ``integrator="hermite"`` (adaptive): everyone steps at the binary's
   pace;
2. ``integrator="block-hermite"``: only the binary members take tiny
   steps, and each block evaluates forces on just its active subset via
   ``compute_on_targets``;

and compares accuracy and the number of pairwise force evaluations — the
quantity the Wormhole offload accelerates.

Run:  python examples/block_timesteps.py
"""

from dataclasses import replace

import numpy as np

from repro.backends import BackendSpec, RunSpec
from repro.core import energy_report

N = 256                     # 254 background stars + the binary pair
SEMI_MAJOR_AXIS = 0.005
DT = 0.0125                 # one run() chunk; T_END = 4 chunks
CHUNKS = 4
T_END = CHUNKS * DT

BASE = RunSpec(
    n=N,
    dt=DT,
    seed=5,
    backend=BackendSpec("tt", {"cores": 8}),
    scenario={"name": "cluster_with_binary",
              "options": {"semi_major_axis": SEMI_MAJOR_AXIS}},
)


def main() -> None:
    print(f"Cluster of {N} particles hosting a hard binary "
          f"(a = {SEMI_MAJOR_AXIS}), forces on the tt backend\n")

    # --- shared adaptive steps --------------------------------------------
    shared_spec = replace(
        BASE.with_integrator(
            "hermite", eta=0.01, eta_start=0.005, dt_min=1e-9
        ),
        adaptive=True,
    )
    shared_sim = shared_spec.make_simulation()
    shared_system = shared_sim.system
    e0 = energy_report(shared_system)
    shared_cycles = 0
    while shared_system.time < T_END:
        shared_sim.run(1)
        shared_cycles += 1
    shared_pairs = (shared_cycles + 1) * N * N
    shared_drift = energy_report(shared_system).drift_from(e0)
    print("Shared adaptive timestep (integrator=hermite, adaptive):")
    print(f"  cycles to t = {T_END}: {shared_cycles}")
    print(f"  pairwise force evaluations: {shared_pairs:,}")
    print(f"  energy drift: {shared_drift:.2e}\n")

    # --- individual block timesteps ----------------------------------------
    block_spec = BASE.with_integrator(
        "block-hermite", eta=0.01, dt_max=0.0625
    )
    block_sim = block_spec.make_simulation()
    block_system = block_sim.system
    block_sim.run(CHUNKS)
    block_drift = energy_report(block_system).drift_from(e0)
    stats = block_sim.stats
    print("Individual block timesteps (integrator=block-hermite):")
    print(f"  block steps: {stats.block_steps}, particle updates: "
          f"{stats.particle_updates:,}")
    print(f"  pairwise force evaluations: {stats.force_pair_evaluations:,}")
    print(f"  energy drift: {block_drift:.2e}")
    levels = stats.level_histogram
    deepest = max(levels)
    print(f"  timestep hierarchy: levels {min(levels)}..{deepest} "
          f"(dt from {0.0625 / 2**min(levels):.1e} "
          f"down to {0.0625 / 2**deepest:.1e})\n")

    saving = shared_pairs / stats.force_pair_evaluations
    print(f"Block timesteps did the same physics with {saving:.1f}x fewer "
          "pairwise force evaluations —")
    print("the binary members run at the deep levels while field stars "
          "stay shallow.")
    print("\nTrajectory agreement (max position difference): "
          f"{np.abs(block_system.pos - shared_system.pos).max():.2e}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Programming the simulated Wormhole directly through the metalium API.

The other examples drive the device through the N-body backend; this one
writes kernels by hand, the way the paper's Section 2 describes the
TT-Metalium workflow: device setup, buffer allocation, kernel creation on
the baby-RISC-V roles, circular-buffer dataflow, and command-queue
execution.  Two mini-programs:

1. an AXPY pipeline (y = a*x + y) streaming tiles through the paper's
   read -> compute -> write structure;
2. a tiled matrix multiply on the tensor FPU, with per-core occupancy
   from the device profiler.

Run:  python examples/metalium_playground.py
"""

import numpy as np

from repro.metalium import (
    CBConfig,
    CoreRange,
    CreateBuffer,
    CreateDevice,
    GetCommandQueue,
    KernelSpec,
    Program,
)
from repro.wormhole import Tile, tilize_1d, tilize_2d, untilize_2d
from repro.wormhole.profiler import profile_device
from repro.wormhole.riscv import RiscvRole


def axpy_demo(device, queue):
    """y = a*x + y across 4 cores, CB-mediated."""
    print("== AXPY pipeline: y = 2.5 * x + y over 16 tiles, 4 cores ==")
    n = 16 * 1024
    rng = np.random.default_rng(0)
    x = rng.normal(size=n)
    y = rng.normal(size=n)
    alpha = 2.5

    x_buf = CreateBuffer(device, 16)
    y_buf = CreateBuffer(device, 16)
    out_buf = CreateBuffer(device, 16)
    queue.enqueue_write_buffer(x_buf, tilize_1d(x))
    queue.enqueue_write_buffer(y_buf, tilize_1d(y))

    program = Program(core_range=CoreRange(0, 4))
    program.add_cb(CBConfig(0, 4))   # x pages
    program.add_cb(CBConfig(1, 4))   # y pages
    program.add_cb(CBConfig(16, 4))  # results

    def reader(core, args):
        cb_x, cb_y = core.get_cb(0), core.get_cb(1)
        for t in args["my_tiles"]:
            yield from cb_x.reserve_back(1)
            cb_x.write_page(x_buf.noc_read_tile(core.core_id, t))
            cb_x.push_back(1)
            yield from cb_y.reserve_back(1)
            cb_y.write_page(y_buf.noc_read_tile(core.core_id, t))
            cb_y.push_back(1)

    def compute(core, args):
        cb_x, cb_y, cb_o = core.get_cb(0), core.get_cb(1), core.get_cb(16)
        for _ in args["my_tiles"]:
            yield from cb_x.wait_front(1)
            yield from cb_y.wait_front(1)
            (tx,) = cb_x.pop_front(1)
            (ty,) = cb_y.pop_front(1)
            scaled = core.sfpu.mul_scalar(tx, alpha)
            result = core.sfpu.add(scaled, ty)
            yield from cb_o.reserve_back(1)
            cb_o.write_page(result)
            cb_o.push_back(1)

    def writer(core, args):
        cb_o = core.get_cb(16)
        for t in args["my_tiles"]:
            yield from cb_o.wait_front(1)
            (page,) = cb_o.pop_front(1)
            out_buf.noc_write_tile(core.core_id, t, page)

    program.add_kernel(KernelSpec("read", RiscvRole.NC, "data_movement", reader))
    program.add_kernel(KernelSpec("axpy", RiscvRole.T1, "compute", compute))
    program.add_kernel(KernelSpec("write", RiscvRole.B, "data_movement", writer))
    for c in range(4):
        program.set_runtime_args(c, {"my_tiles": list(range(c * 4, (c + 1) * 4))})

    device_s = queue.enqueue_program(program)
    tiles = queue.enqueue_read_buffer(out_buf)
    got = np.concatenate([t.data for t in tiles])
    expect = (np.float32(alpha) * x.astype(np.float32)
              + y.astype(np.float32)).astype(np.float64)
    print(f"  max |error| vs FP32 reference: {np.abs(got - expect).max():.2e}")
    print(f"  modelled device time: {device_s * 1e3:.3f} ms\n")


def matmul_demo(device, queue):
    """C = A @ B through the tensor FPU, 64x96 by 96x64."""
    print("== Tiled matmul on the tensor FPU: (64x96) @ (96x64) ==")
    rng = np.random.default_rng(1)
    A = rng.normal(size=(64, 96))
    B = rng.normal(size=(96, 64))
    ga, gb = tilize_2d(A), tilize_2d(B)

    device.clear_counters()
    core = device.cores[0]
    out_grid = []
    for r in range(2):
        row = []
        for c in range(2):
            acc = Tile.zeros()
            for k in range(3):
                acc = core.fpu.matmul_accumulate(acc, ga[r][k], gb[k][c])
            row.append(acc)
        out_grid.append(row)
    got = untilize_2d(out_grid, (64, 64))
    err = np.abs(got - A @ B).max() / np.abs(A @ B).max()
    print(f"  max relative error vs NumPy: {err:.2e}")
    print(f"  FPU tile matmuls issued: "
          f"{device.total_op_stats()['fpu.matmul']}")

    print("\n  device occupancy:")
    print("  " + profile_device(device).table(top=2).replace("\n", "\n  "))


def main() -> None:
    device = CreateDevice(0)
    queue = GetCommandQueue(device)
    axpy_demo(device, queue)
    matmul_demo(device, queue)


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""A minor merger of two star clusters, offloaded to the Wormhole.

Two internally-virialised Plummer clusters (mass ratio 3:1) approach on a
marginally-bound (parabolic) orbit with a small impact parameter, collide,
and relax into a single remnant.  The run uses the simulated device
backend with a small softening (a collisionless merger, integrated with
the mixed-precision force kernel) and tracks each progenitor's bound
structure through the encounter with the library's analysis tools.

Run:  python examples/cluster_merger.py
"""

import numpy as np

from repro import Simulation, energy_report, make_backend
from repro.core import cluster_collision, density_center, lagrangian_radii

N1, N2 = 768, 256        # 3:1 merger, 1024 particles total
SOFTENING = 0.02
DT = 4.0e-3
CYCLES_PER_SNAPSHOT = 60
SNAPSHOTS = 12


def progenitor_separation(system):
    """Distance between the two progenitors' density centres."""
    first = system.copy()
    first.mass = system.mass[:N1].copy()
    first.pos = system.pos[:N1].copy()
    first.vel = system.vel[:N1].copy()
    second = system.copy()
    second.mass = system.mass[N1:].copy()
    second.pos = system.pos[N1:].copy()
    second.vel = system.vel[N1:].copy()
    return np.linalg.norm(density_center(first) - density_center(second))


def main() -> None:
    print(f"3:1 cluster merger: N = {N1} + {N2}, parabolic approach, "
          f"softening {SOFTENING}")
    system = cluster_collision(
        N1, N2, seed=11, mass_ratio=3.0,
        separation=2.5, impact_parameter=0.4,
    )
    initial = energy_report(system, softening=SOFTENING)
    print(f"  E0 = {initial.total:+.5f}\n")

    backend = make_backend("tt", cores=8, softening=SOFTENING)
    sim = Simulation(system, backend, dt=DT)

    print(f"{'t':>7} {'separation':>11} {'r50 (all)':>10} {'|dE/E0|':>9}")
    separations = []
    for _ in range(SNAPSHOTS):
        sim.run(CYCLES_PER_SNAPSHOT)
        sep = progenitor_separation(system)
        separations.append(sep)
        r50 = lagrangian_radii(system, (0.5,))[0]
        drift = energy_report(system, softening=SOFTENING).drift_from(initial)
        print(f"{system.time:7.3f} {sep:11.3f} {r50:10.3f} {drift:9.2e}")

    print("\nMerger summary:")
    print(f"  progenitor separation: {separations[0]:.2f} -> "
          f"{separations[-1]:.2f}")
    closest = min(separations)
    print(f"  closest approach sampled: {closest:.3f}")
    if separations[-1] < 1.0:
        print("  the secondary has sunk into the primary (merger underway)")
    print(f"  energy drift through the encounter: "
          f"{energy_report(system, softening=SOFTENING).drift_from(initial):.2e}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: evolve a star cluster and offload forces to the Wormhole.

This is the smallest end-to-end tour of the library:

1. build a Plummer-sphere star cluster in Henon units;
2. integrate it with the 4th-order Hermite scheme using the
   double-precision reference backend;
3. repeat with the force kernel offloaded to the simulated Tenstorrent
   Wormhole n300 (the paper's port), in mixed precision;
4. validate the device forces against the golden reference with the
   paper's acceptance gates (acc within 0.05%, jerk within 0.2%);
5. compare energy conservation and look at the modelled job timeline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ReferenceBackend,
    Simulation,
    energy_report,
    make_backend,
    plummer,
    validate_forces,
)

N = 2048
DT = 1e-3
CYCLES = 10


def main() -> None:
    print(f"Building a Plummer cluster with N = {N} (Henon units: G = M = 1)")
    system = plummer(N, seed=42)
    initial = energy_report(system)
    print(f"  E0 = {initial.total:+.6f} (should be -0.25)")
    print(f"  virial ratio Q = {initial.virial_ratio:.4f} (should be 0.5)\n")

    # --- reference integration (all float64, on the host) -----------------
    ref_system = system.copy()
    sim = Simulation(ref_system, ReferenceBackend(), dt=DT)
    sim.run(CYCLES)
    ref_energy = energy_report(ref_system)
    print(f"Reference backend: {CYCLES} Hermite cycles at dt = {DT}")
    print(f"  relative energy drift: {ref_energy.drift_from(initial):.2e}\n")

    # --- the same run, offloaded to the simulated Wormhole ---------------
    print("Creating Wormhole n300 device (reset + open) ...")
    backend = make_backend("tt", cores=8)
    print(f"  backend: {backend.name}\n")

    dev_system = system.copy()
    sim = Simulation(dev_system, backend, dt=DT)
    result = sim.run(CYCLES)
    dev_energy = energy_report(dev_system)
    print(f"Offloaded backend: same {CYCLES} cycles, FP32 force kernel")
    print(f"  relative energy drift: {dev_energy.drift_from(initial):.2e}")
    print(f"  max position deviation vs reference: "
          f"{np.abs(dev_system.pos - ref_system.pos).max():.2e}\n")

    # --- the paper's correctness gate --------------------------------------
    evaluation = backend.compute(system.pos, system.vel, system.mass)
    report = validate_forces(
        system.pos, system.vel, system.mass, evaluation.acc, evaluation.jerk
    )
    print("Validation against the double-precision golden reference:")
    print(f"  {report.summary()}\n")

    # --- what the performance model saw -----------------------------------
    by_tag = result.seconds_by_tag()
    print("Modelled job timeline (per the Wormhole performance model):")
    for tag, seconds in sorted(by_tag.items()):
        print(f"  {tag:>7}: {seconds:10.4f} s")
    print(f"  total modelled time: {result.model_seconds:.4f} s")
    print("\nDone. Next: examples/cluster_core_collapse.py and "
          "examples/black_hole_binary.py")


if __name__ == "__main__":
    main()

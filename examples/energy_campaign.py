#!/usr/bin/env python
"""Reproduce the paper's full experimental campaign (Section 4).

Runs the paper's measurement workflow — device reset (with the campaign's
reset-failure rate), 120 s sleeps around each simulation, ~1 Hz sampling of
tt-smi / RAPL / IPMI, csv persistence — for the representative workload
(N = 102 400 particles, ten time cycles) at full paper scale, using the
analytic cost models on a virtual clock (milliseconds of real time).

Prints the quantities behind the paper's Figs. 3, 4 and 5:

* time-to-solution statistics and histograms, accelerated vs reference;
* an ASCII rendering of one job's four-card power trace (Fig. 4);
* energy-to-solution statistics and the energy-saving factor.

Run:  python examples/energy_campaign.py
"""

import numpy as np

from repro.telemetry import Campaign, CampaignSummary, JobSpec
from repro.telemetry.stats import histogram

N_ACCEL_SUBMITTED = 50   # the paper submitted 50; 26 completed
N_REF = 49               # the paper reports 49 reference runs
RESET_FAILURE_RATE = 24 / 50


def ascii_histogram(values, n_bins=8, width=40, unit=""):
    counts, edges = histogram(values, n_bins=n_bins)
    peak = counts.max()
    for count, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * count / peak)) if peak else ""
        print(f"  [{lo:9.2f}, {hi:9.2f}) {unit} |{bar} {count}")


def ascii_power_trace(result, n_rows=28):
    """Fig. 4: four-card power over one job, at reduced resolution."""
    rows = result.rows
    step = max(1, len(rows) // n_rows)
    print(f"  {'t [s]':>8}  " + "  ".join(f"card{i} [W]" for i in range(4))
          + "   (| marks the simulation window)")
    for row in rows[::step]:
        in_sim = result.sim_start <= row.timestamp < result.sim_end
        marker = "|" if in_sim else " "
        cards = "  ".join(f"{w:9.1f}" for w in row.card_w)
        print(f"  {row.timestamp:8.0f} {marker} {cards}")


def main() -> None:
    print("=== Campaign: N = 102400 particles, 10 cycles ===\n")
    campaign = Campaign(seed=2025, reset_failure_rate=RESET_FAILURE_RATE)

    print(f"Submitting {N_ACCEL_SUBMITTED} accelerated jobs "
          "(1 OpenMP thread, 1 MPI task, 1 Wormhole device) ...")
    accel_results = campaign.run_many(
        JobSpec.paper_accelerated(), N_ACCEL_SUBMITTED
    )
    accel = CampaignSummary.from_results(accel_results)
    print(f"  completed {accel.completed} of {accel.submitted} "
          f"(paper: 26 of 50; failures occur in the device reset phase)\n")

    print(f"Submitting {N_REF} reference jobs (32 OpenMP threads, "
          "OMP_PLACES=cores) ...")
    ref_results = campaign.run_many(JobSpec.paper_reference(), N_REF)
    ref = CampaignSummary.from_results(ref_results)
    print(f"  completed {ref.completed} of {ref.submitted}\n")

    # ---- Fig. 3: time-to-solution ----------------------------------------
    print("--- Fig. 3(a): time-to-solution, device + CPU ---")
    accel_times = [r.time_to_solution for r in accel_results if r.completed]
    ascii_histogram(accel_times, unit="s")
    print(f"  mean: {accel.time_stats.format('s')}   (paper: 301.40 +/- 0.24 s)\n")

    print("--- Fig. 3(b): time-to-solution, CPU only ---")
    ref_times = [r.time_to_solution for r in ref_results if r.completed]
    ascii_histogram(ref_times, unit="s")
    print(f"  mean: {ref.time_stats.format('s')}   (paper: 672.90 +/- 7.83 s)")
    speedup = ref.time_stats.mean / accel.time_stats.mean
    print(f"  speedup: {speedup:.2f}x   (paper: 2.23x)\n")

    # ---- Fig. 4: power trace of one job -----------------------------------
    print("--- Fig. 4: power of the four cards during one accelerated job ---")
    sample_job = next(r for r in accel_results if r.completed)
    ascii_power_trace(sample_job)
    active = sample_job.spec.active_device
    # the paper's 26-33 W band starts once the force kernel is invoked;
    # the first seconds of the window are host-only initialisation with
    # the cards still at idle draw
    kernel_start = sample_job.sim_start + 6.0
    in_sim = [r for r in sample_job.rows
              if kernel_start <= r.timestamp < sample_job.sim_end]
    active_w = [r.card_w[active] for r in in_sim]
    others_w = [w for r in in_sim for i, w in enumerate(r.card_w)
                if i != active]
    print(f"\n  active card range in-simulation: "
          f"{min(active_w):.1f} - {max(active_w):.1f} W (paper: 26 - 33 W)")
    print(f"  unused cards stay below: {max(others_w):.1f} W (paper: < 20 W)\n")

    # ---- Fig. 5: energy-to-solution ---------------------------------------
    print("--- Fig. 5(a): energy-to-solution, device + CPU ---")
    accel_energy = [r.energy.total_kj for r in accel_results if r.completed]
    ascii_histogram(accel_energy, unit="kJ")
    print(f"  mean: {accel.energy_stats.format('kJ')}   "
          "(paper: 71.56 +/- 0.13 kJ, range 71.23 - 71.81)\n")

    print("--- Fig. 5(b): energy-to-solution, CPU only ---")
    ref_energy = [r.energy.total_kj for r in ref_results if r.completed]
    ascii_histogram(ref_energy, unit="kJ")
    print(f"  mean: {ref.energy_stats.format('kJ')}   "
          "(paper: 128.89 +/- 1.52 kJ, range 127.29 - 131.36)")
    saving = ref.energy_stats.mean / accel.energy_stats.mean
    print(f"  energy saving: {saving:.2f}x   (paper: 1.80x)\n")

    print("--- peak power during execution ---")
    print(f"  accelerated: {accel.peak_power_stats.max:.0f} W "
          "(paper: ~260 W)")
    print(f"  reference:   {ref.peak_power_stats.max:.0f} W "
          "(paper: ~210 W)")


if __name__ == "__main__":
    main()

"""E7 / Section 4 campaign robustness: reset failures and run variability.

Paper: "Although 50 accelerated simulations were submitted using a single
Wormhole card, only 26 completed successfully; the remaining 24 failed to
start due to errors occurring during the device reset phase."  The fault
injector reproduces that statistic; this bench verifies it, along with the
paper's observation that CPU runs are noisier than device runs, and that
RAPL's two access methods agree once overflow is corrected.
"""

import numpy as np
import pytest

from repro.bench import ExperimentReport, PaperValue
from repro.telemetry import Campaign, CampaignSummary, JobSpec
from repro.telemetry.rapl import Rapl, unwrap_register_series


def test_reset_failure_statistic(benchmark, paper_campaign):
    accel = paper_campaign["accel"]

    completed = benchmark(lambda: accel.completed)
    report = ExperimentReport("E7", "campaign robustness")
    report.add("accelerated jobs submitted", "50", accel.submitted)
    report.add("completed", PaperValue(26.0), float(completed))
    report.add("failed in reset", PaperValue(24.0),
               float(accel.submitted - completed))
    report.print()

    assert accel.submitted == 50
    # binomial(50, 0.48): 26 +/- ~7 at 2 sigma
    assert 17 <= completed <= 33


def test_failure_rate_statistics_across_campaigns(benchmark):
    """Over many seeds the completion fraction converges to 26/50."""

    def fractions():
        out = []
        for seed in range(30):
            fm_campaign = Campaign(
                seed=seed, sleep_s=1.0, reset_failure_rate=24 / 50
            )
            results = fm_campaign.run_many(
                JobSpec.paper_accelerated(n_particles=2048, n_cycles=1), 20
            )
            out.append(sum(r.completed for r in results) / 20)
        return np.mean(out)

    mean_fraction = benchmark.pedantic(fractions, rounds=1, iterations=1)
    assert mean_fraction == pytest.approx(26 / 50, abs=0.06)


def test_variability_asymmetry(benchmark, paper_campaign):
    """Device runs: ~0.08% relative std; CPU runs: ~1.16% (paper)."""
    accel = paper_campaign["accel"]
    ref = paper_campaign["ref"]

    rels = benchmark(lambda: (
        accel.time_stats.std / accel.time_stats.mean,
        ref.time_stats.std / ref.time_stats.mean,
    ))
    report = ExperimentReport("E7b", "run-to-run variability")
    report.add("device rel std", PaperValue(0.0008), rels[0])
    report.add("cpu rel std", PaperValue(0.0116), rels[1])
    report.print()
    assert rels[0] == pytest.approx(0.0008, abs=0.0008)
    assert rels[1] == pytest.approx(0.0116, abs=0.006)


def test_rapl_methods_agree_modulo_overflow(benchmark):
    """The paper cross-checked register reads against perf and found them
    'equivalent ... except in cases where register overflows occur'."""

    def run():
        rapl = Rapl()
        registers = [rapl.read_register("package-0")]
        rng = np.random.default_rng(3)
        # a long reference job: ~700 s at ~190 W total => wraps the 32-bit
        # counter (65.5 kJ per domain) once per package
        for _ in range(700):
            rapl.accumulate(float(rng.normal(190.0, 5.0)), 1.0)
            registers.append(rapl.read_register("package-0"))
        return rapl, registers

    rapl, registers = benchmark.pedantic(run, rounds=1, iterations=1)
    perf = rapl.read_perf("package-0")
    naive = (registers[-1] - registers[0]) * 2.0**-16
    corrected = unwrap_register_series(registers)
    report = ExperimentReport("E7c", "RAPL access-method cross-check")
    report.add("perf joules", PaperValue(perf, unit="J"), perf, "J")
    report.add("register (naive)", "wrong when wrapped", naive, "J")
    report.add("register (overflow-corrected)", PaperValue(perf, unit="J"),
               corrected, "J")
    report.print()
    assert corrected == pytest.approx(perf, abs=0.01)
    assert naive < 0.9 * perf  # the overflow really bit

"""E12 (hardware ablation): Wormhole n300 vs the previous-gen Grayskull.

The paper's related work ([4] Brown & Barton) accelerated stencils on
Grayskull; this bench asks what the N-body port would have seen there:
more Tensix cores (120 vs 64) at a higher clock (1.2 vs 1.0 GHz) but
LPDDR4 instead of GDDR6 and *no chip-to-chip Ethernet*, so no multi-card
path at all.  It also places the kernel on both rooflines: the kernel is
so compute-bound (~10^3 flop/byte) that Grayskull's weaker memory system
does not matter — its extra cores win on raw eval time — but the missing
Ethernet caps it at one card, and the paper's scalability plans (E8)
require Wormhole.
"""

import pytest

from repro.bench import ExperimentReport
from repro.bench.roofline import characterise_force_kernel
from repro.config import PAPER_N_PARTICLES
from repro.errors import ConfigurationError
from repro.nbody_tt import DeviceTimeModel
from repro.wormhole.params import GRAYSKULL_E150, WORMHOLE_N300


def test_generation_comparison(benchmark):
    def compare():
        wh = DeviceTimeModel(n_cores=64, chip=WORMHOLE_N300)
        gs = DeviceTimeModel(n_cores=120, chip=GRAYSKULL_E150)
        return {
            "wormhole_eval": wh.eval_seconds(PAPER_N_PARTICLES),
            "grayskull_eval": gs.eval_seconds(PAPER_N_PARTICLES),
        }

    times = benchmark(compare)
    report = ExperimentReport("E12", "Wormhole n300 vs Grayskull e150")
    report.add("Wormhole force eval", "-", times["wormhole_eval"], "s")
    report.add("Grayskull force eval", "-", times["grayskull_eval"], "s")
    report.add("chip-to-chip links", "Wormhole only",
               "Grayskull has none (no E8 scaling path)")
    report.print()

    # 120 cores @ 1.2 GHz vs 64 @ 1.0 GHz on a compute-bound kernel:
    # Grayskull's worst core holds ceil(100/120) = 1 tile vs Wormhole's 2,
    # so per-eval it is ~2.4x faster despite the weaker memory system...
    assert times["grayskull_eval"] < times["wormhole_eval"]

    # ...but it cannot form a fabric at all:
    with pytest.raises(ConfigurationError, match="no chip-to-chip"):
        DeviceTimeModel(n_cores=120, n_devices=2, chip=GRAYSKULL_E150
                        ).eval_seconds(PAPER_N_PARTICLES)
    # whereas Wormhole scales to 2 cards (E8)
    wh2 = DeviceTimeModel(n_cores=64, n_devices=2).eval_seconds(
        PAPER_N_PARTICLES
    )
    assert wh2 < times["wormhole_eval"]


def test_roofline_positions(benchmark):
    def rooflines():
        return {
            "wormhole": characterise_force_kernel(WORMHOLE_N300),
            "grayskull": characterise_force_kernel(
                GRAYSKULL_E150, n_cores=120
            ),
        }

    lines = benchmark(rooflines)
    report = ExperimentReport("E12b", "force-kernel roofline positions")
    for name, rl in lines.items():
        report.add(f"{name} ridge", "-", rl.ridge_flops_per_byte,
                   "flop/B")
        report.add(f"{name} kernel intensity", "compute-bound",
                   rl.kernel_intensity, "flop/B")
        report.add(f"{name} verdict", "-", rl.summary())
    report.print()

    for rl in lines.values():
        assert rl.compute_bound
        assert rl.kernel_intensity > 100 * rl.ridge_flops_per_byte
        # compute-bound: attainable equals the compute ceiling
        assert rl.attainable_flops == pytest.approx(rl.peak_compute_flops)

    # Grayskull's weaker memory narrows its margin but not the verdict
    assert (lines["grayskull"].ridge_flops_per_byte
            > lines["wormhole"].ridge_flops_per_byte * 0.5)

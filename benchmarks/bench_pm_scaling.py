"""Modelled scaling of the particle-mesh far field vs direct summation.

The direct-summation offload pays O(N^2) device compute per evaluation;
``tt-pm`` replaces the far field with an O(M^3 log M) FFT solve plus an
O(N) host CIC transfer, so beyond a crossover N the mesh wins by orders
of magnitude.  This bench runs *functional* ``tt-pm`` evaluations up to
N = 2^20 (> 10^6 particles, a completed step each) and compares their
steady per-evaluation modelled seconds against the direct-summation
extrapolation from :class:`~repro.nbody_tt.offload.DeviceTimeModel` at
the same core count.  Both sides are *eval-level* numbers — the force
evaluation's ``ForceEvaluation.model_seconds`` with one-time program
builds excluded, and ``eval_seconds + pcie_seconds`` for the direct
model — excluding the integrator's per-cycle host work, which is
identical for both backends and would only dilute the comparison.

Accuracy is gated where direct summation is still computable: the RMS
force error of ``cpu-pm`` (bit-identical to ``tt-pm``) against the
float64 direct sum at N = 32768 must be <= 1%.  Script mode records
``BENCH_pm.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_pm_scaling.py

Pytest collection re-checks the committed JSON's gates and re-runs the
accuracy gate small, mirroring the ``BENCH_shards.json`` arrangement.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.backends import make_backend
from repro.bench import ExperimentReport
from repro.core import accel_jerk_reference, uniform_sphere
from repro.metalium import CloseDevice
from repro.nbody_tt import DeviceTimeModel

N_SCALE = (131_072, 1_048_576)
N_GATE = 1_048_576
N_ACCURACY = 32_768
MESH = 128
N_CORES = 64
GATE_SPEEDUP = 10.0
ACCURACY_GATE = 0.01  # RMS force error vs the float64 direct sum

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_pm.json"


def rms_relative_error(acc, acc_ref) -> float:
    num = np.mean(np.sum((acc - acc_ref) ** 2, axis=1))
    den = np.mean(np.sum(acc_ref**2, axis=1))
    return float(np.sqrt(num / den))


def direct_eval_seconds(n: int) -> float:
    """Eval-level direct-summation extrapolation at the same core count."""
    model = DeviceTimeModel(n_cores=N_CORES)
    return model.eval_seconds(n) + model.pcie_seconds(n)


def measure_accuracy(n: int = N_ACCURACY) -> float:
    """RMS far-field force error vs direct summation (cutoff on)."""
    system = uniform_sphere(n, seed=42)
    backend = make_backend("cpu-pm", mesh=MESH, cutoff=5.0)
    ev = backend.compute(system.pos, system.vel, system.mass)
    acc_ref, _ = accel_jerk_reference(system.pos, system.vel, system.mass)
    return rms_relative_error(ev.acc, acc_ref)


def measure_scaling(sizes=N_SCALE):
    """Steady modelled seconds of a functional tt-pm eval per size.

    ``cutoff=0`` is the collisionless far-field configuration: at these N
    the near-field pair list would dominate the host wall clock while
    contributing little modelled time, and the far field is the term the
    FFT kernel set prices.  Two evaluations per size; the second is the
    steady one (program builds and the Green's-function transform cached).
    """
    rows = {}
    for n in sizes:
        system = uniform_sphere(n, seed=7)
        backend = make_backend("tt-pm", mesh=MESH, cutoff=0.0, cores=N_CORES)
        try:
            backend.compute(system.pos, system.vel, system.mass)
            ev = backend.compute(system.pos, system.vel, system.mass)
        finally:
            CloseDevice(backend.devices[0])
        direct_s = direct_eval_seconds(n)
        rows[n] = {
            "pm_eval_model_s": round(ev.model_seconds, 4),
            "direct_eval_model_s": round(direct_s, 4),
            "speedup": round(direct_s / ev.model_seconds, 2),
        }
    return rows


def report(rows, accuracy: float) -> ExperimentReport:
    rep = ExperimentReport("PM", "particle-mesh far-field scaling")
    rep.add(
        f"N={N_ACCURACY} accuracy (mesh={MESH}, cutoff=5)",
        f"RMS force error <= {ACCURACY_GATE:.0%} vs direct sum",
        f"{accuracy:.2%}",
    )
    for n, row in rows.items():
        rep.add(
            f"N={n} tt-pm eval (mesh={MESH}, cutoff=0, {N_CORES} cores)",
            f"direct extrapolation {row['direct_eval_model_s']:.1f}s",
            f"{row['pm_eval_model_s']:.1f}s modelled "
            f"({row['speedup']:.0f}x)",
        )
    rep.note("eval-level modelled seconds: ForceEvaluation.model_seconds "
             "of the steady (second) evaluation vs DeviceTimeModel "
             "eval_seconds + pcie_seconds; per-cycle integrator host work "
             "excluded on both sides")
    return rep


def test_committed_gate_passed():
    """The committed BENCH_pm.json must carry passing gates."""
    payload = json.loads(BENCH_JSON.read_text())
    gate = payload["gate"]
    assert gate["n"] == N_GATE
    assert gate["n"] >= 1_000_000
    assert gate["required_speedup"] == GATE_SPEEDUP
    assert gate["measured_speedup"] >= GATE_SPEEDUP
    assert gate["passed"] is True
    acc = payload["accuracy"]
    assert acc["n"] == N_ACCURACY
    assert acc["rms_force_error"] <= ACCURACY_GATE
    assert acc["passed"] is True


def test_accuracy_gate_live_small():
    """Re-run the accuracy gate at a CI-friendly size."""
    assert measure_accuracy(n=4096) <= ACCURACY_GATE


def test_speedup_model_crosses_ten_x_by_n_gate():
    """The analytic eval-level ratio passes the gate at N_GATE."""
    from repro.nbody_pm import PMDeviceModel

    pm = PMDeviceModel(mesh=MESH, n_cores=N_CORES)
    ratio = direct_eval_seconds(N_GATE) / pm.eval_seconds(N_GATE)
    assert ratio >= GATE_SPEEDUP


def main() -> None:
    accuracy = measure_accuracy()
    rows = measure_scaling()
    report(rows, accuracy).print()
    gate_row = rows[N_GATE]
    payload = {
        "benchmark": "bench_pm_scaling",
        "config": {
            "mesh": MESH,
            "n_cores": N_CORES,
            "cutoff_scaling": 0.0,
            "cutoff_accuracy": 5.0,
            "ic": "uniform_sphere",
            "note": "eval-level modelled seconds: steady (second) "
                    "functional tt-pm ForceEvaluation.model_seconds vs "
                    "DeviceTimeModel.eval_seconds + pcie_seconds at the "
                    "same core count; one-time program builds and the "
                    "per-cycle integrator host work excluded on both "
                    "sides; accuracy row is cpu-pm (bit-identical to "
                    "tt-pm) vs the float64 direct sum",
        },
        "accuracy": {
            "n": N_ACCURACY,
            "mesh": MESH,
            "cutoff": 5.0,
            "rms_force_error": round(accuracy, 6),
            "gate": ACCURACY_GATE,
            "passed": accuracy <= ACCURACY_GATE,
        },
        "scaling": {str(n): row for n, row in rows.items()},
        "gate": {
            "n": N_GATE,
            "required_speedup": GATE_SPEEDUP,
            "measured_speedup": gate_row["speedup"],
            "passed": gate_row["speedup"] >= GATE_SPEEDUP,
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")


if __name__ == "__main__":
    main()

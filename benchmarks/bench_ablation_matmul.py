"""E9 (design ablation): SFPU broadcast pipeline vs FPU Gram-matmul path.

The paper computes forces with element-wise SFPU ops.  The tempting
alternative on an AI accelerator — pairwise r^2 via a Gram matmul on the
tensor FPU — loses on all three axes this bench measures:

1. **speed**: the Gram product only replaces the r^2 assembly; the force
   direction and jerk still need all six difference components
   element-wise, and the 1024-tile pair matrix must spill through L1
   (dst holds 8 FP32 tiles), so the variant is ~25% *slower* despite
   adding FPU throughput;
2. **efficiency**: the matmul's inner dimension is 3 (x, y, z) against a
   32-wide datapath — under 10% of the multiply array does useful work;
3. **accuracy**: |x_i|^2 + |x_j|^2 - 2 x_i.x_j cancels catastrophically
   for close pairs, and close pairs carry the largest forces — the error
   lands exactly where the validation gate is tightest.
"""

import numpy as np
import pytest

from repro.bench import ExperimentReport, PaperValue
from repro.core.validation import ACC_TOLERANCE
from repro.nbody_tt.matmul_variant import MatmulVariantModel, gram_r2_block
from repro.wormhole.counters import CycleCounter
from repro.wormhole.fpu import Fpu


def test_matmul_variant_is_slower(benchmark):
    model = MatmulVariantModel()
    slowdown = benchmark(model.slowdown_vs_broadcast)

    report = ExperimentReport("E9", "SFPU broadcast vs FPU Gram-matmul")
    report.add("matmul-path slowdown", "> 1 (paper's choice wins)",
               slowdown, "x")
    report.add("FPU multiply-array utilisation", "3 / 32 lanes",
               model.fpu_utilisation())
    report.add("FPU share of variant cycles", "-",
               model.fpu_cycles_per_tile_pair()
               / model.total_cycles_per_tile_pair())
    report.print()

    assert slowdown > 1.1
    assert model.fpu_utilisation() < 0.1


def test_gram_r2_functional_and_its_cancellation(benchmark):
    """The Gram formulation really runs on the simulated FPU, and its
    close-pair cancellation error approaches the validation gate."""
    rng = np.random.default_rng(1)
    pos_i = rng.normal(size=(1024, 3))
    pos_j = pos_i + rng.normal(scale=1e-3, size=(1024, 3))  # close pairs

    def run():
        counter = CycleCounter()
        r2 = gram_r2_block(pos_i, pos_j, Fpu(counter))
        return r2, counter

    r2, counter = benchmark.pedantic(run, rounds=1, iterations=1)
    assert counter.ops["fpu.matmul"] == 1024  # 32x32 output tiles

    exact = ((pos_j[None, :, :] - pos_i[:, None, :]) ** 2).sum(axis=2)
    # compare on the close diagonal pairs, where forces are largest
    diag = np.arange(1024)
    rel = np.abs(r2[diag, diag] - exact[diag, diag]) / np.maximum(
        exact[diag, diag], 1e-30
    )
    report = ExperimentReport("E9b", "Gram r^2 cancellation on close pairs")
    report.add("max rel error (close pairs)",
               PaperValue(ACC_TOLERANCE, unit="(gate scale)"),
               float(rel.max()))
    report.print()
    # the difference-based pipeline computes these to ~1e-7; the Gram path
    # is orders of magnitude worse, threatening the 0.05% acceleration gate
    assert rel.max() > 1e-2


def test_gram_r2_accurate_for_well_separated_pairs(benchmark):
    """Fairness check: for generic separations the Gram path is fine —
    the disqualifier is specifically the close-pair regime."""
    rng = np.random.default_rng(2)
    pos_i = rng.uniform(-1, 1, size=(1024, 3))
    pos_j = rng.uniform(5, 7, size=(1024, 3))

    r2 = benchmark.pedantic(
        lambda: gram_r2_block(pos_i, pos_j), rounds=1, iterations=1
    )
    exact = ((pos_j[None, :, :] - pos_i[:, None, :]) ** 2).sum(axis=2)
    rel = np.abs(r2 - exact) / exact
    assert rel.max() < 1e-4

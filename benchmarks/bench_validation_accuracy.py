"""E4 / Section 3 accuracy gate: device forces vs the golden reference.

Paper: "each acceleration and jerk component within 0.05% and 0.2% of a
typical force magnitude, respectively, relative to the double-precision
result".  This bench runs the *functional* device pipeline (real FP32 tile
math through the read/compute/write kernels) across a sweep of N and
checks the gate at every size.

Default sizes keep the functional simulation fast; set
``REPRO_PAPER_SCALE=1`` to add a (slow) larger configuration.
"""

import pytest

from repro import paper_scale_enabled, plummer, validate_forces
from repro.backends import make_backend
from repro.bench import ExperimentReport, PaperValue
from repro.core.validation import ACC_TOLERANCE, JERK_TOLERANCE

SIZES = [1024, 2048, 4096]
if paper_scale_enabled():
    SIZES.append(16_384)


def run_validation(n):
    system = plummer(n, seed=100 + n)
    backend = make_backend("tt", cores=8)
    evaluation = backend.compute(system.pos, system.vel, system.mass)
    return validate_forces(
        system.pos, system.vel, system.mass,
        evaluation.acc, evaluation.jerk,
    )


@pytest.mark.parametrize("n", SIZES)
def test_accuracy_gate(benchmark, n):
    report_obj = benchmark.pedantic(run_validation, args=(n,),
                                    rounds=1, iterations=1)
    report = ExperimentReport("E4", f"accuracy vs golden reference, N={n}")
    report.add("acc max error", PaperValue(ACC_TOLERANCE, unit="(gate)"),
               report_obj.max_acc_error)
    report.add("jerk max error", PaperValue(JERK_TOLERANCE, unit="(gate)"),
               report_obj.max_jerk_error)
    report.add("verdict", "within tolerance",
               "PASS" if report_obj.passed else "FAIL")
    report.print()
    assert report_obj.passed, report_obj.summary()


def test_error_grows_slowly_with_n(benchmark):
    """FP32 accumulation error grows ~sqrt(N): the gate holds with margin
    at paper scale.  Verified on the sweep, projected with the sqrt law."""
    import math

    reports = benchmark.pedantic(
        lambda: [run_validation(n) for n in (1024, 4096)],
        rounds=1, iterations=1,
    )
    r1, r4 = reports
    growth = r4.max_acc_error / r1.max_acc_error
    assert growth < 4.0  # well below linear
    # sqrt-law projection to the paper's N = 102400
    projected = r4.max_acc_error * math.sqrt(102_400 / 4096)
    print(f"\nprojected acc error at N=102400: {projected:.2e} "
          f"(gate {ACC_TOLERANCE:.1e})")
    assert projected < ACC_TOLERANCE

"""Shared fixtures for the benchmark harness.

Every benchmark prints a paper-vs-measured report through
``repro.bench.ExperimentReport`` and asserts the paper's *shape* claims
(who wins, by what factor, where the bands lie).  Campaign-level benches
(E1-E3, E7, E8) always run the full paper-scale workload — the analytic
cost models make that cheap.  Functional benches (E4-E6) default to a
scaled-down N and honour ``REPRO_PAPER_SCALE=1`` for the full
configuration.
"""

import pytest


@pytest.fixture(scope="session")
def paper_campaign():
    """One shared paper-scale campaign run: 50 accel + 49 ref jobs."""
    from repro.telemetry import Campaign, CampaignSummary, JobSpec

    campaign = Campaign(seed=2025, reset_failure_rate=24 / 50)
    accel_results = campaign.run_many(JobSpec.paper_accelerated(), 50)
    ref_results = campaign.run_many(JobSpec.paper_reference(), 49)
    return {
        "accel_results": accel_results,
        "ref_results": ref_results,
        "accel": CampaignSummary.from_results(accel_results),
        "ref": CampaignSummary.from_results(ref_results),
    }

"""E8c: energy-to-solution of multi-card jobs (the future-work extension).

Strong-scaling the paper's workload across cards changes both sides of
the energy product: more active cards draw more power, but the job
finishes sooner.  At N = 102 400 the device time saturates at 2 cards
(tile granularity, see E8a), so:

* 1 -> 2 cards: energy *drops* — halved runtime beats one extra ~30 W
  card (the ~155 W host draw dominates the integral);
* 2 -> 4 cards: energy *rises* — no further speedup, but two more cards
  move from <20 W powered-idle to the 26-33 W active band.

A deployment-relevant conclusion the paper's future work will encounter.
"""

import pytest

from repro.bench import ExperimentReport
from repro.telemetry import Campaign, CampaignSummary, JobSpec

DEVICES = [1, 2, 4]


@pytest.fixture(scope="module")
def sweep():
    campaign = Campaign(seed=88)
    out = {}
    for n_devices in DEVICES:
        spec = JobSpec.paper_accelerated(n_devices=n_devices)
        out[n_devices] = CampaignSummary.from_results(
            campaign.run_many(spec, 5)
        )
    return out


def test_multidevice_time(benchmark, sweep):
    times = benchmark(lambda: {d: sweep[d].time_stats.mean for d in DEVICES})
    report = ExperimentReport("E8c-time", "multi-card time-to-solution")
    for d in DEVICES:
        report.add(f"{d} card(s)", "saturates at 2 (tile granularity)",
                   times[d], "s")
    report.print()
    assert times[2] < times[1]
    # device phase saturates; only its share of the job shrinks further
    assert times[4] == pytest.approx(times[2], rel=0.01)


def test_multidevice_energy(benchmark, sweep):
    energies = benchmark(
        lambda: {d: sweep[d].energy_stats.mean for d in DEVICES}
    )
    report = ExperimentReport("E8c-energy", "multi-card energy-to-solution")
    for d in DEVICES:
        report.add(f"{d} card(s)", "minimum at 2", energies[d], "kJ")
    report.note("1->2 cards: halved device time beats one more active card;"
                " 2->4: no speedup, two more cards in the active band")
    report.print()
    assert energies[2] < energies[1]
    assert energies[4] > energies[2]


def test_active_cards_all_in_band(benchmark):
    """With 2 devices the trace shows two cards in the 26-33 W band."""
    campaign = Campaign(seed=89)
    job = campaign.run_job(JobSpec.paper_accelerated(n_devices=2))

    def extract():
        guard = job.sim_start + 6.0
        rows = [r for r in job.rows if guard <= r.timestamp < job.sim_end]
        per_card_max = [
            max(r.card_w[i] for r in rows) for i in range(4)
        ]
        return per_card_max

    per_card_max = benchmark(extract)
    # placement starts at the requested card (3) and wraps mod n_cards
    assert per_card_max[3] > 25.0 and per_card_max[0] > 25.0
    assert per_card_max[1] < 20.0 and per_card_max[2] < 20.0

"""E6 / Section 3 mixed precision: why FP32 on the device is the choice.

The paper adopts "a mixed-precision approach ... acceleration, jerk, and
other intermediate values within the force calculation are computed in
single precision, while all remaining calculations are performed in double
precision" because the Wormhole "supports up to FP32".  This ablation
quantifies the alternatives the hardware offers:

* FP32 (the paper's choice): passes both gates with ~10x margin;
* BFLOAT16: fails the acceleration gate by an order of magnitude — the
  16-bit format that doubles dst capacity is not usable for this kernel;
* FLOAT16: between the two, still outside the gate;
* the fast (seed + one Newton step) rsqrt variant under FP32: accuracy
  cost of trading the accurate transcendental for the quick one.
"""

import numpy as np
import pytest

from repro import plummer
from repro.backends import make_backend
from repro.bench import ExperimentReport, PaperValue
from repro.core.forces import accel_jerk_reference
from repro.core.validation import ACC_TOLERANCE, JERK_TOLERANCE, compare_to_reference
from repro.wormhole import DataFormat, dst_tile_capacity

N = 2048


@pytest.fixture(scope="module")
def workload():
    s = plummer(N, seed=6)
    acc_ref, jerk_ref = accel_jerk_reference(s.pos, s.vel, s.mass)
    return s, acc_ref, jerk_ref


def run_format(fmt, workload):
    s, acc_ref, jerk_ref = workload
    backend = make_backend("tt", cores=8, fmt=fmt)
    ev = backend.compute(s.pos, s.vel, s.mass)
    return compare_to_reference(ev.acc, ev.jerk, acc_ref, jerk_ref)


def test_precision_ablation(benchmark, workload):
    formats = [DataFormat.FLOAT32, DataFormat.BFLOAT16, DataFormat.FLOAT16]
    reports = benchmark.pedantic(
        lambda: {fmt: run_format(fmt, workload) for fmt in formats},
        rounds=1, iterations=1,
    )

    table = ExperimentReport("E6", f"device format ablation, N={N}")
    for fmt, rep in reports.items():
        table.add(
            f"{fmt.value} acc err",
            PaperValue(ACC_TOLERANCE, unit="(gate)"),
            rep.max_acc_error,
        )
        table.add(
            f"{fmt.value} verdict",
            "FP32 passes" if fmt is DataFormat.FLOAT32 else "-",
            "PASS" if rep.passed else "FAIL",
        )
        table.add(
            f"{fmt.value} dst capacity",
            "16 tiles (BFP16) / 8 (FP32)",
            dst_tile_capacity(fmt),
        )
    table.note("the paper's FP32 choice is the only format inside the gates;"
               " the 16-bit formats' doubled dst capacity cannot buy back "
               "their precision loss")
    table.note("FLOAT16 additionally overflows: close-pair 1/r^3 factors "
               "exceed its 5-bit exponent range and poison the sums (nan)")
    table.print()

    fp32 = reports[DataFormat.FLOAT32]
    bf16 = reports[DataFormat.BFLOAT16]
    fp16 = reports[DataFormat.FLOAT16]
    assert fp32.passed
    assert fp32.max_acc_error < ACC_TOLERANCE / 5  # comfortable margin
    assert not bf16.acc_passed
    assert bf16.max_acc_error > 20 * fp32.max_acc_error
    # FLOAT16 is disqualified by *range*, not precision: rinv^3 of close
    # pairs overflows the 5-bit exponent, poisoning the accumulators.
    assert not fp16.acc_passed
    assert (not np.isfinite(fp16.max_acc_error)
            or fp16.max_acc_error > ACC_TOLERANCE)


def test_fast_rsqrt_tradeoff(benchmark, workload):
    """The SFPU's fast rsqrt (LUT seed + one NR step) vs the accurate one:
    ~1e-3 relative error on the force factor — outside the 0.05% gate, so
    the port must use the accurate variant."""
    from repro.wormhole import Sfpu, Tile

    s, _, _ = workload
    sfpu = Sfpu()
    r2 = np.abs(np.random.default_rng(0).normal(1.0, 0.5, 1024)) + 0.01
    tile = Tile(r2)

    def measure():
        accurate = sfpu.rsqrt(tile).data
        fast = sfpu.rsqrt(tile, fast=True).data
        return np.abs(fast - accurate) / accurate

    rel = benchmark(measure)
    report = ExperimentReport("E6b", "rsqrt accuracy/speed trade-off")
    report.add("fast rsqrt max rel err", PaperValue(ACC_TOLERANCE, unit="(gate)"),
               float(rel.max()))
    report.add("weighted cycle cost", "rsqrt = 2x a basic op",
               "identical for both variants in this model")
    report.print()
    assert rel.max() > ACC_TOLERANCE  # fast variant alone busts the budget
    assert rel.max() < 2e-2

"""E13 (precision ablation): double-single arithmetic on the SFPU.

The counterfactual behind the paper's mixed-precision choice: had FP32
missed the validation gates, the classic remedy (from GPU N-body codes)
is double-single arithmetic — float32 pairs with error-free transforms,
~48 mantissa bits on FP32 hardware.  This bench measures the full trade:

* accuracy: the DS force/jerk chain tracks the float64 golden reference
  to ~1e-13 of the typical magnitude — float64-grade, >8 orders inside
  the gates;
* cost: ~11 FP32 SFPU ops per plain-FP32 op; the projected paper-scale
  DS force evaluation takes ~176 s versus FP32's 16 s — slower than the
  32-thread CPU reference's 60.5 s, i.e. DS would have *flipped the
  paper's headline result*.

Conclusion: plain FP32 passing the 0.05%/0.2% gates is what makes the
Wormhole port worthwhile; accuracy insurance via DS costs more than the
accelerator delivers.
"""

import numpy as np
import pytest

from repro.bench import ExperimentReport, PaperValue
from repro.core import accel_jerk_reference, plummer
from repro.core.validation import ACC_TOLERANCE, JERK_TOLERANCE, compare_to_reference
from repro.cpuref import OpenMPModel
from repro.nbody_tt.ds_variant import DSCostModel, ds_accel_jerk
from repro.nbody_tt.offload import DeviceTimeModel


@pytest.fixture(scope="module")
def ds_run():
    s = plummer(512, seed=13)
    acc, jerk = ds_accel_jerk(s.pos, s.vel, s.mass)
    acc64, jerk64 = accel_jerk_reference(s.pos, s.vel, s.mass)
    return s, acc, jerk, acc64, jerk64


def test_ds_accuracy_is_float64_grade(benchmark, ds_run):
    s, acc, jerk, acc64, jerk64 = ds_run
    report_obj = benchmark(
        lambda: compare_to_reference(acc, jerk, acc64, jerk64)
    )
    table = ExperimentReport("E13a", "double-single force accuracy, N=512")
    table.add("acc err", PaperValue(ACC_TOLERANCE, unit="(gate)"),
              report_obj.max_acc_error)
    table.add("jerk err", PaperValue(JERK_TOLERANCE, unit="(gate)"),
              report_obj.max_jerk_error)
    table.note("plain FP32 sits at ~3e-5; DS reaches float64 territory")
    table.print()
    assert report_obj.passed
    assert report_obj.max_acc_error < 1e-10
    assert report_obj.max_jerk_error < 1e-10


def test_ds_cost_flips_the_headline_result(benchmark):
    model = DSCostModel()

    def project():
        return {
            "slowdown": model.slowdown_vs_fp32(),
            "ds_eval": model.device_eval_seconds(102_400),
            "fp32_eval": DeviceTimeModel(n_cores=64).compute_seconds(102_400),
            "cpu_eval": OpenMPModel(32).force_eval_seconds(102_400),
        }

    t = benchmark(project)
    table = ExperimentReport("E13b", "double-single cost projection")
    table.add("DS op multiplier", "~11x", t["slowdown"], "x")
    table.add("FP32 device eval", "-", t["fp32_eval"], "s")
    table.add("DS device eval", "-", t["ds_eval"], "s")
    table.add("CPU (32T) eval", "-", t["cpu_eval"], "s")
    table.note("a DS port would be slower than the CPU reference: the "
               "paper's 2.23x win depends on FP32 being accurate enough")
    table.print()

    assert 8.0 < t["slowdown"] < 14.0
    assert t["ds_eval"] > t["cpu_eval"] > t["fp32_eval"]


def test_ds_dst_pressure(benchmark):
    """DS doubles every register: the six accumulators become twelve
    FP32 tiles, overflowing the 8-tile dst — DS would *force* CB staging
    for the accumulators too, worsening the slowdown beyond E13b's
    op-count estimate."""
    from repro.wormhole.dtypes import DataFormat, dst_tile_capacity

    capacity = benchmark(lambda: dst_tile_capacity(DataFormat.FLOAT32))
    ds_accumulator_tiles = 6 * 2
    assert ds_accumulator_tiles > capacity


def test_ds_seed_masking_correct(benchmark):
    """Self-interaction masking survives the DS rsqrt path (no NaN/inf
    contamination of real lanes)."""
    s = plummer(256, seed=14)
    acc, jerk = benchmark.pedantic(
        lambda: ds_accel_jerk(s.pos, s.vel, s.mass), rounds=1, iterations=1
    )
    assert np.all(np.isfinite(acc)) and np.all(np.isfinite(jerk))

"""Block timesteps vs shared-step Hermite on the accelerator backend.

The production claim behind ROADMAP item 4: on a clustered system with a
hard central binary, individual block timesteps deliver an order of
magnitude fewer pairwise force evaluations *per unit of physical time*
than the paper's shared-step scheme, at matched energy error — because
only the binary members step at the deep levels while the field stars
stay shallow.  Both schemes run through the integrator registry on the
``tt`` backend, so the block scheme's subset evaluations exercise
``compute_on_targets`` i-tile dispatch end to end.

Script mode measures the gate configuration (``cluster_with_binary`` at
N = 8192) and records it in ``BENCH_integrators.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_block_hermite.py

Pytest collection re-checks the committed JSON and re-runs the gate live
at a scaled-down N, mirroring the ``BENCH_shards.json`` arrangement.
"""

import json
from dataclasses import replace
from pathlib import Path

from repro.backends import BackendSpec, RunSpec
from repro.bench import ExperimentReport
from repro.core import energy_report

N_GATE = 8192
T_END_GATE = 0.002           # physical window at the gate size
N_SMOKE = 512
T_END_SMOKE = 0.02           # longer window: small N, cheap cycles
ETA = 0.01                   # same accuracy parameter for both schemes
DT_MAX = 0.0625
SEED = 9
N_CORES = 8

#: gate: block-Hermite must do >= 5x fewer pair evaluations per unit
#: physical time than shared-step Hermite ...
GATE_PAIR_RATIO = 5.0
#: ... at matched energy error: within this factor of the shared drift
#: (floored, so two schemes both at the conservation floor compare equal).
MATCH_FACTOR = 25.0
DRIFT_FLOOR = 1e-9

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_integrators.json"


def _base_spec(n: int, dt: float) -> RunSpec:
    return RunSpec(
        n=n, dt=dt, seed=SEED,
        backend=BackendSpec("tt", {"cores": N_CORES}),
        scenario="cluster_with_binary",
    )


def measure(n: int = N_GATE, t_end: float = T_END_GATE) -> dict:
    """Pairwise-evaluation rate and energy drift for both schemes.

    Returns per-scheme ``pairs`` / ``t`` / ``drift`` plus the derived
    ``pair_ratio`` (shared rate over block rate) and ``drift_matched``.
    """
    # -- shared-step (adaptive) Hermite: everyone at the binary's pace --
    shared_spec = replace(
        _base_spec(n, t_end).with_integrator(
            "hermite", eta=ETA, eta_start=ETA / 2
        ),
        adaptive=True,
    )
    sim = shared_spec.make_simulation()
    system = sim.system
    initial = energy_report(system)
    cycles = 0
    while system.time < t_end:
        sim.run(1)
        cycles += 1
    shared = {
        "cycles": cycles,
        "pairs": (cycles + 1) * n * n,
        "t": float(system.time),
        "drift": float(energy_report(system).drift_from(initial)),
    }

    # -- block-Hermite: subset force evaluations per active block --------
    block_spec = _base_spec(n, t_end).with_integrator(
        "block-hermite", eta=ETA, dt_max=DT_MAX
    )
    sim = block_spec.make_simulation()
    system = sim.system
    initial = energy_report(system)
    sim.run(1)                       # one chunk = t_end of physical time
    stats = sim.stats
    block = {
        "block_steps": int(stats.block_steps),
        "particle_updates": int(stats.particle_updates),
        "pairs": int(stats.force_pair_evaluations),
        "t": float(system.time),
        "drift": float(energy_report(system).drift_from(initial)),
    }

    pair_ratio = (shared["pairs"] / shared["t"]) / (
        block["pairs"] / block["t"]
    )
    drift_matched = bool(
        block["drift"] <= MATCH_FACTOR * max(shared["drift"], DRIFT_FLOOR)
    )
    return {
        "n": n,
        "t_end": t_end,
        "shared": shared,
        "block": block,
        "pair_ratio": round(pair_ratio, 2),
        "drift_matched": drift_matched,
    }


def report(results: dict) -> ExperimentReport:
    rep = ExperimentReport(
        "INTEGRATORS", "block vs shared Hermite on the tt backend"
    )
    shared, block = results["shared"], results["block"]
    rep.add(
        f"N={results['n']} shared-step pair rate",
        "the paper's scheme",
        f"{shared['pairs'] / shared['t']:.3e} pairs per time unit "
        f"(|dE/E| = {shared['drift']:.1e})",
    )
    rep.add(
        f"N={results['n']} block-timestep pair rate",
        f">= {GATE_PAIR_RATIO}x fewer at matched energy error",
        f"{block['pairs'] / block['t']:.3e} pairs per time unit "
        f"({results['pair_ratio']}x fewer, |dE/E| = {block['drift']:.1e})",
    )
    rep.note("both schemes share eta; the block scheme reaches the "
             "device through compute_on_targets i-tile subset dispatch")
    return rep


def test_committed_gate_passed():
    """The committed BENCH_integrators.json must carry a passing gate."""
    payload = json.loads(BENCH_JSON.read_text())
    gate = payload["gate"]
    assert gate["n"] == N_GATE
    assert gate["scenario"] == "cluster_with_binary"
    assert gate["required_pair_ratio"] == GATE_PAIR_RATIO
    assert gate["measured_pair_ratio"] >= GATE_PAIR_RATIO
    assert gate["drift_matched"] is True
    assert gate["passed"] is True


def test_pair_rate_gate_live_scaled():
    """Re-run the gate live at a scaled-down N: same shape, same gate."""
    results = measure(n=N_SMOKE, t_end=T_END_SMOKE)
    report(results).print()
    assert results["pair_ratio"] >= GATE_PAIR_RATIO, results
    assert results["drift_matched"], results


def main() -> None:
    results = measure()
    report(results).print()
    payload = {
        "benchmark": "bench_block_hermite",
        "config": {
            "scenario": "cluster_with_binary",
            "backend": "tt",
            "n_cores": N_CORES,
            "eta": ETA,
            "dt_max": DT_MAX,
            "seed": SEED,
            "note": "pairwise force evaluations per unit physical time, "
                    "shared-step adaptive Hermite vs individual block "
                    "timesteps, both through the integrator registry on "
                    "the functional tt backend",
        },
        "results": results,
        "gate": {
            "n": N_GATE,
            "scenario": "cluster_with_binary",
            "required_pair_ratio": GATE_PAIR_RATIO,
            "measured_pair_ratio": results["pair_ratio"],
            "drift_matched": results["drift_matched"],
            "passed": (results["pair_ratio"] >= GATE_PAIR_RATIO
                       and results["drift_matched"]),
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")


if __name__ == "__main__":
    main()

"""Throughput and latency of the simulation-as-a-service job server.

The service's pitch is that a simulated four-card farm plus a canonical-
hash result cache can absorb bursty multi-tenant load: thousands of
queued jobs drain in seconds of wall clock (modelled execution costs
milliseconds per job), duplicate submissions are answered from the cache
without touching a card, and over-quota tenants get priced 429s instead
of degrading everyone else.

The bench drives :class:`repro.service.JobServer` directly (no HTTP, so
the numbers measure the service, not socket overhead) through three
phases:

1. **burst** — >= 1000 unique specs across four tenants submitted while
   the card workers are held, so the queue genuinely absorbs the burst
   (``depth_peak`` is the gate), then the farm is released and the drain
   is timed;
2. **greedy** — one tenant over-submits past its queue quota and must
   observe 429-style rejections with retry-after hints;
3. **popular** — duplicate submissions of now-cached specs, which must be
   answered from the cache (overall hit rate >= 50% is the gate).

Script mode records the numbers in ``BENCH_service.json`` at the repo
root:

    PYTHONPATH=src python benchmarks/bench_service.py

Pytest collection re-runs the whole scenario live and cross-checks the
committed JSON, mirroring the ``BENCH_shards.json`` arrangement.  The
zero-leak gate (``multiprocessing.active_children()`` empty after
shutdown) guards the executor-lifecycle fixes this PR ships.
"""

import asyncio
import json
import multiprocessing
import time
from pathlib import Path

from repro.backends import RunSpec
from repro.bench import ExperimentReport
from repro.errors import QuotaExceededError
from repro.service import JobServer, QuotaPolicy, ServerConfig

N_CARDS = 4
N_TENANTS = 4
N_UNIQUE = 1100          # burst size: > 1000 queued at peak
N_GREEDY = 400           # one tenant's over-quota burst
N_POPULAR = 2000         # duplicate submissions of cached specs
MAX_QUEUED = 300         # per-tenant queue quota (greedy exceeds it)

GATE_QUEUE_PEAK = 1000
GATE_HIT_RATE = 0.50

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_service.json"


def _spec(i: int) -> RunSpec:
    return RunSpec(n=2048, cycles=2, seed=i)


async def _run_scenario() -> dict:
    server = JobServer(ServerConfig(
        n_cards=N_CARDS,
        policy=QuotaPolicy(
            max_queued=MAX_QUEUED, max_active=64,
            max_pending_total=8192,
        ),
        # the burst inserts N_UNIQUE + N_GREEDY distinct results; the
        # cache must hold them all or phase 3 re-executes evicted specs
        cache_entries=4096,
    ))
    # hold the card workers: the burst must pile up in the queue
    jobs = []
    for i in range(N_UNIQUE):
        tenant = f"tenant-{i % N_TENANTS}"
        jobs.append(await server.submit(tenant, _spec(i)))

    # phase 2: the greedy tenant exceeds its queue quota
    rejections = 0
    retry_hints = []
    for i in range(N_GREEDY):
        try:
            jobs.append(
                await server.submit("greedy", _spec(N_UNIQUE + i))
            )
        except QuotaExceededError as exc:
            rejections += 1
            retry_hints.append(exc.retry_after_s)
    depth_peak = server.queue.depth_peak

    # release the farm and time the drain
    server.started_monotonic = time.monotonic()
    server.scheduler.start()
    t0 = time.perf_counter()
    for job in jobs:
        await job.wait_finished()
    drain_s = time.perf_counter() - t0

    # phase 3: popular duplicates answered from the cache
    t1 = time.perf_counter()
    popular = []
    for i in range(N_POPULAR):
        popular.append(await server.submit("popular", _spec(i % 64)))
    for job in popular:
        await job.wait_finished()
    popular_s = time.perf_counter() - t1

    stats = server.stats()
    await server.stop()
    leaked = len(multiprocessing.active_children())
    executed = stats["jobs"]["executed_ok"] + stats["jobs"]["executed_failed"]
    return {
        "queue_depth_peak": depth_peak,
        "drain_s": round(drain_s, 3),
        "drain_throughput_jobs_per_s": round(len(jobs) / drain_s, 1),
        "popular_s": round(popular_s, 3),
        "popular_throughput_jobs_per_s": round(N_POPULAR / popular_s, 1),
        "executed": executed,
        "finished": stats["jobs"]["finished"],
        "cached": stats["jobs"]["cached"],
        "deduped": stats["jobs"]["deduped"],
        "cache_hit_rate": stats["cache"]["hit_rate"],
        "quota_rejections": rejections,
        "retry_after_s_mean": (
            round(sum(retry_hints) / len(retry_hints), 1)
            if retry_hints else None
        ),
        "latency_p50_s": round(stats["latency"]["p50_s"], 6),
        "latency_p99_s": round(stats["latency"]["p99_s"], 6),
        "virtual_s_total": stats["virtual_s_total"],
        "leaked_processes": leaked,
    }


def measure() -> dict:
    return asyncio.run(_run_scenario())


def report(results: dict) -> ExperimentReport:
    rep = ExperimentReport(
        "SERVICE", "async job server under multi-tenant burst load"
    )
    rep.add(
        f"burst of {N_UNIQUE + N_GREEDY} submissions, workers held",
        f">= {GATE_QUEUE_PEAK} queued at peak",
        f"{results['queue_depth_peak']} queued",
    )
    rep.add(
        f"drain through {N_CARDS} modelled cards",
        "seconds of wall clock for >1000 jobs",
        f"{results['drain_s']}s "
        f"({results['drain_throughput_jobs_per_s']} jobs/s)",
    )
    rep.add(
        f"{N_POPULAR} duplicate submissions of cached specs",
        f"cache hit rate >= {GATE_HIT_RATE:.0%}",
        f"{results['cache_hit_rate']:.1%} "
        f"({results['popular_throughput_jobs_per_s']} jobs/s)",
    )
    rep.add(
        "greedy tenant over quota",
        "429-style rejections with retry-after",
        f"{results['quota_rejections']} rejected, "
        f"retry-after ~{results['retry_after_s_mean']} modelled s",
    )
    rep.add(
        "submit-to-finish latency",
        "p50/p99 reported",
        f"p50 {results['latency_p50_s']}s, p99 {results['latency_p99_s']}s",
    )
    rep.add(
        "forked worker processes after shutdown",
        "0 leaked",
        str(results["leaked_processes"]),
    )
    rep.note("modelled execution: each job replays the paper's campaign "
             "timeline on a virtual clock, so the farm drains thousands "
             "of jobs in wall seconds while latencies stay honest")
    return rep


def _gate(results: dict) -> dict:
    passed = (
        results["queue_depth_peak"] >= GATE_QUEUE_PEAK
        and results["cache_hit_rate"] >= GATE_HIT_RATE
        and results["quota_rejections"] > 0
        and results["leaked_processes"] == 0
        and results["latency_p99_s"] > 0
    )
    return {
        "required_queue_peak": GATE_QUEUE_PEAK,
        "required_hit_rate": GATE_HIT_RATE,
        "measured_queue_peak": results["queue_depth_peak"],
        "measured_hit_rate": results["cache_hit_rate"],
        "quota_rejections": results["quota_rejections"],
        "leaked_processes": results["leaked_processes"],
        "passed": passed,
    }


def test_committed_gate_passed():
    """The committed BENCH_service.json must carry a passing gate."""
    payload = json.loads(BENCH_JSON.read_text())
    gate = payload["gate"]
    assert gate["required_queue_peak"] == GATE_QUEUE_PEAK
    assert gate["required_hit_rate"] == GATE_HIT_RATE
    assert gate["measured_queue_peak"] >= GATE_QUEUE_PEAK
    assert gate["measured_hit_rate"] >= GATE_HIT_RATE
    assert gate["quota_rejections"] > 0
    assert gate["leaked_processes"] == 0
    assert gate["passed"] is True
    assert payload["results"]["latency_p99_s"] > 0


def test_service_burst_live():
    """Re-run the full scenario: every gate must hold live."""
    results = measure()
    report(results).print()
    gate = _gate(results)
    assert gate["passed"], gate


def main() -> None:
    results = measure()
    report(results).print()
    payload = {
        "benchmark": "bench_service",
        "config": {
            "n_cards": N_CARDS,
            "n_tenants": N_TENANTS,
            "burst_unique_jobs": N_UNIQUE,
            "greedy_jobs": N_GREEDY,
            "popular_duplicates": N_POPULAR,
            "max_queued_per_tenant": MAX_QUEUED,
            "spec": {"n": 2048, "cycles": 2, "backend": "tt (modelled)"},
            "note": "JobServer driven directly (no HTTP) so the numbers "
                    "measure scheduling, dedupe, cache and quota — not "
                    "socket overhead; latencies are wall seconds from "
                    "submit to finish including queue wait",
        },
        "results": results,
        "gate": _gate(results),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")


if __name__ == "__main__":
    main()

"""E5 / Fig. 2 + Section 5: Tensix core-count scaling and the crossover.

The paper distributes the outer force loop across Tensix cores (Fig. 2)
and plans card-level parallelism studies as future work.  This bench
quantifies the decomposition:

* analytic strong scaling of the device force evaluation over 1..64 cores
  at paper-scale N — near-linear until tile granularity bites;
* functional verification of the scaling at small N (the simulated
  kernels really distribute the work);
* the device-vs-CPU crossover: below a few tens of thousands of
  particles, the single-threaded host phases make the CPU reference
  faster — the regime above the crossover is where the paper operates.
"""

import pytest

from repro import plummer
from repro.backends import make_backend
from repro.bench import ExperimentReport
from repro.config import PAPER_N_PARTICLES
from repro.cpuref import OpenMPModel
from repro.nbody_tt import DeviceTimeModel

CORE_SWEEP = [1, 2, 4, 8, 16, 32, 64]


def test_core_scaling_analytic(benchmark):
    def sweep():
        return {
            c: DeviceTimeModel(n_cores=c).eval_seconds(PAPER_N_PARTICLES)
            for c in CORE_SWEEP
        }

    times = benchmark(sweep)
    report = ExperimentReport(
        "E5a", f"device force-eval strong scaling, N={PAPER_N_PARTICLES}"
    )
    base = times[1]
    for c in CORE_SWEEP:
        report.add(f"{c:>2} cores", "near-linear",
                   f"{times[c]:.2f} s (speedup {base / times[c]:.1f}x)")
    report.note("100 i-tiles over 64 cores leaves a 2-tile worst core: the "
                "last doubling gains less than 2x (tile granularity)")
    report.print()

    # near-linear until granularity: 1->32 cores
    assert base / times[32] == pytest.approx(100 / 4, rel=0.05)
    # 64 cores: ceil(100/64)=2 tiles -> speedup 50x, not 64x
    assert base / times[64] == pytest.approx(50.0, rel=0.05)
    for a, b in zip(CORE_SWEEP, CORE_SWEEP[1:]):
        assert times[b] < times[a]


def test_core_scaling_functional(benchmark):
    """The kernels really spread the tiles: functional times match the
    analytic model across core counts."""
    system = plummer(4096, seed=7)

    def device_seconds(n_cores):
        backend = make_backend("tt", cores=n_cores)
        ev = backend.compute(system.pos, system.vel, system.mass)
        return sum(s.seconds for s in ev.segments if s.tag == "device")

    results = benchmark.pedantic(
        lambda: {c: device_seconds(c) for c in (1, 2, 4)},
        rounds=1, iterations=1,
    )
    for c, functional in results.items():
        analytic = DeviceTimeModel(n_cores=c).eval_seconds(4096)
        assert functional == pytest.approx(analytic, rel=0.03), c
    assert results[1] / results[4] == pytest.approx(4.0, rel=0.05)


def test_device_cpu_crossover(benchmark):
    """Find the N where the accelerated job starts winning end to end."""

    def find_crossover():
        device = DeviceTimeModel(n_cores=64)
        cpu = OpenMPModel(32)
        crossover = None
        sweep = {}
        for k in range(3, 104, 4):
            n = k * 1024
            t_dev = device.job_seconds(n, 10)
            t_cpu = cpu.job_seconds(n, 10)
            sweep[n] = (t_dev, t_cpu)
            if crossover is None and t_dev < t_cpu:
                crossover = n
        return crossover, sweep

    crossover, sweep = benchmark(find_crossover)
    report = ExperimentReport("E5b", "device vs CPU crossover (10 cycles)")
    for n in list(sweep)[::6]:
        t_dev, t_cpu = sweep[n]
        report.add(f"N={n}", "-", f"device {t_dev:7.1f} s vs cpu {t_cpu:7.1f} s")
    report.add("crossover N", "below the paper's 102400", crossover)
    report.print()

    assert crossover is not None
    # the paper's operating point sits clearly above the crossover
    assert 10_000 < crossover < 70_000
    t_dev, t_cpu = sweep[103 * 1024]
    assert t_cpu / t_dev > 2.0

"""E10 (configuration ablation): reference thread count vs time and energy.

The paper runs the reference with 32 OpenMP threads pinned to physical
cores and notes that "using all hardware threads did not yield any
significant performance improvement".  This ablation sweeps the thread
count and reports both time-to-solution and energy-to-solution, exposing
the race-to-idle structure: fewer threads draw less package power but run
so much longer that the idle baseline (and the idle cards the paper's
energy sum includes) dominates — 32 threads is the energy-optimal and
time-optimal configuration on this host, exactly the one the paper picked.
"""

import pytest

from repro.bench import ExperimentReport
from repro.telemetry import Campaign, CampaignSummary, JobSpec

THREADS = [4, 8, 16, 32, 64]


@pytest.fixture(scope="module")
def sweep():
    out = {}
    campaign = Campaign(seed=77)
    for threads in THREADS:
        spec = JobSpec.paper_reference(n_threads=threads)
        results = campaign.run_many(spec, 5)
        out[threads] = CampaignSummary.from_results(results)
    return out


def test_thread_sweep_time(benchmark, sweep):
    times = benchmark(lambda: {t: sweep[t].time_stats.mean for t in THREADS})
    report = ExperimentReport("E10a", "reference time vs OpenMP threads")
    for t in THREADS:
        report.add(f"{t:>2} threads", "-", times[t], "s")
    report.note("64 threads (SMT) buys nothing over 32 on physical cores — "
                "the paper's observation")
    report.print()

    # near-linear until the physical core count ...
    assert times[4] / times[32] > 6.0
    # ... and SMT adds nothing (equal within the 1.16% run-to-run noise;
    # the analytic model below shows the small sync-overhead penalty)
    assert times[64] >= times[32] * 0.97

    from repro.cpuref.openmp import OpenMPModel

    analytic = {t: OpenMPModel(t).job_seconds(102_400, 10) for t in THREADS}
    assert analytic[64] > analytic[32]


def test_thread_sweep_energy(benchmark, sweep):
    energies = benchmark(
        lambda: {t: sweep[t].energy_stats.mean for t in THREADS}
    )
    report = ExperimentReport("E10b", "reference energy vs OpenMP threads")
    for t in THREADS:
        report.add(f"{t:>2} threads", "-", energies[t], "kJ")
    report.note("race-to-idle: low thread counts stretch the job under the "
                "~130 W idle floor (packages + idle cards), costing energy")
    report.print()

    # under-threading wastes energy
    assert energies[4] > 2.0 * energies[32]
    assert energies[8] > energies[16] > energies[32]
    # SMT is also not an energy win
    assert energies[64] >= energies[32] * 0.98


def test_paper_choice_is_optimal(benchmark, sweep):
    """Deterministically (analytic model, no run noise): 32 threads on
    physical cores is both the time and the energy optimum — the paper's
    configuration.  The measured sweep agrees within its noise."""
    from repro.cpuref.openmp import OpenMPModel
    from repro.telemetry.params import DEFAULT_HOST_POWER

    def analytic_best():
        p = DEFAULT_HOST_POWER
        idle_cards_w = 4 * 10.5
        times = {t: OpenMPModel(t).job_seconds(102_400, 10) for t in THREADS}
        energies = {
            t: times[t] * (p.idle_w + p.per_thread_w * t + idle_cards_w)
            for t in THREADS
        }
        return (
            min(THREADS, key=times.get),
            min(THREADS, key=energies.get),
        )

    best_time, best_energy = benchmark(analytic_best)
    assert best_time == 32
    assert best_energy == 32
    # the sampled campaign agrees to within noise
    measured_best = min(THREADS, key=lambda t: sweep[t].energy_stats.mean)
    assert measured_best in (32, 64)

"""E1 / Fig. 3: time-to-solution, accelerated vs reference.

Paper: accelerated runs complete in 301.40 +/- 0.24 s, reference runs in
672.90 +/- 7.83 s — a 2.23x speedup — with the CPU histogram visibly wider
(system-load variability the dedicated accelerator does not see).
"""

import pytest

from repro.bench import ExperimentReport, PaperValue
from repro.telemetry.stats import histogram

PAPER_ACCEL_S = 301.40
PAPER_ACCEL_STD = 0.24
PAPER_REF_S = 672.90
PAPER_REF_STD = 7.83
PAPER_SPEEDUP = 2.23


def test_fig3_time_to_solution(benchmark, paper_campaign):
    accel = paper_campaign["accel"]
    ref = paper_campaign["ref"]

    def summarize():
        return (accel.time_stats.mean, ref.time_stats.mean)

    accel_mean, ref_mean = benchmark(summarize)
    speedup = ref_mean / accel_mean

    report = ExperimentReport("E1/Fig3", "time-to-solution (N=102400, 10 cycles)")
    report.add("accel mean", PaperValue(PAPER_ACCEL_S, PAPER_ACCEL_STD, "s"),
               accel_mean, "s")
    report.add("accel std", PaperValue(PAPER_ACCEL_STD, unit="s"),
               accel.time_stats.std, "s")
    report.add("ref mean", PaperValue(PAPER_REF_S, PAPER_REF_STD, "s"),
               ref_mean, "s")
    report.add("ref std", PaperValue(PAPER_REF_STD, unit="s"),
               ref.time_stats.std, "s")
    report.add("speedup", PaperValue(PAPER_SPEEDUP, unit="x"), speedup, "x")
    report.add("accel runs", "26 completed", accel.completed)
    report.add("ref runs", "49", ref.completed)
    report.note("histogram (accel): "
                + str(list(histogram([r.time_to_solution
                                      for r in paper_campaign["accel_results"]
                                      if r.completed], 6)[0])))
    report.note("histogram (ref):   "
                + str(list(histogram([r.time_to_solution
                                      for r in paper_campaign["ref_results"]
                                      if r.completed], 6)[0])))
    report.print()

    # shape assertions
    assert accel_mean == pytest.approx(PAPER_ACCEL_S, rel=0.02)
    assert ref_mean == pytest.approx(PAPER_REF_S, rel=0.03)
    assert speedup == pytest.approx(PAPER_SPEEDUP, abs=0.12)


def test_fig3_cpu_histogram_is_wider(benchmark, paper_campaign):
    """The paper attributes the wider CPU spread to host-side variability."""
    accel = paper_campaign["accel"]
    ref = paper_campaign["ref"]

    rel_widths = benchmark(
        lambda: (accel.time_stats.std / accel.time_stats.mean,
                 ref.time_stats.std / ref.time_stats.mean)
    )
    rel_accel, rel_ref = rel_widths
    assert rel_ref > 5.0 * rel_accel
    assert rel_accel < 0.005   # sub-0.5% like the paper's 0.08%
    assert 0.005 < rel_ref < 0.03

"""E8 / Section 5 future work: multi-accelerator scaling over Ethernet.

The paper plans "to extend our benchmarks to MPI with multiple
accelerators ... which ultimately will enable us to perform both strong
and weak scalability tests".  The host of the paper's campaign carries
four n300 cards; this bench runs those tests on the simulator:

* strong scaling: fixed N = 102 400 over 1, 2, 4 devices — saturates at
  2 devices because 100 i-tiles over 128 cores already leave one tile per
  core (granularity), a real deployment consideration;
* strong scaling at 4x the particle count — near-linear through 4 devices;
* weak scaling: N per device fixed — time *grows* with device count since
  the all-pairs inner loop covers the global particle set (O(N^2) total
  work), the fundamental wall the paper's future work will face;
* functional verification that a 2-device run returns forces identical to
  a 1-device run;
* measured host wall clock next to the modelled device seconds, so the
  modelled concurrency claim can be compared against what the host
  actually delivers under the sharded executor.
"""

import time

import numpy as np
import pytest

from repro import plummer
from repro.backends import make_backend
from repro.bench import ExperimentReport
from repro.config import PAPER_N_PARTICLES
from repro.nbody_tt import DeviceTimeModel

DEVICES = [1, 2, 4]


def test_strong_scaling(benchmark):
    def sweep():
        out = {}
        # 512 tiles divide evenly across 64, 128, and 256 cores, isolating
        # the interconnect term from tile-granularity effects
        for scale, n in (("paper", PAPER_N_PARTICLES),
                         ("512-tile", 512 * 1024)):
            out[scale] = {
                d: DeviceTimeModel(n_cores=64, n_devices=d).eval_seconds(n)
                for d in DEVICES
            }
        return out

    times = benchmark(sweep)
    report = ExperimentReport("E8a", "strong scaling, force evaluation")
    for scale, by_dev in times.items():
        base = by_dev[1]
        for d in DEVICES:
            report.add(
                f"N={scale} paper, {d} device(s)", "-",
                f"{by_dev[d]:.2f} s (speedup {base / by_dev[d]:.2f}x)",
            )
    report.note("at N=102400 the 100 tiles hit the one-tile-per-core floor "
                "at 2 devices; the 512-tile workload scales cleanly to 4")
    report.print()

    t1x = times["paper"]
    assert t1x[1] / t1x[2] == pytest.approx(2.0, rel=0.02)
    assert t1x[2] == pytest.approx(t1x[4], rel=0.02)  # granularity floor
    big = times["512-tile"]
    assert big[1] / big[4] == pytest.approx(4.0, rel=0.05)


def test_weak_scaling(benchmark):
    """Fixed N per device: all-pairs work grows as (d*N0)^2 / d = d*N0^2."""
    n0 = PAPER_N_PARTICLES

    def sweep():
        return {
            d: DeviceTimeModel(n_cores=64, n_devices=d).eval_seconds(d * n0)
            for d in DEVICES
        }

    times = benchmark(sweep)
    report = ExperimentReport("E8b", "weak scaling, N per device fixed")
    for d in DEVICES:
        report.add(f"{d} device(s), N={d * n0}", "time grows ~d",
                   f"{times[d]:.2f} s")
    report.note("O(N^2) all-pairs: doubling devices AND particles doubles "
                "the per-device work — direct codes do not weak-scale")
    report.print()

    assert times[2] / times[1] == pytest.approx(2.0, rel=0.1)
    assert times[4] / times[2] == pytest.approx(2.0, rel=0.1)


def test_multidevice_functional_equivalence(benchmark):
    """Two cards, each computing half the i-tiles, reproduce the
    single-card forces exactly (same tile math, same order)."""
    system = plummer(4096, seed=9)

    def run():
        single = make_backend("tt", cores=4).compute(
            system.pos, system.vel, system.mass
        )
        double = make_backend("tt", cores=4, cards=2).compute(
            system.pos, system.vel, system.mass
        )
        return single, double

    single, double = benchmark.pedantic(run, rounds=1, iterations=1)
    assert np.array_equal(single.acc, double.acc)
    assert np.array_equal(single.jerk, double.jerk)
    # the 2-device run reports an allgather segment over the QSFP fabric
    details = [s.detail for s in double.segments]
    assert "allgather" in details


def test_modelled_vs_measured_wall_clock(benchmark):
    """Modelled device seconds next to measured host wall clock, 1 vs 4
    cards, so the scaling claims above stay anchored to what the host
    executor actually delivers on this machine."""
    n = 8192
    system = plummer(n, seed=11)

    def sweep():
        out = {}
        for cards in (1, 4):
            options = {"cores": 64} if cards == 1 else {
                "cores": 64, "cards": cards,
            }
            backend = make_backend("tt", **options)
            backend.compute(system.pos, system.vel, system.mass)  # warm
            t0 = time.perf_counter()
            ev = backend.compute(system.pos, system.vel, system.mass)
            wall_s = time.perf_counter() - t0
            modelled_s = sum(
                s.seconds for s in ev.segments if s.tag == "device"
            )
            if hasattr(backend, "close"):
                backend.close()
            out[cards] = {"modelled_s": modelled_s, "wall_s": wall_s}
        return out

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report = ExperimentReport(
        "E8c", "modelled device seconds vs measured host wall clock"
    )
    for cards, t in times.items():
        report.add(
            f"N={n}, {cards} card(s), 64 cores", "-",
            f"modelled {t['modelled_s']:.4f} s, "
            f"measured {t['wall_s']:.4f} s host wall clock",
        )
    report.note("modelled time prices the simulated Wormhole cards; "
                "measured time is this host driving the shard executor "
                "(workers default: REPRO_SHARD_WORKERS or thread)")
    report.print()

    for t in times.values():
        assert t["modelled_s"] > 0.0
        assert t["wall_s"] > 0.0

"""E3 / Fig. 5: energy-to-solution, accelerated vs reference.

Paper: accelerated jobs consume 71.56 +/- 0.13 kJ (range 71.23-71.81);
reference jobs 128.89 +/- 1.52 kJ (range 127.29-131.36) — a 1.80x energy
saving, bought with a higher peak power (~260 W vs ~210 W).
"""

import pytest

from repro.bench import ExperimentReport, PaperValue

PAPER_ACCEL_KJ = 71.56
PAPER_ACCEL_STD = 0.13
PAPER_REF_KJ = 128.89
PAPER_REF_STD = 1.52
PAPER_SAVING = 1.80
PAPER_ACCEL_PEAK_W = 260.0
PAPER_REF_PEAK_W = 210.0


def test_fig5_energy_to_solution(benchmark, paper_campaign):
    accel = paper_campaign["accel"]
    ref = paper_campaign["ref"]

    saving = benchmark(lambda: ref.energy_stats.mean / accel.energy_stats.mean)

    report = ExperimentReport("E3/Fig5", "energy-to-solution (cards + CPU)")
    report.add("accel mean", PaperValue(PAPER_ACCEL_KJ, PAPER_ACCEL_STD, "kJ"),
               accel.energy_stats.mean, "kJ")
    report.add("accel range",
               "71.23 - 71.81 kJ",
               f"{accel.energy_stats.min:.2f} - {accel.energy_stats.max:.2f} kJ")
    report.add("ref mean", PaperValue(PAPER_REF_KJ, PAPER_REF_STD, "kJ"),
               ref.energy_stats.mean, "kJ")
    report.add("ref range",
               "127.29 - 131.36 kJ",
               f"{ref.energy_stats.min:.2f} - {ref.energy_stats.max:.2f} kJ")
    report.add("energy saving", PaperValue(PAPER_SAVING, unit="x"), saving, "x")
    report.add("accel peak power", PaperValue(PAPER_ACCEL_PEAK_W, unit="W"),
               accel.peak_power_stats.max, "W")
    report.add("ref peak power", PaperValue(PAPER_REF_PEAK_W, unit="W"),
               ref.peak_power_stats.max, "W")
    report.print()

    assert accel.energy_stats.mean == pytest.approx(PAPER_ACCEL_KJ, rel=0.02)
    assert ref.energy_stats.mean == pytest.approx(PAPER_REF_KJ, rel=0.03)
    assert saving == pytest.approx(PAPER_SAVING, abs=0.08)
    # the energy saving costs peak power, as the paper notes
    assert accel.peak_power_stats.max > ref.peak_power_stats.max
    assert accel.peak_power_stats.max == pytest.approx(
        PAPER_ACCEL_PEAK_W, rel=0.06
    )
    assert ref.peak_power_stats.max == pytest.approx(PAPER_REF_PEAK_W, rel=0.06)


def test_fig5_reference_energy_spread_wider(benchmark, paper_campaign):
    """The classical runs' spread tracks their runtime variability."""
    accel = paper_campaign["accel"]
    ref = paper_campaign["ref"]
    stds = benchmark(lambda: (accel.energy_stats.std, ref.energy_stats.std))
    assert stds[1] > 3.0 * stds[0]


def test_fig5_energy_pipeline_csv_roundtrip(benchmark, paper_campaign,
                                            tmp_path):
    """The paper's pipeline stores samples in csv before integrating; the
    csv round trip must not change the energy by more than float repr."""
    from repro.telemetry.energy import (
        energy_to_solution,
        read_power_csv,
        write_power_csv,
    )

    job = next(r for r in paper_campaign["accel_results"] if r.completed)
    path = tmp_path / "job.csv"

    def roundtrip():
        write_power_csv(path, job.rows)
        rows = read_power_csv(path)
        return energy_to_solution(rows, job.sim_start, job.sim_end)

    via_csv = benchmark(roundtrip)
    assert via_csv.total_kj == pytest.approx(job.energy.total_kj, rel=1e-12)

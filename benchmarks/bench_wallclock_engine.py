"""Wall-clock benchmark: batched block-dispatch engine vs per-block path.

The batched engine (`TTForceBackend(engine="batched")`) must be
bit-identical to the per-block path while being dramatically faster in
*host* wall-clock time — the modelled device time is unchanged by
construction.  This bench times one functional force evaluation at several
N (fp32, 64 cores, 1 device), asserts the >= 5x acceptance gate at
N = 8192, and — when run as a script — records the numbers in
``BENCH_engine.json`` at the repo root so the speedup is tracked across
PRs:

    PYTHONPATH=src python benchmarks/bench_wallclock_engine.py

Pytest collection (``pytest benchmarks/bench_wallclock_engine.py``) runs
the smaller sizes only and does not rewrite the committed JSON.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import plummer
from repro.backends import make_backend
from repro.bench import ExperimentReport

#: Sizes recorded in BENCH_engine.json (script mode).
SIZES = (2048, 8192, 32768)
#: Sizes exercised under pytest (keeps the bench suite fast).
SIZES_PYTEST = (2048, 8192)
N_CORES = 64
GATE_N = 8192
GATE_SPEEDUP = 5.0

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _time_engine(engine: str, n: int, evals: int = 2):
    """(timings, last evaluation) for one backend configuration."""
    system = plummer(n, seed=42)
    backend = make_backend("tt", cores=N_CORES, engine=engine)
    times = []
    ev = None
    for _ in range(evals):
        t0 = time.perf_counter()
        ev = backend.compute(system.pos, system.vel, system.mass)
        times.append(time.perf_counter() - t0)
    steady = min(times[1:]) if len(times) > 1 else times[0]
    return {"first_s": round(times[0], 4), "steady_s": round(steady, 4)}, ev


def measure(sizes=SIZES):
    """Measure baseline (per-block) vs batched wall clock for each N."""
    results = {}
    for n in sizes:
        baseline, ev_base = _time_engine("per-block", n)
        batched, ev_fast = _time_engine("batched", n)
        assert np.array_equal(ev_base.acc, ev_fast.acc, equal_nan=True)
        assert np.array_equal(ev_base.jerk, ev_fast.jerk, equal_nan=True)
        results[n] = {
            "baseline_per_block": baseline,
            "batched": batched,
            "speedup_steady": round(
                baseline["steady_s"] / batched["steady_s"], 2
            ),
        }
    return results


def report(results) -> ExperimentReport:
    rep = ExperimentReport(
        "ENGINE", "batched block-dispatch engine wall clock"
    )
    for n, r in results.items():
        rep.add(
            f"N={n} (fp32, {N_CORES} cores, 1 device)",
            f">= {GATE_SPEEDUP}x at N={GATE_N}",
            f"{r['baseline_per_block']['steady_s']:.3f}s -> "
            f"{r['batched']['steady_s']:.3f}s "
            f"({r['speedup_steady']:.1f}x), bit-identical",
        )
    rep.note("modelled device time is engine-independent; the speedup is "
             "host wall clock for one functional force evaluation")
    return rep


@pytest.fixture(scope="module")
def timings():
    return measure(SIZES_PYTEST)


def test_batched_is_bit_identical_and_faster(benchmark, timings):
    """measure() already asserts bit-identity; every size must also win."""
    results = benchmark.pedantic(lambda: timings, rounds=1, iterations=1)
    for n, r in results.items():
        assert r["speedup_steady"] > 1.0, (n, r)


def test_speedup_gate_at_8192(benchmark, timings):
    results = benchmark.pedantic(lambda: timings, rounds=1, iterations=1)
    report(results).print()
    assert results[GATE_N]["speedup_steady"] >= GATE_SPEEDUP, results[GATE_N]


def main() -> None:
    results = measure(SIZES)
    report(results).print()
    payload = {
        "benchmark": "bench_wallclock_engine",
        "config": {
            "fmt": "float32",
            "n_cores": N_CORES,
            "n_devices": 1,
            "baseline_engine": "per-block",
            "note": "seconds of host wall clock per functional force "
                    "evaluation; steady_s excludes the first-call "
                    "program-build/compile overheads",
        },
        "sizes": {str(n): r for n, r in results.items()},
        "gate": {
            "n": GATE_N,
            "required_speedup": GATE_SPEEDUP,
            "measured_speedup": results[GATE_N]["speedup_steady"],
            "passed": results[GATE_N]["speedup_steady"] >= GATE_SPEEDUP,
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")


if __name__ == "__main__":
    main()

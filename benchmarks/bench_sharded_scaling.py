"""Host wall-clock scaling of the sharded multi-card backend.

``ShardedTTBackend`` always *modelled* concurrent cards; with the
executor layer (``repro.backends.shardexec``) the host actually runs the
per-card shards in parallel, and with the native kernels each card's
shard is cheap enough that the fan-out pays off in wall clock.  This
bench times one functional force evaluation at N = 32768 (fp32, 64
cores, 4 cards) under every worker mode, asserts every mode is
bit-identical to the single-card batched engine, and gates the
``workers=process`` configuration at >= 3x the *committed* single-card
steady wall clock from ``BENCH_engine.json``.  Script mode records the
numbers in ``BENCH_shards.json`` at the repo root:

    PYTHONPATH=src python benchmarks/bench_sharded_scaling.py

Pytest collection (``pytest benchmarks/bench_sharded_scaling.py``)
re-runs the gate configuration live and cross-checks the committed JSON,
mirroring the ``BENCH_engine.json`` arrangement.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import plummer
from repro.backends import make_backend
from repro.bench import ExperimentReport

N_GATE = 32768
N_CORES = 64
N_CARDS = 4
GATE_WORKERS = "process"
GATE_SPEEDUP = 3.0
WORKER_MODES = ("serial", "thread", "process")

ROOT = Path(__file__).resolve().parent.parent
BENCH_JSON = ROOT / "BENCH_shards.json"
ENGINE_JSON = ROOT / "BENCH_engine.json"


def baseline_steady_s() -> float:
    """The committed single-card batched steady wall clock at N_GATE."""
    payload = json.loads(ENGINE_JSON.read_text())
    return float(payload["sizes"][str(N_GATE)]["batched"]["steady_s"])


def _time_backend(backend, system, evals=3):
    """(timings, last evaluation) for one backend configuration."""
    times = []
    ev = None
    for _ in range(evals):
        t0 = time.perf_counter()
        ev = backend.compute(system.pos, system.vel, system.mass)
        times.append(time.perf_counter() - t0)
    steady = min(times[1:]) if len(times) > 1 else times[0]
    return {"first_s": round(times[0], 4), "steady_s": round(steady, 4)}, ev


def measure(n=N_GATE, modes=WORKER_MODES):
    """Single-card vs 4-card wall clock for each worker mode at one N.

    Every sharded result is asserted bit-identical to the single card's
    before any timing is reported — a faster wrong answer must never
    land in the JSON.
    """
    system = plummer(n, seed=42)
    single, single_ev = _time_backend(
        make_backend("tt", cores=N_CORES), system
    )
    results = {"single_card": single, "workers": {}}
    for mode in modes:
        backend = make_backend(
            "tt", cores=N_CORES, cards=N_CARDS, workers=mode
        )
        timing, ev = _time_backend(backend, system)
        backend.close()
        assert np.array_equal(single_ev.acc, ev.acc, equal_nan=True), mode
        assert np.array_equal(single_ev.jerk, ev.jerk, equal_nan=True), mode
        results["workers"][mode] = timing
    return results


def report(results, baseline: float) -> ExperimentReport:
    rep = ExperimentReport(
        "SHARDS", "sharded multi-card host wall clock"
    )
    rep.add(
        f"N={N_GATE} single card (fp32, {N_CORES} cores)",
        f"committed baseline {baseline:.3f}s",
        f"{results['single_card']['steady_s']:.3f}s steady",
    )
    for mode, timing in results["workers"].items():
        speedup = baseline / timing["steady_s"]
        rep.add(
            f"N={N_GATE}, {N_CARDS} cards, workers={mode}",
            f">= {GATE_SPEEDUP}x vs baseline (workers={GATE_WORKERS})",
            f"{timing['steady_s']:.3f}s ({speedup:.1f}x), bit-identical",
        )
    rep.note("baseline is the committed single-card batched steady_s from "
             "BENCH_engine.json; modelled device time is unchanged by the "
             "host executor")
    return rep


@pytest.fixture(scope="module")
def gate_results():
    return measure(modes=(GATE_WORKERS,))


def test_committed_gate_passed():
    """The committed BENCH_shards.json must carry a passing gate."""
    payload = json.loads(BENCH_JSON.read_text())
    gate = payload["gate"]
    assert gate["n"] == N_GATE
    assert gate["cards"] == N_CARDS
    assert gate["workers"] == GATE_WORKERS
    assert gate["required_speedup"] == GATE_SPEEDUP
    assert gate["passed"] is True
    assert gate["measured_speedup"] >= GATE_SPEEDUP


def test_wall_clock_gate_live(benchmark, gate_results):
    """Re-run the gate configuration: >= 3x the committed baseline."""
    results = benchmark.pedantic(lambda: gate_results, rounds=1, iterations=1)
    baseline = baseline_steady_s()
    report(results, baseline).print()
    steady = results["workers"][GATE_WORKERS]["steady_s"]
    assert baseline / steady >= GATE_SPEEDUP, (baseline, steady)


def test_all_worker_modes_bit_identical(benchmark):
    """measure() asserts identity internally; exercise every mode small."""
    results = benchmark.pedantic(
        lambda: measure(n=4096, modes=WORKER_MODES), rounds=1, iterations=1
    )
    assert set(results["workers"]) == set(WORKER_MODES)


def main() -> None:
    baseline = baseline_steady_s()
    results = measure()
    report(results, baseline).print()
    gate_steady = results["workers"][GATE_WORKERS]["steady_s"]
    speedup = round(baseline / gate_steady, 2)
    payload = {
        "benchmark": "bench_sharded_scaling",
        "config": {
            "fmt": "float32",
            "n_cores": N_CORES,
            "n_cards": N_CARDS,
            "n": N_GATE,
            "baseline": "BENCH_engine.json single-card batched steady_s",
            "note": "seconds of host wall clock per functional force "
                    "evaluation; every mode asserted bit-identical to the "
                    "single-card batched engine before timing is recorded",
        },
        "baseline_single_card_steady_s": baseline,
        "measured_single_card": results["single_card"],
        "workers": {
            mode: {
                **timing,
                "speedup_vs_baseline": round(
                    baseline / timing["steady_s"], 2
                ),
            }
            for mode, timing in results["workers"].items()
        },
        "gate": {
            "n": N_GATE,
            "cards": N_CARDS,
            "workers": GATE_WORKERS,
            "required_speedup": GATE_SPEEDUP,
            "measured_speedup": speedup,
            "passed": speedup >= GATE_SPEEDUP,
        },
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {BENCH_JSON}")


if __name__ == "__main__":
    main()

"""E2 / Fig. 4: four-card power time series during one accelerated job.

Paper observations reproduced and asserted here:

* idle cards draw 10-11 W before the simulation;
* during host-only initialisation the cards stay at idle draw;
* once the force kernel is invoked, the three unused cards rise to a
  steady draw below 20 W;
* the active card fluctuates between 26 and 33 W, with peaks during
  device compute and dips during host-side phases;
* after the run, idle draw is similar to — but not exactly equal to —
  the pre-run level (resolved only by a reset).
"""

import numpy as np
import pytest

from repro.bench import ExperimentReport, PaperValue

#: host init takes ~4.5 s at the start of the simulation window
INIT_GUARD_S = 6.0


@pytest.fixture(scope="module")
def traced_job(paper_campaign):
    return next(r for r in paper_campaign["accel_results"] if r.completed)


def in_window(rows, t0, t1):
    return [r for r in rows if t0 <= r.timestamp < t1]


def test_fig4_power_trace_bands(benchmark, traced_job):
    job = traced_job
    active = job.spec.active_device

    def extract():
        pre = in_window(job.rows, job.rows[0].timestamp, job.sim_start)
        init = in_window(job.rows, job.sim_start, job.sim_start + 4.0)
        run = in_window(job.rows, job.sim_start + INIT_GUARD_S, job.sim_end)
        post = in_window(job.rows, job.sim_end + 2.0,
                         job.rows[-1].timestamp + 1.0)
        return pre, init, run, post

    pre, init, run, post = benchmark(extract)

    pre_idle = [w for r in pre for w in r.card_w]
    init_active = [r.card_w[active] for r in init]
    run_active = [r.card_w[active] for r in run]
    run_unused = [w for r in run for i, w in enumerate(r.card_w) if i != active]
    post_active = [r.card_w[active] for r in post]

    report = ExperimentReport("E2/Fig4", "card power during one job")
    report.add("idle band", PaperValue(10.5, unit="W (10-11)"),
               float(np.mean(pre_idle)), "W")
    report.add("cards idle during host init", "yes",
               "yes" if max(init_active) < 13.0 else "no")
    report.add("active card min", PaperValue(26.0, unit="W"),
               min(run_active), "W")
    report.add("active card max", PaperValue(33.0, unit="W"),
               max(run_active), "W")
    report.add("unused cards max", PaperValue(20.0, unit="W (bound)"),
               max(run_unused), "W")
    report.add("post-run idle offset", "small, > 0",
               float(np.mean(post_active) - np.mean(pre_idle)), "W")
    report.print()

    # paper's Fig. 4 bands
    assert all(9.5 <= w <= 11.8 for w in pre_idle)
    assert max(init_active) < 13.0
    assert 25.0 <= min(run_active) and max(run_active) <= 34.0
    assert all(w < 20.0 for w in run_unused)
    assert all(w > 14.0 for w in run_unused)  # clearly above idle
    drift = np.mean(post_active) - np.mean(pre_idle)
    assert 0.0 < drift < 1.5


def test_fig4_peaks_are_device_phases(benchmark, traced_job):
    """Power peaks align with device compute; dips with host phases."""
    job = traced_job
    active = job.spec.active_device
    run = in_window(job.rows, job.sim_start + INIT_GUARD_S, job.sim_end)
    watts = np.array([r.card_w[active] for r in run])

    def split_modes():
        # the two phase populations are separated near the band middle
        high = watts[watts >= 29.5]
        low = watts[watts < 29.5]
        return high, low

    high, low = benchmark(split_modes)
    assert len(high) > 5 and len(low) > 5   # both phases sampled
    assert high.mean() - low.mean() > 3.0   # a real bimodal fluctuation

"""E11 (dataflow ablation): circular-buffer depth and pipeline overlap.

The paper's dataflow "enables the overlap of computation and
communication, as data is produced and consumed asynchronously across
pipeline stages" — which requires the j-stream CB to hold at least two
page groups (double buffering).  This bench runs the functional kernels at
several CB depths and reads the cooperative scheduler's round counts (a
direct stall proxy: every extra round is a producer or consumer suspended
on a cb_wait/cb_reserve condition), verifying:

* results are bit-identical at every depth (buffering is pure plumbing);
* double buffering cuts scheduler rounds versus single buffering;
* deeper buffers give diminishing returns while consuming L1.
"""

import numpy as np
import pytest

from repro import plummer
from repro.backends import make_backend
from repro.bench import ExperimentReport

DEPTHS = [1, 2, 4]
N = 4096


@pytest.fixture(scope="module")
def runs():
    system = plummer(N, seed=31)
    out = {}
    for depth in DEPTHS:
        backend = make_backend("tt", cores=2, cb_buffering=depth)
        ev = backend.compute(system.pos, system.vel, system.mass)
        queue = backend.queues[0]
        rounds = max(queue.last_scheduler_rounds.values())
        l1_used = depth * 7 * 4096 + 6 * 4096 + 2 * 6 * 4096
        out[depth] = {"ev": ev, "rounds": rounds, "l1": l1_used}
    return out


def test_buffering_is_functionally_transparent(benchmark, runs):
    accs = benchmark(lambda: [runs[d]["ev"].acc for d in DEPTHS])
    assert np.array_equal(accs[0], accs[1])
    assert np.array_equal(accs[1], accs[2])


def test_double_buffering_reduces_stalls(benchmark, runs):
    rounds = benchmark(lambda: {d: runs[d]["rounds"] for d in DEPTHS})
    report = ExperimentReport("E11", "CB depth vs pipeline stalls")
    for d in DEPTHS:
        report.add(
            f"depth {d} ({'single' if d == 1 else str(d) + 'x'}-buffered)",
            "fewer rounds with overlap",
            f"{rounds[d]} scheduler rounds, "
            f"{runs[d]['l1'] // 1024} KiB L1 for CBs",
        )
    report.note("every scheduler round beyond the minimum is a kernel "
                "suspended on cb_wait_front/cb_reserve_back back-pressure")
    report.print()

    assert rounds[2] < rounds[1]
    assert rounds[4] <= rounds[2]
    # diminishing returns: 1->2 saves more than 2->4
    assert (rounds[1] - rounds[2]) > (rounds[2] - rounds[4])


def test_l1_budget_bounds_depth(benchmark):
    """CB depth cannot grow arbitrarily: the 1.5 MB L1 budget caps it."""
    from repro.errors import AllocationError
    from repro.wormhole.l1 import L1Allocator
    from repro.wormhole.params import WORMHOLE_N300

    def max_depth():
        depth = 0
        while True:
            l1 = L1Allocator(WORMHOLE_N300.l1_bytes)
            try:
                l1.allocate((depth + 1) * 7 * 4096)   # j-stream
                l1.allocate(6 * 4096)                 # i pages
                l1.allocate(2 * 6 * 4096)             # output
            except AllocationError:
                return depth
            depth += 1

    depth = benchmark.pedantic(max_depth, rounds=1, iterations=1)
    assert 10 < depth < 60  # plenty for double buffering, far from infinite

#!/usr/bin/env python3
"""CI gate: docs/API.md must mention every exported public symbol.

Walks every package ``__init__.py`` under ``src/repro``, parses its
``__all__`` list *statically* (no imports — the check cannot be fooled or
broken by import-time side effects), and verifies each exported name
appears somewhere in ``docs/API.md`` as a whole word.

The check is deliberately a *mention* check, not a structure check: the
reference is organised for humans, so a symbol may be documented in a
table row, in running prose, or grouped with its siblings — any of those
count.  What cannot happen is adding a public export and forgetting the
reference entirely.

Usage::

    python scripts/check_api_docs.py            # repo root inferred
    python scripts/check_api_docs.py --repo /path/to/repo

Exits 0 when the reference is complete, 1 with a per-package report of
missing symbols otherwise.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path

#: Exported names the reference need not mention individually.
IGNORED = {"__version__"}


def exported_names(init_py: Path) -> list[str]:
    """The ``__all__`` list of one ``__init__.py``, parsed statically."""
    tree = ast.parse(init_py.read_text())
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        targets = [t.id for t in node.targets if isinstance(t, ast.Name)]
        if "__all__" not in targets:
            continue
        value = ast.literal_eval(node.value)
        return [name for name in value if name not in IGNORED]
    return []


def find_packages(src_root: Path) -> list[Path]:
    """All package ``__init__.py`` files under ``src_root``, sorted."""
    return sorted(src_root.rglob("__init__.py"))


def check(repo: Path) -> int:
    api_md = repo / "docs" / "API.md"
    src_root = repo / "src" / "repro"
    if not api_md.is_file():
        print(f"error: {api_md} not found", file=sys.stderr)
        return 2
    if not src_root.is_dir():
        print(f"error: {src_root} not found", file=sys.stderr)
        return 2
    text = api_md.read_text()

    failures: dict[str, list[str]] = {}
    total = 0
    for init_py in find_packages(src_root):
        package = ".".join(
            init_py.parent.relative_to(repo / "src").parts
        )
        names = exported_names(init_py)
        total += len(names)
        missing = [
            name for name in names
            if re.search(rf"\b{re.escape(name)}\b", text) is None
        ]
        if missing:
            failures[package] = missing

    if failures:
        print(f"docs/API.md is missing "
              f"{sum(len(v) for v in failures.values())} exported symbols:")
        for package, missing in sorted(failures.items()):
            print(f"  {package}: {', '.join(missing)}")
        print("\nAdd them to docs/API.md (a table row or a prose mention "
              "both count), or stop exporting them.")
        return 1
    print(f"docs/API.md mentions all {total} exported symbols.")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo", type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the parent of scripts/)",
    )
    args = parser.parse_args(argv)
    return check(args.repo)


if __name__ == "__main__":
    sys.exit(main())

"""The runtime sanitizer: checked execution for device programs.

The linter proves properties of a program *before* dispatch; the
sanitizer watches the program *while it runs*.  In sanitized mode the
command queue builds each core's circular buffers as
:class:`SanitizedCircularBuffer` s, proxies the core's L1 allocator, and
wraps every kernel generator so each hazard is attributed to the kernel
and core that caused it.  DRAM buffers report their per-tile reads and
writes through :mod:`repro.analysis.hooks`, giving read-before-write
detection for every buffer created while a context is installed.

Hazard classes (stable ``kind`` strings):

* ``push-without-reserve`` — CB page written or pushed without a matching
  ``reserve_back``;
* ``pop-beyond-available`` — ``pop_front``/``get_page`` past the visible
  pages (a ``wait_front`` was skipped or undersized);
* ``cross-core-cb-access`` — a kernel touches a CB owned by a different
  core, or by a core outside the running program's core range;
* ``dram-read-before-write`` — a kernel reads a DRAM tile no host upload
  or kernel ever wrote;
* ``l1-double-free`` — an L1 allocation freed twice (or a free of a
  foreign allocation);
* ``l1-leak`` — an L1 allocation made during the program that is still
  live after the program's CBs are torn down.

Hazards accumulate in a :class:`SanitizerReport`; in halting mode
(default) the first hazard raises :class:`~repro.errors.SanitizerError`.
With no context installed every hook collapses to an ``is None`` check —
the sanitizer costs nothing when disabled.

Enable it with ``REPRO_SANITIZE=1`` (process-wide, ambient),
``EnqueueProgram(queue, program, sanitize=True)`` (one dispatch), or::

    with SanitizerContext(halt=False) as ctx:
        EnqueueProgram(queue, program)
    print(ctx.report.format())
"""

from __future__ import annotations

import weakref
from collections.abc import Generator
from dataclasses import dataclass

from ..errors import AllocationError, SanitizerError
from ..wormhole.circular_buffer import CircularBuffer
from ..wormhole.tile import Tile
from . import hooks

__all__ = ["Hazard", "SanitizerReport", "SanitizerContext",
           "SanitizedCircularBuffer", "HAZARD_KINDS"]

#: The stable hazard taxonomy (kind -> one-line description).
HAZARD_KINDS: dict[str, str] = {
    "push-without-reserve": "CB write/push without a matching reserve_back",
    "pop-beyond-available": "CB pop/peek past the pages made visible",
    "cross-core-cb-access": "CB access from a foreign or out-of-range core",
    "dram-read-before-write": "DRAM tile read before any write reached it",
    "l1-double-free": "L1 allocation freed twice",
    "l1-leak": "L1 allocation leaked past program teardown",
}


@dataclass(frozen=True)
class Hazard:
    """One detected violation, attributed to its program location."""

    kind: str
    message: str
    core: int | None = None
    kernel: str | None = None
    cb_id: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in HAZARD_KINDS:
            raise ValueError(f"unknown hazard kind {self.kind!r}")

    def format(self) -> str:
        parts = []
        if self.core is not None:
            parts.append(f"core {self.core}")
        if self.kernel is not None:
            parts.append(f"kernel {self.kernel!r}")
        if self.cb_id is not None:
            parts.append(f"cb {self.cb_id}")
        loc = f" [{', '.join(parts)}]" if parts else ""
        return f"{self.kind}{loc}: {self.message}"


class SanitizerReport:
    """Accumulated hazards of one sanitized execution."""

    def __init__(self) -> None:
        self.hazards: list[Hazard] = []

    @property
    def ok(self) -> bool:
        return not self.hazards

    def kinds(self) -> set[str]:
        return {h.kind for h in self.hazards}

    def __len__(self) -> int:
        return len(self.hazards)

    def __iter__(self):
        return iter(self.hazards)

    def format(self) -> str:
        if not self.hazards:
            return "sanitizer: clean"
        return "\n".join(h.format() for h in self.hazards)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SanitizerReport(hazards={len(self.hazards)})"


class SanitizerContext:
    """Hazard collector + the knobs for one sanitized execution scope.

    Usable as a context manager: entering installs it in
    :mod:`~repro.analysis.hooks` (so DRAM buffers created inside the scope
    are tracked and sanitized programs pick it up), leaving uninstalls it.
    The ambient context created by ``REPRO_SANITIZE=1`` stays installed
    for the process lifetime.
    """

    def __init__(self, *, halt: bool = True, ambient: bool = False) -> None:
        self.halt = halt
        self.ambient = ambient
        self.report = SanitizerReport()
        #: (core_index, kernel_name) currently executing, for attribution
        self.current: tuple[int, str] | None = None
        #: core indices of the running program (None outside programs)
        self.active_cores: set[int] | None = None
        #: per-DRAM-buffer sets of tile indices that were ever written
        self._written: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._prev: "SanitizerContext | None" = None

    # -- lifecycle ----------------------------------------------------------

    def __enter__(self) -> "SanitizerContext":
        self._prev = hooks.active()
        hooks.install(self)
        return self

    def __exit__(self, *exc_info) -> None:
        hooks.uninstall(self)
        if self._prev is not None:
            hooks.install(self._prev)
            self._prev = None

    # -- hazard recording ---------------------------------------------------

    def hazard(self, kind: str, message: str, *, core: int | None = None,
               kernel: str | None = None, cb_id: int | None = None) -> None:
        """Record one hazard; raise immediately when halting."""
        if core is None and self.current is not None:
            core = self.current[0]
        if kernel is None and self.current is not None:
            kernel = self.current[1]
        hazard = Hazard(kind, message, core=core, kernel=kernel, cb_id=cb_id)
        self.report.hazards.append(hazard)
        if self.halt:
            raise SanitizerError(
                f"sanitizer hazard: {hazard.format()}", hazard=hazard
            )

    # -- program scope (driven by the command queue) ------------------------

    def begin_program(self, program) -> None:
        self.active_cores = set(program.core_range)

    def end_program(self, program) -> None:
        self.active_cores = None
        self.current = None

    def create_cb(self, core, config) -> "SanitizedCircularBuffer":
        """Build one sanitized CB on ``core`` (registered and L1-backed)."""
        cb = SanitizedCircularBuffer(
            config.cb_id, config.capacity_pages, config.fmt,
            l1=core.l1, events=core.events, counter=core.counter,
            costs=core.costs, owner=core.core_id, sanitizer=self,
        )
        return core.adopt_cb(cb)

    def wrap_kernel(self, name: str, core_index: int, body_factory):
        """Wrap a kernel factory so each step is attributed to it."""

        def traced_factory(core) -> Generator[None, None, None]:
            inner = body_factory(core)

            def traced() -> Generator[None, None, None]:
                while True:
                    self.current = (core_index, name)
                    try:
                        next(inner)
                    except StopIteration:
                        return
                    finally:
                        self.current = None
                    yield

            return traced()

        return traced_factory

    def l1_guard(self, core) -> "SanitizedL1":
        return SanitizedL1(core.l1, self, core.core_id)

    # -- DRAM tile tracking (called from repro.metalium.buffer hooks) --------

    def on_buffer_created(self, buffer) -> None:
        self._written[buffer] = set()

    def on_buffer_written(self, buffer) -> None:
        """A full host-side write: every tile now holds valid data."""
        if buffer in self._written:
            self._written[buffer] = set(range(buffer.n_tiles))

    def on_tile_write(self, buffer, tile_index: int) -> None:
        written = self._written.get(buffer)
        if written is not None:
            written.add(tile_index)

    def on_tile_read(self, buffer, tile_index: int) -> None:
        """NoC tile read: hazard when the tile was never written.

        Only buffers whose creation this context observed are checked —
        a buffer created before the sanitizer was installed has unknown
        provenance and is conservatively trusted.
        """
        written = self._written.get(buffer)
        if written is not None and tile_index not in written:
            self.hazard(
                "dram-read-before-write",
                f"tile {tile_index} of a {buffer.n_tiles}-tile "
                f"{buffer.fmt.value} DRAM buffer is read but was never "
                f"written",
            )


class SanitizedCircularBuffer(CircularBuffer):
    """A circular buffer that attributes protocol violations as hazards.

    Checks run *before* delegating to the real implementation, so the
    hazard (with kernel/core attribution) is reported even though the
    base class would also raise.  In non-halting mode each violation is
    additionally *repaired* (the missing reservation granted, the missing
    pages substituted with zero tiles) so the program can keep running and
    surface further hazards in the same pass.
    """

    def __init__(self, *args, owner: int | None = None,
                 sanitizer: SanitizerContext, **kwargs) -> None:
        super().__init__(*args, owner=owner, **kwargs)
        self._san = sanitizer

    # -- common checks ------------------------------------------------------

    def _check_core_access(self) -> None:
        ctx = self._san
        if self.owner is None:
            return
        current = ctx.current
        if current is not None and current[0] != self.owner:
            ctx.hazard(
                "cross-core-cb-access",
                f"kernel running on core {current[0]} accesses cb "
                f"{self.cb_id} owned by core {self.owner}",
                cb_id=self.cb_id,
            )
        elif (ctx.active_cores is not None
              and self.owner not in ctx.active_cores):
            ctx.hazard(
                "cross-core-cb-access",
                f"cb {self.cb_id} on core {self.owner} accessed while the "
                f"running program's core range excludes that core",
                cb_id=self.cb_id,
            )

    # -- producer side ------------------------------------------------------

    def reserve_back(self, n_pages: int):
        self._check_core_access()
        return super().reserve_back(n_pages)

    def try_reserve_back(self, n_pages: int) -> bool:
        self._check_core_access()
        return super().try_reserve_back(n_pages)

    def write_page(self, tile) -> None:
        self._check_core_access()
        if self._reserved <= 0:
            self._san.hazard(
                "push-without-reserve",
                f"page written to cb {self.cb_id} with no reserved space "
                f"(reserve_back was skipped or undersized)",
                cb_id=self.cb_id,
            )
            self._reserved += 1  # non-halting: grant the reservation
        super().write_page(tile)

    def write_pages(self, tiles) -> None:
        self._check_core_access()
        tiles = list(tiles)
        deficit = len(tiles) - self._reserved
        if deficit > 0:
            self._san.hazard(
                "push-without-reserve",
                f"{len(tiles)} pages written to cb {self.cb_id} with only "
                f"{self._reserved} reserved",
                cb_id=self.cb_id,
            )
            self._reserved += deficit
        super().write_pages(tiles)

    def push_back(self, n_pages: int) -> None:
        self._check_core_access()
        if len(self._staged) < n_pages:
            self._san.hazard(
                "push-without-reserve",
                f"push_back({n_pages}) on cb {self.cb_id} with only "
                f"{len(self._staged)} staged pages written",
                cb_id=self.cb_id,
            )
            n_pages = len(self._staged)  # non-halting: push what exists
            if n_pages == 0:
                return
        super().push_back(n_pages)

    # -- consumer side ------------------------------------------------------

    def wait_front(self, n_pages: int):
        self._check_core_access()
        return super().wait_front(n_pages)

    def try_wait_front(self, n_pages: int) -> bool:
        self._check_core_access()
        return super().try_wait_front(n_pages)

    def get_page(self, index: int = 0):
        self._check_core_access()
        if index >= self.pages_available():
            self._san.hazard(
                "pop-beyond-available",
                f"peek at page {index} of cb {self.cb_id} with only "
                f"{self.pages_available()} pages visible",
                cb_id=self.cb_id,
            )
            return Tile.zeros(self.fmt)  # non-halting: placeholder page
        return super().get_page(index)

    def pop_front(self, n_pages: int):
        self._check_core_access()
        available = self.pages_available()
        if available < n_pages:
            self._san.hazard(
                "pop-beyond-available",
                f"pop_front({n_pages}) on cb {self.cb_id} with only "
                f"{available} pages visible (wait_front skipped or "
                f"undersized)",
                cb_id=self.cb_id,
            )
            # non-halting: hand back what exists, padded with zero tiles
            out = super().pop_front(available) if available else []
            return out + [Tile.zeros(self.fmt)] * (n_pages - available)
        return super().pop_front(n_pages)


class SanitizedL1:
    """Proxy over a core's :class:`L1Allocator` for one sanitized program.

    Tracks allocations made while the program runs: a second free of the
    same allocation is an ``l1-double-free`` hazard, and allocations still
    live at program teardown are ``l1-leak`` hazards.  All other
    attributes delegate to the real allocator.
    """

    def __init__(self, inner, ctx: SanitizerContext, core_id: int) -> None:
        self._inner = inner
        self._ctx = ctx
        self._core_id = core_id
        self._live_during: dict[int, object] = {}

    def allocate(self, size: int):
        alloc = self._inner.allocate(size)
        self._live_during[alloc.offset] = alloc
        return alloc

    def free(self, alloc) -> None:
        try:
            self._inner.free(alloc)
        except AllocationError:
            self._ctx.hazard(
                "l1-double-free",
                f"free of L1 allocation at offset {alloc.offset} "
                f"({alloc.size} B) on core {self._core_id} which is not "
                f"live (double free or foreign allocation)",
                core=self._ctx.current[0] if self._ctx.current
                else self._core_id,
            )
            return
        self._live_during.pop(alloc.offset, None)

    def check_leaks(self) -> None:
        """Report allocations made during the program that are still live."""
        leaked = sorted(self._live_during)
        if leaked:
            total = sum(a.size for a in self._live_during.values())
            self._ctx.hazard(
                "l1-leak",
                f"{len(leaked)} L1 allocation(s) totalling {total} B on "
                f"core {self._core_id} were never freed by program "
                f"teardown",
                core=self._core_id,
            )

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

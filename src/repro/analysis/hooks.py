"""Sanitizer hook registry: the one global the low-level layers consult.

The runtime sanitizer (:mod:`repro.analysis.sanitizer`) wraps circular
buffers, the L1 allocator, and DRAM buffers with hazard detection.  The
device layers cannot import the sanitizer directly (that would invert the
layering), so instead they check this module's single slot on their hot
paths::

    ctx = hooks.active()
    if ctx is not None:
        ctx.on_tile_write(self, tile_index)

When no sanitizer is installed the check is one module-attribute read and
an ``is None`` comparison — the zero-overhead-when-disabled contract.

``REPRO_SANITIZE=1`` in the environment installs a process-wide ambient
context at import time, so every DRAM buffer created afterwards is
tracked from birth and every enqueued program runs sanitized.  Explicit
per-call sanitizing (``EnqueueProgram(..., sanitize=True)`` or
``with SanitizerContext(): ...``) installs a context temporarily.

This module must stay import-light: it is imported by
:mod:`repro.metalium.buffer` and :mod:`repro.metalium.command_queue`, and
only pulls the sanitizer in when the environment asks for it.
"""

from __future__ import annotations

import os

__all__ = ["active", "install", "uninstall", "env_sanitize_enabled"]

#: The active sanitizer context, or None.  Read on device-layer hot paths.
_active = None


def active():
    """The installed :class:`SanitizerContext`, or None when disabled."""
    return _active


def install(ctx) -> None:
    """Make ``ctx`` the process-wide active sanitizer context."""
    global _active
    _active = ctx


def uninstall(ctx) -> None:
    """Remove ``ctx`` if it is the active context (no-op otherwise)."""
    global _active
    if _active is ctx:
        _active = None


def env_sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests process-wide sanitizing."""
    from ..config import env_flag

    return env_flag(os.environ.get("REPRO_SANITIZE"), name="REPRO_SANITIZE")


def _maybe_install_from_env() -> None:
    if env_sanitize_enabled() and _active is None:
        from .sanitizer import SanitizerContext

        install(SanitizerContext(ambient=True))


_maybe_install_from_env()

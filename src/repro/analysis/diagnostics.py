"""Structured diagnostics for the program and host linters.

Every finding the :class:`~repro.analysis.ProgramLinter` or the
:class:`~repro.analysis.hostlint.HostLinter` emits is a
:class:`Diagnostic` with a stable rule id, a severity, the location it
refers to, and a fix hint.  Device findings (``WH001``...) locate by
core / kernel / circular buffer; host findings (``RH001``...) locate by
source path and line.  Rule ids are stable across releases so CI gates,
suppression lists, baselines, and the seeded-defect test suites can key
on them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Diagnostic", "LintReport", "RULES", "HOST_RULES"]


class Severity(enum.Enum):
    """How bad a finding is: errors gate dispatch, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


#: The rule catalogue: stable id -> one-line description.  Append-only.
RULES: dict[str, str] = {
    "WH001": "circular buffers overflow the core's L1 SRAM budget",
    "WH002": "circular buffer page traffic is producer/consumer unbalanced",
    "WH003": "request exceeds circular buffer capacity (guaranteed deadlock)",
    "WH004": "duplicate circular buffer id registered on one program",
    "WH005": "data format mismatch between circular buffer and its traffic",
    "WH006": "kernel role/kind pairing violates the execution model",
    "WH007": "runtime argument unset (crash at dispatch) or never read",
    "WH008": "kernel accesses a circular buffer the program never configures",
    "WH009": "configured circular buffer is never accessed by any kernel",
    "WH010": "core range exceeds the device's Tensix grid",
    "WH011": "dry run incomplete: kernel aborted or step budget exhausted",
    "RH001": "blocking call inside an async function stalls the event loop",
    "RH002": "wall-clock time source used in a modelled-time module",
    "RH003": "unseeded global RNG breaks run-to-run reproducibility",
    "RH004": "iteration over an unordered set feeds results "
             "(nondeterministic order)",
    "RH005": "resource acquired without `with` or close-on-all-paths",
    "RH006": "raw os.environ boolean read bypasses config.env_flag",
    "RH007": "durability-critical append write without flush + fsync",
    "RH008": "exception handler silently swallows broad exceptions",
    "RH009": "import violates the ARCHITECTURE layer map",
    "RH010": "module-level mutable global mutated from shard-worker code",
    "RH011": "asyncio task created and dropped (may be garbage-collected "
             "mid-flight)",
    "RH012": "lock acquired without release on all paths",
}

#: The host-lint (``RH``) subset of :data:`RULES`, in catalogue order.
HOST_RULES: dict[str, str] = {
    rule: text for rule, text in RULES.items() if rule.startswith("RH")
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, locatable and machine-checkable by rule id."""

    rule: str
    severity: Severity
    message: str
    hint: str = ""
    core: int | None = None
    kernel: str | None = None
    cb_id: int | None = None
    path: str | None = None
    line: int | None = None

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown lint rule id {self.rule!r}")

    def location(self) -> str:
        parts = []
        if self.path is not None:
            where = self.path
            if self.line is not None:
                where += f":{self.line}"
            parts.append(where)
        if self.core is not None:
            parts.append(f"core {self.core}")
        if self.kernel is not None:
            parts.append(f"kernel {self.kernel!r}")
        if self.cb_id is not None:
            parts.append(f"cb {self.cb_id}")
        return ", ".join(parts)

    def format(self) -> str:
        loc = self.location()
        text = f"{self.rule} {self.severity.value}"
        if loc:
            text += f" [{loc}]"
        text += f": {self.message}"
        if self.hint:
            text += f"  (fix: {self.hint})"
        return text


class LintReport:
    """The linter's verdict on one program: an ordered set of diagnostics."""

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = tuple(diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist."""
        return not self.errors

    def rules_fired(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def format(self) -> str:
        if not self.diagnostics:
            return "clean: no findings"
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def raise_on_error(self) -> None:
        """Raise :class:`~repro.errors.LintError` if any error finding exists."""
        if not self.ok:
            from ..errors import LintError

            raise LintError(
                f"program failed lint with {len(self.errors)} error(s):\n"
                + self.format(),
                report=self,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LintReport(errors={len(self.errors)}, "
            f"warnings={len(self.warnings)})"
        )

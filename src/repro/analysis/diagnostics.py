"""Structured diagnostics for the program linter.

Every finding the :class:`~repro.analysis.ProgramLinter` emits is a
:class:`Diagnostic` with a stable rule id (``WH001``...), a severity, the
program location it refers to (core / kernel / circular buffer), and a fix
hint.  Rule ids are stable across releases so CI gates, suppression lists,
and the seeded-defect test suite can key on them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Severity", "Diagnostic", "LintReport", "RULES"]


class Severity(enum.Enum):
    """How bad a finding is: errors gate dispatch, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


#: The rule catalogue: stable id -> one-line description.  Append-only.
RULES: dict[str, str] = {
    "WH001": "circular buffers overflow the core's L1 SRAM budget",
    "WH002": "circular buffer page traffic is producer/consumer unbalanced",
    "WH003": "request exceeds circular buffer capacity (guaranteed deadlock)",
    "WH004": "duplicate circular buffer id registered on one program",
    "WH005": "data format mismatch between circular buffer and its traffic",
    "WH006": "kernel role/kind pairing violates the execution model",
    "WH007": "runtime argument unset (crash at dispatch) or never read",
    "WH008": "kernel accesses a circular buffer the program never configures",
    "WH009": "configured circular buffer is never accessed by any kernel",
    "WH010": "core range exceeds the device's Tensix grid",
    "WH011": "dry run incomplete: kernel aborted or step budget exhausted",
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, locatable and machine-checkable by rule id."""

    rule: str
    severity: Severity
    message: str
    hint: str = ""
    core: int | None = None
    kernel: str | None = None
    cb_id: int | None = None

    def __post_init__(self) -> None:
        if self.rule not in RULES:
            raise ValueError(f"unknown lint rule id {self.rule!r}")

    def location(self) -> str:
        parts = []
        if self.core is not None:
            parts.append(f"core {self.core}")
        if self.kernel is not None:
            parts.append(f"kernel {self.kernel!r}")
        if self.cb_id is not None:
            parts.append(f"cb {self.cb_id}")
        return ", ".join(parts)

    def format(self) -> str:
        loc = self.location()
        text = f"{self.rule} {self.severity.value}"
        if loc:
            text += f" [{loc}]"
        text += f": {self.message}"
        if self.hint:
            text += f"  (fix: {self.hint})"
        return text


class LintReport:
    """The linter's verdict on one program: an ordered set of diagnostics."""

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = tuple(diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.ERROR
        )

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def ok(self) -> bool:
        """True when no error-severity findings exist."""
        return not self.errors

    def rules_fired(self) -> set[str]:
        return {d.rule for d in self.diagnostics}

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def format(self) -> str:
        if not self.diagnostics:
            return "clean: no findings"
        lines = [d.format() for d in self.diagnostics]
        lines.append(
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s)"
        )
        return "\n".join(lines)

    def raise_on_error(self) -> None:
        """Raise :class:`~repro.errors.LintError` if any error finding exists."""
        if not self.ok:
            from ..errors import LintError

            raise LintError(
                f"program failed lint with {len(self.errors)} error(s):\n"
                + self.format(),
                report=self,
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LintReport(errors={len(self.errors)}, "
            f"warnings={len(self.warnings)})"
        )

"""Watcher: static linting + runtime sanitizing for the Metalium layer.

Two complementary correctness layers for device programs:

* :class:`ProgramLinter` statically analyses a
  :class:`~repro.metalium.kernel.Program` *before* dispatch — L1 budget,
  CB balance, deadlock-prone capacities, format mismatches, role/kind
  pairings, runtime-arg coverage — and reports structured
  :class:`Diagnostic` s with stable ``WHxxx`` rule ids.
* :class:`SanitizerContext` runs a program in checked mode — CB protocol
  violations, cross-core CB access, DRAM read-before-write, and L1
  double-free/leak hazards are caught *as they happen* with kernel/core
  attribution, at zero cost when disabled.

A third leg, Watcher-Host (:mod:`repro.analysis.hostlint`), points the
same Diagnostic machinery back at the repo itself: a pure-``ast`` lint
pass with stable ``RHxxx`` rule ids covering concurrency, determinism
and resource-lifecycle invariants of the host-side Python stack.

This package depends only on :mod:`repro.wormhole`, :mod:`repro.config`
and :mod:`repro.errors`; it never imports :mod:`repro.metalium`
(programs are duck-typed), which lets the Metalium layer call into it
without cycles.
"""

from .diagnostics import Diagnostic, HOST_RULES, LintReport, RULES, Severity
from .hooks import active, env_sanitize_enabled, install, uninstall
from .hostlint import Baseline, HostLinter, host_rules
from .linter import ProgramLinter, cb_l1_bytes
from .recording import (
    CoreTrace,
    KernelTrace,
    RecordingCB,
    RecordingCore,
    RuntimeArgsProbe,
    dry_run_program,
)
from .sanitizer import (
    HAZARD_KINDS,
    Hazard,
    SanitizedCircularBuffer,
    SanitizerContext,
    SanitizerReport,
)

__all__ = [
    "Baseline",
    "Diagnostic",
    "HOST_RULES",
    "HostLinter",
    "LintReport",
    "RULES",
    "Severity",
    "host_rules",
    "ProgramLinter",
    "cb_l1_bytes",
    "CoreTrace",
    "KernelTrace",
    "RecordingCB",
    "RecordingCore",
    "RuntimeArgsProbe",
    "dry_run_program",
    "HAZARD_KINDS",
    "Hazard",
    "SanitizedCircularBuffer",
    "SanitizerContext",
    "SanitizerReport",
    "active",
    "env_sanitize_enabled",
    "install",
    "uninstall",
]

"""The static program linter: WH-rules checked before ``EnqueueProgram``.

A :class:`Program` that over-commits L1, unbalances a circular buffer's
push/pop contract, or forgets a runtime arg is only discovered mid-run
today — as a deadlock, an allocation failure, or a ``KeyError`` deep in
the scheduler.  :class:`ProgramLinter` finds those defects *before*
dispatch by combining:

* **static structure checks** over the program object (L1 budget, dup CB
  ids, role/kind pairing, core range vs the Tensix grid); and
* **dry-run dataflow checks**: every kernel generator is executed against
  :mod:`recording <repro.analysis.recording>` stubs, per core, and the
  observed CB traffic, capacity requests, and runtime-arg reads are
  checked for contract violations.

Findings come back as a :class:`~repro.analysis.diagnostics.LintReport`
of :class:`Diagnostic` s with stable ``WH0xx`` rule ids; see
``docs/API.md`` for the rule catalogue.

The dry run executes the kernels' real host-side effects (DRAM/NoC
traffic against buffers the kernels close over).  When the target
``device`` is passed, its accounting state — cycle counters, DRAM byte
counters, NoC statistics — is snapshotted and restored so linting is
invisible to telemetry.  DRAM *contents* written by write kernels are not
restored; lint before dispatch (the intended point) and the program's own
output overwrites them.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..wormhole.dtypes import storage_bytes_per_element
from ..wormhole.l1 import L1_ALIGN
from ..wormhole.params import ChipParams, CostParams, DEFAULT_COSTS, WORMHOLE_N300
from ..wormhole.riscv import COMPUTE_ROLES, DATA_MOVEMENT_ROLES
from ..wormhole.tile import TILE_ELEMENTS
from . import hooks
from .diagnostics import Diagnostic, LintReport, Severity
from .recording import CoreTrace, dry_run_program

__all__ = ["ProgramLinter", "cb_l1_bytes"]


def cb_l1_bytes(config, fmt_fallback=None) -> int:
    """L1 bytes one CB config consumes (page size aligned as the allocator)."""
    fmt = getattr(config, "fmt", fmt_fallback)
    page_bytes = storage_bytes_per_element(fmt) * TILE_ELEMENTS
    raw = max(config.capacity_pages, 0) * page_bytes
    return (raw + L1_ALIGN - 1) & ~(L1_ALIGN - 1)


@dataclass
class _Finding:
    """A diagnostic under aggregation across cores."""

    diag: Diagnostic
    cores: set[int]


class ProgramLinter:
    """Pre-dispatch analysis of a :class:`~repro.metalium.Program`.

    ``cores`` selects which core indices to dry-run: ``"all"`` (default)
    covers every core in the program's range (per-core runtime args get
    per-core checking), ``"first"`` dry-runs only the first core, and an
    iterable of ints selects explicit indices.
    """

    def __init__(self, *, chip: ChipParams = WORMHOLE_N300,
                 costs: CostParams = DEFAULT_COSTS,
                 cores: str | list[int] = "all",
                 max_steps: int = 1_000_000) -> None:
        self.chip = chip
        self.costs = costs
        self.cores = cores
        self.max_steps = max_steps

    # -- entry point --------------------------------------------------------

    def lint(self, program, device=None) -> LintReport:
        """Analyse ``program``; returns the diagnostics as a report."""
        if device is not None:
            self.chip = device.chip
            self.costs = device.costs
        findings: dict[tuple, _Finding] = {}

        self._check_l1_budget(program, findings)          # WH001
        self._check_duplicate_cbs(program, findings)      # WH004
        self._check_roles(program, findings)              # WH006
        self._check_core_range(program, findings)         # WH010

        # Suspend any installed sanitizer for the dry run: stubbed kernels
        # still exercise their real DRAM traffic, which must not be judged
        # as program execution (outputs are legitimately unwritten pre-run).
        sanitizer = hooks.active()
        if sanitizer is not None:
            hooks.uninstall(sanitizer)
        snapshot = _AccountingSnapshot(device) if device is not None else None
        try:
            traces = [
                self._dry_run(program, core_index)
                for core_index in self._core_indices(program)
            ]
        finally:
            if snapshot is not None:
                snapshot.restore()
            if sanitizer is not None:
                hooks.install(sanitizer)

        self._check_traces(program, traces, findings)     # WH002/3/5/7/8/11
        self._check_unused_cbs(program, traces, findings)  # WH009

        return LintReport(self._render(findings))

    # -- static rules -------------------------------------------------------

    def _check_l1_budget(self, program, findings) -> None:
        total = sum(cb_l1_bytes(c) for c in program.cbs)
        budget = self.chip.l1_bytes
        if total > budget:
            self._add(
                findings, "WH001", Severity.ERROR,
                f"circular buffers need {total} B of L1 but the core has "
                f"{budget} B",
                hint="shrink capacity_pages or drop double-buffering on the "
                     "widest CB",
            )

    def _check_duplicate_cbs(self, program, findings) -> None:
        counts = Counter(c.cb_id for c in program.cbs)
        for cb_id, n in sorted(counts.items()):
            if n > 1:
                self._add(
                    findings, "WH004", Severity.ERROR,
                    f"cb {cb_id} is configured {n} times",
                    hint="give each CB a unique id; later configs silently "
                         "lose on hardware",
                    cb_id=cb_id,
                )

    def _check_roles(self, program, findings) -> None:
        roles = Counter()
        for spec in program.kernels:
            roles[spec.role] += 1
            if spec.kind not in ("compute", "data_movement"):
                self._add(
                    findings, "WH006", Severity.ERROR,
                    f"kernel {spec.name!r} has unknown kind {spec.kind!r}",
                    hint="use 'compute' or 'data_movement'",
                    kernel=spec.name,
                )
            elif spec.kind == "compute" and spec.role not in COMPUTE_ROLES:
                self._add(
                    findings, "WH006", Severity.ERROR,
                    f"compute kernel {spec.name!r} bound to data-movement "
                    f"slot {spec.role.value}",
                    hint="compute kernels must bind T0/T1/T2",
                    kernel=spec.name,
                )
            elif (spec.kind == "data_movement"
                  and spec.role not in DATA_MOVEMENT_ROLES):
                self._add(
                    findings, "WH006", Severity.ERROR,
                    f"data movement kernel {spec.name!r} bound to compute "
                    f"slot {spec.role.value}",
                    hint="data movement kernels must bind NC/B",
                    kernel=spec.name,
                )
        for role, n in roles.items():
            if n > 1:
                self._add(
                    findings, "WH006", Severity.ERROR,
                    f"{n} kernels bound to the same RISC-V slot "
                    f"{role.value}",
                    hint="each baby core runs exactly one kernel per program",
                )

    def _check_core_range(self, program, findings) -> None:
        cr = program.core_range
        if cr.start < 0 or cr.end > self.chip.n_tensix_cores:
            self._add(
                findings, "WH010", Severity.ERROR,
                f"core range [{cr.start}, {cr.end}) exceeds the "
                f"{self.chip.n_tensix_cores}-core Tensix grid",
                hint="clamp the range to the device's core count",
            )

    # -- dry-run rules ------------------------------------------------------

    def _core_indices(self, program) -> list[int]:
        if self.cores == "all":
            indices = list(program.core_range)
        elif self.cores == "first":
            indices = [program.core_range.start]
        else:
            indices = list(self.cores)
        # never dry-run off-grid cores (WH010 already reported them)
        return [i for i in indices if 0 <= i < self.chip.n_tensix_cores]

    def _dry_run(self, program, core_index: int) -> CoreTrace:
        fmt = program.cbs[0].fmt if program.cbs else None
        kwargs = {} if fmt is None else {"fmt": fmt}
        return dry_run_program(
            program, core_index, chip=self.chip, costs=self.costs,
            max_steps=self.max_steps, **kwargs,
        )

    def _check_traces(self, program, traces, findings) -> None:
        configured = {c.cb_id for c in program.cbs}
        for trace in traces:
            core = trace.core_index
            for ktrace in trace.kernels:
                for key in sorted(ktrace.missing_args):
                    self._add(
                        findings, "WH007", Severity.ERROR,
                        f"kernel {ktrace.name!r} reads runtime arg "
                        f"{key!r} which is not set for core {core}",
                        hint="call SetRuntimeArgs for every core in the "
                             "program's range",
                        kernel=ktrace.name, core=core,
                    )
                if ktrace.error is not None:
                    self._add(
                        findings, "WH011", Severity.WARNING,
                        f"kernel {ktrace.name!r} raised during the dry "
                        f"run: {ktrace.error!r}; dataflow checks are "
                        f"incomplete for this core",
                        kernel=ktrace.name, core=core,
                    )
                elif ktrace.truncated:
                    self._add(
                        findings, "WH011", Severity.WARNING,
                        f"kernel {ktrace.name!r} exceeded the "
                        f"{self.max_steps}-step dry-run budget",
                        hint="raise max_steps or check for a free-running "
                             "loop",
                        kernel=ktrace.name, core=core,
                    )
            for cb_id in sorted(trace.unknown_cbs):
                self._add(
                    findings, "WH008", Severity.ERROR,
                    f"kernel accesses cb {cb_id} which the program never "
                    f"configures",
                    hint="add CreateCircularBuffer(program, "
                         f"cb_id={cb_id}, ...) before the kernels",
                    cb_id=cb_id, core=core,
                )
            # aborted kernels leave traffic half-recorded: skip the
            # balance/capacity checks to avoid cascading noise
            if trace.aborted:
                continue
            self._check_core_dataflow(trace, configured, findings)
            # unused runtime args, per core
            args = program.args_for(core)
            accessed = set()
            for ktrace in trace.kernels:
                accessed |= ktrace.accessed_args
            for key in sorted(set(args) - accessed):
                self._add(
                    findings, "WH007", Severity.WARNING,
                    f"runtime arg {key!r} is set for core {core} but no "
                    f"kernel reads it",
                    hint="drop the arg or wire it into a kernel",
                    core=core,
                )
        # args set for cores outside the program's range
        in_range = set(program.core_range)
        for core_index in sorted(set(program.runtime_args) - in_range):
            self._add(
                findings, "WH007", Severity.WARNING,
                f"runtime args set for core {core_index}, which is outside "
                f"the program's core range "
                f"[{program.core_range.start}, {program.core_range.end})",
                hint="extend the core range or drop the stray args",
                core=core_index,
            )

    def _check_core_dataflow(self, trace, configured, findings) -> None:
        core = trace.core_index
        for cb_id, cb in sorted(trace.cbs.items()):
            if cb_id not in configured:
                continue  # WH008 already covers stub CBs
            for request, what in (
                (cb.max_reserve_request, "reserve_back"),
                (cb.max_wait_request, "wait_front"),
            ):
                if request > cb.capacity_pages:
                    self._add(
                        findings, "WH003", Severity.ERROR,
                        f"{what}({request}) on cb {cb_id} with capacity "
                        f"{cb.capacity_pages} pages can never succeed",
                        hint="grow capacity_pages to at least the largest "
                             "block the kernels move",
                        cb_id=cb_id, core=core,
                    )
            if cb.capacity_pages <= 0:
                self._add(
                    findings, "WH003", Severity.ERROR,
                    f"cb {cb_id} has non-positive capacity "
                    f"{cb.capacity_pages}",
                    hint="capacity_pages must be >= 1",
                    cb_id=cb_id, core=core,
                )
            if cb.pages_popped > cb.pages_pushed:
                self._add(
                    findings, "WH002", Severity.ERROR,
                    f"cb {cb_id}: consumers pop {cb.pages_popped} pages "
                    f"but producers push only {cb.pages_pushed} — the "
                    f"consumer blocks forever",
                    hint="match the producer and consumer page loops",
                    cb_id=cb_id, core=core,
                )
            elif cb.pages_pushed > cb.pages_popped:
                self._add(
                    findings, "WH002", Severity.WARNING,
                    f"cb {cb_id}: producers push {cb.pages_pushed} pages "
                    f"but consumers pop only {cb.pages_popped} — "
                    f"{cb.pages_pushed - cb.pages_popped} pages are never "
                    f"consumed",
                    hint="match the producer and consumer page loops",
                    cb_id=cb_id, core=core,
                )
            bad_fmts = {f for f in cb.write_fmts if f is not cb.fmt}
            if bad_fmts:
                names = ", ".join(sorted(f.value for f in bad_fmts))
                self._add(
                    findings, "WH005", Severity.WARNING,
                    f"cb {cb_id} is configured {cb.fmt.value} but receives "
                    f"{names} pages (converted page-by-page at runtime)",
                    hint="align the CBConfig format with the DRAM buffer "
                         "and kernel traffic",
                    cb_id=cb_id, core=core,
                )

    def _check_unused_cbs(self, program, traces, findings) -> None:
        if not traces or all(t.aborted for t in traces):
            return
        for config in program.cbs:
            touched = any(
                t.cbs.get(config.cb_id) is not None
                and t.cbs[config.cb_id].touched
                for t in traces
            )
            if not touched:
                self._add(
                    findings, "WH009", Severity.WARNING,
                    f"cb {config.cb_id} is configured (and holds "
                    f"{cb_l1_bytes(config)} B of L1 on every core) but no "
                    f"kernel touches it",
                    hint="drop the CBConfig or wire the CB into a kernel",
                    cb_id=config.cb_id,
                )

    # -- finding aggregation -------------------------------------------------

    def _add(self, findings, rule, severity, message, *, hint="",
             kernel=None, cb_id=None, core=None) -> None:
        # one diagnostic per (rule, kernel, cb, message-shape); repeated
        # cores aggregate into a count instead of 64 near-identical lines
        key = (rule, kernel, cb_id, message if core is None
               else message.replace(f"core {core}", "core <n>"))
        found = findings.get(key)
        if found is None:
            findings[key] = _Finding(
                Diagnostic(rule, severity, message, hint=hint,
                           kernel=kernel, cb_id=cb_id, core=core),
                set() if core is None else {core},
            )
        elif core is not None:
            found.cores.add(core)

    def _render(self, findings) -> list[Diagnostic]:
        out = []
        for found in findings.values():
            diag = found.diag
            if len(found.cores) > 1:
                diag = Diagnostic(
                    diag.rule, diag.severity,
                    diag.message + f" (likewise on {len(found.cores) - 1} "
                    f"more core(s))",
                    hint=diag.hint, kernel=diag.kernel, cb_id=diag.cb_id,
                    core=diag.core,
                )
            out.append(diag)
        order = {Severity.ERROR: 0, Severity.WARNING: 1}
        out.sort(key=lambda d: (order[d.severity], d.rule))
        return out


class _AccountingSnapshot:
    """Save/restore a device's telemetry state around a lint dry run."""

    def __init__(self, device) -> None:
        self.device = device
        self.dram = (device.dram.bytes_read, device.dram.bytes_written)
        self.nocs = [
            (n.stats.transactions, n.stats.bytes_read,
             n.stats.bytes_written, n.stats.total_hops)
            for n in device.nocs
        ]
        self.cores = [
            (c.counter.compute_cycles, c.counter.datamove_cycles,
             Counter(c.counter.ops.counts))
            for c in device.cores
        ]

    def restore(self) -> None:
        dev = self.device
        dev.dram.bytes_read, dev.dram.bytes_written = self.dram
        for noc, (tx, br, bw, hops) in zip(dev.nocs, self.nocs):
            noc.stats.transactions = tx
            noc.stats.bytes_read = br
            noc.stats.bytes_written = bw
            noc.stats.total_hops = hops
        for core, (cc, dc, ops) in zip(dev.cores, self.cores):
            core.counter.compute_cycles = cc
            core.counter.datamove_cycles = dc
            core.counter.ops.counts = ops

"""Recording stubs for dry-running kernel generators before dispatch.

The linter's dataflow rules (CB balance, capacity deadlocks, runtime-arg
usage, unknown-CB access) cannot be read off the :class:`Program` object —
kernel bodies are opaque generator factories.  Instead the linter *dry
runs* every kernel against this module's stubs:

* :class:`RecordingCB` mimics the :class:`~repro.wormhole.circular_buffer.
  CircularBuffer` protocol but never blocks and never raises: every
  reserve/push/wait/pop is recorded (page totals, largest request, tile
  formats written) and consumers receive placeholder pages.  Kernels
  therefore run straight through to completion without a scheduler.
* :class:`RecordingCore` is a private :class:`~repro.wormhole.tensix.
  TensixCore` whose CB registry is pre-populated with recording stubs, so
  compute charges land on a throwaway counter instead of the device's.
* :class:`RuntimeArgsProbe` wraps the per-core runtime args and records
  which keys the kernel read and which reads missed.

A dry run executes the kernels' host-visible side effects (a read kernel
really does charge its DRAM/NoC traffic against the buffers it closes
over); the linter snapshots and restores the device's accounting state
around the run when given the device.
"""

from __future__ import annotations

from collections.abc import Generator, Iterator
from dataclasses import dataclass, field
from typing import Any

from ..wormhole.dtypes import DataFormat
from ..wormhole.noc import NocCoordinate
from ..wormhole.params import ChipParams, CostParams, DEFAULT_COSTS, WORMHOLE_N300
from ..wormhole.tensix import TensixCore
from ..wormhole.tile import Tile

__all__ = [
    "RecordingCB",
    "RecordingCore",
    "RuntimeArgsProbe",
    "KernelTrace",
    "CoreTrace",
    "dry_run_program",
]

#: Effectively-unbounded capacity for stubs standing in for unknown CBs.
_UNBOUNDED = 1 << 30


class RecordingCB:
    """Never-blocking circular-buffer stand-in that records its traffic."""

    def __init__(self, cb_id: int, capacity_pages: int,
                 fmt: DataFormat = DataFormat.FLOAT32) -> None:
        self.cb_id = cb_id
        self.capacity_pages = capacity_pages
        self.fmt = fmt
        self._placeholder = Tile.zeros(fmt)
        # traffic record
        self.pages_pushed = 0
        self.pages_popped = 0
        self.pages_written = 0
        self.max_reserve_request = 0
        self.max_wait_request = 0
        self.write_fmts: set[DataFormat] = set()
        self.ops = 0

    @property
    def touched(self) -> bool:
        return self.ops > 0

    def _op(self) -> None:
        self.ops += 1

    # -- producer side ------------------------------------------------------

    def reserve_back(self, n_pages: int) -> Generator[None, None, None]:
        self._op()
        self.max_reserve_request = max(self.max_reserve_request, n_pages)
        return
        yield  # pragma: no cover - makes this a (never-yielding) generator

    def try_reserve_back(self, n_pages: int) -> bool:
        self._op()
        self.max_reserve_request = max(self.max_reserve_request, n_pages)
        return True

    def write_page(self, tile: Tile) -> None:
        self._op()
        self.pages_written += 1
        fmt = getattr(tile, "fmt", None)
        if fmt is not None:
            self.write_fmts.add(fmt)

    def write_pages(self, tiles) -> None:
        for tile in tiles:
            self.write_page(tile)

    def push_back(self, n_pages: int) -> None:
        self._op()
        self.pages_pushed += n_pages

    # -- consumer side ------------------------------------------------------

    def wait_front(self, n_pages: int) -> Generator[None, None, None]:
        self._op()
        self.max_wait_request = max(self.max_wait_request, n_pages)
        return
        yield  # pragma: no cover - generator marker

    def try_wait_front(self, n_pages: int) -> bool:
        self._op()
        self.max_wait_request = max(self.max_wait_request, n_pages)
        return True

    def get_page(self, index: int = 0) -> Tile:
        self._op()
        return self._placeholder

    def pop_front(self, n_pages: int) -> list[Tile]:
        self._op()
        self.pages_popped += n_pages
        return [self._placeholder] * n_pages

    # -- inspection (permissive: the dry run must never stall) --------------

    def pages_available(self) -> int:
        return self.capacity_pages

    def pages_free(self) -> int:
        return self.capacity_pages

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RecordingCB(id={self.cb_id}, pushed={self.pages_pushed}, "
            f"popped={self.pages_popped})"
        )


class RecordingCore(TensixCore):
    """A throwaway Tensix core whose CB registry holds recording stubs.

    Compute/SFPU/FPU charges issued by the kernel land on this core's own
    counter, not on any device core.  ``core_id`` mirrors the index the
    kernel would run on, so closures over DRAM buffers address the right
    (real) tiles during the dry run.
    """

    def __init__(self, core_id: int, chip: ChipParams = WORMHOLE_N300,
                 costs: CostParams = DEFAULT_COSTS,
                 fmt: DataFormat = DataFormat.FLOAT32) -> None:
        super().__init__(
            core_id,
            NocCoordinate(core_id % chip.grid_w, core_id // chip.grid_w),
            chip, costs, fmt,
        )
        self.unknown_cbs: set[int] = set()

    def install_recording_cb(self, cb_id: int, capacity_pages: int,
                             fmt: DataFormat) -> RecordingCB:
        cb = RecordingCB(cb_id, capacity_pages, fmt)
        self.cbs[cb_id] = cb  # type: ignore[assignment] - duck-typed stub
        return cb

    def get_cb(self, cb_id: int):
        cb = self.cbs.get(cb_id)
        if cb is None:
            # Unknown id: record the defect and hand out an unbounded stub
            # so the dry run can keep going and find more problems.
            self.unknown_cbs.add(cb_id)
            cb = self.install_recording_cb(cb_id, _UNBOUNDED, self.fmt)
        return cb


class RuntimeArgsProbe:
    """Mapping proxy over one core's runtime args, recording key usage."""

    def __init__(self, args: dict[str, Any]) -> None:
        self._args = args
        self.accessed: set[str] = set()
        self.missing: set[str] = set()

    def __getitem__(self, key: str) -> Any:
        self.accessed.add(key)
        try:
            return self._args[key]
        except KeyError:
            self.missing.add(key)
            raise

    def get(self, key: str, default: Any = None) -> Any:
        self.accessed.add(key)
        return self._args.get(key, default)

    def __contains__(self, key: str) -> bool:
        self.accessed.add(key)
        return key in self._args

    def keys(self):
        return self._args.keys()

    def items(self):
        return self._args.items()

    def __iter__(self) -> Iterator[str]:
        return iter(self._args)

    def __len__(self) -> int:
        return len(self._args)


@dataclass
class KernelTrace:
    """Outcome of dry-running one kernel on one core."""

    name: str
    completed: bool = True
    steps: int = 0
    #: runtime-arg keys the kernel tried to read but were not set
    missing_args: set[str] = field(default_factory=set)
    #: runtime-arg keys the kernel read
    accessed_args: set[str] = field(default_factory=set)
    #: exception (other than a missing-arg KeyError) that aborted the run
    error: BaseException | None = None
    truncated: bool = False


@dataclass
class CoreTrace:
    """Everything one core's dry run observed."""

    core_index: int
    cbs: dict[int, RecordingCB] = field(default_factory=dict)
    kernels: list[KernelTrace] = field(default_factory=list)
    unknown_cbs: set[int] = field(default_factory=set)

    @property
    def aborted(self) -> bool:
        """True when any kernel failed to run to completion."""
        return any(not k.completed for k in self.kernels)


def dry_run_program(program, core_index: int, *,
                    chip: ChipParams = WORMHOLE_N300,
                    costs: CostParams = DEFAULT_COSTS,
                    fmt: DataFormat = DataFormat.FLOAT32,
                    max_steps: int = 1_000_000) -> CoreTrace:
    """Run every kernel of ``program`` for one core against recording stubs.

    Kernels execute sequentially (recording CBs never block, so no
    scheduler is needed) with a per-kernel step budget guarding against
    free-running generators.  Exceptions abort the offending kernel but
    not the dry run.
    """
    core = RecordingCore(core_index, chip, costs, fmt)
    trace = CoreTrace(core_index)
    for config in program.cbs:
        cb_fmt = getattr(config, "fmt", fmt)
        trace.cbs[config.cb_id] = core.install_recording_cb(
            config.cb_id, config.capacity_pages, cb_fmt
        )
    for spec in program.kernels:
        probe = RuntimeArgsProbe(program.args_for(core_index))
        ktrace = KernelTrace(spec.name)
        try:
            gen = spec.body(core, probe)
            if gen is not None:
                for _ in gen:
                    ktrace.steps += 1
                    if ktrace.steps >= max_steps:
                        ktrace.truncated = True
                        ktrace.completed = False
                        break
        except KeyError as exc:
            ktrace.completed = False
            if not probe.missing:  # a KeyError unrelated to runtime args
                ktrace.error = exc
        except Exception as exc:  # noqa: BLE001 - dry run must not throw
            ktrace.completed = False
            ktrace.error = exc
        ktrace.missing_args = probe.missing
        ktrace.accessed_args = probe.accessed
        trace.kernels.append(ktrace)
    trace.unknown_cbs = core.unknown_cbs
    # fold stubs created for unknown ids into the record
    for cb_id in core.unknown_cbs:
        trace.cbs.setdefault(cb_id, core.cbs[cb_id])  # type: ignore[arg-type]
    return trace

"""Accepted-debt baseline for the host linter.

A baseline entry fingerprints one known finding — rule id, file path,
enclosing scope qualname, and the normalized source-line text — plus a
mandatory human justification for why it is allowed to stay.  Matching
findings are absorbed out of the gating report (tracked on
``HostLinter.baselined``); anything *not* in the baseline still fails.

Fingerprints deliberately avoid line numbers: editing an unrelated part
of the file must not invalidate the baseline, but changing the flagged
line itself (or moving it to another function) does — the entry goes
stale and the finding resurfaces, which is the point.

The committed file lives at the repo root as ``hostlint-baseline.json``;
the target steady state is an *empty* entry list, with deliberate
exceptions carried as inline ``# repro-lint: disable=`` comments next to
the code they excuse.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ...errors import ConfigurationError
from ..diagnostics import Diagnostic

__all__ = ["Baseline", "BaselineEntry"]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted legacy finding."""

    rule: str
    path: str
    scope: str
    line_text: str
    justification: str = ""

    def key(self) -> tuple[str, str, str, str]:
        return (self.rule, self.path, self.scope, self.line_text)


@dataclass
class Baseline:
    """A multiset of accepted findings, loaded from / saved to JSON."""

    entries: list[BaselineEntry] = field(default_factory=list)
    #: entry keys not consumed by any finding in the last lint run —
    #: stale debt that should be deleted from the file.
    unmatched: list[BaselineEntry] = field(default_factory=list)
    _pool: dict[tuple[str, str, str, str], int] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Re-arm every entry for a fresh lint run."""
        self._pool = {}
        for entry in self.entries:
            self._pool[entry.key()] = self._pool.get(entry.key(), 0) + 1

    def matches(self, diag: Diagnostic, *, scope: str,
                line_text: str) -> bool:
        """Consume one matching entry for ``diag`` if the baseline has one."""
        key = (diag.rule, diag.path or "", scope, line_text)
        remaining = self._pool.get(key, 0)
        if remaining <= 0:
            return False
        self._pool[key] = remaining - 1
        return True

    def stale_entries(self) -> list[BaselineEntry]:
        """Entries no current finding consumed (fixed or moved code)."""
        leftovers: list[BaselineEntry] = []
        counts = dict(self._pool)
        for entry in self.entries:
            if counts.get(entry.key(), 0) > 0:
                counts[entry.key()] -= 1
                leftovers.append(entry)
        return leftovers

    def __len__(self) -> int:
        return len(self.entries)

    # -- persistence --------------------------------------------------------

    @classmethod
    def load(cls, path: Path | str) -> "Baseline":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            raise ConfigurationError(f"baseline file not found: {path}")
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"baseline file {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict) or \
                payload.get("version") != _FORMAT_VERSION:
            raise ConfigurationError(
                f"baseline file {path} has unsupported format "
                f"(want version {_FORMAT_VERSION})"
            )
        entries = []
        for raw in payload.get("entries", []):
            try:
                entries.append(
                    BaselineEntry(
                        rule=raw["rule"],
                        path=raw["path"],
                        scope=raw["scope"],
                        line_text=raw["line_text"],
                        justification=raw.get("justification", ""),
                    )
                )
            except (TypeError, KeyError) as exc:
                raise ConfigurationError(
                    f"baseline file {path} has a malformed entry: {raw!r}"
                ) from exc
        return cls(entries=entries)

    def save(self, path: Path | str) -> None:
        path = Path(path)
        payload = {
            "version": _FORMAT_VERSION,
            "entries": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "scope": e.scope,
                    "line_text": e.line_text,
                    "justification": e.justification,
                }
                for e in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.scope)
                )
            ],
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")

    @classmethod
    def from_findings(cls, findings, *, scopes, line_texts,
                      justification: str = "accepted legacy finding"
                      ) -> "Baseline":
        """Build a baseline absorbing ``findings`` (parallel iterables)."""
        entries = [
            BaselineEntry(
                rule=diag.rule,
                path=diag.path or "",
                scope=scope,
                line_text=line_text,
                justification=justification,
            )
            for diag, scope, line_text in zip(findings, scopes, line_texts)
        ]
        return cls(entries=entries)

"""Text and JSON renderings of a host-lint run.

Both reporters take the :class:`~repro.analysis.diagnostics.LintReport`
plus the :class:`~repro.analysis.hostlint.HostLinter` that produced it,
because the interesting run metadata — how many findings the baseline
absorbed, how many inline suppressions fired, which rules ran — lives on
the linter, not in the report.
"""

from __future__ import annotations

import json

from ..diagnostics import LintReport

__all__ = ["render_text", "render_json"]


def render_text(report: LintReport, *, linter=None) -> str:
    """Human-readable summary, one finding per line plus run counters."""
    lines = [d.format() for d in report]
    summary = f"{len(report.errors)} error(s), {len(report.warnings)} " \
              f"warning(s)"
    if linter is not None:
        extras = []
        if linter.baselined:
            extras.append(f"{len(linter.baselined)} baselined")
        if linter.suppressed_count:
            extras.append(f"{linter.suppressed_count} suppressed inline")
        if linter.baseline is not None:
            stale = linter.baseline.stale_entries()
            if stale:
                extras.append(f"{len(stale)} stale baseline entr"
                              f"{'y' if len(stale) == 1 else 'ies'}")
        if extras:
            summary += f" ({', '.join(extras)})"
    if not report.diagnostics:
        lines.append(f"clean: no findings ({summary})" if linter is not None
                     else "clean: no findings")
    else:
        lines.append(summary)
    return "\n".join(lines)


def render_json(report: LintReport, *, linter=None) -> str:
    """Machine-readable run payload for CI artifacts and tooling."""
    payload: dict = {
        "ok": report.ok,
        "counts": {
            "errors": len(report.errors),
            "warnings": len(report.warnings),
        },
        "findings": [
            {
                "rule": d.rule,
                "severity": d.severity.value,
                "path": d.path,
                "line": d.line,
                "message": d.message,
                "hint": d.hint,
            }
            for d in report
        ],
    }
    if linter is not None:
        payload["rules"] = sorted(linter.rules)
        payload["counts"]["baselined"] = len(linter.baselined)
        payload["counts"]["suppressed"] = linter.suppressed_count
        if linter.baseline is not None:
            payload["counts"]["stale_baseline"] = len(
                linter.baseline.stale_entries()
            )
    return json.dumps(payload, indent=2)

"""The one shared ARCHITECTURE edge list and its static import walk.

This module is the single source of truth for the repo's layer map: the
``RH009`` host-lint rule and ``tests/test_layering.py`` both read
:data:`ALLOWED_DEPS` / :data:`EXEMPT` from here, so the static linter and
the runtime test can never disagree about which cross-layer imports are
legal.  If either one fails you changed the architecture — update this
edge list *and* ``docs/ARCHITECTURE.md`` together — or you added an
import that belongs a layer down.

Everything here is pure ``ast``: no repro module is ever imported, so the
walk cannot be fooled (or broken) by import-time side effects.
"""

from __future__ import annotations

import ast
from pathlib import Path

__all__ = [
    "ALLOWED_DEPS",
    "EXEMPT",
    "package_of",
    "imported_packages",
]

#: package -> intra-repro packages it may import from.  Top-level
#: modules (config, errors, simclock) count as packages of their own
#: name; the aggregation surfaces (``cli``, ``bench`` and the package
#: ``__init__``) may import anything and are exempted below.
ALLOWED_DEPS: dict[str, set[str]] = {
    "errors": set(),
    "config": {"errors"},
    "simclock": {"errors"},
    "observability": {"errors"},
    "core": {"errors", "observability", "backends"},
    "wormhole": {"errors", "config"},
    "analysis": {"errors", "config", "wormhole"},
    "metalium": {"errors", "wormhole", "analysis"},
    "cpuref": {"errors", "core", "backends"},
    "nbody_tt": {"errors", "core", "wormhole", "metalium", "backends"},
    # The far-field port: PM mesh/Poisson numerics plus the Metalium FFT
    # kernel set; reuses nbody_tt's tiling assignment and op-mix pricing.
    "nbody_pm": {
        "errors", "core", "wormhole", "metalium", "backends", "nbody_tt",
    },
    # The backends layer: its protocol module sits *below* core (core
    # re-exports ForceBackend/ForceEvaluation from it), while the
    # registry/sharded/runspec modules aggregate the competitors above
    # it via lazy imports.  The walk counts both directions, hence the
    # mutual core <-> backends allowance.
    "backends": {
        "errors", "config", "observability", "core", "wormhole",
        "metalium", "cpuref", "nbody_tt", "nbody_pm",
    },
    "telemetry": {
        "errors", "simclock", "core", "cpuref", "nbody_tt", "wormhole",
        "backends",
    },
    # The job server executes RunSpecs either as modelled campaign
    # replays (telemetry, lazily) or real integrations (core, lazily).
    "service": {"errors", "backends", "observability", "telemetry", "core"},
}

#: Modules allowed to import from any layer: the user-facing
#: aggregation points, by design at the top of the stack.
EXEMPT = {"cli", "bench", "__init__"}


def package_of(rel_parts: tuple[str, ...]) -> str:
    """The layer name for a path given relative to ``src/repro``.

    Top-level modules (``config.py``) are layers of their own stem;
    anything nested belongs to its first-level subpackage.
    """
    if len(rel_parts) == 1:
        return Path(rel_parts[0]).stem
    return rel_parts[0]


def imported_packages(
    tree: ast.Module, rel_parts: tuple[str, ...]
) -> list[tuple[str, int]]:
    """Intra-repro packages one module imports, as (layer, lineno) pairs.

    ``rel_parts`` locates the module relative to ``src/repro`` so that
    relative imports resolve to the right layer.  Sibling imports inside
    the same package are not reported (always allowed).
    """
    targets: list[tuple[str, int]] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if node.level == 0:
                if module == "repro" or module.startswith("repro."):
                    parts = module.split(".")
                    targets.append(
                        (parts[1] if len(parts) > 1 else "__init__",
                         node.lineno)
                    )
                continue
            # Relative import: resolve against this file's location.
            # depth = how many package levels up `level` dots reach.
            depth = len(rel_parts) - 1 - (node.level - 1)
            if depth <= 0:
                # Climbed to the repro package root (or its top-level
                # modules): `from ..errors import ...` etc.
                parts = module.split(".") if module else []
                if parts:
                    targets.append((parts[0], node.lineno))
                else:
                    # `from .. import x` — names are top-level modules
                    # or subpackages.
                    targets.extend(
                        (alias.name, node.lineno) for alias in node.names
                    )
            # depth > 0 means a sibling import inside the same
            # package — always allowed.
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "repro" or alias.name.startswith("repro."):
                    parts = alias.name.split(".")
                    targets.append(
                        (parts[1] if len(parts) > 1 else "__init__",
                         node.lineno)
                    )
    return targets

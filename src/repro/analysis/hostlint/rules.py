"""The RH001–RH012 host-lint rules and their plugin registry.

Each rule is a :class:`HostRule` subclass registered with
:func:`register_rule`; the :class:`~repro.analysis.hostlint.HostLinter`
instantiates the registry once and runs every selected rule over every
:class:`~repro.analysis.hostlint.engine.ModuleUnit`.  A rule yields
:class:`Finding` s — line, message, optional hint/severity override — and
the engine turns them into :class:`~repro.analysis.diagnostics.Diagnostic`
s, applies suppressions and the baseline, and aggregates the report.

The rules are deliberately *heuristic*: they trade exhaustiveness for
zero-dependency AST checks that catch the bug classes this repo has
actually shipped (leaked executors, raw env truthiness, wall-clock reads
in modelled time, un-fsynced checkpoints).  A justified false positive is
what the inline ``# repro-lint: disable=RHxxx`` suppression and the
committed baseline are for.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterable, Iterator

from ..diagnostics import HOST_RULES, Severity
from .engine import ModuleUnit, dotted_name
from .layering import ALLOWED_DEPS, EXEMPT, imported_packages

__all__ = ["Finding", "HostRule", "register_rule", "host_rules"]

#: Layers whose timelines are modelled (virtual clock / cycle model):
#: wall-clock reads here leak host time into results the paper claims are
#: a pure function of the performance model.
MODELLED_TIME_PACKAGES = frozenset({
    "simclock", "core", "wormhole", "observability", "telemetry",
    "metalium", "nbody_tt", "nbody_pm", "cpuref", "backends",
})

#: Layers whose code runs inside shard-executor workers (threads or
#: forked processes): module-level mutable state there is a cross-thread
#: race surface and a fork-divergence hazard.
WORKER_CONTEXT_PACKAGES = frozenset({"backends", "nbody_tt"})


@dataclass(frozen=True)
class Finding:
    """One rule hit inside one module, pre-Diagnostic."""

    line: int
    message: str
    hint: str = ""
    severity: Severity | None = None


class HostRule:
    """Base class: subclass, set the class attributes, implement check()."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    hint: str = ""

    @property
    def description(self) -> str:
        return HOST_RULES[self.rule_id]

    def check(self, unit: ModuleUnit) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, HostRule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and add one rule to the registry."""
    rule = cls()
    if rule.rule_id not in HOST_RULES:
        raise ValueError(
            f"{cls.__name__}: rule id {rule.rule_id!r} is not in the "
            f"RH catalogue (repro.analysis.diagnostics.HOST_RULES)"
        )
    if rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate host rule id {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def host_rules() -> dict[str, HostRule]:
    """The registered rules, id -> instance, in catalogue order."""
    return {rid: _REGISTRY[rid] for rid in sorted(_REGISTRY)}


def _parent_map(tree: ast.Module) -> dict[ast.AST, ast.AST]:
    parents: dict[ast.AST, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents


def _walk_own_body(func) -> Iterator[ast.AST]:
    """Walk a scope's statements without descending into nested defs."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        stack.extend(ast.iter_child_nodes(node))


# ---------------------------------------------------------------------------
# RH001 — blocking calls inside async functions
# ---------------------------------------------------------------------------

_BLOCKING_EXACT = frozenset({
    "time.sleep", "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.create_connection", "socket.getaddrinfo", "open", "input",
})
_BLOCKING_PREFIXES = (
    "subprocess.", "urllib.request.", "requests.", "http.client.",
    "shutil.",
)


@register_rule
class BlockingInAsyncRule(HostRule):
    """RH001: sync sleeps/subprocess/file/socket I/O inside ``async def``."""

    rule_id = "RH001"
    severity = Severity.ERROR
    hint = ("await the asyncio equivalent (asyncio.sleep, "
            "loop.run_in_executor, asyncio streams) so one job cannot "
            "stall every connection on the loop")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for func in ast.walk(unit.tree):
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in _walk_own_body(func):
                if not isinstance(node, ast.Call):
                    continue
                qn = unit.qualname_of(node.func)
                if qn is None:
                    continue
                if qn in _BLOCKING_EXACT or qn.startswith(
                    _BLOCKING_PREFIXES
                ):
                    yield Finding(
                        node.lineno,
                        f"blocking call {qn}() inside async function "
                        f"{func.name!r} stalls the event loop",
                    )


# ---------------------------------------------------------------------------
# RH002 — wall-clock sources in modelled-time modules
# ---------------------------------------------------------------------------

_WALL_CLOCK = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns",
})
_WALL_CLOCK_SUFFIXES = ("datetime.now", "datetime.utcnow", "date.today")


@register_rule
class WallClockRule(HostRule):
    """RH002: host wall-clock reads where time is supposed to be modelled."""

    rule_id = "RH002"
    severity = Severity.ERROR
    hint = ("modelled layers take time from the virtual clock / cost model "
            "(repro.simclock, queue.device_seconds); a wall-clock read "
            "makes results depend on host load")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.package not in MODELLED_TIME_PACKAGES:
            return
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            qn = unit.qualname_of(node.func)
            if qn is None:
                continue
            if qn in _WALL_CLOCK or qn.endswith(_WALL_CLOCK_SUFFIXES):
                yield Finding(
                    node.lineno,
                    f"wall-clock source {qn}() in modelled-time layer "
                    f"{unit.package!r}",
                )


# ---------------------------------------------------------------------------
# RH003 — unseeded global RNG
# ---------------------------------------------------------------------------

_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "triangular", "getrandbits", "seed", "vonmisesvariate",
})
_SEEDABLE_NUMPY = frozenset({
    "default_rng", "Generator", "RandomState", "SeedSequence",
})


@register_rule
class UnseededRngRule(HostRule):
    """RH003: stdlib/NumPy *global* RNG use, or seedless default_rng()."""

    rule_id = "RH003"
    severity = Severity.ERROR
    hint = ("draw from an explicitly seeded generator "
            "(np.random.default_rng(seed) or random.Random(seed)) so "
            "every run is bit-reproducible")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            qn = unit.qualname_of(node.func)
            if qn is None:
                continue
            head, _, tail = qn.partition(".")
            if head == "random" and tail in _GLOBAL_RANDOM_FNS:
                yield Finding(
                    node.lineno,
                    f"{qn}() draws from the process-global random state",
                )
            elif qn.startswith("numpy.random."):
                fn = qn.rpartition(".")[2]
                if fn in _SEEDABLE_NUMPY:
                    if not node.args and not node.keywords:
                        yield Finding(
                            node.lineno,
                            f"{qn}() without a seed gives a different "
                            f"stream every run",
                        )
                else:
                    yield Finding(
                        node.lineno,
                        f"{qn}() uses the legacy process-global NumPy "
                        f"random state",
                    )


# ---------------------------------------------------------------------------
# RH004 — iteration over unordered sets
# ---------------------------------------------------------------------------

@register_rule
class SetIterationRule(HostRule):
    """RH004: for-loops / comprehensions iterating a set expression."""

    rule_id = "RH004"
    severity = Severity.WARNING
    hint = ("wrap the set in sorted(...) before iterating; set order "
            "varies with insertion history and hash seeding, so anything "
            "accumulated from it is nondeterministic")

    def _is_set_expr(self, expr: ast.expr, unit: ModuleUnit) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            qn = unit.qualname_of(expr.func)
            return qn in ("set", "frozenset")
        return False

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            iters: list[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if self._is_set_expr(it, unit):
                    yield Finding(
                        it.lineno,
                        "iterating an unordered set; downstream results "
                        "inherit its arbitrary order",
                    )


# ---------------------------------------------------------------------------
# RH005 — resources without with/close-on-all-paths
# ---------------------------------------------------------------------------

_CLOSER_ATTRS = frozenset({"close", "terminate", "kill", "shutdown", "stop"})
_MANAGED_WRAPPERS = frozenset({"closing", "enter_context", "ExitStack"})


def _is_resource_call(node: ast.Call, unit: ModuleUnit) -> str | None:
    """The resource kind a call acquires, or None."""
    qn = unit.qualname_of(node.func)
    if qn is None:
        return None
    last = qn.rpartition(".")[2]
    if qn == "open":
        return "file handle"
    if last == "open" and "." in qn:
        receiver = qn.rpartition(".")[0]
        # Path(...).open() parses as Call->Attribute, not a dotted name,
        # so the receiver here is a *named* path-like: path.open(),
        # self.path.open().  Anything else named .open() (device.open())
        # is a state toggle, not a resource acquisition.
        if "path" in receiver.lower():
            return "file handle"
        return None
    if isinstance(node.func, ast.Attribute) and node.func.attr == "open" \
            and isinstance(node.func.value, ast.Call):
        inner = unit.qualname_of(node.func.value.func)
        if inner is not None and inner.rpartition(".")[2] == "Path":
            return "file handle"
    if last == "Popen":
        return "subprocess"
    if last.endswith("Executor"):
        return "executor"
    if qn in ("socket.socket", "socket.create_connection"):
        return "socket"
    return None


@register_rule
class ResourceLifecycleRule(HostRule):
    """RH005: open()/Popen/Executor/socket with no with and no sure close."""

    rule_id = "RH005"
    severity = Severity.ERROR
    hint = ("manage the resource with `with`, or close it in a finally "
            "block (attribute-held resources need a close()/stop() method "
            "that releases them)")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        parents = _parent_map(unit.tree)
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Call):
                continue
            kind = _is_resource_call(node, unit)
            if kind is None:
                continue
            yield from self._judge(node, kind, parents, unit)

    # -- context classification --------------------------------------------

    def _judge(self, node: ast.Call, kind: str, parents, unit: ModuleUnit
               ) -> Iterator[Finding]:
        # climb to the nearest statement, remembering the expression hops
        parent = parents.get(node)
        while parent is not None and not isinstance(parent, ast.stmt):
            if isinstance(parent, ast.Call) and parent is not node:
                qn = unit.qualname_of(parent.func) or ""
                last = qn.rpartition(".")[2]
                if last in _MANAGED_WRAPPERS:
                    return  # contextlib.closing(...) / enter_context(...)
            if isinstance(parent, (ast.withitem, ast.Yield, ast.YieldFrom)):
                return  # with-statement owns it / handed to the caller
            parent = parents.get(parent)
        if parent is None:
            return
        if isinstance(parent, (ast.Return, ast.With, ast.AsyncWith)):
            return  # ownership handed to the caller / with-statement
        if isinstance(parent, ast.Expr):
            yield Finding(
                node.lineno,
                f"{kind} acquired and immediately dropped "
                f"(nothing can ever close it)",
            )
            return
        if isinstance(parent, (ast.Assign, ast.AnnAssign)):
            targets = parent.targets if isinstance(parent, ast.Assign) \
                else [parent.target]
            for target in targets:
                name = dotted_name(target)
                if name is None:
                    continue
                yield from self._judge_assignment(
                    node, kind, name, parents, unit
                )
            return
        yield Finding(
            node.lineno,
            f"{kind} acquired outside `with` and never bound to a name "
            f"that closes it",
        )

    def _judge_assignment(self, node: ast.Call, kind: str, name: str,
                          parents, unit: ModuleUnit) -> Iterator[Finding]:
        func = self._enclosing_function(node, parents)
        if func is not None:
            closes, in_finally = _close_calls(func, name)
            if in_finally:
                return
            if closes:
                yield Finding(
                    node.lineno,
                    f"{kind} {name!r} is closed, but not on exception "
                    f"paths (close it in a finally or use `with`)",
                )
                return
        if name.startswith("self."):
            cls = self._enclosing_class(node, parents)
            if cls is not None and _class_closes(cls, name):
                return
        if func is None and not name.startswith("self."):
            # module-level singleton: process lifetime, judged by RH010's
            # shared-state rule instead of leak analysis
            return
        yield Finding(
            node.lineno,
            f"{kind} {name!r} is acquired but never closed on any path",
        )

    @staticmethod
    def _enclosing_function(node, parents):
        cursor = parents.get(node)
        while cursor is not None:
            if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cursor
            cursor = parents.get(cursor)
        return None

    @staticmethod
    def _enclosing_class(node, parents):
        cursor = parents.get(node)
        while cursor is not None:
            if isinstance(cursor, ast.ClassDef):
                return cursor
            cursor = parents.get(cursor)
        return None


def _close_calls(func, name: str) -> tuple[bool, bool]:
    """(any close on ``name`` in ``func``, any close inside a finally)."""
    any_close = False
    in_finally = False
    for node in ast.walk(func):
        if isinstance(node, ast.Try) and node.finalbody:
            for sub in node.finalbody:
                for call in ast.walk(sub):
                    if _is_close_on(call, name):
                        in_finally = True
        if _is_close_on(node, name):
            any_close = True
    return any_close, in_finally


def _is_close_on(node, name: str) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _CLOSER_ATTRS
        and dotted_name(node.func.value) == name
    )


def _class_closes(cls: ast.ClassDef, name: str) -> bool:
    """True when any method of ``cls`` closes the ``self.x`` resource."""
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for node in ast.walk(stmt):
                if _is_close_on(node, name):
                    return True
    return False


# ---------------------------------------------------------------------------
# RH006 — raw os.environ boolean reads
# ---------------------------------------------------------------------------

_BOOLISH = frozenset({
    "", "0", "1", "true", "false", "yes", "no", "on", "off",
})
_STR_WRAPPERS = frozenset({"strip", "lower", "upper", "casefold"})


def _unwrap_str_calls(expr: ast.expr) -> ast.expr:
    while (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _STR_WRAPPERS
    ):
        expr = expr.func.value
    return expr


def _is_env_read(expr: ast.expr, unit: ModuleUnit) -> bool:
    expr = _unwrap_str_calls(expr)
    if isinstance(expr, ast.Call):
        qn = unit.qualname_of(expr.func)
        return qn in ("os.getenv", "os.environ.get")
    if isinstance(expr, ast.Subscript):
        return dotted_name(expr.value) == "os.environ" or (
            isinstance(expr.value, ast.Attribute)
            and unit.qualname_of(expr.value) == "os.environ"
        )
    return False


def _boolish_constant(expr: ast.expr) -> bool:
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        return expr.value.strip().lower() in _BOOLISH
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        return bool(expr.elts) and all(
            _boolish_constant(e) for e in expr.elts
        )
    return False


@register_rule
class RawEnvBoolRule(HostRule):
    """RH006: truthiness tests / boolean compares on raw environ reads."""

    rule_id = "RH006"
    severity = Severity.ERROR
    hint = ("parse it with repro.config.env_flag(value, name=...): it "
            "normalises 1/true/yes/on vs 0/false/no/off and rejects "
            "anything else, so VAR=false can never count as enabled")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.package == "config":
            return  # config implements env_flag; it must touch the raw value
        for node in ast.walk(unit.tree):
            tests: list[ast.expr] = []
            if isinstance(node, (ast.If, ast.While, ast.IfExp)):
                tests.append(node.test)
            elif isinstance(node, ast.BoolOp):
                tests.extend(node.values)
            elif isinstance(node, ast.UnaryOp) and isinstance(
                node.op, ast.Not
            ):
                tests.append(node.operand)
            elif isinstance(node, ast.Call) and \
                    unit.qualname_of(node.func) == "bool":
                tests.extend(node.args)
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                if any(_is_env_read(s, unit) for s in sides) and any(
                    _boolish_constant(s) for s in sides
                ):
                    yield Finding(
                        node.lineno,
                        "boolean comparison against a raw os.environ read "
                        "(spelling-sensitive: 'false'/'off' may count as "
                        "enabled)",
                    )
                continue
            for test in tests:
                if _is_env_read(test, unit):
                    yield Finding(
                        test.lineno,
                        "truthiness test on a raw os.environ read "
                        "(any non-empty string counts as enabled)",
                    )


# ---------------------------------------------------------------------------
# RH007 — durability-critical writes without flush + fsync
# ---------------------------------------------------------------------------

def _append_mode(call: ast.Call) -> bool:
    """True when an open()-style call requests append mode."""
    candidates = list(call.args) + [
        kw.value for kw in call.keywords if kw.arg == "mode"
    ]
    for arg in candidates:
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            value = arg.value
            if 0 < len(value) <= 3 and set(value) <= set("rwxab+tU") \
                    and "a" in value:
                return True
    return False


@register_rule
class DurableWriteRule(HostRule):
    """RH007: append-mode file writes (journals) missing flush+fsync."""

    rule_id = "RH007"
    severity = Severity.ERROR
    hint = ("append-only journals exist to survive crashes: call "
            "fh.flush() and os.fsync(fh.fileno()) before leaving the "
            "with-block, or the record may die in the page cache")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                ce = item.context_expr
                if not isinstance(ce, ast.Call):
                    continue
                qn = unit.qualname_of(ce.func) or ""
                is_open = qn == "open" or qn.rpartition(".")[2] == "open"
                if not is_open or not _append_mode(ce):
                    continue
                handle = dotted_name(item.optional_vars) \
                    if item.optional_vars is not None else None
                if handle is None:
                    yield Finding(
                        node.lineno,
                        "append-mode file opened without binding the "
                        "handle; nothing can fsync it",
                    )
                    continue
                flushed = fsynced = False
                for sub in ast.walk(node):
                    if isinstance(sub, ast.Call):
                        if _is_method_on(sub, handle, "flush"):
                            flushed = True
                        if (unit.qualname_of(sub.func) == "os.fsync"
                                and sub.args
                                and _mentions_name(sub.args[0], handle)):
                            fsynced = True
                if not (flushed and fsynced):
                    missing = []
                    if not flushed:
                        missing.append(f"{handle}.flush()")
                    if not fsynced:
                        missing.append(f"os.fsync({handle}.fileno())")
                    yield Finding(
                        node.lineno,
                        f"append-mode write without {' and '.join(missing)}",
                    )


def _is_method_on(call: ast.Call, name: str, attr: str) -> bool:
    return (
        isinstance(call.func, ast.Attribute)
        and call.func.attr == attr
        and dotted_name(call.func.value) == name
    )


def _mentions_name(expr: ast.expr, name: str) -> bool:
    head = name.split(".")[0]
    return any(
        isinstance(sub, ast.Name) and sub.id == head
        for sub in ast.walk(expr)
    )


# ---------------------------------------------------------------------------
# RH008 — silent exception swallowing
# ---------------------------------------------------------------------------

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})


def _handler_types(handler: ast.ExceptHandler) -> list[str]:
    if handler.type is None:
        return []
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) \
        else [handler.type]
    return [dotted_name(n) or "" for n in nodes]


@register_rule
class SilentExceptRule(HostRule):
    """RH008: bare ``except:`` and broad handlers whose body is pass."""

    rule_id = "RH008"
    severity = Severity.WARNING
    hint = ("catch the specific errors you can handle (NBodyError and "
            "friends) or re-raise; a silent broad handler also swallows "
            "the library's failure taxonomy")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                if not any(
                    isinstance(sub, ast.Raise) for sub in ast.walk(node)
                ):
                    yield Finding(
                        node.lineno,
                        "bare `except:` swallows everything, "
                        "KeyboardInterrupt and NBodyError alike",
                    )
                continue
            names = _handler_types(node)
            if any(n in _BROAD_EXCEPTIONS for n in names) and all(
                isinstance(stmt, (ast.Pass, ast.Continue))
                for stmt in node.body
            ):
                yield Finding(
                    node.lineno,
                    f"except {' / '.join(n for n in names if n)} with a "
                    f"pass body silently swallows every library error",
                )


# ---------------------------------------------------------------------------
# RH009 — layering violations (the shared ARCHITECTURE edge list)
# ---------------------------------------------------------------------------

@register_rule
class LayeringRule(HostRule):
    """RH009: imports must follow hostlint.layering.ALLOWED_DEPS."""

    rule_id = "RH009"
    severity = Severity.ERROR
    hint = ("move the shared code down a layer, or deliberately change "
            "the architecture: update ALLOWED_DEPS in "
            "repro/analysis/hostlint/layering.py AND docs/ARCHITECTURE.md "
            "together")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        package = unit.package
        if package in EXEMPT or not unit.rel_parts:
            return
        if package.startswith("<"):
            return  # synthetic lint_source module with no real location
        if len(unit.rel_parts) == 1 and unit.rel_parts[0] == "__init__.py":
            return  # the package aggregation surface
        if package not in ALLOWED_DEPS:
            yield Finding(
                (unit.tree.body[0].lineno if unit.tree.body else 1),
                f"layer {package!r} is not in the ARCHITECTURE layer map "
                f"(ALLOWED_DEPS)",
            )
            return
        allowed = ALLOWED_DEPS[package]
        for target, lineno in imported_packages(unit.tree, unit.rel_parts):
            if target == package or target == "__init__":
                continue
            if target not in allowed:
                yield Finding(
                    lineno,
                    f"layer {package!r} imports {target!r} "
                    f"(allowed: {sorted(allowed)})",
                )


# ---------------------------------------------------------------------------
# RH010 — module-level mutable globals touched from worker-context code
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset({
    "list", "dict", "set", "defaultdict", "Counter", "OrderedDict",
    "WeakSet", "WeakValueDictionary", "WeakKeyDictionary", "deque",
})
_MUTATING_METHODS = frozenset({
    "append", "add", "update", "pop", "popitem", "setdefault", "clear",
    "extend", "remove", "discard", "insert", "appendleft",
})


@register_rule
class WorkerGlobalMutationRule(HostRule):
    """RH010: functions mutating module globals in shard-worker layers."""

    rule_id = "RH010"
    severity = Severity.WARNING
    hint = ("worker threads share this object and forked workers diverge "
            "from it; move the state onto the executor/backend instance, "
            "or guard it and suppress with a justification")

    def _module_mutables(self, unit: ModuleUnit) -> set[str]:
        names: set[str] = set()
        for stmt in unit.tree.body:
            target = None
            value = None
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                                  ast.DictComp, ast.SetComp)):
                names.add(target.id)
            elif isinstance(value, ast.Call):
                qn = unit.qualname_of(value.func) or ""
                if qn.rpartition(".")[2] in _MUTABLE_FACTORIES:
                    names.add(target.id)
        return names

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        if unit.package not in WORKER_CONTEXT_PACKAGES:
            return
        mutables = self._module_mutables(unit)
        if not mutables:
            return
        for func in ast.walk(unit.tree):
            if not isinstance(func, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            rebound = {
                name
                for node in _walk_own_body(func)
                if isinstance(node, ast.Global)
                for name in node.names
            }
            for node in _walk_own_body(func):
                hit = self._mutation_of(node, mutables, rebound)
                if hit is not None:
                    name, verb = hit
                    yield Finding(
                        node.lineno,
                        f"module-level mutable global {name!r} {verb} "
                        f"inside {func.name!r} (worker-shared state)",
                    )

    @staticmethod
    def _mutation_of(node, mutables: set[str], rebound: set[str]):
        if isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ) and node.func.attr in _MUTATING_METHODS and isinstance(
            node.func.value, ast.Name
        ) and node.func.value.id in mutables:
            return node.func.value.id, f"mutated via .{node.func.attr}()"
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ) and target.value.id in mutables:
                    return target.value.id, "item-assigned"
                if isinstance(target, ast.Name) and target.id in rebound \
                        and target.id in mutables:
                    return target.id, "rebound via `global`"
        return None


# ---------------------------------------------------------------------------
# RH011 — fire-and-forget asyncio tasks
# ---------------------------------------------------------------------------

@register_rule
class DanglingTaskRule(HostRule):
    """RH011: create_task/ensure_future whose handle is dropped."""

    rule_id = "RH011"
    severity = Severity.ERROR
    hint = ("keep a reference (task set / attribute) and await or cancel "
            "it on shutdown; the event loop holds tasks weakly, so a "
            "dropped handle can be garbage-collected mid-flight")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        for node in ast.walk(unit.tree):
            if not isinstance(node, ast.Expr):
                continue
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            qn = unit.qualname_of(value.func) or ""
            if qn in ("asyncio.create_task", "asyncio.ensure_future") or \
                    qn.endswith(".create_task"):
                yield Finding(
                    value.lineno,
                    f"{qn}() result discarded: the task may be "
                    f"garbage-collected before it runs to completion",
                )


# ---------------------------------------------------------------------------
# RH012 — lock acquire without release on all paths
# ---------------------------------------------------------------------------

@register_rule
class LockLifecycleRule(HostRule):
    """RH012: .acquire() with no .release() inside a finally."""

    rule_id = "RH012"
    severity = Severity.ERROR
    hint = ("use `with lock:` (it always releases), or pair the acquire "
            "with a release in a finally block; an exception between the "
            "two deadlocks every other thread")

    def check(self, unit: ModuleUnit) -> Iterator[Finding]:
        scopes: list[ast.AST] = [unit.tree]
        scopes.extend(
            n for n in ast.walk(unit.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        )
        for scope in scopes:
            acquires: list[tuple[str, int]] = []
            released: set[str] = set()
            for node in _walk_own_body(scope):
                if not isinstance(node, ast.Call) or not isinstance(
                    node.func, ast.Attribute
                ):
                    continue
                target = dotted_name(node.func.value)
                if target is None:
                    continue
                if node.func.attr == "acquire":
                    acquires.append((target, node.lineno))
            if not acquires:
                continue
            for node in _walk_own_body(scope):
                if isinstance(node, ast.Try) and node.finalbody:
                    for stmt in node.finalbody:
                        for sub in ast.walk(stmt):
                            if isinstance(sub, ast.Call) and isinstance(
                                sub.func, ast.Attribute
                            ) and sub.func.attr == "release":
                                name = dotted_name(sub.func.value)
                                if name is not None:
                                    released.add(name)
            for target, lineno in acquires:
                if target not in released:
                    yield Finding(
                        lineno,
                        f"{target}.acquire() without a matching "
                        f"{target}.release() in a finally block",
                    )

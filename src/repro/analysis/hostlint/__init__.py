"""Watcher-Host: repo-wide AST lint for the host-side Python stack.

The device-program linter (:mod:`repro.analysis.linter`, ``WH`` rules)
checks what we *dispatch to the card*; this package checks the Python
that does the dispatching.  Twelve ``RH`` rules cover the invariants the
repo's own history shows get broken: event-loop stalls, wall-clock reads
in modelled time, unseeded RNG, set-order nondeterminism, leaked
executors and file handles, raw ``os.environ`` truthiness, un-fsynced
journal writes, silent broad excepts, layer-map violations, worker-shared
mutable globals, dropped asyncio tasks, and unreleased locks.

Everything is stdlib ``ast`` — no module under lint is ever imported —
and every finding flows through the same
:class:`~repro.analysis.diagnostics.Diagnostic` /
:class:`~repro.analysis.diagnostics.LintReport` model as the device
linter, keyed by stable rule ids so suppressions
(``# repro-lint: disable=RH006``), the committed baseline
(``hostlint-baseline.json``) and the seeded-defect tests stay valid
across refactors.

Run it via ``repro-lint --host`` (exit 0 clean / 1 findings / 2 error).
"""

from .baseline import Baseline, BaselineEntry
from .engine import HostLinter, ModuleUnit
from .layering import ALLOWED_DEPS, EXEMPT, imported_packages, package_of
from .reporting import render_json, render_text
from .rules import Finding, HostRule, host_rules, register_rule

__all__ = [
    "ALLOWED_DEPS",
    "Baseline",
    "BaselineEntry",
    "EXEMPT",
    "Finding",
    "HostLinter",
    "HostRule",
    "ModuleUnit",
    "host_rules",
    "imported_packages",
    "package_of",
    "register_rule",
    "render_json",
    "render_text",
]

"""Watcher-Host engine: walk Python sources, run RH rules, filter, report.

The engine owns everything rule implementations should not have to think
about:

* **parsing** each source file once into a :class:`ModuleUnit` (AST,
  import-alias map, layer classification, enclosing-scope index);
* **suppressions** — a trailing ``# repro-lint: disable=RH006`` comment
  silences matching findings on its own line, a comment-only disable
  line covers the next code line (a justification may span several
  comment lines), and ``# repro-lint: disable-file=RH004`` silences a
  rule module-wide;
* **baseline filtering** — findings whose fingerprint is in the committed
  :class:`~repro.analysis.hostlint.baseline.Baseline` are legacy debt,
  reported separately instead of failing the gate;
* **rendering** everything into the same
  :class:`~repro.analysis.diagnostics.LintReport` of
  :class:`~repro.analysis.diagnostics.Diagnostic` s the device linter
  emits, so reporters, CI gates and tests share one model.

Rules are plugins: see :mod:`repro.analysis.hostlint.rules` for the
registry and the RH001–RH012 implementations.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from ...errors import AnalysisError, ConfigurationError
from ..diagnostics import Diagnostic, LintReport
from .layering import package_of

__all__ = ["HostLinter", "ModuleUnit", "dotted_name"]

#: ``# repro-lint: disable=RH001,RH002`` (optionally followed by prose).
_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*"
    r"(?P<rules>RH\d{3}(?:\s*,\s*RH\d{3})*)"
)


def dotted_name(expr: ast.expr) -> str | None:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _alias_map(tree: ast.Module) -> dict[str, str]:
    """Local name -> qualified module/symbol path, from import statements."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    aliases[head] = head
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            module = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{module}.{alias.name}" if module \
                    else alias.name
    return aliases


@dataclass
class _Scope:
    qualname: str
    start: int
    end: int


@dataclass
class ModuleUnit:
    """One parsed source module, ready for rule checks."""

    path: Path | None
    relpath: str
    rel_parts: tuple[str, ...]
    package: str
    tree: ast.Module
    lines: list[str]
    aliases: dict[str, str] = field(default_factory=dict)
    #: line -> rule ids suppressed on that line (and the one above it)
    suppressed_lines: dict[int, set[str]] = field(default_factory=dict)
    #: rule ids suppressed for the whole file
    suppressed_file: set[str] = field(default_factory=set)
    scopes: list[_Scope] = field(default_factory=list)

    @classmethod
    def from_source(cls, source: str, *, relpath: str,
                    path: Path | None = None) -> "ModuleUnit":
        """Parse ``source`` as the module at ``relpath`` (``repro/...``)."""
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise AnalysisError(
                f"{relpath}: cannot lint, file does not parse: {exc}"
            ) from exc
        parts = Path(relpath).parts
        rel_parts = parts[1:] if parts and parts[0] == "repro" else parts
        unit = cls(
            path=path,
            relpath=str(Path(relpath).as_posix()),
            rel_parts=rel_parts,
            package=package_of(rel_parts) if rel_parts else "<unknown>",
            tree=tree,
            lines=source.splitlines(),
            aliases=_alias_map(tree),
        )
        unit._index_suppressions()
        unit._index_scopes()
        return unit

    def _index_suppressions(self) -> None:
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match is None:
                continue
            rules = {r.strip() for r in match.group("rules").split(",")}
            if match.group(1) == "disable-file":
                self.suppressed_file |= rules
                continue
            # A trailing comment suppresses its own line; a comment-only
            # line suppresses the next code line (skipping further
            # comment lines, so a justification may span several).
            target = lineno
            if text.strip().startswith("#"):
                for ahead in range(lineno + 1, len(self.lines) + 1):
                    if not self.lines[ahead - 1].strip().startswith("#"):
                        target = ahead
                        break
            self.suppressed_lines.setdefault(target, set()).update(rules)

    def _index_scopes(self) -> None:
        def visit(node, prefix: str) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    qualname = f"{prefix}{child.name}"
                    self.scopes.append(
                        _Scope(qualname, child.lineno, child.end_lineno or
                               child.lineno)
                    )
                    visit(child, f"{qualname}.")
                else:
                    visit(child, prefix)

        visit(self.tree, "")

    def scope_at(self, line: int) -> str:
        """Innermost def/class qualname containing ``line``, or <module>."""
        best = "<module>"
        best_span = None
        for scope in self.scopes:
            if scope.start <= line <= scope.end:
                span = scope.end - scope.start
                if best_span is None or span <= best_span:
                    best, best_span = scope.qualname, span
        return best

    def qualname_of(self, expr: ast.expr) -> str | None:
        """Dotted call target with its head resolved through imports.

        ``np.random.rand`` becomes ``numpy.random.rand`` when the module
        did ``import numpy as np``; ``perf_counter`` becomes
        ``time.perf_counter`` after ``from time import perf_counter``.
        """
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        resolved = self.aliases.get(head, head)
        return f"{resolved}.{rest}" if rest else resolved

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def is_suppressed(self, rule: str, line: int) -> bool:
        if rule in self.suppressed_file:
            return True
        return rule in self.suppressed_lines.get(line, set())


class HostLinter:
    """Repo-wide AST lint: RH-rule analysis of the host-side Python stack.

    ``rules`` restricts the pass to a subset of rule ids (default: every
    registered rule); ``baseline`` is a
    :class:`~repro.analysis.hostlint.baseline.Baseline` whose entries are
    filtered out of the report (legacy findings tracked as accepted debt).
    """

    def __init__(self, *, rules=None, baseline=None,
                 root: Path | None = None) -> None:
        from .rules import host_rules

        registry = host_rules()
        if rules is None:
            selected = list(registry)
        else:
            selected = list(rules)
            unknown = [r for r in selected if r not in registry]
            if unknown:
                raise ConfigurationError(
                    f"unknown host lint rule(s) {', '.join(sorted(unknown))}; "
                    f"known: {', '.join(registry)}"
                )
        self.rules = {rid: registry[rid] for rid in sorted(set(selected))}
        self.baseline = baseline
        self.root = root
        #: findings matched (and absorbed) by the baseline in the last run
        self.baselined: list[Diagnostic] = []
        #: findings silenced by inline suppressions in the last run
        self.suppressed_count = 0
        #: (diagnostic, scope qualname, normalized line text) for every
        #: reported finding — the raw material for ``--write-baseline``
        self.fingerprints: list[tuple[Diagnostic, str, str]] = []

    # -- entry points -------------------------------------------------------

    def lint_paths(self, paths) -> LintReport:
        """Lint every ``*.py`` under the given files/directories."""
        files: list[Path] = []
        for path in paths:
            path = Path(path)
            if path.is_dir():
                files.extend(
                    p for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py":
                files.append(path)
            else:
                raise ConfigurationError(
                    f"cannot lint {path}: not a .py file or directory"
                )
        self._reset_run()
        diagnostics: list[Diagnostic] = []
        for path in files:
            unit = self._unit_for(path)
            diagnostics.extend(self._check_unit(unit))
        return LintReport(diagnostics)

    def lint_source(self, source: str, *,
                    relpath: str = "repro/<string>.py") -> LintReport:
        """Lint one in-memory module as though it lived at ``relpath``.

        The virtual ``relpath`` (``repro/telemetry/x.py`` style) drives
        the layer classification the package-sensitive rules use — the
        seeded-defect fixtures lean on this to place themselves in any
        layer they need.
        """
        self._reset_run()
        unit = ModuleUnit.from_source(source, relpath=relpath)
        return LintReport(self._check_unit(unit))

    # -- internals ----------------------------------------------------------

    def _reset_run(self) -> None:
        self.baselined = []
        self.suppressed_count = 0
        self.fingerprints = []
        if self.baseline is not None:
            self.baseline.reset()

    def _unit_for(self, path: Path) -> ModuleUnit:
        resolved = path.resolve()
        root = self.root
        if root is None:
            # infer <root>/repro/... from the path itself
            for parent in resolved.parents:
                if parent.name == "repro":
                    root = parent.parent
                    break
        try:
            relpath = str(resolved.relative_to(root).as_posix()) \
                if root is not None else resolved.name
        except ValueError:
            relpath = resolved.name
        return ModuleUnit.from_source(
            path.read_text(), relpath=relpath, path=path
        )

    def _check_unit(self, unit: ModuleUnit) -> list[Diagnostic]:
        out: list[Diagnostic] = []
        for rule_id, rule in self.rules.items():
            for finding in rule.check(unit):
                if unit.is_suppressed(rule_id, finding.line):
                    self.suppressed_count += 1
                    continue
                diag = Diagnostic(
                    rule_id,
                    finding.severity or rule.severity,
                    finding.message,
                    hint=finding.hint or rule.hint,
                    path=unit.relpath,
                    line=finding.line,
                )
                scope = unit.scope_at(finding.line)
                line_text = unit.line_text(finding.line)
                if self.baseline is not None and self.baseline.matches(
                    diag, scope=scope, line_text=line_text,
                ):
                    self.baselined.append(diag)
                    continue
                self.fingerprints.append((diag, scope, line_text))
                out.append(diag)
        out.sort(key=lambda d: (d.path or "", d.line or 0, d.rule))
        return out

"""The CPU reference force backend: the paper's comparison baseline.

Combines the mixed-precision SIMD kernel, the OpenMP wall-time model, and
the MPI-style decomposition into a :class:`CPUForceBackend` that plugs into
:class:`repro.core.Simulation`.  Functionally it computes genuine
mixed-precision forces (float32 pairwise math); temporally it reports
"host"-tagged timeline segments whose durations come from the calibrated
EPYC model, including the per-run multiplicative noise that gives the CPU
campaign its wider time-to-solution histogram (paper Fig. 3b).
"""

from __future__ import annotations

import numpy as np

from ..backends.protocol import ForceEvaluation, TimelineSegment
from ..errors import ConfigurationError
from .mpi import FakeComm, split_counts
from .openmp import OpenMPModel, chunk_ranges
from .params import CpuCostParams, DEFAULT_CPU_COSTS, EPYC_9124_DUAL, HostParams
from .simd import simd_accel_jerk

__all__ = ["CPUForceBackend"]


class CPUForceBackend:
    """Mixed-precision MPI+OpenMP+AVX-512 reference implementation model."""

    def __init__(
        self,
        n_threads: int = 32,
        *,
        softening: float = 0.0,
        G: float = 1.0,
        comm: FakeComm | None = None,
        host: HostParams = EPYC_9124_DUAL,
        costs: CpuCostParams = DEFAULT_CPU_COSTS,
        rng: np.random.Generator | None = None,
        noisy: bool = True,
    ) -> None:
        self.omp = OpenMPModel(n_threads, host, costs)
        self.softening = softening
        self.G = G
        self.comm = comm if comm is not None else FakeComm()
        self.costs = costs
        # repro-lint: disable=RH003 - injectable RNG; campaigns pass a
        # seeded generator, the entropy default is the explicit noise mode.
        rng = rng if rng is not None else np.random.default_rng()
        # One multiplicative time factor per job: system load / scheduling
        # variability is correlated within a run, not per evaluation.
        if noisy and costs.run_noise_sigma > 0:
            self._noise = float(
                np.clip(rng.normal(1.0, costs.run_noise_sigma), 0.5, 1.5)
            )
        else:
            self._noise = 1.0
        self.name = f"cpu-ref-omp{n_threads}-mpi{self.comm.Get_size()}"

    @property
    def n_threads(self) -> int:
        return self.omp.n_threads

    def compute(self, pos: np.ndarray, vel: np.ndarray,
                mass: np.ndarray) -> ForceEvaluation:
        n = mass.shape[0]
        size = self.comm.Get_size()
        counts = split_counts(n, size)
        rank = self.comm.Get_rank()
        start = sum(counts[:rank])
        my = slice(start, start + counts[rank])

        # Each OpenMP thread computes a contiguous i-chunk of this rank's
        # slice; results are identical to one call but the chunked execution
        # mirrors (and tests) the static-scheduling decomposition.
        acc_local = np.empty((counts[rank], 3))
        jerk_local = np.empty((counts[rank], 3))
        for chunk in chunk_ranges(counts[rank], self.omp.effective_threads):
            if chunk.stop == chunk.start:
                continue
            sub = slice(my.start + chunk.start, my.start + chunk.stop)
            a, j = simd_accel_jerk(
                pos, vel, mass,
                softening=self.softening, G=self.G, i_slice=sub,
            )
            acc_local[chunk] = a
            jerk_local[chunk] = j

        if size > 1:
            acc = np.zeros((n, 3))
            jerk = np.zeros((n, 3))
            self.comm.Allgatherv(acc_local, acc, counts)
            self.comm.Allgatherv(jerk_local, jerk, counts)
        else:
            acc, jerk = acc_local, jerk_local

        seconds = self.omp.force_eval_seconds(n) * self._noise
        return ForceEvaluation(
            acc, jerk,
            segments=(TimelineSegment("host", seconds, "force-omp"),),
        )

    def compute_on_targets(self, pos: np.ndarray, vel: np.ndarray,
                           mass: np.ndarray,
                           targets: np.ndarray) -> ForceEvaluation:
        """Subset evaluation: the active block's rows only, priced as such.

        The OpenMP decomposition chunks the *target vector* across
        threads; since every row accumulates over the identical j-block
        stream, each target row is bit-identical to the same row of a
        full :meth:`compute`.  Modelled wall time shrinks with the active
        block (``subset_eval_seconds``) under the same per-job noise
        factor.
        """
        from ..backends.protocol import normalize_targets

        n = mass.shape[0]
        idx = normalize_targets(targets, n)
        acc = np.empty((idx.size, 3))
        jerk = np.empty((idx.size, 3))
        for chunk in chunk_ranges(idx.size, self.omp.effective_threads):
            if chunk.stop == chunk.start:
                continue
            a, j = simd_accel_jerk(
                pos, vel, mass,
                softening=self.softening, G=self.G, targets=idx[chunk],
            )
            acc[chunk] = a
            jerk[chunk] = j
        seconds = self.omp.subset_eval_seconds(idx.size, n) * self._noise
        return ForceEvaluation(
            acc, jerk,
            segments=(TimelineSegment(
                "host", seconds, f"force-omp-subset[{idx.size}]"
            ),),
        )

    # -- campaign support --------------------------------------------------

    def job_model_seconds(self, n: int, n_cycles: int) -> float:
        """Analytic time-to-solution (no noise): used for projections."""
        if n <= 0 or n_cycles <= 0:
            raise ConfigurationError("n and n_cycles must be positive")
        return self.omp.job_seconds(n, n_cycles)

    def host_cycle_seconds(self, n: int) -> float:
        """Serial per-cycle host work, for the Simulation host cost model."""
        return self.omp.serial_seconds(n) * self._noise

    @property
    def noise_factor(self) -> float:
        return self._noise

"""Model of the paper's optimized CPU reference implementation.

The baseline the Wormhole port is measured against: a mixed-precision
C++ code parallelised with MPI + OpenMP and vectorised with AVX-512
(paper Section 3).  Here: a float32-pairwise/float64-accumulate kernel
(:mod:`~repro.cpuref.simd`), an OpenMP static-scheduling wall-time model
(:mod:`~repro.cpuref.openmp`), an in-process MPI-like communicator
(:mod:`~repro.cpuref.mpi`), and the assembled
:class:`~repro.cpuref.reference.CPUForceBackend`.
"""

from .mpi import FakeComm, split_counts
from .openmp import OpenMPModel, chunk_ranges
from .params import (
    DEFAULT_CPU_COSTS,
    EPYC_9124_DUAL,
    CpuCostParams,
    HostParams,
)
from .reference import CPUForceBackend
from .simd import interactions_count, simd_accel_jerk

__all__ = [
    "FakeComm",
    "split_counts",
    "OpenMPModel",
    "chunk_ranges",
    "DEFAULT_CPU_COSTS",
    "EPYC_9124_DUAL",
    "CpuCostParams",
    "HostParams",
    "CPUForceBackend",
    "interactions_count",
    "simd_accel_jerk",
]

"""Host CPU parameters and calibrated cost constants.

``HostParams`` describes the paper's host: "a dual-socket AMD EPYC 9124
processor, offering a total of 64 hardware threads (2 sockets x 16 cores x
2 threads per core) and a maximum clock frequency of 3.71 GHz" with AVX-512
(the reference build passes ``-mavx512f``; 512-bit vectors hold 16 floats).

``CpuCostParams`` holds calibrated effective rates.  Calibration target is
the paper's measured reference time-to-solution: 672.90 s for N = 102 400
over 10 cycles with 32 OpenMP threads pinned to physical cores
(``OMP_PLACES=cores``), i.e. ~67.3 s per cycle.  With the modelled serial
fraction (~0.5 s per cycle of predictor/corrector and MPI bookkeeping), the
parallel term must supply ~60.5 s per force evaluation (a Hermite run of
10 cycles performs 11 evaluations, the initial one included):

    seconds_per_interaction = 60.5 * 32 / (102400^2) = 1.846e-7 s

This folds memory traffic, mixed-precision conversion, and all pipeline
inefficiencies of the real code into one effective per-interaction rate —
the paper reports only end-to-end numbers, so finer decomposition would be
invented detail.  The run-to-run variability sigma reproduces the larger
standard deviation the paper observes for CPU runs (7.83 s / 672.90 s =
1.16%), attributed to "variability in system load, resource contention,
and operating system scheduling".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["HostParams", "CpuCostParams", "EPYC_9124_DUAL", "DEFAULT_CPU_COSTS"]


@dataclass(frozen=True)
class HostParams:
    """The dual-socket EPYC 9124 host of the paper's campaign."""

    sockets: int = 2
    cores_per_socket: int = 16
    threads_per_core: int = 2
    max_clock_hz: float = 3.71e9
    simd_width_fp32: int = 16   # AVX-512: 512 bits / 32
    simd_width_fp64: int = 8

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def hardware_threads(self) -> int:
        return self.physical_cores * self.threads_per_core


@dataclass(frozen=True)
class CpuCostParams:
    """Calibrated effective timing constants for the reference code."""

    #: Effective wall seconds per pairwise interaction per thread
    #: (mixed-precision AVX-512 kernel, end-to-end calibrated).
    seconds_per_interaction: float = 1.846e-7
    #: Serial per-cycle overhead [s] at N = 0 (MPI bookkeeping, barriers).
    serial_seconds_per_cycle: float = 0.05
    #: Serial per-particle per-cycle cost [s] (FP64 predictor/corrector).
    serial_seconds_per_particle: float = 4.4e-6
    #: One-time job initialisation [s].
    init_seconds: float = 2.0
    #: Per-thread scheduling/synchronisation overhead added to each
    #: cycle [s] — makes scaling sub-linear at high thread counts.
    sync_seconds_per_thread: float = 2.0e-3
    #: Run-to-run multiplicative noise (paper: sigma/mean = 1.16%).
    run_noise_sigma: float = 0.0116


EPYC_9124_DUAL = HostParams()
DEFAULT_CPU_COSTS = CpuCostParams()

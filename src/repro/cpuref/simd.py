"""Mixed-precision SIMD force kernel: the model of the AVX-512 inner loop.

The paper's reference implementation "leverages AVX-512 intrinsics to
efficiently compute the force between particles" and is "also in mixed
precision": the pairwise math runs in single precision while accumulation
and everything outside the kernel stays double.  This module reproduces
that numeric behaviour exactly:

* pairwise displacement, distance, and force factors are computed in
  float32 (each NumPy float32 op rounds once, like the hardware vector op);
* per-particle accumulation happens in float64, the natural model for
  FP32 lanes feeding FP64 accumulators across j-blocks.

The kernel is blocked over j in chunks that are multiples of the SIMD
width; the block size also bounds the temporary arrays (cache friendliness
per the optimisation guide).
"""

from __future__ import annotations

import numpy as np

from ..errors import NBodyError

__all__ = ["simd_accel_jerk", "interactions_count"]

#: j-block of 2048 floats x a few temporaries stays inside L2.
DEFAULT_J_BLOCK = 2048


def interactions_count(n: int) -> int:
    """Pairwise interactions per full force evaluation (self excluded)."""
    return n * (n - 1)


def simd_accel_jerk(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    *,
    softening: float = 0.0,
    G: float = 1.0,
    j_block: int = DEFAULT_J_BLOCK,
    i_slice: slice | None = None,
    targets: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Acceleration and jerk with float32 pairwise math, float64 accumulation.

    ``i_slice`` restricts the output to a contiguous range of target
    particles — the unit of work the OpenMP scheduler hands to a thread
    (and an MPI rank hands to itself).  ``targets`` is the general form:
    an arbitrary index vector of receivers (the active block of a
    block-timestep integrator); mutually exclusive with ``i_slice``.  All
    source particles j always participate, in the same j-block order, so
    a subset row is bit-identical to the same row of a full evaluation.
    """
    n = mass.shape[0]
    if pos.shape != (n, 3) or vel.shape != (n, 3):
        raise NBodyError("pos/vel shapes do not match the mass vector")
    if softening < 0:
        raise NBodyError(f"softening must be non-negative, got {softening}")
    if targets is not None and i_slice is not None:
        raise NBodyError("i_slice and targets are mutually exclusive")
    if targets is not None:
        idx = np.asarray(targets, dtype=np.intp)
        if idx.ndim != 1 or idx.size == 0:
            raise NBodyError("targets must be a non-empty index vector")
        if idx.min() < 0 or idx.max() >= n:
            raise NBodyError(f"target indices out of range [0, {n})")
    else:
        sl = i_slice if i_slice is not None else slice(0, n)
        idx = np.arange(*sl.indices(n), dtype=np.intp)

    # Single-precision copies of the full source set (what the real code
    # converts once per evaluation before entering the vector loop).
    pos32 = pos.astype(np.float32)
    vel32 = vel.astype(np.float32)
    mass32 = mass.astype(np.float32)
    eps2 = np.float32(softening * softening)

    n_i = idx.size
    acc = np.zeros((n_i, 3))
    jerk = np.zeros((n_i, 3))
    pos_i = pos32[idx]
    vel_i = vel32[idx]

    for j0 in range(0, n, j_block):
        j1 = min(j0 + j_block, n)
        pj = pos32[j0:j1]
        vj = vel32[j0:j1]
        mj = mass32[j0:j1]
        # (n_i, jb, 3) float32 pairwise terms — each op rounds once.
        dr = pj[None, :, :] - pos_i[:, None, :]
        dv = vj[None, :, :] - vel_i[:, None, :]
        s = np.einsum("ijk,ijk->ij", dr, dr).astype(np.float32) + eps2
        rv = np.einsum("ijk,ijk->ij", dr, dv).astype(np.float32)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_s = np.float32(1.0) / s
            inv_r = np.sqrt(inv_s).astype(np.float32)
            inv_r3 = (inv_s * inv_r).astype(np.float32)
        # self-interaction mask: each target that falls inside this j-block
        rows = np.nonzero((idx >= j0) & (idx < j1))[0]
        if rows.size:
            inv_r3[rows, idx[rows] - j0] = np.float32(0.0)
            inv_s[rows, idx[rows] - j0] = np.float32(0.0)
        if eps2 == np.float32(0.0) and not np.all(np.isfinite(inv_r3)):
            raise NBodyError(
                "coincident particles with zero softening produce a "
                "singular force"
            )
        m_inv_r3 = (mj[None, :] * inv_r3).astype(np.float32)
        alpha = (np.float32(3.0) * rv * inv_s).astype(np.float32)
        # FP64 accumulation across j-blocks.
        acc += np.einsum("ij,ijk->ik", m_inv_r3, dr.astype(np.float64))
        jerk += np.einsum(
            "ij,ijk->ik", m_inv_r3, dv.astype(np.float64)
        ) - np.einsum(
            "ij,ijk->ik", (m_inv_r3 * alpha).astype(np.float64),
            dr.astype(np.float64),
        )
    return G * acc, G * jerk

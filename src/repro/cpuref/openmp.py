"""OpenMP-like execution model: threads, chunking, and wall-time.

The paper's reference runs "32 OpenMP threads and one MPI task", with all
physical cores utilised via ``OMP_PLACES=cores`` and the observation that
"using all hardware threads did not yield any significant performance
improvement" (SMT gives nothing on this kernel).  The model captures:

* static scheduling: the outer particle loop is split into one contiguous
  chunk per thread;
* wall time = slowest chunk (they run concurrently) + a per-thread
  synchronisation overhead;
* SMT saturation: threads beyond the physical core count contribute no
  additional throughput.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .params import CpuCostParams, DEFAULT_CPU_COSTS, EPYC_9124_DUAL, HostParams

__all__ = ["chunk_ranges", "OpenMPModel"]


def chunk_ranges(n: int, n_chunks: int) -> list[slice]:
    """Split ``range(n)`` into ``n_chunks`` contiguous, balanced slices.

    The first ``n % n_chunks`` chunks get one extra element, as OpenMP
    static scheduling does.  Chunks may be empty when n < n_chunks.
    """
    if n < 0 or n_chunks <= 0:
        raise ConfigurationError(
            f"need n >= 0 and n_chunks > 0, got {n}, {n_chunks}"
        )
    base, extra = divmod(n, n_chunks)
    out = []
    start = 0
    for k in range(n_chunks):
        size = base + (1 if k < extra else 0)
        out.append(slice(start, start + size))
        start += size
    return out


@dataclass(frozen=True)
class OpenMPModel:
    """Thread-level wall-time model for the blocked force kernel."""

    n_threads: int
    host: HostParams = EPYC_9124_DUAL
    costs: CpuCostParams = DEFAULT_CPU_COSTS
    places_cores: bool = True   # OMP_PLACES=cores

    def __post_init__(self) -> None:
        if self.n_threads <= 0:
            raise ConfigurationError(
                f"thread count must be positive, got {self.n_threads}"
            )
        if self.n_threads > self.host.hardware_threads:
            raise ConfigurationError(
                f"{self.n_threads} threads exceed the host's "
                f"{self.host.hardware_threads} hardware threads"
            )

    @property
    def effective_threads(self) -> int:
        """Throughput-carrying threads: SMT adds nothing to this kernel."""
        return min(self.n_threads, self.host.physical_cores)

    def force_eval_seconds(self, n: int) -> float:
        """Wall time of one full O(N^2) force evaluation."""
        chunks = chunk_ranges(n, self.effective_threads)
        # each interaction with every source particle, including the cheap
        # masked self term, costs the effective per-interaction rate
        worst = max((c.stop - c.start) for c in chunks) * n
        return (
            worst * self.costs.seconds_per_interaction
            + self.n_threads * self.costs.sync_seconds_per_thread
        )

    def subset_eval_seconds(self, n_targets: int, n: int) -> float:
        """Wall time of a target-subset evaluation: n_targets rows x n sources.

        Same static-scheduling model as :meth:`force_eval_seconds`, with
        the i-loop shrunk to the active block; the per-thread sync cost
        does not shrink (every thread still joins the barrier).
        """
        chunks = chunk_ranges(n_targets, self.effective_threads)
        worst = max((c.stop - c.start) for c in chunks) * n
        return (
            worst * self.costs.seconds_per_interaction
            + self.n_threads * self.costs.sync_seconds_per_thread
        )

    def serial_seconds(self, n: int) -> float:
        """Per-cycle serial section (predictor/corrector, bookkeeping)."""
        return (
            self.costs.serial_seconds_per_cycle
            + n * self.costs.serial_seconds_per_particle
        )

    def cycle_seconds(self, n: int) -> float:
        return self.force_eval_seconds(n) + self.serial_seconds(n)

    def job_seconds(self, n: int, n_cycles: int) -> float:
        """Modelled time-to-solution (init + initial eval + n cycles)."""
        return (
            self.costs.init_seconds
            + self.force_eval_seconds(n)  # initial force evaluation
            + n_cycles * self.cycle_seconds(n)
        )

"""In-process MPI-like communicator for rank-level decomposition.

The reference code is "parallelized using ... the Message Passing Interface
(MPI) and OpenMP"; the paper's runs use a single MPI task, but the code
structure supports more, and the multi-device extension (experiment E8)
decomposes over ranks.  This module provides the needed subset with mpi4py
naming: a communicator with ``Get_rank``/``Get_size``, buffer-based
``Allgatherv`` for force exchange, and ``Bcast``/``Barrier``.

Ranks execute sequentially in-process (deterministic, dependency-free);
the *cost model* accounts what the collective would have cost on the wire.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = ["FakeComm", "split_counts"]

#: Shared-memory collective constants: latency per rank, bandwidth.
LATENCY_S = 5.0e-7
BANDWIDTH_BYTES_PER_S = 20.0e9


def split_counts(n: int, size: int) -> list[int]:
    """Balanced element counts per rank (MPI-style block distribution)."""
    if n < 0 or size <= 0:
        raise ConfigurationError(f"need n >= 0, size > 0; got {n}, {size}")
    base, extra = divmod(n, size)
    return [base + (1 if r < extra else 0) for r in range(size)]


class FakeComm:
    """A COMM_WORLD-like communicator over in-process "ranks"."""

    def __init__(self, size: int = 1, rank: int = 0) -> None:
        if size <= 0 or not (0 <= rank < size):
            raise ConfigurationError(
                f"invalid communicator size={size}, rank={rank}"
            )
        self._size = size
        self._rank = rank
        self.collective_seconds = 0.0  # accumulated modelled comm time

    def Get_size(self) -> int:
        return self._size

    def Get_rank(self) -> int:
        return self._rank

    # -- collectives -----------------------------------------------------------

    def Allgatherv(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                   counts: list[int]) -> None:
        """Gather variable-size contributions from every rank into recvbuf.

        In-process there is a single rank's data to place; the cost model
        charges the full ring-allgather the real communicator would run.
        """
        if sum(counts) != recvbuf.shape[0]:
            raise ConfigurationError(
                f"recvbuf rows {recvbuf.shape[0]} != sum of counts {sum(counts)}"
            )
        offset = sum(counts[: self._rank])
        if sendbuf.shape[0] != counts[self._rank]:
            raise ConfigurationError(
                f"sendbuf rows {sendbuf.shape[0]} != this rank's count "
                f"{counts[self._rank]}"
            )
        recvbuf[offset : offset + counts[self._rank]] = sendbuf
        self.collective_seconds += self._allgather_cost(recvbuf.nbytes)

    def Bcast(self, buf: np.ndarray, root: int = 0) -> None:
        if not (0 <= root < self._size):
            raise ConfigurationError(f"invalid root {root}")
        self.collective_seconds += self._allgather_cost(buf.nbytes) / max(
            self._size - 1, 1
        )

    def Barrier(self) -> None:
        self.collective_seconds += LATENCY_S * max(self._size - 1, 0)

    def _allgather_cost(self, total_bytes: int) -> float:
        if self._size == 1:
            return 0.0
        steps = self._size - 1
        per_step_bytes = total_bytes / self._size
        return steps * (LATENCY_S + per_step_bytes / BANDWIDTH_BYTES_PER_S)

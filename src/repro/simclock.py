"""Virtual time base for the simulated experimental campaign.

The paper's measurement workflow is wall-clock driven: a device reset,
a 120-second sleep, the simulation itself (timed with ``MPI_Wtime``),
another 120-second sleep, with power sampled at ~1 Hz throughout.  Running
that against the real clock would make every benchmark take minutes of
idle sleeping, so the whole campaign runs against a :class:`VirtualClock`
instead: "sleeping" advances virtual time instantly, and samplers observe
virtual timestamps.  All timestamp relationships of the paper's workflow
(reset, sleeps, run window, sampling cadence) are preserved exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigurationError

__all__ = ["VirtualClock", "Stopwatch"]


class VirtualClock:
    """A monotonic virtual clock measured in seconds.

    The clock only moves when :meth:`advance` is called; there is no
    background progression.  Components that need "the current time"
    (samplers, csv writers, the campaign driver) share one instance.
    """

    def __init__(self, start: float = 0.0) -> None:
        if not (start >= 0.0):
            raise ConfigurationError(f"clock start must be >= 0, got {start!r}")
        self._now = float(start)

    def now(self) -> float:
        """Current virtual time in seconds since the epoch of this clock."""
        return self._now

    def advance(self, dt: float) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time.

        ``dt`` must be non-negative; a virtual clock never runs backwards.
        """
        if not (dt >= 0.0):
            raise ConfigurationError(f"cannot advance clock by negative dt={dt!r}")
        self._now += float(dt)
        return self._now

    def sleep(self, seconds: float) -> None:
        """Virtual sleep: advances time by ``seconds`` without blocking."""
        self.advance(seconds)

    def jump_to(self, t: float) -> float:
        """Jump the clock forward to absolute time ``t`` (checkpoint resume).

        Monotonicity still holds: jumping backwards is rejected, because a
        resumed campaign must continue exactly where the interrupted one
        stopped, never earlier.
        """
        if not (t >= self._now):
            raise ConfigurationError(
                f"cannot jump clock backwards from {self._now!r} to {t!r}"
            )
        self._now = float(t)
        return self._now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualClock(now={self._now:.3f}s)"


@dataclass
class Stopwatch:
    """Start/stop interval timer over a :class:`VirtualClock`.

    Mirrors the paper's hardcoded ``MPI_Wtime()`` pair around the simulation:
    the elapsed window deliberately excludes the sleep phases because the
    campaign only starts the watch after the pre-run sleep.
    """

    clock: VirtualClock
    _start: float | None = field(default=None, init=False)
    _elapsed: float = field(default=0.0, init=False)

    def start(self) -> float:
        if self._start is not None:
            raise ConfigurationError("stopwatch already running")
        self._start = self.clock.now()
        return self._start

    def stop(self) -> float:
        """Stop the watch and return the elapsed interval in seconds."""
        if self._start is None:
            raise ConfigurationError("stopwatch not running")
        self._elapsed = self.clock.now() - self._start
        self._start = None
        return self._elapsed

    @property
    def running(self) -> bool:
        return self._start is not None

    @property
    def elapsed(self) -> float:
        """Elapsed seconds of the most recently completed interval."""
        return self._elapsed

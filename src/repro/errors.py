"""Exception hierarchy for the repro package.

Every subsystem raises exceptions derived from :class:`ReproError` so callers
can catch library failures without masking programming errors.  The device
layer distinguishes *transient* hardware-like faults (reset failures, which
the paper's campaign hit on 24 of 50 jobs) from *usage* errors (invalid
buffer sizes, protocol violations on circular buffers), because the campaign
driver retries the former and aborts on the latter.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """Invalid configuration value or combination of parameters."""


class UnknownBackendError(ConfigurationError):
    """A backend name that is not in the :mod:`repro.backends` registry.

    Carries the registered names in its message so user-facing surfaces
    (the CLI, campaign schedules) can report actionable errors instead of
    tracebacks.
    """


class UnknownIntegratorError(ConfigurationError):
    """An integrator name that is not in the :mod:`repro.core.integrators`
    registry; the message carries the registered names."""


class UnknownScenarioError(ConfigurationError):
    """A scenario name that is not in the :mod:`repro.core.scenarios`
    registry; the message carries the registered names."""


# --------------------------------------------------------------------------
# Device / simulator faults
# --------------------------------------------------------------------------


class DeviceError(ReproError):
    """Base class for simulated Wormhole device failures."""


class DeviceResetError(DeviceError):
    """Raised when a device reset fails.

    Mirrors the failure mode reported in the paper's experimental campaign,
    where 24 of 50 accelerated jobs "failed to start due to errors occurring
    during the device reset phase".
    """


class DeviceNotOpenError(DeviceError):
    """Operation attempted on a device that is closed or unreset."""


class AllocationError(DeviceError):
    """On-device memory (DRAM or L1 SRAM) allocation failure."""


class DeviceMemoryError(DeviceError):
    """Out-of-range or misaligned access to simulated device memory."""


# --------------------------------------------------------------------------
# Kernel / dataflow protocol errors
# --------------------------------------------------------------------------


class KernelError(ReproError):
    """Base class for kernel construction and execution errors."""


class CircularBufferError(KernelError):
    """Violation of circular-buffer protocol (wait/pop/reserve/push)."""


class RegisterFileError(KernelError):
    """Invalid access to srcA/srcB/dst tile registers."""


class TileError(ReproError):
    """Invalid tile shape, dtype, or tilize/untilize request."""


class DataFormatError(TileError):
    """Unsupported or inconsistent device data format."""


# --------------------------------------------------------------------------
# Host-side (TT-Metalium-like) API errors
# --------------------------------------------------------------------------


class HostApiError(ReproError):
    """Misuse of the metalium host API (bad handles, double frees, ...)."""


class CommandQueueError(HostApiError):
    """Invalid command-queue operation (e.g. waiting on an empty queue)."""


# --------------------------------------------------------------------------
# Correctness tooling (repro.analysis)
# --------------------------------------------------------------------------


class AnalysisError(ReproError):
    """Base class for the static linter / runtime sanitizer subsystem."""


class LintError(AnalysisError):
    """A program failed the static pre-dispatch lint gate.

    Raised by :func:`repro.metalium.EnqueueProgram` in ``lint="error"`` mode
    and by the ``repro-lint`` CLI; carries the offending
    :class:`~repro.analysis.LintReport` in :attr:`report`.
    """

    def __init__(self, message: str, report=None) -> None:
        super().__init__(message)
        self.report = report


class SanitizerError(AnalysisError):
    """The runtime sanitizer detected a dataflow hazard.

    Raised on first hazard when the sanitizer runs in halting mode; carries
    the :class:`~repro.analysis.Hazard` in :attr:`hazard`.
    """

    def __init__(self, message: str, hazard=None) -> None:
        super().__init__(message)
        self.hazard = hazard


# --------------------------------------------------------------------------
# N-body application errors
# --------------------------------------------------------------------------


class NBodyError(ReproError):
    """Base class for errors raised by the N-body application layer."""


class ValidationError(NBodyError):
    """Accuracy validation against the golden reference failed.

    Raised when acceleration or jerk components exceed the paper's
    acceptance gates (0.05% and 0.2% of a typical force magnitude).
    """


class IntegratorError(NBodyError):
    """Numerical integration failure (NaNs, non-finite timestep, ...)."""


# --------------------------------------------------------------------------
# Telemetry / campaign errors
# --------------------------------------------------------------------------


class TelemetryError(ReproError):
    """Base class for measurement-infrastructure failures."""


class SamplerError(TelemetryError):
    """Power/energy sampler misconfiguration or protocol error."""


class CampaignError(TelemetryError):
    """Experimental-campaign orchestration failure."""


class CheckpointError(CampaignError):
    """Campaign checkpoint file is missing, corrupt, or inconsistent."""


# --------------------------------------------------------------------------
# Service layer (repro.service)
# --------------------------------------------------------------------------


class ServiceError(ReproError):
    """Base class for the simulation-as-a-service job server."""


class QuotaExceededError(ServiceError):
    """A submission was rejected for quota or queue backpressure.

    ``retry_after_s`` is the service's estimate, in modelled (virtual
    clock) seconds, of when the rejected tenant should retry; the HTTP
    surface maps it to a 429 response with a ``Retry-After`` header.
    """

    def __init__(self, message: str, *, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JobNotFoundError(ServiceError):
    """Lookup of an unknown job id (the HTTP surface maps it to 404)."""


# --------------------------------------------------------------------------
# Failure taxonomy
# --------------------------------------------------------------------------
#
# The campaign's retry machinery needs two judgements about an exception:
# *is it transient* (worth retrying — the paper's reset-phase errors are:
# resubmitting the job usually works) and *what kind of failure was it*
# (for the campaign's failure-breakdown telemetry).  Both are derived from
# the exception class so new error types slot in by editing the tables
# below, not the retry loop.

#: Exception classes representing transient, retry-worthy faults.  Usage
#: errors (bad configuration, protocol violations) are deliberately absent:
#: retrying those would loop forever on a programming mistake.
TRANSIENT_ERROR_TYPES: tuple[type[Exception], ...] = (DeviceResetError,)

#: Most-specific-first mapping from exception class to the short machine-
#: readable kind recorded in :class:`JobResult.failure_kind` and the
#: campaign summary's failure breakdown.
FAILURE_KINDS: tuple[tuple[type[Exception], str], ...] = (
    (DeviceResetError, "device-reset"),
    (AllocationError, "allocation"),
    (DeviceMemoryError, "device-memory"),
    (DeviceNotOpenError, "device-state"),
    (DeviceError, "device"),
    (CircularBufferError, "circular-buffer"),
    (KernelError, "kernel"),
    (CommandQueueError, "command-queue"),
    (HostApiError, "host-api"),
    (DataFormatError, "data-format"),
    (TileError, "tile"),
    (ValidationError, "validation"),
    (IntegratorError, "integrator"),
    (NBodyError, "nbody"),
    (LintError, "lint"),
    (SanitizerError, "sanitizer"),
    (AnalysisError, "analysis"),
    (SamplerError, "sampler"),
    (CheckpointError, "checkpoint"),
    (CampaignError, "campaign"),
    (TelemetryError, "telemetry"),
    (QuotaExceededError, "quota"),
    (JobNotFoundError, "job-not-found"),
    (ServiceError, "service"),
    (ConfigurationError, "configuration"),
    (ReproError, "repro"),
)


def is_transient(exc: BaseException) -> bool:
    """True when ``exc`` is a transient fault a retry may clear."""
    return isinstance(exc, TRANSIENT_ERROR_TYPES)


def failure_kind(exc: BaseException) -> str:
    """Short machine-readable kind for ``exc`` (``"unexpected"`` if none)."""
    for exc_type, kind in FAILURE_KINDS:
        if isinstance(exc, exc_type):
            return kind
    return "unexpected"

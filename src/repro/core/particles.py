"""The particle system: the master double-precision state.

Per the paper's mixed-precision scheme, "acceleration, jerk, and other
intermediate values within the force calculation are computed in single
precision, while all remaining calculations are performed in double
precision on the CPU" — so the system of record is always float64; force
backends may internally degrade precision, but what they return is merged
into this state.

Layout is structure-of-arrays: contiguous (N, 3) float64 arrays for
positions/velocities/acceleration/jerk and an (N,) mass vector, which is
both the cache-friendly layout the optimization guide prescribes and the
layout the tilizer consumes column-by-column.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import NBodyError

__all__ = ["ParticleSystem"]


@dataclass
class ParticleSystem:
    """State of an N-particle gravitational system in N-body units."""

    mass: np.ndarray
    pos: np.ndarray
    vel: np.ndarray
    acc: np.ndarray = field(default=None)  # type: ignore[assignment]
    jerk: np.ndarray = field(default=None)  # type: ignore[assignment]
    time: float = 0.0

    def __post_init__(self) -> None:
        self.mass = np.ascontiguousarray(self.mass, dtype=np.float64)
        self.pos = np.ascontiguousarray(self.pos, dtype=np.float64)
        self.vel = np.ascontiguousarray(self.vel, dtype=np.float64)
        n = self.mass.shape[0]
        if self.mass.ndim != 1 or n == 0:
            raise NBodyError(f"mass must be a non-empty vector, got {self.mass.shape}")
        for name, arr in (("pos", self.pos), ("vel", self.vel)):
            if arr.shape != (n, 3):
                raise NBodyError(
                    f"{name} must have shape ({n}, 3), got {arr.shape}"
                )
        if np.any(self.mass < 0):
            raise NBodyError("negative masses are not physical")
        if not (np.all(np.isfinite(self.pos)) and np.all(np.isfinite(self.vel))
                and np.all(np.isfinite(self.mass))):
            raise NBodyError("non-finite values in initial state")
        if self.acc is None:
            self.acc = np.zeros((n, 3))
        if self.jerk is None:
            self.jerk = np.zeros((n, 3))
        self.acc = np.ascontiguousarray(self.acc, dtype=np.float64)
        self.jerk = np.ascontiguousarray(self.jerk, dtype=np.float64)
        if self.acc.shape != (n, 3) or self.jerk.shape != (n, 3):
            raise NBodyError("acc/jerk must have shape (n, 3)")

    @property
    def n(self) -> int:
        """Number of particles."""
        return self.mass.shape[0]

    @property
    def total_mass(self) -> float:
        """Sum of all particle masses."""
        return float(self.mass.sum())

    def copy(self) -> "ParticleSystem":
        """Deep copy of every array and the current time."""
        return ParticleSystem(
            self.mass.copy(), self.pos.copy(), self.vel.copy(),
            self.acc.copy(), self.jerk.copy(), self.time,
        )

    # -- frame utilities ----------------------------------------------------

    def center_of_mass(self) -> np.ndarray:
        """Mass-weighted mean position, shape (3,)."""
        return (self.mass[:, None] * self.pos).sum(axis=0) / self.total_mass

    def center_of_mass_velocity(self) -> np.ndarray:
        """Mass-weighted mean velocity, shape (3,)."""
        return (self.mass[:, None] * self.vel).sum(axis=0) / self.total_mass

    def to_center_of_mass_frame(self) -> None:
        """Shift to the barycentric frame, in place."""
        self.pos -= self.center_of_mass()
        self.vel -= self.center_of_mass_velocity()

    def check_finite(self) -> None:
        """Raise if the dynamical state has gone non-finite."""
        if not (
            np.all(np.isfinite(self.pos))
            and np.all(np.isfinite(self.vel))
            and np.all(np.isfinite(self.acc))
            and np.all(np.isfinite(self.jerk))
        ):
            raise NBodyError(
                f"non-finite dynamical state at t={self.time}; the timestep "
                "is likely too large or two particles collided without "
                "softening"
            )

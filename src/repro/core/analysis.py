"""Cluster structure diagnostics for dense stellar systems.

The observables astrophysicists extract from the simulations the paper
targets: Lagrangian radii, the density centre (Casertano & Hut 1985), core
radius and density, velocity dispersion, and relaxation-time estimates that
set how long a cluster must be integrated — the quantity that makes
*efficient* direct N-body codes matter in the first place.

All functions operate on a :class:`~repro.core.particles.ParticleSystem`
in Henon units and are pure (no mutation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import NBodyError
from .particles import ParticleSystem
from .units import HENON_CROSSING_TIME

__all__ = [
    "lagrangian_radii",
    "density_center",
    "core_radius",
    "velocity_dispersion",
    "half_mass_relaxation_time",
    "ClusterReport",
    "cluster_report",
]


def lagrangian_radii(
    system: ParticleSystem,
    fractions: tuple[float, ...] = (0.1, 0.5, 0.9),
    *,
    center: np.ndarray | None = None,
) -> np.ndarray:
    """Radii enclosing the given mass fractions.

    ``center`` defaults to the density centre (robust against escapers,
    unlike the barycentre).
    """
    if not fractions or any(not (0.0 < f <= 1.0) for f in fractions):
        raise NBodyError(f"mass fractions must lie in (0, 1], got {fractions}")
    if center is None:
        center = density_center(system)
    radii = np.linalg.norm(system.pos - center, axis=1)
    order = np.argsort(radii)
    cum = np.cumsum(system.mass[order])
    cum /= cum[-1]
    sorted_radii = radii[order]
    return np.array([
        sorted_radii[np.searchsorted(cum, f)] for f in fractions
    ])


def _knn_density(system: ParticleSystem, k: int) -> np.ndarray:
    """Casertano-Hut k-th-neighbour local density estimate per particle."""
    from scipy.spatial import cKDTree

    tree = cKDTree(system.pos)
    # k+1 because each particle is its own nearest neighbour
    dist, idx = tree.query(system.pos, k=k + 1)
    r_k = dist[:, -1]
    # mass within the k-th neighbour sphere, excluding self and the k-th
    inner_mass = system.mass[idx[:, 1:-1]].sum(axis=1)
    volume = (4.0 / 3.0) * np.pi * np.maximum(r_k, 1e-300) ** 3
    return inner_mass / volume


def density_center(system: ParticleSystem, k: int = 6) -> np.ndarray:
    """Density-weighted centre (Casertano & Hut 1985).

    Weights each position by its local density estimate; converges on the
    cluster core even when escapers drag the barycentre away.
    """
    if system.n <= k + 1:
        return system.center_of_mass()
    rho = _knn_density(system, k)
    total = rho.sum()
    if total <= 0.0:
        return system.center_of_mass()
    return (rho[:, None] * system.pos).sum(axis=0) / total


def core_radius(system: ParticleSystem, k: int = 6) -> float:
    """Density-weighted core radius (Casertano & Hut 1985).

    r_c = sqrt( sum rho_i^2 |r_i - r_d|^2 / sum rho_i^2 ).
    """
    if system.n <= k + 1:
        raise NBodyError(f"need more than {k + 1} particles for a core radius")
    rho = _knn_density(system, k)
    center = density_center(system, k)
    dr2 = np.einsum("ij,ij->i", system.pos - center, system.pos - center)
    w = rho * rho
    return float(np.sqrt(np.sum(w * dr2) / np.sum(w)))


def velocity_dispersion(system: ParticleSystem) -> float:
    """1-D mass-weighted velocity dispersion about the bulk motion."""
    v_bulk = system.center_of_mass_velocity()
    dv = system.vel - v_bulk
    sigma2_3d = np.sum(system.mass * np.einsum("ij,ij->i", dv, dv))
    return float(np.sqrt(sigma2_3d / (3.0 * system.total_mass)))


def half_mass_relaxation_time(system: ParticleSystem) -> float:
    """Spitzer (1987) half-mass relaxation time in N-body time units.

    t_rh = 0.138 N r_h^{3/2} / (sqrt(M) ln(0.4 N))  with G = 1.

    This is the timescale over which two-body encounters reshape the
    cluster — the number of crossing times a production run must cover,
    and hence the paper's performance motivation.
    """
    n = system.n
    if n < 3:
        raise NBodyError("relaxation time needs at least 3 particles")
    r_half = float(lagrangian_radii(system, (0.5,))[0])
    coulomb_log = np.log(max(0.4 * n, np.e))
    return float(
        0.138 * n * r_half ** 1.5
        / (np.sqrt(system.total_mass) * coulomb_log)
    )


@dataclass(frozen=True)
class ClusterReport:
    """Bundle of structure diagnostics at one instant."""

    time: float
    lagrangian: np.ndarray      # r10, r50, r90
    core_radius: float
    sigma_1d: float
    t_relax: float

    @property
    def half_mass_radius(self) -> float:
        """Radius enclosing half the cluster mass (the 50% Lagrangian radius)."""
        return float(self.lagrangian[1])

    @property
    def crossing_times_per_relaxation(self) -> float:
        """Relaxation time in units of the Henon crossing time."""
        return self.t_relax / HENON_CROSSING_TIME


def cluster_report(system: ParticleSystem) -> ClusterReport:
    """All structure diagnostics in one pass."""
    return ClusterReport(
        time=system.time,
        lagrangian=lagrangian_radii(system),
        core_radius=core_radius(system),
        sigma_1d=velocity_dispersion(system),
        t_relax=half_mass_relaxation_time(system),
    )

"""Initial-condition generators for star-cluster-like systems.

The paper's application domain is "dense stellar systems, such as star
clusters ... the primary environments for the formation of compact object
binaries".  The generators here cover that domain:

* :func:`plummer` — the standard Plummer (1911) sphere via Aarseth, Hénon
  & Wielen (1974) sampling; the canonical direct-N-body test model and the
  workload of every benchmark in this repository.
* :func:`uniform_sphere` — a cold homogeneous sphere (cold-collapse tests).
* :func:`hernquist` — a cuspy Hernquist (1990) model with isotropic
  velocities from its distribution function (inverse-sampled radii,
  velocity set by local virial-like scaling).
* :func:`binary` / :func:`cluster_with_binary` — a hard two-body binary,
  optionally embedded in a Plummer background: the black-hole-binary
  hardening scenario the paper's introduction motivates.

All generators take an explicit seed, return barycentric systems in Hénon
units (G = M = 1, E = -1/4 for virialised models), and are pure functions
of their arguments.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .particles import ParticleSystem

__all__ = [
    "plummer",
    "uniform_sphere",
    "hernquist",
    "binary",
    "cluster_with_binary",
    "cluster_collision",
]


def _require_n(n: int, minimum: int = 1) -> None:
    if n < minimum:
        raise ConfigurationError(f"need at least {minimum} particles, got {n}")


def _isotropic_unit_vectors(rng: np.random.Generator, n: int) -> np.ndarray:
    """n uniformly distributed directions on the unit sphere."""
    z = rng.uniform(-1.0, 1.0, n)
    phi = rng.uniform(0.0, 2.0 * np.pi, n)
    s = np.sqrt(1.0 - z * z)
    return np.column_stack([s * np.cos(phi), s * np.sin(phi), z])


def _virial_scale(pos, vel, mass) -> tuple[np.ndarray, np.ndarray]:
    """Rescale to exact Hénon units: W = -1/2, T = 1/4 (so E = -1/4)."""
    from .energy import kinetic_energy
    from .forces import potential_reference

    W = potential_reference(pos, mass)
    pos = pos * (W / -0.5)
    W = -0.5
    T = kinetic_energy(mass, vel)
    if T > 0:
        vel = vel * np.sqrt(0.25 / T)
    return pos, vel


def plummer(
    n: int,
    *,
    seed: int = 0,
    virial_scaled: bool = True,
    cutoff_radius: float = 22.8,
) -> ParticleSystem:
    """Equal-mass Plummer sphere in Hénon units.

    Radii are inverse-sampled from the cumulative mass profile
    M(r) = r^3 / (1 + r^2)^{3/2}; speeds from the distribution
    g(q) = q^2 (1 - q^2)^{7/2} by rejection (Aarseth, Hénon & Wielen 1974).
    ``cutoff_radius`` truncates the outer ~0.1% of the mass so a single
    distant particle cannot dominate the virial scaling.
    """
    _require_n(n, 2)
    rng = np.random.default_rng(seed)
    mass = np.full(n, 1.0 / n)

    # Radii: r = (X^{-2/3} - 1)^{-1/2}, resampling beyond the cutoff.
    radii = np.empty(n)
    remaining = np.arange(n)
    while remaining.size:
        x = rng.uniform(0.0, 1.0, remaining.size)
        r = 1.0 / np.sqrt(np.maximum(x, 1e-12) ** (-2.0 / 3.0) - 1.0)
        ok = r < cutoff_radius
        radii[remaining[ok]] = r[ok]
        remaining = remaining[~ok]
    pos = radii[:, None] * _isotropic_unit_vectors(rng, n)

    # Speeds: fraction q of the local escape speed, rejection-sampled.
    q = np.empty(n)
    remaining = np.arange(n)
    while remaining.size:
        trial = rng.uniform(0.0, 1.0, remaining.size)
        bound = rng.uniform(0.0, 0.1, remaining.size)
        accept = bound < trial**2 * (1.0 - trial**2) ** 3.5
        q[remaining[accept]] = trial[accept]
        remaining = remaining[~accept]
    v_escape = np.sqrt(2.0) * (1.0 + radii * radii) ** -0.25
    vel = (q * v_escape)[:, None] * _isotropic_unit_vectors(rng, n)

    system = ParticleSystem(mass, pos, vel)
    system.to_center_of_mass_frame()
    if virial_scaled:
        system.pos, system.vel = _virial_scale(system.pos, system.vel, mass)
    return system


def uniform_sphere(
    n: int,
    *,
    seed: int = 0,
    radius: float = 1.0,
    virial_ratio: float = 0.0,
) -> ParticleSystem:
    """Homogeneous sphere, optionally with isotropic kinetic support.

    ``virial_ratio`` = -T/W sets the initial temperature: 0 is a perfectly
    cold collapse, 0.5 is approximate virial equilibrium (though a uniform
    sphere is not a steady state).
    """
    _require_n(n, 2)
    if not (0.0 <= virial_ratio <= 1.0):
        raise ConfigurationError(f"virial_ratio in [0, 1], got {virial_ratio}")
    rng = np.random.default_rng(seed)
    mass = np.full(n, 1.0 / n)
    r = radius * rng.uniform(0.0, 1.0, n) ** (1.0 / 3.0)
    pos = r[:, None] * _isotropic_unit_vectors(rng, n)
    vel = np.zeros((n, 3))
    if virial_ratio > 0.0:
        from .forces import potential_reference

        W = potential_reference(pos, mass)
        target_T = -virial_ratio * W
        raw = rng.normal(size=(n, 3))
        raw -= (mass[:, None] * raw).sum(axis=0) / mass.sum()
        from .energy import kinetic_energy

        raw_T = kinetic_energy(mass, raw)
        vel = raw * np.sqrt(target_T / raw_T)
    system = ParticleSystem(mass, pos, vel)
    system.to_center_of_mass_frame()
    return system


def hernquist(n: int, *, seed: int = 0, scale_radius: float = 0.55) -> ParticleSystem:
    """Hernquist (1990) sphere with locally-scaled isotropic velocities.

    Radii invert M(r) = r^2 / (r + a)^2; the velocity dispersion uses the
    isotropic Jeans solution evaluated per particle (an accurate and much
    cheaper stand-in for full DF sampling; the system settles within a few
    crossing times).
    """
    _require_n(n, 2)
    rng = np.random.default_rng(seed)
    a = scale_radius
    mass = np.full(n, 1.0 / n)
    x = rng.uniform(0.0, 0.99, n)  # truncate extreme tail
    sq = np.sqrt(x)
    r = a * sq / (1.0 - sq)
    pos = r[:, None] * _isotropic_unit_vectors(rng, n)
    # Isotropic Hernquist dispersion (Hernquist 1990 eq. 10), G=M=1.
    u = r / a
    with np.errstate(divide="ignore", invalid="ignore"):
        sigma2 = (
            u * (1 + u) ** 3 * np.log((1 + u) / u)
            - (u / (1 + u)) * (25 + 52 * u + 42 * u**2 + 12 * u**3) / 12.0
        ) / a
    sigma2 = np.clip(np.nan_to_num(sigma2, nan=0.0), 0.0, None)
    vel = rng.normal(size=(n, 3)) * np.sqrt(sigma2)[:, None]
    system = ParticleSystem(mass, pos, vel)
    system.to_center_of_mass_frame()
    return system


def binary(
    *,
    mass_ratio: float = 1.0,
    semi_major_axis: float = 0.01,
    eccentricity: float = 0.0,
    total_mass: float = 1.0,
) -> ParticleSystem:
    """A two-body Keplerian binary at apoapsis, in the x-y plane."""
    if not (0.0 <= eccentricity < 1.0):
        raise ConfigurationError(f"eccentricity in [0, 1), got {eccentricity}")
    if mass_ratio <= 0 or semi_major_axis <= 0 or total_mass <= 0:
        raise ConfigurationError("binary parameters must be positive")
    m1 = total_mass / (1.0 + mass_ratio)
    m2 = total_mass - m1
    r_apo = semi_major_axis * (1.0 + eccentricity)
    # relative speed at apoapsis from the vis-viva equation
    v_apo = np.sqrt(total_mass * (2.0 / r_apo - 1.0 / semi_major_axis))
    mass = np.array([m1, m2])
    pos = np.array([[-m2 / total_mass * r_apo, 0.0, 0.0],
                    [m1 / total_mass * r_apo, 0.0, 0.0]])
    vel = np.array([[0.0, -m2 / total_mass * v_apo, 0.0],
                    [0.0, m1 / total_mass * v_apo, 0.0]])
    return ParticleSystem(mass, pos, vel)


def cluster_collision(
    n1: int,
    n2: int,
    *,
    seed: int = 0,
    mass_ratio: float = 1.0,
    separation: float = 6.0,
    impact_parameter: float = 0.5,
    relative_speed: float | None = None,
) -> ParticleSystem:
    """Two Plummer clusters on a collision course (a minor/major merger).

    ``mass_ratio`` is M1/M2 (cluster sizes scale with their mass so both
    are internally virialised); the pair starts ``separation`` apart along
    x with transverse offset ``impact_parameter``, approaching at
    ``relative_speed`` (default: the mutual parabolic speed at that
    separation, giving a marginally bound merger).
    """
    _require_n(n1, 2)
    _require_n(n2, 2)
    if mass_ratio <= 0:
        raise ConfigurationError(f"mass ratio must be positive, got {mass_ratio}")
    if separation <= 0:
        raise ConfigurationError(f"separation must be positive, got {separation}")
    if impact_parameter < 0:
        raise ConfigurationError("impact parameter must be non-negative")

    m1 = mass_ratio / (1.0 + mass_ratio)
    m2 = 1.0 - m1
    a = plummer(n1, seed=seed)
    b = plummer(n2, seed=seed + 1)
    # rescale each cluster to its share of the mass, keeping it virialised:
    # mass -> k m, pos -> k r, vel unchanged leaves 2T+W = 0 intact only if
    # v^2 ~ M/R; with R ~ M both scale together so velocities are unchanged
    a.mass *= m1
    a.pos *= m1
    b.mass *= m2
    b.pos *= m2

    # relative orbit: parabolic by default
    distance = np.hypot(separation, impact_parameter)
    if relative_speed is None:
        relative_speed = float(np.sqrt(2.0 / distance))  # v_esc of M=1 pair
    elif relative_speed < 0:
        raise ConfigurationError("relative speed must be non-negative")

    offset_1 = np.array([-separation * m2, -impact_parameter * m2, 0.0])
    offset_2 = np.array([separation * m1, impact_parameter * m1, 0.0])
    v_1 = np.array([relative_speed * m2, 0.0, 0.0])
    v_2 = np.array([-relative_speed * m1, 0.0, 0.0])

    system = ParticleSystem(
        np.concatenate([a.mass, b.mass]),
        np.vstack([a.pos + offset_1, b.pos + offset_2]),
        np.vstack([a.vel + v_1, b.vel + v_2]),
    )
    system.to_center_of_mass_frame()
    return system


def cluster_with_binary(
    n_background: int,
    *,
    seed: int = 0,
    binary_mass_fraction: float = 0.02,
    semi_major_axis: float = 0.005,
    eccentricity: float = 0.0,
) -> ParticleSystem:
    """A hard binary embedded at the centre of a Plummer background.

    The compact-object-binary-in-cluster configuration from the paper's
    introduction: the binary carries ``binary_mass_fraction`` of the total
    mass, background stars share the rest equally.
    """
    _require_n(n_background, 2)
    if not (0.0 < binary_mass_fraction < 1.0):
        raise ConfigurationError(
            f"binary mass fraction in (0, 1), got {binary_mass_fraction}"
        )
    background = plummer(n_background, seed=seed)
    background.mass *= 1.0 - binary_mass_fraction
    pair = binary(
        semi_major_axis=semi_major_axis,
        eccentricity=eccentricity,
        total_mass=binary_mass_fraction,
    )
    system = ParticleSystem(
        np.concatenate([pair.mass, background.mass]),
        np.vstack([pair.pos, background.pos]),
        np.vstack([pair.vel, background.vel]),
    )
    system.to_center_of_mass_frame()
    return system

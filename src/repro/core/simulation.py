"""The simulation driver: predict-evaluate-correct cycles over a backend.

The driver is backend-agnostic: a :class:`ForceBackend` is anything with a
``compute(pos, vel, mass) -> ForceEvaluation``.  The repository provides
three: the double-precision golden reference (:class:`ReferenceBackend`
here), the mixed-precision CPU model (:mod:`repro.cpuref`), and the
Wormhole offload (:mod:`repro.nbody_tt`).

Besides physics, the driver assembles the job's *timeline*: each cycle
contributes host phases (the double-precision predictor/corrector the
paper keeps on the CPU) and whatever phases the backend reports (device
compute, PCIe, kernel launches).  The telemetry stack replays this timeline
at 1 Hz to produce the power traces of the paper's Fig. 4.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

# the protocol now lives in the backends layer (its dependency-free floor);
# re-exported here so `from repro.core.simulation import ForceBackend, ...`
# keeps working for existing callers
from ..backends.protocol import (
    ForceBackend,
    ForceEvaluation,
    TimelineSegment,
    accepts_trace,
)
from ..errors import ConfigurationError
from .hermite import correct, predict

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from ..observability import Trace
from .particles import ParticleSystem
from .timestep import SharedTimestep
from .units import G_NBODY

__all__ = [
    "TimelineSegment",
    "ForceEvaluation",
    "ForceBackend",
    "ReferenceBackend",
    "HostCostModel",
    "CycleRecord",
    "SimulationResult",
    "HermiteIntegrator",
    "Simulation",
]


class ReferenceBackend:
    """The golden reference as a backend: float64, no modelled time."""

    name = "reference-f64"

    def __init__(self, softening: float = 0.0, G: float = G_NBODY) -> None:
        self.softening = softening
        self.G = G

    def compute(self, pos, vel, mass) -> ForceEvaluation:
        """Evaluate float64 reference accelerations and jerks."""
        from .forces import accel_jerk_reference

        acc, jerk = accel_jerk_reference(
            pos, vel, mass, softening=self.softening, G=self.G
        )
        return ForceEvaluation(acc, jerk)

    def compute_on_targets(self, pos, vel, mass, targets) -> ForceEvaluation:
        """Subset evaluation: float64 rows for ``targets`` only.

        ``accel_jerk_on_targets`` accumulates each target row over the same
        j-blocking as the full evaluation, so the rows are bit-identical to
        a full :meth:`compute` sliced at ``targets``.
        """
        from ..backends.protocol import normalize_targets
        from .forces import accel_jerk_on_targets

        idx = normalize_targets(targets, mass.shape[0])
        acc, jerk = accel_jerk_on_targets(
            pos, vel, mass, idx, softening=self.softening, G=self.G
        )
        return ForceEvaluation(acc, jerk)


@dataclass(frozen=True)
class HostCostModel:
    """Modelled cost of the host-resident double-precision work.

    ``seconds_per_particle_cycle`` covers the predictor, corrector, and
    FP64<->FP32 marshalling per particle per cycle; ``init_seconds`` is the
    one-time host initialisation the paper's Fig. 4 shows at job start
    (cards stay at idle power while it runs).
    """

    seconds_per_particle_cycle: float = 0.0
    init_seconds: float = 0.0

    def cycle_segments(self, n: int) -> tuple[TimelineSegment, ...]:
        """The predict/correct host segments for one cycle of ``n`` bodies."""
        if self.seconds_per_particle_cycle <= 0.0:
            return ()
        half = 0.5 * self.seconds_per_particle_cycle * n
        return (
            TimelineSegment("host", half, "predict"),
            TimelineSegment("host", half, "correct"),
        )


@dataclass(frozen=True)
class CycleRecord:
    """Per-cycle diagnostics."""

    index: int
    time: float
    dt: float
    model_seconds: float


@dataclass
class SimulationResult:
    """Everything a campaign needs from one simulation run."""

    system: ParticleSystem
    cycles: list[CycleRecord]
    timeline: list[TimelineSegment]
    backend_name: str

    @property
    def model_seconds(self) -> float:
        """Total modelled wall time of the job (the MPI_Wtime window)."""
        return sum(s.seconds for s in self.timeline)

    def seconds_by_tag(self) -> dict[str, float]:
        """Modelled seconds aggregated by segment tag (host/device/...)."""
        out: dict[str, float] = {}
        for seg in self.timeline:
            out[seg.tag] = out.get(seg.tag, 0.0) + seg.seconds
        return out


class HermiteIntegrator:
    """Shared-step Hermite integration of a particle system over a backend.

    This is the loop that historically *was* :class:`Simulation`; it is
    registered as ``"hermite"`` in :mod:`repro.core.integrators`, and
    :class:`Simulation` now resolves any registered integrator and
    delegates here by default.

    Parameters
    ----------
    system:
        Initial conditions; mutated in place as the run advances.
    backend:
        Force backend (reference, CPU model, or Wormhole offload).
    dt:
        Fixed shared timestep; mutually exclusive with ``timestep``.
    timestep:
        Adaptive :class:`SharedTimestep` scheme.
    host_cost:
        Modelled cost of host-resident work (zero for pure-physics runs).
    trace:
        Optional :class:`~repro.observability.Trace` ("Scope").  When
        given, the run narrates itself as spans — ``simulation.run`` /
        ``initialise`` / per-cycle ``cycle`` with ``predict`` / ``force``
        / ``correct`` children — and the trace is handed to the backend
        when it accepts one (``TTForceBackend`` then adds Metalium and
        per-core device spans underneath ``force``).  ``None`` (the
        default) costs the run nothing.
    """

    name = "hermite"

    def __init__(
        self,
        system: ParticleSystem,
        backend: ForceBackend,
        *,
        dt: float | None = None,
        timestep: SharedTimestep | None = None,
        host_cost: HostCostModel = HostCostModel(),
        trace: "Trace | None" = None,
    ) -> None:
        if (dt is None) == (timestep is None):
            raise ConfigurationError(
                "exactly one of dt= or timestep= must be given"
            )
        if dt is not None and (dt <= 0 or not np.isfinite(dt)):
            raise ConfigurationError(f"dt must be positive and finite, got {dt}")
        self.system = system
        self.backend = backend
        self.fixed_dt = dt
        self.timestep = timestep
        self.host_cost = host_cost
        self.trace = trace
        #: backends on the TracedForceBackend side of the contract
        #: (TTForceBackend, ShardedTTBackend) narrate their own
        #: Metalium/device spans; for the rest the driver converts the
        #: evaluation's timeline segments into leaf spans itself
        self._backend_traced = trace is not None and accepts_trace(backend)
        if self._backend_traced:
            backend.trace = trace  # type: ignore[attr-defined]
        self._initialised = False
        self._snap = np.zeros_like(system.pos)
        self._crackle = np.zeros_like(system.pos)

    def _trace_evaluation(self, evaluation: ForceEvaluation) -> None:
        """Add an untraced backend's segments as leaf spans (traced runs)."""
        assert self.trace is not None
        if not self._backend_traced:
            for seg in evaluation.segments:
                self.trace.add_span(
                    seg.detail or seg.tag, seg.seconds, category=seg.tag
                )

    def initialise(self) -> list[TimelineSegment]:
        """Initial force evaluation (and host init cost)."""
        trace = self.trace
        span = (
            trace.span("initialise", category="sim")
            if trace is not None else nullcontext()
        )
        with span:
            segments: list[TimelineSegment] = []
            if self.host_cost.init_seconds > 0.0:
                segments.append(
                    TimelineSegment("host", self.host_cost.init_seconds, "init")
                )
                if trace is not None:
                    trace.add_span(
                        "init", self.host_cost.init_seconds, category="host"
                    )
            evaluation = self.backend.compute(
                self.system.pos, self.system.vel, self.system.mass
            )
            if trace is not None:
                self._trace_evaluation(evaluation)
            self.system.acc = evaluation.acc
            self.system.jerk = evaluation.jerk
            segments.extend(evaluation.segments)
            self._initialised = True
        return segments

    def _choose_dt(self, first: bool) -> float:
        if self.fixed_dt is not None:
            return self.fixed_dt
        assert self.timestep is not None
        if first:
            return self.timestep.first(self.system.acc, self.system.jerk)
        return self.timestep.next(
            self.system.acc, self.system.jerk, self._snap, self._crackle
        )

    def run(self, n_cycles: int) -> SimulationResult:
        """Advance ``n_cycles`` Hermite cycles and return the result."""
        if n_cycles <= 0:
            raise ConfigurationError(f"n_cycles must be positive, got {n_cycles}")
        trace = self.trace
        run_span = (
            trace.span(
                "simulation.run", category="sim", n=self.system.n,
                n_cycles=n_cycles, backend=self.backend.name,
            )
            if trace is not None else nullcontext()
        )
        with run_span:
            timeline, records = self._run_cycles(n_cycles, trace)
        return SimulationResult(
            system=self.system,
            cycles=records,
            timeline=timeline,
            backend_name=self.backend.name,
        )

    def _run_cycles(
        self, n_cycles: int, trace: "Trace | None"
    ) -> tuple[list[TimelineSegment], list[CycleRecord]]:
        """The predict-evaluate-correct loop (inside the run span)."""
        timeline: list[TimelineSegment] = []
        if not self._initialised:
            timeline.extend(self.initialise())
        records: list[CycleRecord] = []

        for index in range(n_cycles):
            dt = self._choose_dt(first=(index == 0 and self.fixed_dt is None))
            cycle_segments = list(self.host_cost.cycle_segments(self.system.n))
            half_s = cycle_segments[0].seconds if cycle_segments else 0.0
            cycle_span = (
                trace.span("cycle", category="sim", index=index, dt=dt)
                if trace is not None else nullcontext()
            )
            with cycle_span:
                # predictor (host, float64)
                if trace is not None:
                    trace.add_span("predict", half_s, category="host")
                pos_p, vel_p = predict(
                    self.system.pos, self.system.vel,
                    self.system.acc, self.system.jerk, dt,
                )
                # force evaluation (backend; the offloaded part)
                force_span = (
                    trace.span(
                        "force", category="sim", backend=self.backend.name
                    )
                    if trace is not None else nullcontext()
                )
                with force_span:
                    evaluation = self.backend.compute(
                        pos_p, vel_p, self.system.mass
                    )
                    if trace is not None:
                        self._trace_evaluation(evaluation)
                # corrector (host, float64)
                step = correct(
                    self.system.pos, self.system.vel,
                    self.system.acc, self.system.jerk,
                    evaluation.acc, evaluation.jerk, dt,
                )
                if trace is not None:
                    trace.add_span("correct", half_s, category="host")
            self.system.pos = step.pos
            self.system.vel = step.vel
            self.system.acc = step.acc
            self.system.jerk = step.jerk
            self._snap = step.snap
            self._crackle = step.crackle
            self.system.time += dt
            self.system.check_finite()

            # interleave host halves around the backend segments
            if cycle_segments:
                segments = (
                    [cycle_segments[0]]
                    + list(evaluation.segments)
                    + [cycle_segments[1]]
                )
            else:
                segments = list(evaluation.segments)
            timeline.extend(segments)
            records.append(
                CycleRecord(
                    index=index,
                    time=self.system.time,
                    dt=dt,
                    model_seconds=sum(s.seconds for s in segments),
                )
            )
        return timeline, records


class Simulation:
    """A thin driver over the integrator registry.

    ``Simulation(system, backend, dt=...)`` behaves exactly as it always
    did (shared-step Hermite), but the loop itself now lives in
    :class:`HermiteIntegrator` and ``integrator=`` selects any scheme
    registered in :mod:`repro.core.integrators` — a name
    (``"block-hermite"``) or an
    :class:`~repro.core.integrators.IntegratorSpec` with options.  The
    chosen integrator is built once in the constructor; ``initialise``
    and ``run`` delegate to it.

    ``timestep=`` (an explicit :class:`SharedTimestep` object) cannot
    travel through the registry's typed options, so it remains a direct
    path to the Hermite scheme and is rejected for any other integrator.
    """

    def __init__(
        self,
        system: ParticleSystem,
        backend: ForceBackend,
        *,
        dt: float | None = None,
        timestep: SharedTimestep | None = None,
        host_cost: HostCostModel = HostCostModel(),
        trace: "Trace | None" = None,
        integrator: "object | str | None" = None,
    ) -> None:
        # lazy: integrators imports this module (HermiteIntegrator)
        from .integrators import IntegratorSpec, make_integrator

        if integrator is None:
            name = "hermite"
            spec: IntegratorSpec | str = "hermite"
        elif isinstance(integrator, str):
            name = integrator
            spec = integrator
        elif isinstance(integrator, IntegratorSpec):
            name = integrator.name
            spec = integrator
        else:
            raise ConfigurationError(
                f"integrator must be a name or IntegratorSpec, "
                f"got {integrator!r}"
            )
        if timestep is not None:
            if name != "hermite":
                raise ConfigurationError(
                    "timestep= is only valid with the hermite integrator"
                )
            # HermiteIntegrator itself enforces dt/timestep exclusivity
            self._impl = HermiteIntegrator(
                system, backend, dt=dt, timestep=timestep,
                host_cost=host_cost, trace=trace,
            )
        else:
            self._impl = make_integrator(
                spec, system, backend, dt=dt, adaptive=False,
                host_cost=host_cost, trace=trace,
            )

    @property
    def system(self) -> ParticleSystem:
        """The particle system being integrated."""
        return self._impl.system

    @property
    def backend(self) -> ForceBackend:
        """The force backend the integrator evaluates on."""
        return self._impl.backend

    @property
    def trace(self):
        """The attached Scope trace, or None."""
        return self._impl.trace

    @property
    def host_cost(self) -> HostCostModel:
        """The host-side cost model charged per cycle."""
        return self._impl.host_cost

    @property
    def integrator_name(self) -> str:
        """Registry name of the scheme this driver delegates to."""
        return self._impl.name

    # snapshot-resume contract: a system reloaded with its acc/jerk
    # arrays must be able to skip the initial force evaluation (the
    # stored acc is the predictor-stage value, so re-evaluating would
    # not be bit-identical) — the flag lives on the inner driver
    @property
    def _initialised(self) -> bool:
        return self._impl._initialised

    @_initialised.setter
    def _initialised(self, value: bool) -> None:
        self._impl._initialised = value

    def initialise(self) -> list[TimelineSegment]:
        """Initial force evaluation (and host init cost)."""
        return self._impl.initialise()

    def run(self, n_cycles: int) -> SimulationResult:
        """Advance ``n_cycles`` cycles and return the result."""
        return self._impl.run(n_cycles)

"""The simulation driver: predict-evaluate-correct cycles over a backend.

The driver is backend-agnostic: a :class:`ForceBackend` is anything with a
``compute(pos, vel, mass) -> ForceEvaluation``.  The repository provides
three: the double-precision golden reference (:class:`ReferenceBackend`
here), the mixed-precision CPU model (:mod:`repro.cpuref`), and the
Wormhole offload (:mod:`repro.nbody_tt`).

Besides physics, the driver assembles the job's *timeline*: each cycle
contributes host phases (the double-precision predictor/corrector the
paper keeps on the CPU) and whatever phases the backend reports (device
compute, PCIe, kernel launches).  The telemetry stack replays this timeline
at 1 Hz to produce the power traces of the paper's Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from ..errors import ConfigurationError
from .hermite import correct, predict
from .particles import ParticleSystem
from .timestep import SharedTimestep
from .units import G_NBODY

__all__ = [
    "TimelineSegment",
    "ForceEvaluation",
    "ForceBackend",
    "ReferenceBackend",
    "HostCostModel",
    "CycleRecord",
    "SimulationResult",
    "Simulation",
]


@dataclass(frozen=True)
class TimelineSegment:
    """One phase of modelled job time: tag in {host, device, pcie, launch}."""

    tag: str
    seconds: float
    detail: str = ""


@dataclass(frozen=True)
class ForceEvaluation:
    """Result of one force evaluation by a backend."""

    acc: np.ndarray
    jerk: np.ndarray
    segments: tuple[TimelineSegment, ...] = ()

    @property
    def model_seconds(self) -> float:
        return sum(s.seconds for s in self.segments)


class ForceBackend(Protocol):
    """Anything that can evaluate accelerations and jerks."""

    name: str

    def compute(self, pos: np.ndarray, vel: np.ndarray,
                mass: np.ndarray) -> ForceEvaluation: ...


class ReferenceBackend:
    """The golden reference as a backend: float64, no modelled time."""

    name = "reference-f64"

    def __init__(self, softening: float = 0.0, G: float = G_NBODY) -> None:
        self.softening = softening
        self.G = G

    def compute(self, pos, vel, mass) -> ForceEvaluation:
        from .forces import accel_jerk_reference

        acc, jerk = accel_jerk_reference(
            pos, vel, mass, softening=self.softening, G=self.G
        )
        return ForceEvaluation(acc, jerk)


@dataclass(frozen=True)
class HostCostModel:
    """Modelled cost of the host-resident double-precision work.

    ``seconds_per_particle_cycle`` covers the predictor, corrector, and
    FP64<->FP32 marshalling per particle per cycle; ``init_seconds`` is the
    one-time host initialisation the paper's Fig. 4 shows at job start
    (cards stay at idle power while it runs).
    """

    seconds_per_particle_cycle: float = 0.0
    init_seconds: float = 0.0

    def cycle_segments(self, n: int) -> tuple[TimelineSegment, ...]:
        if self.seconds_per_particle_cycle <= 0.0:
            return ()
        half = 0.5 * self.seconds_per_particle_cycle * n
        return (
            TimelineSegment("host", half, "predict"),
            TimelineSegment("host", half, "correct"),
        )


@dataclass(frozen=True)
class CycleRecord:
    """Per-cycle diagnostics."""

    index: int
    time: float
    dt: float
    model_seconds: float


@dataclass
class SimulationResult:
    """Everything a campaign needs from one simulation run."""

    system: ParticleSystem
    cycles: list[CycleRecord]
    timeline: list[TimelineSegment]
    backend_name: str

    @property
    def model_seconds(self) -> float:
        """Total modelled wall time of the job (the MPI_Wtime window)."""
        return sum(s.seconds for s in self.timeline)

    def seconds_by_tag(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for seg in self.timeline:
            out[seg.tag] = out.get(seg.tag, 0.0) + seg.seconds
        return out


class Simulation:
    """Hermite integration of a particle system over a force backend.

    Parameters
    ----------
    system:
        Initial conditions; mutated in place as the run advances.
    backend:
        Force backend (reference, CPU model, or Wormhole offload).
    dt:
        Fixed shared timestep; mutually exclusive with ``timestep``.
    timestep:
        Adaptive :class:`SharedTimestep` scheme.
    host_cost:
        Modelled cost of host-resident work (zero for pure-physics runs).
    """

    def __init__(
        self,
        system: ParticleSystem,
        backend: ForceBackend,
        *,
        dt: float | None = None,
        timestep: SharedTimestep | None = None,
        host_cost: HostCostModel = HostCostModel(),
    ) -> None:
        if (dt is None) == (timestep is None):
            raise ConfigurationError(
                "exactly one of dt= or timestep= must be given"
            )
        if dt is not None and (dt <= 0 or not np.isfinite(dt)):
            raise ConfigurationError(f"dt must be positive and finite, got {dt}")
        self.system = system
        self.backend = backend
        self.fixed_dt = dt
        self.timestep = timestep
        self.host_cost = host_cost
        self._initialised = False
        self._snap = np.zeros_like(system.pos)
        self._crackle = np.zeros_like(system.pos)

    def initialise(self) -> list[TimelineSegment]:
        """Initial force evaluation (and host init cost)."""
        segments: list[TimelineSegment] = []
        if self.host_cost.init_seconds > 0.0:
            segments.append(
                TimelineSegment("host", self.host_cost.init_seconds, "init")
            )
        evaluation = self.backend.compute(
            self.system.pos, self.system.vel, self.system.mass
        )
        self.system.acc = evaluation.acc
        self.system.jerk = evaluation.jerk
        segments.extend(evaluation.segments)
        self._initialised = True
        return segments

    def _choose_dt(self, first: bool) -> float:
        if self.fixed_dt is not None:
            return self.fixed_dt
        assert self.timestep is not None
        if first:
            return self.timestep.first(self.system.acc, self.system.jerk)
        return self.timestep.next(
            self.system.acc, self.system.jerk, self._snap, self._crackle
        )

    def run(self, n_cycles: int) -> SimulationResult:
        """Advance ``n_cycles`` Hermite cycles and return the result."""
        if n_cycles <= 0:
            raise ConfigurationError(f"n_cycles must be positive, got {n_cycles}")
        timeline: list[TimelineSegment] = []
        if not self._initialised:
            timeline.extend(self.initialise())
        records: list[CycleRecord] = []

        for index in range(n_cycles):
            dt = self._choose_dt(first=(index == 0 and self.fixed_dt is None))
            cycle_segments = list(self.host_cost.cycle_segments(self.system.n))
            # predictor (host, float64)
            pos_p, vel_p = predict(
                self.system.pos, self.system.vel,
                self.system.acc, self.system.jerk, dt,
            )
            # force evaluation (backend; the offloaded part)
            evaluation = self.backend.compute(pos_p, vel_p, self.system.mass)
            # corrector (host, float64)
            step = correct(
                self.system.pos, self.system.vel,
                self.system.acc, self.system.jerk,
                evaluation.acc, evaluation.jerk, dt,
            )
            self.system.pos = step.pos
            self.system.vel = step.vel
            self.system.acc = step.acc
            self.system.jerk = step.jerk
            self._snap = step.snap
            self._crackle = step.crackle
            self.system.time += dt
            self.system.check_finite()

            # interleave host halves around the backend segments
            if cycle_segments:
                segments = (
                    [cycle_segments[0]]
                    + list(evaluation.segments)
                    + [cycle_segments[1]]
                )
            else:
                segments = list(evaluation.segments)
            timeline.extend(segments)
            records.append(
                CycleRecord(
                    index=index,
                    time=self.system.time,
                    dt=dt,
                    model_seconds=sum(s.seconds for s in segments),
                )
            )
        return SimulationResult(
            system=self.system,
            cycles=records,
            timeline=timeline,
            backend_name=self.backend.name,
        )

"""N-body (Hénon) units and astrophysical conversions.

Direct N-body codes work in Hénon units: G = 1, total mass M = 1, total
energy E = -1/4, which puts the virial radius at 1 and the crossing time
at 2*sqrt(2).  The paper's application domain is dense stellar systems
(star clusters hosting compact-object binaries), so the converter maps
Hénon units to astrophysical ones given a physical mass and length scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["G_NBODY", "HENON_CROSSING_TIME", "UnitSystem"]

#: Gravitational constant in N-body units.
G_NBODY = 1.0
#: Crossing time of a virialised system in Hénon units: 2 sqrt(2).
HENON_CROSSING_TIME = 2.0 * np.sqrt(2.0)

# Physical constants (CODATA / IAU nominal values).
_G_SI = 6.67430e-11          # m^3 kg^-1 s^-2
_MSUN_KG = 1.98892e30        # kg
_PC_M = 3.0856775814913673e16  # m
_MYR_S = 3.15576e13          # s (Julian)
_KMS = 1.0e3                 # m/s


@dataclass(frozen=True)
class UnitSystem:
    """Conversion between Hénon units and (Msun, pc, Myr, km/s).

    Parameters
    ----------
    mass_msun:
        Total cluster mass in solar masses (the Hénon mass unit).
    length_pc:
        The Hénon length unit (the virial radius) in parsecs.
    """

    mass_msun: float = 1.0e4
    length_pc: float = 1.0

    def __post_init__(self) -> None:
        if self.mass_msun <= 0 or self.length_pc <= 0:
            raise ConfigurationError(
                f"unit scales must be positive, got mass={self.mass_msun}, "
                f"length={self.length_pc}"
            )

    @property
    def time_myr(self) -> float:
        """The Hénon time unit in Myr: sqrt(L^3 / (G M))."""
        t_s = np.sqrt(
            (self.length_pc * _PC_M) ** 3
            / (_G_SI * self.mass_msun * _MSUN_KG)
        )
        return t_s / _MYR_S

    @property
    def velocity_kms(self) -> float:
        """The Hénon velocity unit in km/s: sqrt(G M / L)."""
        v_ms = np.sqrt(
            _G_SI * self.mass_msun * _MSUN_KG / (self.length_pc * _PC_M)
        )
        return v_ms / _KMS

    # -- conversions to physical --

    def to_msun(self, mass_nbody: float | np.ndarray):
        """N-body mass to solar masses."""
        return mass_nbody * self.mass_msun

    def to_pc(self, length_nbody: float | np.ndarray):
        """N-body length to parsecs."""
        return length_nbody * self.length_pc

    def to_myr(self, time_nbody: float | np.ndarray):
        """N-body time to megayears."""
        return time_nbody * self.time_myr

    def to_kms(self, velocity_nbody: float | np.ndarray):
        """N-body velocity to km/s."""
        return velocity_nbody * self.velocity_kms

    # -- conversions from physical --

    def from_msun(self, mass_msun: float | np.ndarray):
        """Solar masses to N-body mass."""
        return mass_msun / self.mass_msun

    def from_pc(self, length_pc: float | np.ndarray):
        """Parsecs to N-body length."""
        return length_pc / self.length_pc

    def from_myr(self, time_myr: float | np.ndarray):
        """Megayears to N-body time."""
        return time_myr / self.time_myr

    def from_kms(self, velocity_kms: float | np.ndarray):
        """km/s to N-body velocity."""
        return velocity_kms / self.velocity_kms

    @property
    def crossing_time_myr(self) -> float:
        """Virial crossing time in Myr."""
        return HENON_CROSSING_TIME * self.time_myr

"""Accuracy validation against the golden reference.

Implements the paper's acceptance test (Section 3): "We ensure that
discrepancies are within acceptable tolerance levels for floating-point
arithmetic, with each acceleration and jerk component within 0.05% and
0.2% of a typical force magnitude, respectively, relative to the
double-precision result."

The metric is the standard mixed relative/absolute criterion: each
component's error is normalised by the *larger* of that particle's own
force magnitude and the system's typical (RMS) magnitude,

    err_i = max_k |dev_ik - ref_ik| / max(|ref_i|, rms(|ref|)).

Both limits matter for a mixed-precision N-body port: particles in close
pairs carry forces orders of magnitude above typical — their absolute
errors are large on the RMS scale but perfectly healthy relative to their
own magnitude (this is what "relative to the double-precision result"
buys) — while tiny near-cancelling forces on distant particles must not
fail a naive relative test, which the RMS floor prevents.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ValidationError
from .forces import accel_jerk_reference
from .units import G_NBODY

__all__ = [
    "ACC_TOLERANCE",
    "JERK_TOLERANCE",
    "ValidationReport",
    "compare_to_reference",
    "validate_forces",
]

#: Paper tolerances: acceleration within 0.05%, jerk within 0.2%.
ACC_TOLERANCE = 5.0e-4
JERK_TOLERANCE = 2.0e-3


def _rms_norm(arr: np.ndarray) -> float:
    """RMS of the per-particle vector norms."""
    return float(np.sqrt(np.mean(np.einsum("ij,ij->i", arr, arr))))


def _gate_error(dev: np.ndarray, ref: np.ndarray) -> float:
    """max_i [ max_k |dev_ik - ref_ik| / max(|ref_i|, rms) ]."""
    scale = _rms_norm(ref)
    norms = np.sqrt(np.einsum("ij,ij->i", ref, ref))
    denom = np.maximum(norms, scale)
    per_particle = np.abs(dev - ref).max(axis=1) / denom
    return float(per_particle.max())


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a device-vs-golden-reference comparison."""

    max_acc_error: float    # max per-component |dev - ref| / rms(|ref|)
    max_jerk_error: float
    acc_tolerance: float
    jerk_tolerance: float
    n_particles: int

    @property
    def acc_passed(self) -> bool:
        """True when the acceleration error is within tolerance."""
        return self.max_acc_error <= self.acc_tolerance

    @property
    def jerk_passed(self) -> bool:
        """True when the jerk error is within tolerance."""
        return self.max_jerk_error <= self.jerk_tolerance

    @property
    def passed(self) -> bool:
        """True when both acceleration and jerk pass."""
        return self.acc_passed and self.jerk_passed

    def summary(self) -> str:
        """One-line human-readable pass/fail report."""
        def fmt(err, tol, ok):
            """Format one error/tolerance/verdict triple."""
            return f"{err:.3e} (tol {tol:.1e}) {'OK' if ok else 'FAIL'}"

        return (
            f"N={self.n_particles}: "
            f"acc {fmt(self.max_acc_error, self.acc_tolerance, self.acc_passed)}, "
            f"jerk {fmt(self.max_jerk_error, self.jerk_tolerance, self.jerk_passed)}"
        )


def compare_to_reference(
    acc_dev: np.ndarray,
    jerk_dev: np.ndarray,
    acc_ref: np.ndarray,
    jerk_ref: np.ndarray,
    *,
    acc_tolerance: float = ACC_TOLERANCE,
    jerk_tolerance: float = JERK_TOLERANCE,
) -> ValidationReport:
    """Compare device results against precomputed reference values."""
    if acc_dev.shape != acc_ref.shape or jerk_dev.shape != jerk_ref.shape:
        raise ValidationError(
            f"shape mismatch: dev {acc_dev.shape}/{jerk_dev.shape} vs "
            f"ref {acc_ref.shape}/{jerk_ref.shape}"
        )
    if _rms_norm(acc_ref) == 0.0 or _rms_norm(jerk_ref) == 0.0:
        raise ValidationError("reference forces are identically zero")
    return ValidationReport(
        max_acc_error=_gate_error(acc_dev, acc_ref),
        max_jerk_error=_gate_error(jerk_dev, jerk_ref),
        acc_tolerance=acc_tolerance,
        jerk_tolerance=jerk_tolerance,
        n_particles=acc_ref.shape[0],
    )


def validate_forces(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    acc_dev: np.ndarray,
    jerk_dev: np.ndarray,
    *,
    softening: float = 0.0,
    G: float = G_NBODY,
    raise_on_failure: bool = False,
) -> ValidationReport:
    """Validate device forces by computing the golden reference in-line."""
    acc_ref, jerk_ref = accel_jerk_reference(
        pos, vel, mass, softening=softening, G=G
    )
    report = compare_to_reference(acc_dev, jerk_dev, acc_ref, jerk_ref)
    if raise_on_failure and not report.passed:
        raise ValidationError(report.summary())
    return report

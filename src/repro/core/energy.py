"""Conserved-quantity diagnostics: energy, momentum, angular momentum.

These are the invariants the test suite's property tests lean on: a
correct force kernel plus a correct Hermite integrator conserve total
energy to O(dt^4) per step and linear/angular momentum to round-off.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .forces import potential_reference
from .particles import ParticleSystem
from .units import G_NBODY

__all__ = ["EnergyReport", "kinetic_energy", "energy_report"]


def kinetic_energy(mass: np.ndarray, vel: np.ndarray) -> float:
    """Total kinetic energy sum(m v^2 / 2)."""
    v2 = np.einsum("ij,ij->i", vel, vel)
    return float(0.5 * np.sum(mass * v2))


@dataclass(frozen=True)
class EnergyReport:
    """Snapshot of the system's conserved quantities."""

    kinetic: float
    potential: float
    momentum: np.ndarray          # (3,)
    angular_momentum: np.ndarray  # (3,)
    time: float

    @property
    def total(self) -> float:
        """Total energy E = T + W."""
        return self.kinetic + self.potential

    @property
    def virial_ratio(self) -> float:
        """Q = -T/W; 0.5 for a virialised system."""
        return -self.kinetic / self.potential

    def drift_from(self, other: "EnergyReport") -> float:
        """Relative energy drift |dE / E0| versus a reference report."""
        return abs((self.total - other.total) / other.total)


def energy_report(
    system: ParticleSystem,
    *,
    softening: float = 0.0,
    G: float = G_NBODY,
) -> EnergyReport:
    """Compute all conserved quantities of a particle system."""
    potential = potential_reference(
        system.pos, system.mass, softening=softening, G=G
    )
    momentum = (system.mass[:, None] * system.vel).sum(axis=0)
    angular = (
        system.mass[:, None] * np.cross(system.pos, system.vel)
    ).sum(axis=0)
    return EnergyReport(
        kinetic=kinetic_energy(system.mass, system.vel),
        potential=potential,
        momentum=momentum,
        angular_momentum=angular,
        time=system.time,
    )

"""First-class scenarios: registry-addressable initial conditions.

``RunSpec.make_system`` used to hardcode ``plummer(n, seed)``; every
other generator in :mod:`repro.core.initial_conditions` was reachable
only by writing a script.  A :class:`ScenarioSpec` — a name plus typed
options — is the declarative form of an initial-condition family,
mirroring :class:`~repro.backends.registry.BackendSpec` and
:class:`~repro.core.integrators.IntegratorSpec`:
:func:`make_scenario` realises it into a
:class:`~repro.core.particles.ParticleSystem` for a given ``(n, seed)``,
and :func:`register_scenario` lets new families join the CLI choices,
RunSpec round-trips, and the per-scenario energy gates.

The six built-ins wrap the generators one to one.  ``n`` and ``seed``
come from the run, not the scenario options, so the same spec scales
across problem sizes; the two-cluster scenario splits ``n`` between the
clusters, and the binary scenario is fixed at two bodies (``n`` and
``seed`` are ignored — the orbit is deterministic).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..backends.registry import OptionSpec
from ..errors import ConfigurationError, UnknownScenarioError
from .initial_conditions import (
    binary,
    cluster_collision,
    cluster_with_binary,
    hernquist,
    plummer,
    uniform_sphere,
)
from .particles import ParticleSystem

__all__ = [
    "ScenarioSpec",
    "RegisteredScenario",
    "register_scenario",
    "make_scenario",
    "scenario_names",
    "scenario_entry",
    "scenario_choices_help",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """A scenario, declaratively: registry name + option overrides."""

    name: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", dict(self.options))

    def with_options(self, **overrides: Any) -> "ScenarioSpec":
        """A copy of this spec with extra/replaced options."""
        merged = dict(self.options)
        merged.update(overrides)
        return ScenarioSpec(self.name, merged)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping form of this spec."""
        return {"name": self.name, "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | str) -> "ScenarioSpec":
        """Build a spec from a mapping or a bare scenario name."""
        if isinstance(data, str):
            return cls(data)
        if "name" not in data:
            raise ConfigurationError(f"scenario spec needs a 'name': {data!r}")
        return cls(str(data["name"]), dict(data.get("options", {})))

    def to_json(self) -> str:
        """Canonical JSON form of this spec."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        """Parse a spec from its JSON form."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class RegisteredScenario:
    """One registry entry: factory, typed options, and help text."""

    name: str
    factory: Callable[..., ParticleSystem]
    description: str
    options: tuple[OptionSpec, ...] = ()

    def resolve_options(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Defaults merged with validated overrides; unknown keys raise."""
        table = {o.name: o for o in self.options}
        unknown = sorted(set(overrides) - set(table))
        if unknown:
            raise ConfigurationError(
                f"scenario {self.name!r} does not accept option(s) "
                f"{unknown}; known: {sorted(table)}"
            )
        resolved = {o.name: o.default for o in self.options}
        for key, value in overrides.items():
            resolved[key] = table[key].coerce(value)
        return resolved


_REGISTRY: dict[str, RegisteredScenario] = {}


def register_scenario(
    name: str,
    factory: Callable[..., ParticleSystem],
    *,
    description: str = "",
    options: tuple[OptionSpec, ...] = (),
) -> RegisteredScenario:
    """Add a scenario to the registry (re-registration replaces)."""
    if not name:
        raise ConfigurationError("scenario name must be non-empty")
    entry = RegisteredScenario(name, factory, description, options)
    # repro-lint: disable=RH010 - registration happens at import time,
    # before any shard worker forks; workers only read the registry.
    _REGISTRY[name] = entry
    return entry


def scenario_names() -> tuple[str, ...]:
    """All registered scenario names, sorted."""
    return tuple(sorted(_REGISTRY))


def scenario_entry(name: str) -> RegisteredScenario:
    """Registry lookup by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; registered scenarios: "
            f"{', '.join(scenario_names())}"
        ) from None


def scenario_choices_help() -> str:
    """One-line-per-scenario help text derived from the registry."""
    return "; ".join(
        f"{entry.name}: {entry.description}"
        for _, entry in sorted(_REGISTRY.items())
    )


def make_scenario(
    spec: "ScenarioSpec | str", n: int, seed: int, **extra: Any
) -> ParticleSystem:
    """Realise a :class:`ScenarioSpec` (or bare name) for ``(n, seed)``."""
    if isinstance(spec, str):
        spec = ScenarioSpec(spec)
    entry = scenario_entry(spec.name)
    overrides = dict(spec.options)
    overrides.update(extra)
    return entry.factory(n, seed, **entry.resolve_options(overrides))


# --------------------------------------------------------------------------
# Built-in scenarios (one per initial_conditions generator)
# --------------------------------------------------------------------------


def _make_plummer(n, seed, *, virial_scaled, cutoff_radius):
    return plummer(n, seed=seed, virial_scaled=virial_scaled,
                   cutoff_radius=cutoff_radius)


def _make_uniform_sphere(n, seed, *, radius, virial_ratio):
    return uniform_sphere(n, seed=seed, radius=radius,
                          virial_ratio=virial_ratio)


def _make_hernquist(n, seed, *, scale_radius):
    return hernquist(n, seed=seed, scale_radius=scale_radius)


def _make_binary(n, seed, *, mass_ratio, semi_major_axis, eccentricity,
                 total_mass):
    # deterministic two-body orbit: n and seed are intentionally unused
    return binary(mass_ratio=mass_ratio, semi_major_axis=semi_major_axis,
                  eccentricity=eccentricity, total_mass=total_mass)


def _make_cluster_collision(n, seed, *, mass_ratio, separation,
                            impact_parameter, relative_speed):
    n1 = n // 2
    return cluster_collision(
        n1, n - n1, seed=seed, mass_ratio=mass_ratio, separation=separation,
        impact_parameter=impact_parameter, relative_speed=relative_speed,
    )


def _make_cluster_with_binary(n, seed, *, binary_mass_fraction,
                              semi_major_axis, eccentricity):
    if n < 4:
        raise ConfigurationError(
            f"cluster_with_binary needs n >= 4 (2 binary members + "
            f"background), got {n}"
        )
    return cluster_with_binary(
        n - 2, seed=seed, binary_mass_fraction=binary_mass_fraction,
        semi_major_axis=semi_major_axis, eccentricity=eccentricity,
    )


register_scenario(
    "plummer", _make_plummer,
    description="equal-mass Plummer sphere in Henon units (the default)",
    options=(
        OptionSpec("virial_scaled", bool, True,
                   "rescale to exact virial equilibrium"),
        OptionSpec("cutoff_radius", float, 22.8,
                   "outer truncation radius"),
    ),
)
register_scenario(
    "uniform_sphere", _make_uniform_sphere,
    description="homogeneous sphere (cold collapse at virial_ratio 0)",
    options=(
        OptionSpec("radius", float, 1.0, "sphere radius"),
        OptionSpec("virial_ratio", float, 0.0,
                   "-T/W kinetic support (0 = cold)"),
    ),
)
register_scenario(
    "hernquist", _make_hernquist,
    description="Hernquist sphere with isotropic Jeans velocities",
    options=(
        OptionSpec("scale_radius", float, 0.55, "Hernquist scale radius"),
    ),
)
register_scenario(
    "binary", _make_binary,
    description="two-body Keplerian binary at apoapsis (n/seed ignored)",
    options=(
        OptionSpec("mass_ratio", float, 1.0, "m1/m2"),
        OptionSpec("semi_major_axis", float, 0.01, "orbit semi-major axis"),
        OptionSpec("eccentricity", float, 0.0, "orbit eccentricity"),
        OptionSpec("total_mass", float, 1.0, "combined mass"),
    ),
)
register_scenario(
    "cluster_collision", _make_cluster_collision,
    description="two Plummer clusters on a collision course "
                "(n split between them)",
    options=(
        OptionSpec("mass_ratio", float, 1.0, "M1/M2"),
        OptionSpec("separation", float, 6.0, "initial centre separation"),
        OptionSpec("impact_parameter", float, 0.5, "perpendicular offset"),
        OptionSpec("relative_speed", float, None,
                   "approach speed (default: parabolic)"),
    ),
)
register_scenario(
    "cluster_with_binary", _make_cluster_with_binary,
    description="hard binary at the centre of a Plummer background "
                "(n includes the pair)",
    options=(
        OptionSpec("binary_mass_fraction", float, 0.02,
                   "binary share of the total mass"),
        OptionSpec("semi_major_axis", float, 0.005, "binary semi-major axis"),
        OptionSpec("eccentricity", float, 0.0, "binary eccentricity"),
    ),
)

"""Fourth-order Hermite predictor-corrector integrator.

The integration scheme of the paper's N-body code: each cycle predicts
positions and velocities with the current acceleration and jerk, evaluates
new forces at the predicted state (the O(N^2) kernel that gets offloaded to
the Wormhole), and corrects with the reconstructed higher derivatives
(Makino & Aarseth 1992):

predict:   x_p = x + v dt + a dt^2/2 + j dt^3/6
           v_p = v + a dt + j dt^2/2
evaluate:  (a1, j1) at (x_p, v_p)            <- offloaded, mixed precision
correct:   v1  = v + dt (a0+a1)/2 + dt^2 (j0-j1)/12
           x1  = x + dt (v+v1)/2  + dt^2 (a0-a1)/12

All predictor/corrector arithmetic is float64 on the host, matching the
paper's mixed-precision split.  The corrector also reconstructs the second
and third acceleration derivatives used by the Aarseth timestep criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import IntegratorError

__all__ = ["predict", "correct", "HermiteStepResult", "hermite_step"]


def predict(
    pos: np.ndarray,
    vel: np.ndarray,
    acc: np.ndarray,
    jerk: np.ndarray,
    dt: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Hermite predictor: Taylor expansion through the jerk term."""
    if dt <= 0 or not np.isfinite(dt):
        raise IntegratorError(f"dt must be positive and finite, got {dt}")
    dt2 = dt * dt / 2.0
    dt3 = dt * dt * dt / 6.0
    pos_p = pos + dt * vel + dt2 * acc + dt3 * jerk
    vel_p = vel + dt * acc + dt2 * jerk
    return pos_p, vel_p


@dataclass(frozen=True)
class HermiteStepResult:
    """Corrected state plus the reconstructed higher derivatives."""

    pos: np.ndarray
    vel: np.ndarray
    acc: np.ndarray
    jerk: np.ndarray
    snap: np.ndarray      # a^(2) at the new time
    crackle: np.ndarray   # a^(3) (constant over the step in this order)


def correct(
    pos0: np.ndarray,
    vel0: np.ndarray,
    acc0: np.ndarray,
    jerk0: np.ndarray,
    acc1: np.ndarray,
    jerk1: np.ndarray,
    dt: float,
) -> HermiteStepResult:
    """Hermite corrector, returning the new state and a^(2), a^(3).

    The derivative reconstruction (at the *start* of the step):

        a2_0 = (-6 (a0 - a1) - dt (4 j0 + 2 j1)) / dt^2
        a3_0 = ( 12 (a0 - a1) + 6 dt (j0 + j1)) / dt^3

    and a2 at the end of the step is a2_1 = a2_0 + dt a3_0, which is what
    the next step's timestep criterion needs.
    """
    if dt <= 0 or not np.isfinite(dt):
        raise IntegratorError(f"dt must be positive and finite, got {dt}")
    dt2 = dt * dt
    dt3 = dt2 * dt

    vel1 = vel0 + (dt / 2.0) * (acc0 + acc1) + (dt2 / 12.0) * (jerk0 - jerk1)
    pos1 = pos0 + (dt / 2.0) * (vel0 + vel1) + (dt2 / 12.0) * (acc0 - acc1)

    a2_0 = (-6.0 * (acc0 - acc1) - dt * (4.0 * jerk0 + 2.0 * jerk1)) / dt2
    a3_0 = (12.0 * (acc0 - acc1) + 6.0 * dt * (jerk0 + jerk1)) / dt3
    a2_1 = a2_0 + dt * a3_0

    return HermiteStepResult(pos1, vel1, acc1, jerk1, a2_1, a3_0)


def hermite_step(
    pos: np.ndarray,
    vel: np.ndarray,
    acc: np.ndarray,
    jerk: np.ndarray,
    dt: float,
    evaluate,
) -> HermiteStepResult:
    """One full predict-evaluate-correct cycle.

    ``evaluate(pos_p, vel_p) -> (acc1, jerk1)`` is the force backend —
    either the CPU reference or the Wormhole offload.
    """
    pos_p, vel_p = predict(pos, vel, acc, jerk, dt)
    acc1, jerk1 = evaluate(pos_p, vel_p)
    return correct(pos, vel, acc, jerk, acc1, jerk1, dt)

"""Analytic cluster profiles: density, mass, potential, dispersions.

Closed-form theory for the models the IC generators sample — the ground
truth the test suite compares Monte-Carlo realisations against, and the
toolbox for setting up physically scaled experiments (e.g. choosing a
softening as a fraction of the theoretical core radius).

All profiles are in Henon units with total mass M and G = 1.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

__all__ = ["PlummerProfile", "HernquistProfile", "UniformSphereProfile"]


def _check_radius(r) -> np.ndarray:
    arr = np.asarray(r, dtype=np.float64)
    if np.any(arr < 0):
        raise ConfigurationError("radius must be non-negative")
    return arr


@dataclass(frozen=True)
class PlummerProfile:
    """Plummer (1911) sphere: rho ~ (1 + (r/a)^2)^(-5/2)."""

    scale_radius: float = 3.0 * np.pi / 16.0  # virial radius 1 in Henon units
    total_mass: float = 1.0

    def __post_init__(self) -> None:
        if self.scale_radius <= 0 or self.total_mass <= 0:
            raise ConfigurationError("profile parameters must be positive")

    def density(self, r) -> np.ndarray:
        """rho(r) = 3M / (4 pi a^3) (1 + (r/a)^2)^(-5/2)."""
        r = _check_radius(r)
        a = self.scale_radius
        return (
            3.0 * self.total_mass / (4.0 * np.pi * a**3)
            * (1.0 + (r / a) ** 2) ** -2.5
        )

    def enclosed_mass(self, r) -> np.ndarray:
        """M(r) = M r^3 / (r^2 + a^2)^(3/2)."""
        r = _check_radius(r)
        a = self.scale_radius
        return self.total_mass * r**3 / (r**2 + a**2) ** 1.5

    def potential(self, r) -> np.ndarray:
        """phi(r) = -M / sqrt(r^2 + a^2)."""
        r = _check_radius(r)
        return -self.total_mass / np.sqrt(r**2 + self.scale_radius**2)

    def velocity_dispersion_1d(self, r) -> np.ndarray:
        """Isotropic Jeans solution: sigma^2 = -phi / 6."""
        return np.sqrt(-self.potential(r) / 6.0)

    @property
    def half_mass_radius(self) -> float:
        """r_h = a / sqrt(2^(2/3) - 1) ~ 1.305 a."""
        return self.scale_radius / np.sqrt(2.0 ** (2.0 / 3.0) - 1.0)

    @property
    def total_energy(self) -> float:
        """E = -3 pi M^2 / (64 a); equals -1/4 at the Henon scale radius."""
        return -3.0 * np.pi * self.total_mass**2 / (64.0 * self.scale_radius)

    @property
    def core_radius_theoretical(self) -> float:
        """King-style core radius where surface density halves: ~0.64 a."""
        return 0.64 * self.scale_radius


@dataclass(frozen=True)
class HernquistProfile:
    """Hernquist (1990) sphere: rho ~ 1 / [(r/a)(1 + r/a)^3]."""

    scale_radius: float = 0.55
    total_mass: float = 1.0

    def __post_init__(self) -> None:
        if self.scale_radius <= 0 or self.total_mass <= 0:
            raise ConfigurationError("profile parameters must be positive")

    def density(self, r) -> np.ndarray:
        """rho(r) = M a / (2 pi r (r + a)^3)."""
        r = _check_radius(r)
        a = self.scale_radius
        with np.errstate(divide="ignore"):
            return (
                self.total_mass / (2.0 * np.pi)
                * a / (r * (r + a) ** 3)
            )

    def enclosed_mass(self, r) -> np.ndarray:
        """M(r) = M r^2 / (r + a)^2."""
        r = _check_radius(r)
        a = self.scale_radius
        return self.total_mass * r**2 / (r + a) ** 2

    def potential(self, r) -> np.ndarray:
        """phi(r) = -M / (r + a)."""
        r = _check_radius(r)
        return -self.total_mass / (r + self.scale_radius)

    @property
    def half_mass_radius(self) -> float:
        """M(r) = M/2 at r = a (1 + sqrt(2))."""
        return self.scale_radius * (1.0 + np.sqrt(2.0))

    @property
    def total_energy(self) -> float:
        """E = -M^2 / (12 a)."""
        return -self.total_mass**2 / (12.0 * self.scale_radius)


@dataclass(frozen=True)
class UniformSphereProfile:
    """Homogeneous sphere of radius R."""

    radius: float = 1.0
    total_mass: float = 1.0

    def __post_init__(self) -> None:
        if self.radius <= 0 or self.total_mass <= 0:
            raise ConfigurationError("profile parameters must be positive")

    def density(self, r) -> np.ndarray:
        """Constant rho0 inside R, zero outside."""
        r = _check_radius(r)
        rho0 = 3.0 * self.total_mass / (4.0 * np.pi * self.radius**3)
        return np.where(r <= self.radius, rho0, 0.0)

    def enclosed_mass(self, r) -> np.ndarray:
        """M (r/R)^3 inside R, M outside."""
        r = _check_radius(r)
        inside = self.total_mass * (r / self.radius) ** 3
        return np.where(r <= self.radius, inside, self.total_mass)

    def potential(self, r) -> np.ndarray:
        """Parabolic well inside R, Keplerian -M/r outside."""
        r = _check_radius(r)
        R, M = self.radius, self.total_mass
        inside = -M * (3.0 * R**2 - r**2) / (2.0 * R**3)
        with np.errstate(divide="ignore"):
            outside = -M / r
        return np.where(r <= R, inside, outside)

    @property
    def potential_energy(self) -> float:
        """W = -3 M^2 / (5 R)."""
        return -0.6 * self.total_mass**2 / self.radius

    @property
    def free_fall_time(self) -> float:
        """Cold-collapse time to the centre: pi/2 sqrt(R^3 / (2 M))."""
        return 0.5 * np.pi * np.sqrt(self.radius**3 / (2.0 * self.total_mass))

    @property
    def half_mass_radius(self) -> float:
        """M(r) = M/2 at r = R 2^(-1/3)."""
        return self.radius * 2.0 ** (-1.0 / 3.0)

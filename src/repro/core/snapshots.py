"""Snapshot I/O for particle systems (npz and csv).

The paper's measurement pipeline stores "all sampled values ... in csv
files along with their corresponding timestamps"; simulation state uses the
same two formats: compact binary npz for restarts, csv for interchange and
inspection.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from ..errors import NBodyError
from .particles import ParticleSystem

__all__ = ["save_npz", "load_npz", "save_csv", "load_csv"]

_CSV_HEADER = [
    "id", "mass",
    "x", "y", "z",
    "vx", "vy", "vz",
    "ax", "ay", "az",
    "jx", "jy", "jz",
]


def save_npz(path: str | Path, system: ParticleSystem) -> None:
    """Write a snapshot as a compressed npz archive."""
    np.savez_compressed(
        Path(path),
        mass=system.mass,
        pos=system.pos,
        vel=system.vel,
        acc=system.acc,
        jerk=system.jerk,
        time=np.float64(system.time),
    )


def load_npz(path: str | Path) -> ParticleSystem:
    """Load a snapshot written by :func:`save_npz`."""
    path = Path(path)
    if not path.exists():
        raise NBodyError(f"snapshot not found: {path}")
    with np.load(path) as data:
        return ParticleSystem(
            mass=data["mass"],
            pos=data["pos"],
            vel=data["vel"],
            acc=data["acc"],
            jerk=data["jerk"],
            time=float(data["time"]),
        )


def save_csv(path: str | Path, system: ParticleSystem) -> None:
    """Write a snapshot as csv with a commented time header."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        fh.write(f"# time = {system.time!r}\n")
        writer = csv.writer(fh)
        writer.writerow(_CSV_HEADER)
        for i in range(system.n):
            writer.writerow(
                [i, repr(float(system.mass[i]))]
                + [repr(float(v)) for v in system.pos[i]]
                + [repr(float(v)) for v in system.vel[i]]
                + [repr(float(v)) for v in system.acc[i]]
                + [repr(float(v)) for v in system.jerk[i]]
            )


def load_csv(path: str | Path) -> ParticleSystem:
    """Load a snapshot written by :func:`save_csv`."""
    path = Path(path)
    if not path.exists():
        raise NBodyError(f"snapshot not found: {path}")
    with path.open() as fh:
        first = fh.readline()
        if not first.startswith("# time = "):
            raise NBodyError(f"{path}: missing time header")
        time = float(first[len("# time = "):])
        reader = csv.reader(fh)
        header = next(reader)
        if header != _CSV_HEADER:
            raise NBodyError(f"{path}: unexpected csv header {header}")
        rows = [[float(v) for v in row[1:]] for row in reader]
    if not rows:
        raise NBodyError(f"{path}: empty snapshot")
    data = np.asarray(rows)
    return ParticleSystem(
        mass=data[:, 0],
        pos=data[:, 1:4],
        vel=data[:, 4:7],
        acc=data[:, 7:10],
        jerk=data[:, 10:13],
        time=time,
    )

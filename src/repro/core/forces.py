"""Golden-reference force computation: double precision, brute force.

This is the paper's correctness oracle: "force and jerk values computed by
the Tenstorrent Wormhole processor are compared against a naive,
double-precision brute-force implementation of the O(N^2) algorithm
executed on a conventional CPU.  This CPU-based calculation serves as the
'golden reference' for accuracy." (Section 3).

For every particle i:

    a_i = sum_j G m_j (r_j - r_i) / (r_ij^2 + eps^2)^{3/2}
    j_i = sum_j G m_j [ v_ij / s^{3/2} - 3 (r_ij . v_ij) r_ij / s^{5/2} ]

with r_ij = r_j - r_i, v_ij = v_j - v_i, s = r_ij^2 + eps^2.  ``eps`` is
the Plummer softening; the pure Newtonian case is eps = 0 with the
self-interaction excluded.

The evaluation is blocked over j so the O(N^2) pairwise arrays never exceed
``block`` rows (cache-friendly and memory-bounded), but every arithmetic
operation is float64 — this module never trades accuracy for speed.
"""

from __future__ import annotations

import numpy as np

from ..errors import NBodyError
from .units import G_NBODY

__all__ = [
    "accel_jerk_reference",
    "accel_jerk_on_targets",
    "accel_reference",
    "potential_reference",
]

#: Default j-block size: 256 rows x N columns of float64 stays comfortably
#: inside L2 for the particle counts the tests use.
DEFAULT_BLOCK = 256


def _validate(pos: np.ndarray, vel: np.ndarray | None, mass: np.ndarray) -> int:
    n = mass.shape[0]
    if pos.shape != (n, 3):
        raise NBodyError(f"pos shape {pos.shape} does not match {n} masses")
    if vel is not None and vel.shape != (n, 3):
        raise NBodyError(f"vel shape {vel.shape} does not match {n} masses")
    return n


def accel_jerk_reference(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    *,
    softening: float = 0.0,
    G: float = G_NBODY,
    block: int = DEFAULT_BLOCK,
) -> tuple[np.ndarray, np.ndarray]:
    """Acceleration and jerk for all particles, float64 throughout."""
    pos = np.asarray(pos, dtype=np.float64)
    vel = np.asarray(vel, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = _validate(pos, vel, mass)
    if softening < 0:
        raise NBodyError(f"softening must be non-negative, got {softening}")
    eps2 = softening * softening

    acc = np.zeros((n, 3))
    jerk = np.zeros((n, 3))
    for start in range(0, n, block):
        stop = min(start + block, n)
        # displacement/velocity of all j relative to the i-block
        dr = pos[None, :, :] - pos[start:stop, None, :]   # (b, n, 3)
        dv = vel[None, :, :] - vel[start:stop, None, :]
        s = np.einsum("ijk,ijk->ij", dr, dr) + eps2        # (b, n)
        rv = np.einsum("ijk,ijk->ij", dr, dv)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_s = 1.0 / s
            inv_r3 = inv_s * np.sqrt(inv_s)
        # remove self-interaction (and exact overlaps when eps = 0)
        diag_i = np.arange(start, stop)
        inv_r3[np.arange(stop - start), diag_i] = 0.0
        inv_s[np.arange(stop - start), diag_i] = 0.0
        if eps2 == 0.0:
            bad = ~np.isfinite(inv_r3)
            if bad.any():
                raise NBodyError(
                    "coincident particles with zero softening produce a "
                    "singular force"
                )
        m_inv_r3 = mass[None, :] * inv_r3                  # (b, n)
        acc[start:stop] = np.einsum("ij,ijk->ik", m_inv_r3, dr)
        # jerk: m [ dv / r^3 - 3 (rv / r^2) dr / r^3 ]
        alpha = 3.0 * rv * inv_s                           # (b, n)
        jerk[start:stop] = np.einsum(
            "ij,ijk->ik", m_inv_r3, dv
        ) - np.einsum("ij,ijk->ik", m_inv_r3 * alpha, dr)
    return G * acc, G * jerk


def accel_jerk_on_targets(
    pos: np.ndarray,
    vel: np.ndarray,
    mass: np.ndarray,
    targets: np.ndarray,
    *,
    softening: float = 0.0,
    G: float = G_NBODY,
    block: int = DEFAULT_BLOCK,
) -> tuple[np.ndarray, np.ndarray]:
    """Acceleration and jerk on a subset of particles, from all sources.

    The primitive a block-timestep integrator needs: only the *active*
    particles (those due for an update) get new forces, but every particle
    sources them.  ``targets`` is an index array; results align with it.
    """
    pos = np.asarray(pos, dtype=np.float64)
    vel = np.asarray(vel, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = _validate(pos, vel, mass)
    targets = np.asarray(targets, dtype=np.intp)
    if targets.ndim != 1 or targets.size == 0:
        raise NBodyError("targets must be a non-empty index vector")
    if targets.min() < 0 or targets.max() >= n:
        raise NBodyError(f"target indices out of range [0, {n})")
    eps2 = softening * softening

    acc = np.zeros((targets.size, 3))
    jerk = np.zeros((targets.size, 3))
    for start in range(0, targets.size, block):
        t_idx = targets[start : start + block]
        dr = pos[None, :, :] - pos[t_idx, None, :]
        dv = vel[None, :, :] - vel[t_idx, None, :]
        s = np.einsum("ijk,ijk->ij", dr, dr) + eps2
        rv = np.einsum("ijk,ijk->ij", dr, dv)
        with np.errstate(divide="ignore", invalid="ignore"):
            inv_s = 1.0 / s
            inv_r3 = inv_s * np.sqrt(inv_s)
        rows = np.arange(t_idx.size)
        inv_r3[rows, t_idx] = 0.0
        inv_s[rows, t_idx] = 0.0
        if eps2 == 0.0 and not np.all(np.isfinite(inv_r3)):
            raise NBodyError(
                "coincident particles with zero softening produce a "
                "singular force"
            )
        m_inv_r3 = mass[None, :] * inv_r3
        alpha = 3.0 * rv * inv_s
        acc[start : start + t_idx.size] = np.einsum("ij,ijk->ik", m_inv_r3, dr)
        jerk[start : start + t_idx.size] = np.einsum(
            "ij,ijk->ik", m_inv_r3, dv
        ) - np.einsum("ij,ijk->ik", m_inv_r3 * alpha, dr)
    return G * acc, G * jerk


def accel_reference(
    pos: np.ndarray,
    mass: np.ndarray,
    *,
    softening: float = 0.0,
    G: float = G_NBODY,
    block: int = DEFAULT_BLOCK,
) -> np.ndarray:
    """Acceleration only (used where jerk is not needed)."""
    vel = np.zeros_like(np.asarray(pos, dtype=np.float64))
    acc, _ = accel_jerk_reference(
        pos, vel, mass, softening=softening, G=G, block=block
    )
    return acc


def potential_reference(
    pos: np.ndarray,
    mass: np.ndarray,
    *,
    softening: float = 0.0,
    G: float = G_NBODY,
    block: int = DEFAULT_BLOCK,
) -> float:
    """Total gravitational potential energy, float64, pairwise once."""
    pos = np.asarray(pos, dtype=np.float64)
    mass = np.asarray(mass, dtype=np.float64)
    n = _validate(pos, None, mass)
    eps2 = softening * softening
    total = 0.0
    for start in range(0, n, block):
        stop = min(start + block, n)
        dr = pos[None, :, :] - pos[start:stop, None, :]
        s = np.einsum("ijk,ijk->ij", dr, dr) + eps2
        with np.errstate(divide="ignore"):
            inv_r = 1.0 / np.sqrt(s)
        diag = np.arange(start, stop)
        inv_r[np.arange(stop - start), diag] = 0.0
        pair = mass[start:stop, None] * mass[None, :] * inv_r
        total += pair.sum()
    return -0.5 * G * total  # each pair counted twice above

"""Kick-drift-kick leapfrog: the comparison integrator.

Second-order, symplectic, and jerk-free — the natural baseline against the
paper's 4th-order Hermite scheme.  The integrator-comparison benchmark
measures what the Hermite machinery (and hence the jerk half of the
offloaded kernel) buys: at equal force-evaluation counts the Hermite
integrator's energy error is orders of magnitude smaller on smooth
problems, which is why production direct codes pay for the jerk.

The leapfrog only needs accelerations; backends still return jerk, which
is simply ignored, so the same force backends (reference, CPU model,
Wormhole offload) drive both integrators.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .particles import ParticleSystem
from .simulation import ForceBackend, TimelineSegment

__all__ = ["leapfrog_step", "LeapfrogSimulation"]


def leapfrog_step(pos, vel, acc, dt, evaluate_acc):
    """One KDK step; returns (pos1, vel1, acc1)."""
    if dt <= 0 or not np.isfinite(dt):
        raise ConfigurationError(f"dt must be positive and finite, got {dt}")
    vel_half = vel + 0.5 * dt * acc
    pos1 = pos + dt * vel_half
    acc1 = evaluate_acc(pos1, vel_half)
    vel1 = vel_half + 0.5 * dt * acc1
    return pos1, vel1, acc1


class LeapfrogSimulation:
    """Fixed-step KDK integration over any force backend."""

    def __init__(self, system: ParticleSystem, backend: ForceBackend,
                 *, dt: float) -> None:
        if dt <= 0 or not np.isfinite(dt):
            raise ConfigurationError(f"dt must be positive and finite, got {dt}")
        self.system = system
        self.backend = backend
        self.dt = dt
        self._initialised = False
        self.timeline: list[TimelineSegment] = []
        self.force_evaluations = 0

    def _evaluate_acc(self, pos, vel):
        evaluation = self.backend.compute(pos, vel, self.system.mass)
        self.timeline.extend(evaluation.segments)
        self.force_evaluations += 1
        return evaluation.acc

    def run(self, n_steps: int) -> ParticleSystem:
        """Advance the system by ``n_steps`` kick-drift-kick steps."""
        if n_steps <= 0:
            raise ConfigurationError(f"n_steps must be positive, got {n_steps}")
        if not self._initialised:
            self.system.acc = self._evaluate_acc(self.system.pos, self.system.vel)
            self._initialised = True
        pos, vel, acc = self.system.pos, self.system.vel, self.system.acc
        for _ in range(n_steps):
            pos, vel, acc = leapfrog_step(pos, vel, acc, self.dt,
                                          self._evaluate_acc)
            self.system.time += self.dt
        self.system.pos, self.system.vel, self.system.acc = pos, vel, acc
        self.system.check_finite()
        return self.system

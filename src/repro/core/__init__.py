"""The direct gravitational N-body library (the paper's application).

Implements the paper's algorithm end to end: O(N^2) pairwise acceleration
and jerk (:mod:`~repro.core.forces`), the 4th-order Hermite
predictor-corrector (:mod:`~repro.core.hermite`), Aarseth timestep control
(:mod:`~repro.core.timestep`), star-cluster initial conditions
(:mod:`~repro.core.initial_conditions`), conserved-quantity diagnostics
(:mod:`~repro.core.energy`), the paper's accuracy gates
(:mod:`~repro.core.validation`), and a backend-agnostic simulation driver
(:mod:`~repro.core.simulation`) that the CPU-reference and Wormhole
backends plug into.
"""

from .analysis import (
    ClusterReport,
    cluster_report,
    core_radius,
    density_center,
    half_mass_relaxation_time,
    lagrangian_radii,
    velocity_dispersion,
)
from .block_hermite import BlockHermiteIntegrator, BlockStats
from .energy import EnergyReport, energy_report, kinetic_energy
from .forces import (
    accel_jerk_on_targets,
    accel_jerk_reference,
    accel_reference,
    potential_reference,
)
from .hermite import HermiteStepResult, correct, hermite_step, predict
from .integrators import (
    BlockHermiteDriver,
    Integrator,
    IntegratorSpec,
    LeapfrogDriver,
    RegisteredIntegrator,
    integrator_choices_help,
    integrator_entry,
    integrator_names,
    make_integrator,
    register_integrator,
)
from .leapfrog import LeapfrogSimulation, leapfrog_step
from .initial_conditions import (
    binary,
    cluster_collision,
    cluster_with_binary,
    hernquist,
    plummer,
    uniform_sphere,
)
from .orbit import (
    OrbitalElements,
    binary_elements,
    elements_from_state,
    hardness_ratio,
    orbital_period,
)
from .particles import ParticleSystem
from .profiles import HernquistProfile, PlummerProfile, UniformSphereProfile
from .scenarios import (
    RegisteredScenario,
    ScenarioSpec,
    make_scenario,
    register_scenario,
    scenario_choices_help,
    scenario_entry,
    scenario_names,
)
from .simulation import (
    CycleRecord,
    ForceBackend,
    ForceEvaluation,
    HermiteIntegrator,
    HostCostModel,
    ReferenceBackend,
    Simulation,
    SimulationResult,
    TimelineSegment,
)
from .snapshots import load_csv, load_npz, save_csv, save_npz
from .timestep import (
    SharedTimestep,
    aarseth_timestep,
    initial_timestep,
    quantize_block_timestep,
)
from .units import G_NBODY, HENON_CROSSING_TIME, UnitSystem
from .validation import (
    ACC_TOLERANCE,
    JERK_TOLERANCE,
    ValidationReport,
    compare_to_reference,
    validate_forces,
)

__all__ = [
    "ClusterReport",
    "cluster_report",
    "core_radius",
    "density_center",
    "half_mass_relaxation_time",
    "lagrangian_radii",
    "velocity_dispersion",
    "BlockHermiteIntegrator",
    "BlockStats",
    "accel_jerk_on_targets",
    "LeapfrogSimulation",
    "leapfrog_step",
    "cluster_collision",
    "OrbitalElements",
    "binary_elements",
    "elements_from_state",
    "hardness_ratio",
    "orbital_period",
    "HernquistProfile",
    "PlummerProfile",
    "UniformSphereProfile",
    "EnergyReport",
    "energy_report",
    "kinetic_energy",
    "accel_jerk_reference",
    "accel_reference",
    "potential_reference",
    "HermiteStepResult",
    "correct",
    "hermite_step",
    "predict",
    "BlockHermiteDriver",
    "Integrator",
    "IntegratorSpec",
    "LeapfrogDriver",
    "RegisteredIntegrator",
    "integrator_choices_help",
    "integrator_entry",
    "integrator_names",
    "make_integrator",
    "register_integrator",
    "RegisteredScenario",
    "ScenarioSpec",
    "make_scenario",
    "register_scenario",
    "scenario_choices_help",
    "scenario_entry",
    "scenario_names",
    "binary",
    "cluster_with_binary",
    "hernquist",
    "plummer",
    "uniform_sphere",
    "ParticleSystem",
    "CycleRecord",
    "ForceBackend",
    "ForceEvaluation",
    "HermiteIntegrator",
    "HostCostModel",
    "ReferenceBackend",
    "Simulation",
    "SimulationResult",
    "TimelineSegment",
    "load_csv",
    "load_npz",
    "save_csv",
    "save_npz",
    "SharedTimestep",
    "aarseth_timestep",
    "initial_timestep",
    "quantize_block_timestep",
    "G_NBODY",
    "HENON_CROSSING_TIME",
    "UnitSystem",
    "ACC_TOLERANCE",
    "JERK_TOLERANCE",
    "ValidationReport",
    "compare_to_reference",
    "validate_forces",
]

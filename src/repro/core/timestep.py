"""Timestep criteria for the Hermite integrator.

Direct N-body codes of the paper's class use Aarseth's composite criterion,

    dt_i = sqrt( eta * (|a| |a2| + |j|^2) / (|j| |a3| + |a2|^2) ),

where a2, a3 are the second and third time derivatives of the acceleration
reconstructed by the Hermite corrector.  Before the first step, when only
a and j are known, the starter criterion dt = eta_s |a| / |j| applies.

Both shared (global min over particles) and block (power-of-two quantised)
schemes are provided; the paper's representative simulation advances in
"time cycles" of a shared step, which :class:`SharedTimestep` models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import IntegratorError

__all__ = [
    "aarseth_timestep",
    "initial_timestep",
    "quantize_block_timestep",
    "SharedTimestep",
]

_TINY = 1.0e-300


def _norms(arr: np.ndarray) -> np.ndarray:
    return np.sqrt(np.einsum("ij,ij->i", arr, arr))


def initial_timestep(acc: np.ndarray, jerk: np.ndarray, eta: float = 0.01) -> np.ndarray:
    """Starter criterion dt_i = eta |a_i| / |j_i| per particle."""
    if eta <= 0:
        raise IntegratorError(f"eta must be positive, got {eta}")
    a = _norms(acc)
    j = _norms(jerk)
    return eta * a / np.maximum(j, _TINY)


def aarseth_timestep(
    acc: np.ndarray,
    jerk: np.ndarray,
    snap: np.ndarray,
    crackle: np.ndarray,
    eta: float = 0.02,
) -> np.ndarray:
    """Aarseth's composite criterion per particle.

    ``snap``/``crackle`` are the 2nd/3rd acceleration derivatives from the
    Hermite corrector.
    """
    if eta <= 0:
        raise IntegratorError(f"eta must be positive, got {eta}")
    a = _norms(acc)
    j = _norms(jerk)
    s = _norms(snap)
    c = _norms(crackle)
    num = a * s + j * j
    den = j * c + s * s
    return np.sqrt(eta * num / np.maximum(den, _TINY))


def quantize_block_timestep(
    dt: np.ndarray | float,
    *,
    dt_max: float = 0.125,
    min_exponent: int = 40,
) -> np.ndarray | float:
    """Quantise timesteps down to powers of two of ``dt_max``.

    Block-timestep codes keep particles on a power-of-two hierarchy so
    groups advance synchronously.  Values below dt_max / 2^min_exponent
    indicate a pathological configuration and raise.
    """
    dt_arr = np.asarray(dt, dtype=np.float64)
    if np.any(dt_arr <= 0) or not np.all(np.isfinite(dt_arr)):
        raise IntegratorError("timesteps must be positive and finite")
    # exponent k such that dt_max / 2^k <= dt
    k = np.ceil(np.log2(dt_max / dt_arr))
    k = np.maximum(k, 0)
    if np.any(k > min_exponent):
        raise IntegratorError(
            f"timestep collapsed below dt_max/2^{min_exponent}; "
            "system too tightly bound for the block hierarchy"
        )
    out = dt_max / np.exp2(k)
    return float(out) if np.isscalar(dt) or dt_arr.ndim == 0 else out


@dataclass
class SharedTimestep:
    """Shared adaptive timestep: the global minimum of the per-particle
    criterion, optionally clipped to [dt_min, dt_max].

    ``criterion`` selects the per-step formula:

    * ``"aarseth"`` (default) — the composite criterion, using the snap
      and crackle the Hermite corrector reconstructs.  Most accurate on
      exact forces, but the reconstruction divides force differences by
      dt^2 and dt^3, so *mixed-precision* force noise (the FP32 device
      kernel's ~1e-5 relative error) inflates the derivatives and drags
      the timestep down — a real interaction the integration tests
      demonstrate.
    * ``"simple"`` — eta |a| / |j| every step: first-order only, but it
      never touches reconstructed derivatives and is therefore robust to
      force noise; the standard mitigation for single-precision kernels.
    """

    eta: float = 0.02
    eta_start: float = 0.01
    dt_min: float = 1.0e-8
    dt_max: float = 0.125
    criterion: str = "aarseth"

    def __post_init__(self) -> None:
        if not (0 < self.dt_min <= self.dt_max):
            raise IntegratorError(
                f"need 0 < dt_min <= dt_max, got {self.dt_min}, {self.dt_max}"
            )
        if self.criterion not in ("aarseth", "simple"):
            raise IntegratorError(
                f"criterion must be 'aarseth' or 'simple', "
                f"got {self.criterion!r}"
            )

    def first(self, acc: np.ndarray, jerk: np.ndarray) -> float:
        """Startup timestep from the acc/jerk criterion, clipped to bounds."""
        dt = initial_timestep(acc, jerk, self.eta_start).min()
        return float(np.clip(dt, self.dt_min, self.dt_max))

    def next(
        self,
        acc: np.ndarray,
        jerk: np.ndarray,
        snap: np.ndarray,
        crackle: np.ndarray,
    ) -> float:
        """Timestep from the full Aarseth (or simple) criterion, clipped to bounds."""
        if self.criterion == "simple":
            dt = initial_timestep(acc, jerk, self.eta).min()
        else:
            dt = aarseth_timestep(acc, jerk, snap, crackle, self.eta).min()
        return float(np.clip(dt, self.dt_min, self.dt_max))

"""Keplerian two-body utilities: elements, periods, hardness.

Compact-object binaries are the paper's science motivation; these helpers
extract their osculating orbital elements from simulation state and
classify binaries against the host cluster (Heggie's hard/soft boundary).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import NBodyError
from .particles import ParticleSystem

__all__ = [
    "OrbitalElements",
    "elements_from_state",
    "binary_elements",
    "orbital_period",
    "hardness_ratio",
]


@dataclass(frozen=True)
class OrbitalElements:
    """Osculating Keplerian elements of a two-body subsystem."""

    semi_major_axis: float       # negative for hyperbolic pairs
    eccentricity: float
    separation: float
    specific_energy: float       # relative orbit energy per reduced mass
    angular_momentum: np.ndarray  # specific, (3,)
    total_mass: float

    @property
    def bound(self) -> bool:
        """True when the pair's relative orbit energy is negative."""
        return self.specific_energy < 0.0

    @property
    def period(self) -> float:
        """Orbital period (G = 1); raises for unbound pairs."""
        if not self.bound:
            raise NBodyError("unbound pair has no period")
        return orbital_period(self.semi_major_axis, self.total_mass)

    @property
    def periapsis(self) -> float:
        """Closest-approach distance a(1 - e); raises for unbound pairs."""
        if not self.bound:
            raise NBodyError("periapsis of an unbound pair is undefined here")
        return self.semi_major_axis * (1.0 - self.eccentricity)

    @property
    def apoapsis(self) -> float:
        """Largest separation a(1 + e); raises for unbound pairs."""
        if not self.bound:
            raise NBodyError("apoapsis of an unbound pair is undefined")
        return self.semi_major_axis * (1.0 + self.eccentricity)

    @property
    def binding_energy(self) -> float:
        """|E_bind| = G m1 m2 / (2a) expressed via total mass and elements.

        Note this needs the component masses for the prefactor; exposed as
        the specific orbital energy times the reduced mass is the caller's
        job — here we report the specific form.
        """
        return -self.specific_energy


def orbital_period(semi_major_axis: float, total_mass: float) -> float:
    """Kepler's third law with G = 1."""
    if semi_major_axis <= 0 or total_mass <= 0:
        raise NBodyError(
            f"period needs positive a and mass, got a={semi_major_axis}, "
            f"M={total_mass}"
        )
    return 2.0 * np.pi * np.sqrt(semi_major_axis**3 / total_mass)


def elements_from_state(
    pos1: np.ndarray, vel1: np.ndarray, m1: float,
    pos2: np.ndarray, vel2: np.ndarray, m2: float,
) -> OrbitalElements:
    """Elements of the relative orbit of two point masses (G = 1)."""
    if m1 <= 0 or m2 <= 0:
        raise NBodyError("component masses must be positive")
    mu = m1 + m2
    dr = np.asarray(pos2, dtype=np.float64) - np.asarray(pos1, dtype=np.float64)
    dv = np.asarray(vel2, dtype=np.float64) - np.asarray(vel1, dtype=np.float64)
    r = float(np.linalg.norm(dr))
    if r == 0.0:
        raise NBodyError("coincident bodies have no orbit")
    v2 = float(dv @ dv)
    energy = 0.5 * v2 - mu / r           # specific orbital energy
    h = np.cross(dr, dv)
    h2 = float(h @ h)
    if energy == 0.0:
        a = np.inf
        ecc = 1.0
    else:
        a = -mu / (2.0 * energy)
        ecc2 = 1.0 - h2 / (mu * a)
        ecc = float(np.sqrt(max(ecc2, 0.0)))
    return OrbitalElements(
        semi_major_axis=float(a),
        eccentricity=ecc,
        separation=r,
        specific_energy=float(energy),
        angular_momentum=h,
        total_mass=float(mu),
    )


def binary_elements(system: ParticleSystem, i: int = 0,
                    j: int = 1) -> OrbitalElements:
    """Elements of the (i, j) pair inside a larger system."""
    n = system.n
    if not (0 <= i < n and 0 <= j < n and i != j):
        raise NBodyError(f"invalid pair ({i}, {j}) for {n} particles")
    return elements_from_state(
        system.pos[i], system.vel[i], float(system.mass[i]),
        system.pos[j], system.vel[j], float(system.mass[j]),
    )


def hardness_ratio(system: ParticleSystem, i: int = 0, j: int = 1) -> float:
    """Heggie hardness: |E_bind| over the mean field-star kinetic energy.

    x >> 1 is a hard binary (it will, on average, harden further through
    encounters); x << 1 is soft (it will be disrupted).
    """
    elements = binary_elements(system, i, j)
    if not elements.bound:
        return 0.0
    m1, m2 = float(system.mass[i]), float(system.mass[j])
    e_bind = m1 * m2 / (2.0 * elements.semi_major_axis)
    field = np.ones(system.n, dtype=bool)
    field[[i, j]] = False
    if not field.any():
        raise NBodyError("hardness needs field stars besides the binary")
    v_bulk = system.center_of_mass_velocity()
    dv = system.vel[field] - v_bulk
    ke = 0.5 * system.mass[field] * np.einsum("ij,ij->i", dv, dv)
    return float(e_bind / ke.mean())

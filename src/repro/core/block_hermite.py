"""Individual block-timestep Hermite integration.

Production direct N-body codes (the paper's class, e.g. NBODY6-style
integrators) do not advance every particle with a shared step: each
particle carries its own power-of-two timestep from a global hierarchy,
and at each block time only the *due* particles ("the active block")
receive new forces — an O(N_active * N) evaluation instead of O(N^2).
In a clustered system with a hard binary this reduces the work per unit
of physical time by orders of magnitude.

The scheme:

1. global time advances to the earliest due time  t = min_i (t_i + dt_i);
2. every particle is *predicted* to t (Taylor through the jerk);
3. the active block gets new forces from all predicted particles
   (:func:`~repro.core.forces.accel_jerk_on_targets`);
4. the Hermite corrector updates the active block, and each active
   particle draws a new Aarseth timestep, quantised down to a power of
   two that divides its current time (the block-synchronisation rule)
   and is allowed to at most double per update.

The force evaluation is pluggable (``partial_force``) so precision
experiments can substitute mixed-precision kernels; the default is the
double-precision golden reference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..errors import ConfigurationError, IntegratorError
from .forces import accel_jerk_on_targets
from .hermite import correct
from .particles import ParticleSystem
from .timestep import aarseth_timestep, initial_timestep

__all__ = ["BlockStats", "BlockHermiteIntegrator"]

#: The timestep hierarchy: dt = dt_max / 2^k, k in [0, MAX_LEVEL].
MAX_LEVEL = 40


@dataclass
class BlockStats:
    """Work accounting for a block-timestep run."""

    block_steps: int = 0
    particle_updates: int = 0
    force_pair_evaluations: int = 0
    level_histogram: dict[int, int] = field(default_factory=dict)

    def record_block(self, n_active: int, n_total: int,
                     levels: np.ndarray) -> None:
        """Accumulate the work done by one block update."""
        self.block_steps += 1
        self.particle_updates += n_active
        self.force_pair_evaluations += n_active * n_total
        for level in levels:
            key = int(level)
            self.level_histogram[key] = self.level_histogram.get(key, 0) + 1


class BlockHermiteIntegrator:
    """4th-order Hermite with individual power-of-two block timesteps."""

    def __init__(
        self,
        system: ParticleSystem,
        *,
        eta: float = 0.02,
        eta_start: float = 0.01,
        dt_max: float = 0.0625,
        softening: float = 0.0,
        block_levels: int = MAX_LEVEL,
        partial_force: Callable | None = None,
    ) -> None:
        if not (0 < eta and 0 < eta_start):
            raise ConfigurationError("eta values must be positive")
        if dt_max <= 0:
            raise ConfigurationError(f"dt_max must be positive, got {dt_max}")
        if math.frexp(dt_max)[0] != 0.5:
            # every block time is dt_max / 2^k; a non-power-of-two root
            # puts the whole hierarchy off the representable dyadic grid
            # and the _divides alignment test silently degrades
            raise ConfigurationError(
                f"dt_max must be a power of two (the hierarchy is "
                f"dt_max / 2^k), got {dt_max}"
            )
        if not (1 <= block_levels <= MAX_LEVEL):
            raise ConfigurationError(
                f"block_levels must be in [1, {MAX_LEVEL}], got {block_levels}"
            )
        self.system = system
        self.eta = eta
        self.eta_start = eta_start
        self.dt_max = dt_max
        self.block_levels = block_levels
        self.softening = softening
        self._force = partial_force if partial_force is not None else (
            lambda pos, vel, mass, targets: accel_jerk_on_targets(
                pos, vel, mass, targets, softening=self.softening
            )
        )
        self.stats = BlockStats()
        n = system.n
        self._t = np.zeros(n)          # last update time per particle
        self._level = np.zeros(n, dtype=np.intp)
        self._snap = np.zeros((n, 3))
        self._crackle = np.zeros((n, 3))
        self._initialised = False

    # -- hierarchy helpers --------------------------------------------------

    def _dt_of_level(self, level) -> np.ndarray:
        return self.dt_max / np.exp2(level)

    def _level_for_dt(self, dt: np.ndarray, t_now: float,
                      current_level: np.ndarray) -> np.ndarray:
        """Quantise desired timesteps onto the hierarchy.

        Rules: never round up past the desired dt; a step may shrink
        arbitrarily but grow by at most one level per update, and growing
        is only allowed when the new (longer) step still divides the
        current time — the block-synchronisation condition.
        """
        if np.any(dt <= 0) or not np.all(np.isfinite(dt)):
            raise IntegratorError("non-positive or non-finite timestep")
        k = np.ceil(np.log2(self.dt_max / dt))
        k = np.maximum(k, 0).astype(np.intp)
        if np.any(k > self.block_levels):
            raise IntegratorError(
                f"timestep collapsed below dt_max/2^{self.block_levels}"
            )
        # growth limit: at most one level up (dt at most doubles)
        k = np.maximum(k, current_level - 1)
        # synchronisation: moving to a longer step requires the block time
        # to be aligned with it; otherwise stay at the current level
        wants_growth = k < current_level
        if np.any(wants_growth):
            dt_new = self._dt_of_level(k)
            misaligned = ~self._divides(dt_new, t_now)
            k = np.where(wants_growth & misaligned, current_level, k)
        return k

    @staticmethod
    def _divides(dt: np.ndarray, t: float) -> np.ndarray:
        ratio = t / dt
        return np.abs(ratio - np.round(ratio)) < 1e-9

    # -- integration ----------------------------------------------------------

    def initialise(self) -> None:
        """Compute initial forces and assign every particle a timestep level."""
        s = self.system
        all_idx = np.arange(s.n)
        acc, jerk = self._force(s.pos, s.vel, s.mass, all_idx)
        s.acc, s.jerk = acc, jerk
        dt = initial_timestep(acc, jerk, self.eta_start)
        dt = np.minimum(dt, self.dt_max)
        k = np.ceil(np.log2(self.dt_max / dt))
        self._level = np.maximum(k, 0).astype(np.intp)
        if np.any(self._level > self.block_levels):
            raise IntegratorError("initial timestep below the hierarchy floor")
        self._t = np.full(s.n, s.time)
        self._initialised = True

    def next_block_time(self) -> float:
        """Earliest pending update time across all particles."""
        return float(np.min(self._t + self._dt_of_level(self._level)))

    def step_block(self) -> int:
        """Advance one block; returns the number of updated particles."""
        if not self._initialised:
            self.initialise()
        s = self.system
        due = self._t + self._dt_of_level(self._level)
        t_new = float(np.min(due))
        active = np.flatnonzero(np.abs(due - t_new) < 1e-12 * max(t_new, 1.0))
        if active.size == 0:  # pragma: no cover - defensive
            raise IntegratorError("no particles due at the next block time")

        # predict ALL particles to t_new (sources must be current)
        dt_all = (t_new - self._t)[:, None]
        pos_p = (
            s.pos + dt_all * s.vel + dt_all**2 / 2.0 * s.acc
            + dt_all**3 / 6.0 * s.jerk
        )
        vel_p = s.vel + dt_all * s.acc + dt_all**2 / 2.0 * s.jerk

        acc1, jerk1 = self._force(pos_p, vel_p, s.mass, active)

        dt_active = t_new - self._t[active]
        step = correct(
            s.pos[active], s.vel[active],
            s.acc[active], s.jerk[active],
            acc1, jerk1, float(dt_active[0]),
        ) if np.allclose(dt_active, dt_active[0]) else None
        if step is not None:
            s.pos[active] = step.pos
            s.vel[active] = step.vel
            s.acc[active] = step.acc
            s.jerk[active] = step.jerk
            self._snap[active] = step.snap
            self._crackle[active] = step.crackle
        else:
            # mixed dt in one block (possible after level changes): correct
            # particle groups per distinct dt
            for dt_value in np.unique(dt_active):
                sel = active[np.abs(dt_active - dt_value) < 1e-15]
                rows = np.searchsorted(active, sel)
                sub = correct(
                    s.pos[sel], s.vel[sel], s.acc[sel], s.jerk[sel],
                    acc1[rows], jerk1[rows], float(dt_value),
                )
                s.pos[sel] = sub.pos
                s.vel[sel] = sub.vel
                s.acc[sel] = sub.acc
                s.jerk[sel] = sub.jerk
                self._snap[sel] = sub.snap
                self._crackle[sel] = sub.crackle

        # non-active particles keep their state at their own t_i; only the
        # active ones move their clocks
        self._t[active] = t_new
        dt_want = aarseth_timestep(
            s.acc[active], s.jerk[active],
            self._snap[active], self._crackle[active], self.eta,
        )
        dt_want = np.minimum(dt_want, self.dt_max)
        self._level[active] = self._level_for_dt(
            dt_want, t_new, self._level[active]
        )
        s.time = t_new
        self.stats.record_block(active.size, s.n, self._level[active])
        return int(active.size)

    def run_until(self, t_end: float, *, max_blocks: int = 10_000_000) -> None:
        """Advance block steps until the global time reaches ``t_end``.

        The final state leaves each particle at its own last update time
        (standard for block schemes); call :meth:`synchronise` to bring
        every particle exactly to the current global time.
        """
        if t_end <= self.system.time:
            raise ConfigurationError(
                f"t_end={t_end} is not ahead of t={self.system.time}"
            )
        if not self._initialised:
            self.initialise()
        blocks = 0
        while self.next_block_time() <= t_end:
            self.step_block()
            blocks += 1
            if blocks > max_blocks:
                raise IntegratorError(
                    f"exceeded {max_blocks} block steps before t_end"
                )

    def synchronise(self) -> None:
        """Predict every particle to the current global time."""
        s = self.system
        dt_all = (s.time - self._t)[:, None]
        s.pos = (
            s.pos + dt_all * s.vel + dt_all**2 / 2.0 * s.acc
            + dt_all**3 / 6.0 * s.jerk
        )
        s.vel = s.vel + dt_all * s.acc + dt_all**2 / 2.0 * s.jerk
        self._t[:] = s.time
        s.check_finite()

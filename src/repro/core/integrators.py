"""First-class integrators: a registry mirroring the backend registry.

Before this layer existed the integration scheme was welded to its entry
point: :class:`~repro.core.simulation.Simulation` *was* the shared-step
Hermite loop, :class:`~repro.core.block_hermite.BlockHermiteIntegrator`
could only be driven by hand with an ad-hoc ``partial_force`` callable,
and the leapfrog comparator lived outside the RunSpec/CLI/service path
entirely.  Now an :class:`IntegratorSpec` — a name plus typed options —
is the declarative form of an integration scheme, exactly as
:class:`~repro.backends.registry.BackendSpec` is for a force backend:
:func:`make_integrator` realises it against a system and a backend, and
:func:`register_integrator` lets new schemes join the same machinery
(CLI choices, RunSpec round-trips, the CI integrator matrix).

Every registered integrator satisfies the :class:`Integrator` protocol —
``initialise()`` plus ``run(n_cycles) -> SimulationResult`` — so every
caller of ``RunSpec.make_simulation`` keeps working unchanged whichever
scheme the spec names.  ``run(n_cycles)`` always advances the system by
``n_cycles * dt`` of physical time: for the shared-step schemes that is
n_cycles steps, for the block scheme it is however many block updates
the hierarchy needs, so energy gates and benches compare integrators at
matched physical spans.

The block scheme is where the backend protocol's target-subset contract
pays off: each block update evaluates forces only on the active block
through :func:`~repro.backends.protocol.compute_on_targets`, so an
O(N_active * N) device dispatch replaces the O(N^2) full evaluation.
"""

from __future__ import annotations

import json
import math
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Mapping, Protocol, \
    runtime_checkable

import numpy as np

from ..backends.protocol import (
    TimelineSegment,
    accepts_trace,
    compute_on_targets,
)
from ..backends.registry import OptionSpec
from ..errors import ConfigurationError, UnknownIntegratorError
from .block_hermite import MAX_LEVEL, BlockHermiteIntegrator
from .leapfrog import leapfrog_step
from .simulation import (
    CycleRecord,
    HermiteIntegrator,
    HostCostModel,
    SimulationResult,
)
from .timestep import SharedTimestep

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .particles import ParticleSystem

__all__ = [
    "Integrator",
    "IntegratorSpec",
    "RegisteredIntegrator",
    "register_integrator",
    "make_integrator",
    "integrator_names",
    "integrator_entry",
    "integrator_choices_help",
    "BlockHermiteDriver",
    "LeapfrogDriver",
]


@runtime_checkable
class Integrator(Protocol):
    """What every registered integration scheme provides."""

    system: "ParticleSystem"
    name: str

    def initialise(self) -> list[TimelineSegment]:
        """Evaluate initial forces; idempotent once run."""
        ...  # pragma: no cover - protocol

    def run(self, n_cycles: int) -> SimulationResult:
        """Advance ``n_cycles * dt`` of physical time."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class IntegratorSpec:
    """An integrator, declaratively: registry name + option overrides.

    The JSON form is what :class:`~repro.backends.runspec.RunSpec`
    persists; option values are validated against the registered
    :class:`~repro.backends.registry.OptionSpec` table when the spec is
    realised by :func:`make_integrator`.
    """

    name: str
    options: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "options", dict(self.options))

    def with_options(self, **overrides: Any) -> "IntegratorSpec":
        """A copy of this spec with extra/replaced options."""
        merged = dict(self.options)
        merged.update(overrides)
        return IntegratorSpec(self.name, merged)

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping form of this spec."""
        return {"name": self.name, "options": dict(self.options)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any] | str) -> "IntegratorSpec":
        """Build a spec from a mapping or a bare integrator name."""
        if isinstance(data, str):
            return cls(data)
        if "name" not in data:
            raise ConfigurationError(
                f"integrator spec needs a 'name': {data!r}"
            )
        return cls(str(data["name"]), dict(data.get("options", {})))

    def to_json(self) -> str:
        """Canonical JSON form of this spec."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "IntegratorSpec":
        """Parse a spec from its JSON form."""
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class RegisteredIntegrator:
    """One registry entry: factory, typed options, and help text."""

    name: str
    factory: Callable[..., Integrator]
    description: str
    options: tuple[OptionSpec, ...] = ()

    def resolve_options(self, overrides: Mapping[str, Any]) -> dict[str, Any]:
        """Defaults merged with validated overrides; unknown keys raise."""
        table = {o.name: o for o in self.options}
        unknown = sorted(set(overrides) - set(table))
        if unknown:
            raise ConfigurationError(
                f"integrator {self.name!r} does not accept option(s) "
                f"{unknown}; known: {sorted(table)}"
            )
        resolved = {o.name: o.default for o in self.options}
        for key, value in overrides.items():
            resolved[key] = table[key].coerce(value)
        return resolved


_REGISTRY: dict[str, RegisteredIntegrator] = {}


def register_integrator(
    name: str,
    factory: Callable[..., Integrator],
    *,
    description: str = "",
    options: tuple[OptionSpec, ...] = (),
) -> RegisteredIntegrator:
    """Add an integrator to the registry (re-registration replaces)."""
    if not name:
        raise ConfigurationError("integrator name must be non-empty")
    entry = RegisteredIntegrator(name, factory, description, options)
    # repro-lint: disable=RH010 - registration happens at import time,
    # before any shard worker forks; workers only read the registry.
    _REGISTRY[name] = entry
    return entry


def integrator_names() -> tuple[str, ...]:
    """All registered integrator names, sorted."""
    return tuple(sorted(_REGISTRY))


def integrator_entry(name: str) -> RegisteredIntegrator:
    """Registry lookup by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownIntegratorError(
            f"unknown integrator {name!r}; registered integrators: "
            f"{', '.join(integrator_names())}"
        ) from None


def integrator_choices_help() -> str:
    """One-line-per-integrator help text derived from the registry."""
    return "; ".join(
        f"{entry.name}: {entry.description}"
        for _, entry in sorted(_REGISTRY.items())
    )


def make_integrator(
    spec: "IntegratorSpec | str",
    system: "ParticleSystem",
    backend: Any,
    *,
    dt: float | None = None,
    adaptive: bool = False,
    host_cost: HostCostModel | None = None,
    trace: Any = None,
    **extra: Any,
) -> Integrator:
    """Realise an :class:`IntegratorSpec` (or bare name) into a driver.

    ``dt`` and ``adaptive`` come from the run (not the integrator
    options): they say how far one ``run(n_cycles)`` cycle advances and
    whether the shared-step scheme adapts its step.  ``extra`` options
    override the spec's, mirroring :func:`~repro.backends.registry
    .make_backend`.
    """
    if isinstance(spec, str):
        spec = IntegratorSpec(spec)
    entry = integrator_entry(spec.name)
    overrides = dict(spec.options)
    overrides.update(extra)
    return entry.factory(
        system, backend,
        dt=dt, adaptive=adaptive,
        host_cost=host_cost if host_cost is not None else HostCostModel(),
        trace=trace,
        **entry.resolve_options(overrides),
    )


def _require_dt(dt: float | None, name: str) -> float:
    if dt is None or dt <= 0 or not np.isfinite(dt):
        raise ConfigurationError(
            f"integrator {name!r} needs a positive finite dt, got {dt}"
        )
    return float(dt)


# --------------------------------------------------------------------------
# Drivers
# --------------------------------------------------------------------------


class BlockHermiteDriver:
    """Block-timestep Hermite over a backend's target-subset evaluation.

    Wraps :class:`~repro.core.block_hermite.BlockHermiteIntegrator` with
    the force callable routed through :func:`~repro.backends.protocol
    .compute_on_targets`, so each block update dispatches only the
    active block's i-rows to the backend (i-tile subsets on the device
    backends, row subsets on the CPU ones) and the block's timeline
    carries the backend's subset-priced segments.  ``run(n_cycles)``
    advances ``n_cycles * dt`` of physical time in however many block
    updates the hierarchy takes, then synchronises every particle to the
    final global time; each block contributes one :class:`CycleRecord`.
    """

    name = "block-hermite"

    def __init__(
        self,
        system: "ParticleSystem",
        backend: Any,
        *,
        dt: float | None,
        host_cost: HostCostModel,
        trace: Any = None,
        eta: float = 0.02,
        eta_start: float = 0.01,
        dt_max: float = 0.0625,
        block_levels: int = MAX_LEVEL,
    ) -> None:
        self.dt = _require_dt(dt, self.name)
        self.system = system
        self.backend = backend
        self.host_cost = host_cost
        self.trace = trace
        self._backend_traced = trace is not None and accepts_trace(backend)
        if self._backend_traced:
            backend.trace = trace
        self._pending: list[TimelineSegment] = []
        self.integrator = BlockHermiteIntegrator(
            system, eta=eta, eta_start=eta_start, dt_max=dt_max,
            block_levels=block_levels, partial_force=self._force,
        )
        self._initialised = False

    @property
    def stats(self):
        """The wrapped integrator's :class:`BlockStats` work accounting."""
        return self.integrator.stats

    def _force(self, pos, vel, mass, targets):
        trace = self.trace
        span = (
            trace.span(
                "force", category="sim", backend=self.backend.name,
                n_targets=int(len(targets)),
            )
            if trace is not None else nullcontext()
        )
        with span:
            evaluation = compute_on_targets(
                self.backend, pos, vel, mass, targets
            )
            if trace is not None and not self._backend_traced:
                for seg in evaluation.segments:
                    trace.add_span(
                        seg.detail or seg.tag, seg.seconds, category=seg.tag
                    )
        self._pending.extend(evaluation.segments)
        return evaluation.acc, evaluation.jerk

    def _drain(self) -> list[TimelineSegment]:
        segments, self._pending = self._pending, []
        return segments

    def initialise(self) -> list[TimelineSegment]:
        """Initial full-set force evaluation and level assignment."""
        trace = self.trace
        span = (
            trace.span("initialise", category="sim")
            if trace is not None else nullcontext()
        )
        with span:
            segments: list[TimelineSegment] = []
            if self.host_cost.init_seconds > 0.0:
                segments.append(
                    TimelineSegment("host", self.host_cost.init_seconds, "init")
                )
                if trace is not None:
                    trace.add_span(
                        "init", self.host_cost.init_seconds, category="host"
                    )
            self.integrator.initialise()
            segments.extend(self._drain())
            self._initialised = True
        return segments

    def run(self, n_cycles: int) -> SimulationResult:
        """Advance ``n_cycles * dt`` of physical time in block updates."""
        if n_cycles <= 0:
            raise ConfigurationError(
                f"n_cycles must be positive, got {n_cycles}"
            )
        trace = self.trace
        run_span = (
            trace.span(
                "simulation.run", category="sim", n=self.system.n,
                n_cycles=n_cycles, backend=self.backend.name,
                integrator=self.name,
            )
            if trace is not None else nullcontext()
        )
        with run_span:
            timeline: list[TimelineSegment] = []
            if not self._initialised:
                timeline.extend(self.initialise())
            t_end = self.system.time + n_cycles * self.dt
            records: list[CycleRecord] = []
            per_particle = self.host_cost.seconds_per_particle_cycle
            index = 0
            while self.integrator.next_block_time() <= t_end:
                t_before = self.system.time
                block_span = (
                    trace.span("block", category="sim", index=index)
                    if trace is not None else nullcontext()
                )
                with block_span:
                    # host halves priced per phase: the predictor touches
                    # every particle, the corrector only the active block
                    predict_s = 0.5 * per_particle * self.system.n
                    if trace is not None and predict_s > 0.0:
                        trace.add_span("predict", predict_s, category="host")
                    n_active = self.integrator.step_block()
                    correct_s = 0.5 * per_particle * n_active
                    if trace is not None and correct_s > 0.0:
                        trace.add_span("correct", correct_s, category="host")
                segments = self._drain()
                if per_particle > 0.0:
                    segments = (
                        [TimelineSegment("host", predict_s, "predict")]
                        + segments
                        + [TimelineSegment("host", correct_s, "correct")]
                    )
                timeline.extend(segments)
                records.append(CycleRecord(
                    index=index,
                    time=self.system.time,
                    dt=self.system.time - t_before,
                    model_seconds=sum(s.seconds for s in segments),
                ))
                index += 1
            self.integrator.synchronise()
        return SimulationResult(
            system=self.system,
            cycles=records,
            timeline=timeline,
            backend_name=self.backend.name,
        )


class LeapfrogDriver:
    """Fixed-step KDK leapfrog over any force backend, RunSpec-shaped.

    The numerical step is :func:`~repro.core.leapfrog.leapfrog_step`
    verbatim; this driver adds the timeline/Scope bookkeeping the other
    registered integrators provide, so ``run(n_cycles)`` returns a full
    :class:`SimulationResult`.  Jerk-free: backends still return jerk,
    which is ignored.
    """

    name = "leapfrog"

    def __init__(
        self,
        system: "ParticleSystem",
        backend: Any,
        *,
        dt: float | None,
        host_cost: HostCostModel,
        trace: Any = None,
    ) -> None:
        self.dt = _require_dt(dt, self.name)
        self.system = system
        self.backend = backend
        self.host_cost = host_cost
        self.trace = trace
        self._backend_traced = trace is not None and accepts_trace(backend)
        if self._backend_traced:
            backend.trace = trace
        self._initialised = False
        self._last_segments: tuple[TimelineSegment, ...] = ()

    def _evaluate_acc(self, pos, vel):
        evaluation = self.backend.compute(pos, vel, self.system.mass)
        if self.trace is not None and not self._backend_traced:
            for seg in evaluation.segments:
                self.trace.add_span(
                    seg.detail or seg.tag, seg.seconds, category=seg.tag
                )
        self._last_segments = evaluation.segments
        return evaluation.acc

    def initialise(self) -> list[TimelineSegment]:
        """Initial acceleration evaluation (and host init cost)."""
        trace = self.trace
        span = (
            trace.span("initialise", category="sim")
            if trace is not None else nullcontext()
        )
        with span:
            segments: list[TimelineSegment] = []
            if self.host_cost.init_seconds > 0.0:
                segments.append(
                    TimelineSegment("host", self.host_cost.init_seconds, "init")
                )
                if trace is not None:
                    trace.add_span(
                        "init", self.host_cost.init_seconds, category="host"
                    )
            self.system.acc = self._evaluate_acc(
                self.system.pos, self.system.vel
            )
            segments.extend(self._last_segments)
            self._initialised = True
        return segments

    def run(self, n_cycles: int) -> SimulationResult:
        """Advance ``n_cycles`` KDK steps."""
        if n_cycles <= 0:
            raise ConfigurationError(
                f"n_cycles must be positive, got {n_cycles}"
            )
        trace = self.trace
        run_span = (
            trace.span(
                "simulation.run", category="sim", n=self.system.n,
                n_cycles=n_cycles, backend=self.backend.name,
                integrator=self.name,
            )
            if trace is not None else nullcontext()
        )
        with run_span:
            timeline: list[TimelineSegment] = []
            if not self._initialised:
                timeline.extend(self.initialise())
            records: list[CycleRecord] = []
            s = self.system
            for index in range(n_cycles):
                cycle_segments = list(self.host_cost.cycle_segments(s.n))
                half_s = cycle_segments[0].seconds if cycle_segments else 0.0
                cycle_span = (
                    trace.span("cycle", category="sim", index=index,
                               dt=self.dt)
                    if trace is not None else nullcontext()
                )
                with cycle_span:
                    if trace is not None:
                        trace.add_span("predict", half_s, category="host")
                    force_span = (
                        trace.span("force", category="sim",
                                   backend=self.backend.name)
                        if trace is not None else nullcontext()
                    )
                    with force_span:
                        s.pos, s.vel, s.acc = leapfrog_step(
                            s.pos, s.vel, s.acc, self.dt, self._evaluate_acc
                        )
                    if trace is not None:
                        trace.add_span("correct", half_s, category="host")
                s.time += self.dt
                s.check_finite()
                if cycle_segments:
                    segments = (
                        [cycle_segments[0]]
                        + list(self._last_segments)
                        + [cycle_segments[1]]
                    )
                else:
                    segments = list(self._last_segments)
                timeline.extend(segments)
                records.append(CycleRecord(
                    index=index,
                    time=s.time,
                    dt=self.dt,
                    model_seconds=sum(seg.seconds for seg in segments),
                ))
        return SimulationResult(
            system=self.system,
            cycles=records,
            timeline=timeline,
            backend_name=self.backend.name,
        )


# --------------------------------------------------------------------------
# Built-in integrators
# --------------------------------------------------------------------------


def _validate_power_of_two(value: float) -> str | None:
    if value <= 0 or math.frexp(value)[0] != 0.5:
        return "must be a positive power of two"
    return None


def _validate_positive(value: float) -> str | None:
    if value <= 0:
        return "must be positive"
    return None


def _make_hermite(system, backend, *, dt, adaptive, host_cost, trace,
                  eta, eta_start, dt_min, dt_max, criterion):
    if adaptive:
        timestep = SharedTimestep(
            eta=eta, eta_start=eta_start, dt_min=dt_min, dt_max=dt_max,
            criterion=criterion,
        )
        return HermiteIntegrator(
            system, backend, timestep=timestep, host_cost=host_cost,
            trace=trace,
        )
    _require_dt(dt, "hermite")
    return HermiteIntegrator(
        system, backend, dt=dt, host_cost=host_cost, trace=trace
    )


def _make_block_hermite(system, backend, *, dt, adaptive, host_cost, trace,
                        eta, eta_start, dt_max, block_levels):
    # the block scheme is per-particle adaptive by construction; the
    # shared `adaptive` flag has nothing extra to switch on
    return BlockHermiteDriver(
        system, backend, dt=dt, host_cost=host_cost, trace=trace,
        eta=eta, eta_start=eta_start, dt_max=dt_max,
        block_levels=block_levels,
    )


def _make_leapfrog(system, backend, *, dt, adaptive, host_cost, trace):
    if adaptive:
        raise ConfigurationError(
            "leapfrog is fixed-step; adaptive timestepping is not supported"
        )
    return LeapfrogDriver(
        system, backend, dt=dt, host_cost=host_cost, trace=trace
    )


_ETA_OPTIONS = (
    OptionSpec("eta", float, 0.02, "Aarseth accuracy parameter",
               validate=_validate_positive),
    OptionSpec("eta_start", float, 0.01, "startup criterion accuracy",
               validate=_validate_positive),
)

register_integrator(
    "hermite", _make_hermite,
    description="4th-order shared-step Hermite predictor-corrector "
                "(the paper's integrator; adaptive via --adaptive)",
    options=_ETA_OPTIONS + (
        OptionSpec("dt_min", float, 1.0e-8,
                   "adaptive shared-step floor", validate=_validate_positive),
        OptionSpec("dt_max", float, 0.125,
                   "adaptive shared-step ceiling",
                   validate=_validate_positive),
        OptionSpec("criterion", str, "aarseth",
                   "adaptive criterion: aarseth | simple"),
    ),
)
register_integrator(
    "block-hermite", _make_block_hermite,
    description="individual power-of-two block timesteps; forces on the "
                "active block only (compute_on_targets)",
    options=_ETA_OPTIONS + (
        OptionSpec("dt_max", float, 0.0625,
                   "hierarchy root step (a power of two)",
                   validate=_validate_power_of_two),
        OptionSpec("block_levels", int, MAX_LEVEL,
                   f"hierarchy depth: dt down to dt_max / 2^levels "
                   f"(max {MAX_LEVEL})"),
    ),
)
register_integrator(
    "leapfrog", _make_leapfrog,
    description="2nd-order symplectic kick-drift-kick comparator "
                "(fixed step, jerk-free)",
)

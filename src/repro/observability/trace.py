"""Scope spans: the tracing half of :mod:`repro.observability`.

A :class:`Trace` is an append-only record of *spans* — named, categorised
intervals on the repository's modelled timeline.  Every layer that charges
modelled seconds can narrate what it charged: the simulation driver opens
spans for Hermite phases, the Metalium command queue opens spans for
``EnqueueProgram`` (with one child span per participating Tensix core),
and the campaign runner opens spans for whole jobs on the virtual clock.

Time model
----------

The repository's clocks are *modelled*, not measured, so spans do not wrap
``time.perf_counter()``.  Instead the trace keeps a monotonically advancing
**cursor** (seconds):

* :meth:`Trace.add_span` places a leaf span at the cursor and advances it
  by the span's duration — exactly how the layers already append
  :class:`~repro.core.simulation.TimelineSegment` / ``Phase`` records;
* :meth:`Trace.span` (a context manager) opens a parent span at the cursor
  and closes it wherever the children moved the cursor to;
* :meth:`Trace.add_concurrent_span` places a span at an *explicit* start
  time without touching the cursor — used for the per-core device spans,
  which genuinely overlap;
* :meth:`Trace.jump_to` re-anchors the cursor to an absolute time, which
  is how the campaign keeps the trace in lock-step with its
  :class:`~repro.simclock.VirtualClock`.

Zero overhead when off
----------------------

Tracing is opt-in: every instrumented layer holds ``trace=None`` by
default and guards with a single ``is None`` check, so the untraced hot
paths pay one attribute load.  There is no ambient global state.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

from ..errors import ReproError
from .metrics import MetricsRegistry

__all__ = ["Span", "SPAN_CATEGORIES", "Trace", "TraceError"]

#: The closed set of span categories ("cat" in the Chrome trace).  They
#: extend the timeline ``PHASE_TAGS`` with the trace-only kinds: ``sim``
#: (driver phases), ``core`` (per-Tensix-core execution), ``job``
#: (campaign orchestration), and ``analysis`` (lint/sanitize passes).
SPAN_CATEGORIES = (
    "host", "pcie", "device", "launch", "sim", "core", "job", "analysis",
)

#: Track spans land on unless they (or an enclosing span) say otherwise.
DEFAULT_TRACK = "main"


class TraceError(ReproError):
    """Raised on structural misuse of a :class:`Trace` (unbalanced spans,
    bad categories, negative durations)."""


@dataclass
class Span:
    """One named interval on the modelled timeline.

    ``parent`` is the index of the enclosing span in ``Trace.spans`` (or
    ``None`` for a root span); ``track`` names the horizontal lane the
    span renders on (per-core spans get per-core tracks so concurrent
    execution does not fake-nest in a viewer).
    """

    name: str
    category: str
    start_s: float
    duration_s: float
    track: str = DEFAULT_TRACK
    parent: int | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        """Span end time in seconds (``start_s + duration_s``)."""
        return self.start_s + self.duration_s


class Trace:
    """An append-only span log plus a metrics registry.

    Thread-safe for appends: the multi-device fan-out may add spans from
    worker threads.  The cursor and the open-span stack belong to the
    thread that drives the trace (the simulation/campaign main thread);
    concurrent writers must use :meth:`add_concurrent_span`.
    """

    def __init__(self, *, start_s: float = 0.0) -> None:
        if start_s < 0:
            raise TraceError(f"negative trace start time {start_s}")
        self.spans: list[Span] = []
        self.metrics = MetricsRegistry()
        self._cursor = float(start_s)
        self._stack: list[int] = []
        self._lock = threading.Lock()

    # -- cursor -------------------------------------------------------------

    @property
    def now(self) -> float:
        """The cursor: where on the modelled timeline new spans begin."""
        return self._cursor

    def advance(self, seconds: float) -> None:
        """Move the cursor forward by ``seconds`` without adding a span."""
        if seconds < 0:
            raise TraceError(f"cannot advance by negative time {seconds}")
        self._cursor += seconds

    def jump_to(self, t: float) -> None:
        """Re-anchor the cursor to absolute time ``t`` (never backwards)."""
        if t < self._cursor - 1e-12:
            raise TraceError(
                f"cursor cannot move backwards ({self._cursor} -> {t})"
            )
        self._cursor = float(t)

    # -- span construction ---------------------------------------------------

    def _check(self, name: str, category: str, duration_s: float) -> None:
        if not name:
            raise TraceError("span name must be non-empty")
        if category not in SPAN_CATEGORIES:
            raise TraceError(
                f"span category must be one of {SPAN_CATEGORIES}, "
                f"got {category!r}"
            )
        if duration_s < 0:
            raise TraceError(f"negative span duration {duration_s}")

    def _parent_track(self) -> str:
        if self._stack:
            return self.spans[self._stack[-1]].track
        return DEFAULT_TRACK

    def add_span(self, name: str, duration_s: float, *,
                 category: str = "host", track: str | None = None,
                 **attributes: Any) -> Span:
        """Append a leaf span at the cursor and advance by its duration."""
        self._check(name, category, duration_s)
        span = Span(
            name=name,
            category=category,
            start_s=self._cursor,
            duration_s=float(duration_s),
            track=track if track is not None else self._parent_track(),
            parent=self._stack[-1] if self._stack else None,
            attributes=dict(attributes),
        )
        with self._lock:
            self.spans.append(span)
        self._cursor += span.duration_s
        return span

    def add_concurrent_span(self, name: str, start_s: float,
                            duration_s: float, *, category: str = "core",
                            track: str, parent: Span | None = None,
                            **attributes: Any) -> Span:
        """Append a span at an explicit start time; the cursor is untouched.

        For work that overlaps other spans (per-core device execution,
        overlapping kernels): such spans must name their own ``track``.
        """
        self._check(name, category, duration_s)
        if start_s < 0:
            raise TraceError(f"negative span start {start_s}")
        with self._lock:
            parent_index = (
                self.spans.index(parent) if parent is not None
                else (self._stack[-1] if self._stack else None)
            )
            span = Span(
                name=name,
                category=category,
                start_s=float(start_s),
                duration_s=float(duration_s),
                track=track,
                parent=parent_index,
                attributes=dict(attributes),
            )
            self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, *, category: str = "sim",
             track: str | None = None,
             **attributes: Any) -> Iterator[Span]:
        """Open a parent span at the cursor; close it where the cursor ends.

        Children added inside the ``with`` block (via :meth:`add_span` or
        nested :meth:`span`) advance the cursor; the parent's duration is
        whatever its children (plus explicit :meth:`advance` calls) added.
        """
        self._check(name, category, 0.0)
        span = Span(
            name=name,
            category=category,
            start_s=self._cursor,
            duration_s=0.0,
            track=track if track is not None else self._parent_track(),
            parent=self._stack[-1] if self._stack else None,
            attributes=dict(attributes),
        )
        with self._lock:
            self.spans.append(span)
            index = len(self.spans) - 1
        self._stack.append(index)
        try:
            yield span
        finally:
            popped = self._stack.pop()
            if popped != index:  # pragma: no cover - structural invariant
                raise TraceError("unbalanced span nesting")
            span.duration_s = max(0.0, self._cursor - span.start_s)

    # -- queries -------------------------------------------------------------

    @property
    def duration_s(self) -> float:
        """Overall extent of the trace: latest span end minus earliest start."""
        if not self.spans:
            return 0.0
        start = min(s.start_s for s in self.spans)
        end = max(s.end_s for s in self.spans)
        return end - start

    def find(self, name: str) -> list[Span]:
        """All spans with the given name, in append order."""
        return [s for s in self.spans if s.name == name]

    def children_of(self, span: Span) -> list[Span]:
        """Direct children of ``span``, in append order."""
        index = self.spans.index(span)
        return [s for s in self.spans if s.parent == index]

    def roots(self) -> list[Span]:
        """Spans with no parent, in append order."""
        return [s for s in self.spans if s.parent is None]

    def seconds_by_category(self) -> dict[str, float]:
        """Leaf-span seconds aggregated by category.

        Only spans without children contribute, so nested parents do not
        double-count their children's time; concurrent (per-core) spans
        are excluded — their time is already covered by the enclosing
        device span.
        """
        has_child = {
            s.parent for s in self.spans
            if s.parent is not None and s.category != "core"
        }
        out: dict[str, float] = {}
        for i, span in enumerate(self.spans):
            if i in has_child or span.category == "core":
                continue
            out[span.category] = out.get(span.category, 0.0) + span.duration_s
        return out

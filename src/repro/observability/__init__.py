"""Scope: the unified tracing and metrics layer.

One :class:`Trace` threads through every layer of the reproduction —
simulation phases from the Hermite driver, ``EnqueueProgram`` and queue
traffic from the Metalium layer, per-core kernel execution from the
device simulator, and whole jobs (resets, retries, failovers) from the
campaign runner — alongside a flat :class:`MetricsRegistry` of counters,
gauges, and histograms (DRAM bytes, NoC hops, scheduler stall rounds,
L1 high-water, tiles/s, J per cycle).

Exports go to Chrome/Perfetto ``trace.json``
(:func:`write_chrome_trace`), JSON/CSV metrics dumps, and a text
flamegraph (:func:`format_flamegraph`).  See ``docs/OBSERVABILITY.md``
for the span taxonomy and attribute schema, and
``examples/tracing_tour.py`` for the executable tour.

Entry points::

    from repro.observability import Trace

    trace = Trace()
    sim = Simulation(system, backend, dt=1e-3, trace=trace)
    sim.run(10)
    write_chrome_trace(trace, "trace.json")

or ``repro trace`` from the command line, or ``REPRO_TRACE=trace.json``
around any ``repro simulate`` / ``repro campaign`` invocation.

This package sits at the *base* of the layer diagram
(``docs/ARCHITECTURE.md``): it imports only :mod:`repro.errors` and the
standard library, so every other layer can report into it without
creating import cycles.
"""

import os
from pathlib import Path

from .export import (
    chrome_trace_events,
    format_flamegraph,
    validate_chrome_trace,
    write_chrome_trace,
)
from .metrics import Counter, Gauge, Histogram, MetricsError, MetricsRegistry
from .trace import SPAN_CATEGORIES, Span, Trace, TraceError

__all__ = [
    "SPAN_CATEGORIES",
    "Span",
    "Trace",
    "TraceError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsError",
    "MetricsRegistry",
    "chrome_trace_events",
    "format_flamegraph",
    "validate_chrome_trace",
    "write_chrome_trace",
    "trace_from_env",
]

#: Environment variable naming the trace output path (CLI integration).
TRACE_ENV_VAR = "REPRO_TRACE"


def trace_from_env() -> tuple[Trace, Path] | None:
    """A fresh trace plus its output path when ``REPRO_TRACE`` is set.

    Returns ``None`` when the variable is unset or empty — callers guard
    their instrumentation on that, keeping the untraced path free.  The
    caller owns writing the trace (``write_chrome_trace(trace, path)``)
    once the workload finishes; metrics conventionally land next to it
    as ``<path>.metrics.json``.
    """
    value = os.environ.get(TRACE_ENV_VAR, "").strip()
    if not value:
        return None
    return Trace(), Path(value)

"""Scope exporters: Chrome/Perfetto ``trace.json`` and text flamegraphs.

Two consumers of a finished :class:`~repro.observability.trace.Trace`:

* :func:`write_chrome_trace` emits the Trace Event Format JSON that both
  ``chrome://tracing`` and https://ui.perfetto.dev open directly — one
  complete ("ph": "X") event per span, with tracks mapped to thread
  lanes and span attributes preserved under ``args``;
* :func:`format_flamegraph` renders the same spans as an indented text
  tree aggregated by span-name path, with inclusive time, share of the
  total, and call counts — the quick look for terminals and CI logs.

:func:`validate_chrome_trace` is the schema gate the docs tests use: it
checks the structural invariants a viewer relies on, so a refactor that
breaks the export fails loudly instead of producing a file Perfetto
silently mis-renders.
"""

from __future__ import annotations

import json
from pathlib import Path

from .trace import SPAN_CATEGORIES, Trace

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "validate_chrome_trace",
    "format_flamegraph",
]

#: Process id used for every event (one modelled job = one process).
_PID = 0


def _track_ids(trace: Trace) -> dict[str, int]:
    """Stable track -> tid mapping: first-seen order, 'main' always 0."""
    ids: dict[str, int] = {"main": 0}
    for span in trace.spans:
        if span.track not in ids:
            ids[span.track] = len(ids)
    return ids


def chrome_trace_events(trace: Trace) -> list[dict]:
    """The ``traceEvents`` list for a trace (metadata + complete events).

    Timestamps are microseconds of modelled time.  Each track becomes one
    thread lane, named by a ``thread_name`` metadata event; spans become
    ``"ph": "X"`` complete events carrying their category and attributes.
    """
    tracks = _track_ids(trace)
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro (modelled time)"},
        }
    ]
    for track, tid in tracks.items():
        events.append({
            "ph": "M",
            "name": "thread_name",
            "pid": _PID,
            "tid": tid,
            "args": {"name": track},
        })
    for span in trace.spans:
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.category,
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": _PID,
            "tid": tracks[span.track],
            "args": dict(span.attributes),
        })
    return events


def write_chrome_trace(trace: Trace, path: str | Path) -> Path:
    """Write the Chrome/Perfetto trace JSON for ``trace``; returns the path."""
    path = Path(path)
    payload = {
        "traceEvents": chrome_trace_events(trace),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.observability",
            "timebase": "modelled seconds (not wall clock)",
        },
    }
    path.write_text(json.dumps(payload, indent=1) + "\n")
    return path


def validate_chrome_trace(payload: dict) -> list[str]:
    """Schema-check a trace payload; returns a list of problems (empty = ok).

    Checks the invariants viewers depend on: a ``traceEvents`` list, every
    event carrying ``ph``/``pid``/``tid``, complete events with
    non-negative numeric ``ts``/``dur`` and a known category, and every
    referenced tid introduced by a ``thread_name`` metadata event.
    """
    problems: list[str] = []
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["payload has no traceEvents list"]
    named_tids = set()
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for key in ("ph", "pid", "tid", "name"):
            if key not in event:
                problems.append(f"event {i} missing {key!r}")
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") == "thread_name":
                named_tids.add(event.get("tid"))
        elif ph == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value < 0:
                    problems.append(
                        f"event {i} ({event.get('name')!r}) has bad "
                        f"{key}={value!r}"
                    )
            if event.get("cat") not in SPAN_CATEGORIES:
                problems.append(
                    f"event {i} ({event.get('name')!r}) has unknown "
                    f"category {event.get('cat')!r}"
                )
        else:
            problems.append(f"event {i} has unsupported ph {ph!r}")
    for i, event in enumerate(events):
        if event.get("ph") == "X" and event.get("tid") not in named_tids:
            problems.append(
                f"event {i} references unnamed tid {event.get('tid')!r}"
            )
    return problems


def _aggregate(trace: Trace):
    """name-path -> [inclusive seconds, count, depth], insertion-ordered."""
    paths: dict[tuple[str, ...], list] = {}
    span_paths: list[tuple[str, ...]] = []
    for span in trace.spans:
        if span.parent is None:
            path = (span.name,)
        else:
            path = span_paths[span.parent] + (span.name,)
        span_paths.append(path)
        entry = paths.setdefault(path, [0.0, 0])
        entry[0] += span.duration_s
        entry[1] += 1
    return paths


def format_flamegraph(trace: Trace, *, min_share: float = 0.0) -> str:
    """Indented inclusive-time summary of a trace, aggregated by span path.

    Sibling entries sort by inclusive seconds; ``min_share`` (0-1) hides
    paths below that fraction of the trace total.  Per-core spans roll up
    like any other children, so a hot kernel shows up as a deep, wide row.
    """
    paths = _aggregate(trace)
    if not paths:
        return "(empty trace)"
    total = sum(
        seconds for (path, (seconds, _)) in paths.items() if len(path) == 1
    )
    lines = [f"{'seconds':>12} {'share':>7} {'count':>6}  span"]

    def emit(prefix: tuple[str, ...], depth: int) -> None:
        """Append the rows under ``prefix``, widest subtree first."""
        children = sorted(
            (
                (path, entry) for path, entry in paths.items()
                if len(path) == depth + 1 and path[:depth] == prefix
            ),
            key=lambda item: item[1][0],
            reverse=True,
        )
        for path, (seconds, count) in children:
            share = seconds / total if total > 0 else 0.0
            if share < min_share:
                continue
            lines.append(
                f"{seconds:>12.6f} {share:>6.1%} {count:>6}  "
                f"{'  ' * depth}{path[-1]}"
            )
            emit(path, depth + 1)

    emit((), 0)
    lines.append(f"{total:>12.6f} {'100.0%':>7} {'':>6}  (total)")
    return "\n".join(lines)

"""Scope metrics: a flat registry of counters, gauges, and histograms.

The metrics half of :mod:`repro.observability`.  Where spans answer *when
did it run*, metrics answer *how much of it happened*: DRAM bytes moved,
NoC transactions and hop counts, scheduler stall rounds (the CB
back-pressure proxy), L1 high-water marks, tiles per second, joules per
cycle.  Instruments are created on first use and addressed by dotted
name, so call sites stay one-liners::

    metrics.counter("device0.dram.bytes_read").add(4096)
    metrics.gauge("device0.l1.cb_high_water_bytes").set(196608)
    metrics.histogram("device0.tiles_per_s").observe(1.2e6)

The registry dumps to JSON (full state, including histogram summaries)
and to a flat CSV (one instrument per row) for spreadsheet diffing.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsError",
]


class MetricsError(ReproError):
    """Raised on metrics misuse (bad names, negative counter increments)."""


def _check_name(name: str) -> None:
    if not name or any(c.isspace() for c in name):
        raise MetricsError(f"metric name must be non-empty, no spaces: {name!r}")


@dataclass
class Counter:
    """A monotonically increasing total (events, bytes, retries)."""

    name: str
    value: float = 0.0

    def add(self, amount: float = 1.0) -> None:
        """Increase the counter; negative increments are rejected."""
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (add({amount}))"
            )
        self.value += amount

    def inc(self) -> None:
        """Increase the counter by one."""
        self.add(1.0)


@dataclass
class Gauge:
    """A point-in-time value that can move both ways (high-water marks)."""

    name: str
    value: float = 0.0
    #: number of times the gauge was set (0 = never observed)
    updates: int = 0

    def set(self, value: float) -> None:
        """Record the gauge's current value."""
        self.value = float(value)
        self.updates += 1

    def set_max(self, value: float) -> None:
        """Keep the running maximum (high-water-mark semantics)."""
        if self.updates == 0 or value > self.value:
            self.value = float(value)
        self.updates += 1


@dataclass
class Histogram:
    """A streaming distribution: count/sum/min/max plus every sample.

    Sample counts in this repository are small (one per program enqueue or
    campaign job), so the histogram keeps the raw samples; percentiles are
    computed on demand.
    """

    name: str
    samples: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        """Record one sample."""
        if not math.isfinite(value):
            raise MetricsError(
                f"histogram {self.name!r} rejects non-finite sample {value}"
            )
        self.samples.append(float(value))

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self.samples)

    @property
    def sum(self) -> float:
        """Sum of all recorded samples."""
        return sum(self.samples)

    @property
    def mean(self) -> float:
        """Mean of the samples (0.0 when empty)."""
        return self.sum / self.count if self.samples else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0-100) by nearest-rank (0.0 when empty)."""
        if not (0.0 <= q <= 100.0):
            raise MetricsError(f"percentile must be in [0, 100], got {q}")
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """count/sum/min/mean/p50/p95/max snapshot of the distribution."""
        if not self.samples:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": min(self.samples),
            "mean": self.mean,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "max": max(self.samples),
        }


class MetricsRegistry:
    """Create-on-first-use registry of named instruments.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for the same name as a different kind is an error (it would
    silently fork the series).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type):
        _check_name(name)
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif not isinstance(instrument, kind):
            raise MetricsError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"requested as {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if new)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if new)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created if new)."""
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def names(self) -> list[str]:
        """All registered instrument names, sorted."""
        return sorted(self._instruments)

    # -- export --------------------------------------------------------------

    def to_dict(self) -> dict:
        """Full registry state, JSON-serialisable, sorted by name."""
        out: dict[str, dict] = {}
        for name in self.names():
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                out[name] = {"kind": "counter", "value": instrument.value}
            elif isinstance(instrument, Gauge):
                out[name] = {
                    "kind": "gauge",
                    "value": instrument.value,
                    "updates": instrument.updates,
                }
            else:
                out[name] = {"kind": "histogram", **instrument.summary()}
        return out

    def write_json(self, path: str | Path) -> Path:
        """Dump :meth:`to_dict` as pretty-printed JSON; returns the path."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def write_csv(self, path: str | Path) -> Path:
        """Dump a flat ``name,kind,value,count,sum`` CSV; returns the path.

        ``value`` is the counter/gauge value, or the histogram mean;
        ``count``/``sum`` are empty for counters and gauges.
        """
        path = Path(path)
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(["name", "kind", "value", "count", "sum"])
            for name in self.names():
                instrument = self._instruments[name]
                if isinstance(instrument, Counter):
                    writer.writerow([name, "counter", instrument.value, "", ""])
                elif isinstance(instrument, Gauge):
                    writer.writerow([name, "gauge", instrument.value, "", ""])
                else:
                    writer.writerow([
                        name, "histogram", instrument.mean,
                        instrument.count, instrument.sum,
                    ])
        return path

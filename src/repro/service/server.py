"""Simulation-as-a-service: the asyncio job server.

One process, one event loop, no third-party dependencies: HTTP/1.1 is
hand-rolled on :func:`asyncio.start_server` streams (one request per
connection, ``Connection: close``), which is all a job-submission API
needs and keeps the service runnable anywhere the library is.

The flow for a submission (``POST /v1/jobs``):

1. the spec is canonicalised — :meth:`RunSpec.canonical_hash` collapses
   aliases, fills option defaults, and drops output-only fields — so two
   requests that *mean* the same run get the same key;
2. a **cache hit** answers instantly from :class:`ResultCache` without
   occupying a card;
3. an identical **in-flight** job absorbs the submission as a follower
   (dedupe): one execution, many waiters;
4. otherwise the :class:`QuotaLedger` admits or rejects with 429 +
   ``Retry-After`` (priced in modelled seconds from the scheduler's
   running average), and the job enters the tenant-aware queue the card
   farm drains.

Endpoints::

    GET  /healthz               liveness
    POST /v1/jobs               submit {"tenant": ..., "spec": {...}}
    GET  /v1/jobs/<id>          job status + result
    GET  /v1/jobs/<id>/wait     block until the job finishes
    GET  /v1/jobs/<id>/events   NDJSON progress stream (trace-derived)
    GET  /v1/stats              throughput, latency percentiles, cache,
                                queue and quota counters
    POST /v1/shutdown           drain and stop
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..backends.runspec import RunSpec
from ..errors import (
    ConfigurationError,
    JobNotFoundError,
    QuotaExceededError,
    ReproError,
    failure_kind,
)
from .cache import ResultCache
from .queue import Job, JobQueue
from .quota import QuotaLedger, QuotaPolicy
from .scheduler import CardFarm, Scheduler

__all__ = ["ServerConfig", "JobServer", "ServiceThread"]

MAX_BODY_BYTES = 1 << 20
MAX_HEADER_LINES = 64

_REASONS = {
    200: "OK", 201: "Created", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 429: "Too Many Requests",
    500: "Internal Server Error",
}


def _percentile(values: list[float], q: float) -> float | None:
    """Nearest-rank percentile (q in [0, 1]); None on an empty sample."""
    if not values:
        return None
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


@dataclass(frozen=True)
class ServerConfig:
    """Everything a :class:`JobServer` needs to come up."""

    host: str = "127.0.0.1"
    #: 0 means "pick a free port" (the bound port lands on ``server.port``)
    port: int = 0
    n_cards: int = 4
    #: ``modelled`` (analytic campaign timeline, ms per job) or
    #: ``functional`` (really integrate on the spec's backend)
    mode: str = "modelled"
    #: campaign sleep padding for modelled jobs (the paper's 120 s default
    #: would dominate queue time, so the service defaults to none)
    sleep_s: float = 0.0
    policy: QuotaPolicy = field(default_factory=QuotaPolicy)
    cache_entries: int = 1024


class JobServer:
    """The service: queue + quota + cache + scheduler behind HTTP."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.queue = JobQueue()
        self.ledger = QuotaLedger(self.config.policy)
        self.cache = ResultCache(self.config.cache_entries)
        self.farm = CardFarm(self.config.n_cards, mode=self.config.mode,
                             sleep_s=self.config.sleep_s)
        self.scheduler = Scheduler(self.farm, self.queue, self.ledger,
                                   on_finished=self._job_finished)
        #: every job ever submitted, by id (status endpoint's source)
        self.jobs: dict[str, Job] = {}
        #: hash → the job currently executing/queued for that spec
        self._inflight: dict[str, Job] = {}
        #: primary job id → followers waiting on its result
        self._followers: dict[str, list[Job]] = {}
        self._latencies: list[float] = []
        self.submitted_total = 0
        self.cached_served = 0
        self.deduped_served = 0
        self.port: int | None = None
        self.started_monotonic: float | None = None
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the card workers."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_monotonic = time.monotonic()
        self.scheduler.start()

    async def stop(self) -> None:
        """Stop accepting, drain in-flight jobs, fail whatever never ran."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        leftover = await self.scheduler.stop()
        for job in leftover:
            job.state = "failed"
            job.error = "server shut down before the job ran"
            job.error_kind = "service"
            job.finished_wall = time.monotonic()
            job.add_event("failed", reason="shutdown")
            self.ledger.release(job.tenant, was_active=False)
            self._job_finished(job)

    async def wait_shutdown(self) -> None:
        """Block until ``POST /v1/shutdown`` (or :meth:`request_shutdown`)."""
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    @property
    def url(self) -> str:
        if self.port is None:
            raise ConfigurationError("server is not started")
        return f"http://{self.config.host}:{self.port}"

    # -- core submission logic (HTTP-independent, used directly by tests) --

    async def submit(self, tenant: str, spec: RunSpec) -> Job:
        """Admit one spec: cache hit, dedupe, or queue — or raise 429."""
        self.submitted_total += 1
        spec_hash = spec.canonical_hash()

        cached = self.cache.get(spec_hash)
        if cached is not None:
            job = Job(tenant=tenant, spec=spec, spec_hash=spec_hash,
                      state="done", cached=True, result=cached)
            job.finished_wall = time.monotonic()
            job.add_event("done", cached=True)
            self.jobs[job.id] = job
            self.cached_served += 1
            self._latencies.append(job.latency_s or 0.0)
            return job

        primary = self._inflight.get(spec_hash)
        if primary is not None and not primary.finished:
            job = Job(tenant=tenant, spec=spec, spec_hash=spec_hash,
                      deduped_from=primary.id)
            job.add_event("deduped", primary=primary.id)
            self.jobs[job.id] = job
            self._followers.setdefault(primary.id, []).append(job)
            return job

        # fresh work: this is the only path that consumes farm capacity,
        # so it is the only path admission control prices
        self.ledger.admit(tenant, drain_rate_s=self.scheduler.drain_rate_s)
        job = Job(tenant=tenant, spec=spec, spec_hash=spec_hash)
        job.add_event("queued", tenant=tenant, hash=spec_hash)
        self.jobs[job.id] = job
        self._inflight[spec_hash] = job
        await self.queue.put(job)
        return job

    def _job_finished(self, job: Job) -> None:
        """Scheduler callback: fill the cache, settle followers, count."""
        if self._inflight.get(job.spec_hash) is job:
            del self._inflight[job.spec_hash]
        if job.state == "done" and job.result is not None:
            self.cache.put(job.spec_hash, job.result)
        self._latencies.append(job.latency_s or 0.0)
        for follower in self._followers.pop(job.id, []):
            follower.state = job.state
            follower.result = job.result
            follower.error = job.error
            follower.error_kind = job.error_kind
            follower.card = job.card
            follower.finished_wall = time.monotonic()
            follower.add_event(job.state, deduped_from=job.id)
            self.deduped_served += 1
            self._latencies.append(follower.latency_s or 0.0)

    def get_job(self, job_id: str) -> Job:
        job = self.jobs.get(job_id)
        if job is None:
            raise JobNotFoundError(f"no such job: {job_id!r}")
        return job

    def stats(self) -> dict[str, Any]:
        """The ``/v1/stats`` payload (also the benchmark's raw material)."""
        finished = len(self._latencies)
        elapsed = (
            time.monotonic() - self.started_monotonic
            if self.started_monotonic is not None else 0.0
        )
        return {
            "mode": self.farm.mode,
            "n_cards": self.farm.n_cards,
            "uptime_s": round(elapsed, 3),
            "jobs": {
                "submitted": self.submitted_total,
                "finished": finished,
                "executed_ok": self.scheduler.jobs_done,
                "executed_failed": self.scheduler.jobs_failed,
                "cached": self.cached_served,
                "deduped": self.deduped_served,
                "per_card": {
                    str(c): n
                    for c, n in sorted(self.scheduler.per_card_jobs.items())
                },
            },
            "queue": {
                "depth": len(self.queue),
                "depth_peak": self.queue.depth_peak,
            },
            "cache": self.cache.stats(),
            "quota": {
                "tenants": self.ledger.snapshot(),
                "rejections_total": sum(self.ledger.rejections.values()),
            },
            "latency": {
                "count": finished,
                "p50_s": _percentile(self._latencies, 0.50),
                "p99_s": _percentile(self._latencies, 0.99),
                "mean_s": (
                    sum(self._latencies) / finished if finished else None
                ),
            },
            "throughput_jobs_per_s": (
                round(finished / elapsed, 3) if elapsed > 0 else None
            ),
            "virtual_s_total": round(self.scheduler.virtual_s_total, 3),
            "drain_rate_s": round(self.scheduler.drain_rate_s, 6),
        }

    # -- HTTP plumbing -----------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is not None:
                method, path, body = request
                await self._route(method, path, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            try:
                self._write_json(writer, 500, {
                    "error": str(exc), "kind": failure_kind(exc),
                })
            except ConnectionError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes] | None:
        request_line = await reader.readline()
        if not request_line.strip():
            return None
        try:
            method, path, _version = request_line.decode("ascii").split()
        except ValueError:
            raise ConfigurationError(
                f"malformed request line: {request_line!r}"
            ) from None
        content_length = 0
        for _ in range(MAX_HEADER_LINES):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        else:
            raise ConfigurationError("too many request headers")
        if content_length > MAX_BODY_BYTES:
            raise ConfigurationError(
                f"request body too large ({content_length} bytes)"
            )
        body = (
            await reader.readexactly(content_length)
            if content_length else b""
        )
        return method.upper(), path, body

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        if path == "/healthz" and method == "GET":
            self._write_json(writer, 200, {"ok": True})
        elif path == "/v1/jobs" and method == "POST":
            await self._handle_submit(body, writer)
        elif path == "/v1/stats" and method == "GET":
            self._write_json(writer, 200, self.stats())
        elif path == "/v1/shutdown" and method == "POST":
            self._write_json(writer, 200, {"ok": True, "stopping": True})
            self.request_shutdown()
        elif path.startswith("/v1/jobs/"):
            await self._handle_job_path(method, path, writer)
        else:
            self._write_json(writer, 404, {"error": f"no route: {path}"})

    async def _handle_submit(self, body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ConfigurationError("submission body must be an object")
            tenant = str(payload.get("tenant", "default"))
            spec = RunSpec.from_dict(payload.get("spec", {}))
            job = await self.submit(tenant, spec)
        except QuotaExceededError as exc:
            self._write_json(
                writer, 429,
                {"error": str(exc), "kind": "quota",
                 "retry_after_s": exc.retry_after_s},
                extra_headers=(
                    ("Retry-After", str(math.ceil(exc.retry_after_s))),
                ),
            )
        except (ReproError, ValueError, TypeError,
                json.JSONDecodeError) as exc:
            self._write_json(writer, 400, {
                "error": str(exc), "kind": failure_kind(exc),
            })
        else:
            status = 200 if job.finished else 201
            self._write_json(writer, status, job.to_dict())

    async def _handle_job_path(self, method: str, path: str,
                               writer: asyncio.StreamWriter) -> None:
        if method != "GET":
            self._write_json(writer, 405, {"error": "GET only"})
            return
        parts = path.removeprefix("/v1/jobs/").split("/")
        try:
            job = self.get_job(parts[0])
        except JobNotFoundError as exc:
            self._write_json(writer, 404, {
                "error": str(exc), "kind": "job-not-found",
            })
            return
        if len(parts) == 1:
            self._write_json(writer, 200, job.to_dict())
        elif parts[1:] == ["wait"]:
            await job.wait_finished()
            self._write_json(writer, 200, job.to_dict())
        elif parts[1:] == ["events"]:
            await self._stream_events(job, writer)
        else:
            self._write_json(writer, 404, {"error": f"no route: {path}"})

    async def _stream_events(self, job: Job,
                             writer: asyncio.StreamWriter) -> None:
        """NDJSON: replay the job's event log, then follow until done."""
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n"
        )
        async for event in job.stream_events():
            writer.write(json.dumps(event).encode("utf-8") + b"\n")
            await writer.drain()

    def _write_json(self, writer: asyncio.StreamWriter, status: int,
                    payload: dict[str, Any],
                    extra_headers: tuple[tuple[str, str], ...] = ()) -> None:
        body = json.dumps(payload).encode("utf-8")
        head = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        head.extend(f"{name}: {value}" for name, value in extra_headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("ascii") + body)


class ServiceThread:
    """A :class:`JobServer` on a background event-loop thread.

    The synchronous face of the service: the benchmark, the CI smoke test
    and ``repro submit``'s self-hosting mode all want to drive the server
    from plain blocking code over real sockets.
    """

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config if config is not None else ServerConfig()
        self.server: JobServer | None = None
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    def start(self, timeout: float = 30.0) -> str:
        """Start the loop thread; returns the service URL once bound."""
        if self._thread is not None:
            raise ConfigurationError("service thread already started")
        self._thread = threading.Thread(
            target=self._run, name="repro-service", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ConfigurationError("service failed to start in time")
        if self._startup_error is not None:
            raise ConfigurationError(
                f"service failed to start: {self._startup_error}"
            )
        assert self.server is not None
        return self.server.url

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        server = JobServer(self.config)
        self._loop = asyncio.get_running_loop()
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._startup_error = exc
            self._ready.set()
            return
        self.server = server
        self._ready.set()
        await server.wait_shutdown()
        await server.stop()

    def stop(self, timeout: float = 30.0) -> None:
        """Request shutdown and join the loop thread."""
        if self._thread is None:
            return
        if self.server is not None and self._loop is not None:
            # the event lives on the service thread's loop; setting it from
            # here must go through call_soon_threadsafe to wake that loop
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ConfigurationError("service thread did not stop in time")
        self._thread = None

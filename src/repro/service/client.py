"""Blocking HTTP client for the job service (stdlib ``urllib`` only).

The client is deliberately dumb: it speaks exactly the JSON the server
emits and raises the same exception taxonomy the library uses everywhere
else — a 429 becomes :class:`QuotaExceededError` with the server's
retry-after hint attached, a 404 on a job id becomes
:class:`JobNotFoundError` — so code driving a remote farm reads the same
as code driving an in-process one.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterator

from ..backends.runspec import RunSpec
from ..errors import JobNotFoundError, QuotaExceededError, ServiceError

__all__ = ["ServiceClient"]


class ServiceClient:
    """Talks to one :class:`~repro.service.JobServer` over HTTP."""

    def __init__(self, url: str, *, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # -- raw transport -----------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict[str, Any] | None = None) -> dict[str, Any]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        req = urllib.request.Request(
            self.url + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            payload = self._error_payload(exc)
            message = payload.get("error", str(exc))
            if exc.code == 429:
                raise QuotaExceededError(
                    message,
                    retry_after_s=float(payload.get("retry_after_s", 1.0)),
                ) from None
            if exc.code == 404 and payload.get("kind") == "job-not-found":
                raise JobNotFoundError(message) from None
            raise ServiceError(
                f"HTTP {exc.code} from {path}: {message}"
            ) from None

    @staticmethod
    def _error_payload(exc: urllib.error.HTTPError) -> dict[str, Any]:
        try:
            payload = json.loads(exc.read().decode("utf-8"))
        except (ValueError, OSError):
            return {}
        return payload if isinstance(payload, dict) else {}

    # -- API surface -------------------------------------------------------

    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceError, urllib.error.URLError, OSError):
            return False

    def submit(self, spec: RunSpec, *,
               tenant: str = "default") -> dict[str, Any]:
        """Submit one spec; returns the job document (maybe already done)."""
        return self._request("POST", "/v1/jobs", {
            "tenant": tenant, "spec": spec.to_dict(),
        })

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait(self, job_id: str) -> dict[str, Any]:
        """Block (server-side) until the job finishes; returns it."""
        return self._request("GET", f"/v1/jobs/{job_id}/wait")

    def submit_and_wait(self, spec: RunSpec, *, tenant: str = "default",
                        retry_quota: bool = False) -> dict[str, Any]:
        """Submit then wait; optionally sleep out 429s and resubmit.

        ``retry_quota`` backs off briefly on a 429 and resubmits, which is
        what a well-behaved tenant does.  The sleep is wall time and capped
        well below the server's hint: the hint is in *modelled* seconds,
        and the farm drains modelled time orders of magnitude faster.
        """
        while True:
            try:
                job = self.submit(spec, tenant=tenant)
            except QuotaExceededError as exc:
                if not retry_quota:
                    raise
                time.sleep(min(0.25, 0.001 * exc.retry_after_s + 0.01))
                continue
            if job["state"] in ("done", "failed"):
                return job
            return self.wait(job["id"])

    def events(self, job_id: str) -> Iterator[dict[str, Any]]:
        """Stream the job's NDJSON progress events until it finishes."""
        req = urllib.request.Request(
            f"{self.url}/v1/jobs/{job_id}/events", method="GET"
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                for line in resp:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            payload = self._error_payload(exc)
            raise JobNotFoundError(
                payload.get("error", str(exc))
            ) from None

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/v1/stats")

    def shutdown(self) -> dict[str, Any]:
        return self._request("POST", "/v1/shutdown")
